// The paper's §8 future work, implemented: automatically deriving the
// maintenance rule — including the unit of batching and the delay window —
// from a materialized view definition.
//
//   build/examples/view_autogen

#include <cstdio>

#include "strip/common/logging.h"
#include "strip/engine/database.h"
#include "strip/viewmaint/rule_gen.h"
#include "strip/viewmaint/view_def.h"

using namespace strip;

int main() {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  Database db(opts);

  auto check = [](Status st) {
    if (!st.ok()) {
      STRIP_LOG(ERROR, "%s", st.ToString().c_str());
      std::exit(1);
    }
  };

  check(db.ExecuteScript(R"sql(
    create table sales (region string, product string, amount double);
    create index on sales (region);
    create materialized view revenue as
      select region, sum(amount) as total from sales group by region;
  )sql"));
  check(db.Execute("insert into sales values ('eu', 'a', 10.0), "
                   "('eu', 'b', 20.0), ('us', 'a', 40.0)")
            .status());
  check(db.views().RefreshView("revenue"));

  // One call derives everything: the condition query over the transition
  // tables, the action function, the unit of batching (the view's group
  // key), and the delay window.
  RuleGenOptions gen;
  gen.delay_seconds = 1.0;
  auto rule = GenerateMaintenanceRule(db, "revenue", "sales", gen);
  check(rule.status());
  std::printf("generated rule:\n  %s\n\n", rule->rule_sql.c_str());

  std::printf("before updates:\n%s\n",
              db.Execute("select * from revenue order by region")
                  ->ToString().c_str());

  // A burst of base-data changes, batched by the generated rule.
  check(db.Execute("update sales set amount += 5.0 where product = 'a'")
            .status());
  check(db.Execute("update sales set amount = 35.0 where product = 'b'")
            .status());
  db.simulated()->RunUntil(SecondsToMicros(2.0));

  std::printf("after (maintained incrementally by the generated rule):\n%s\n",
              db.Execute("select * from revenue order by region")
                  ->ToString().c_str());
  std::printf("from-scratch recomputation for comparison:\n%s",
              db.Execute("select region, sum(amount) as total from sales "
                         "group by region order by region")
                  ->ToString().c_str());
  return 0;
}
