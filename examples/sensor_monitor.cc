// Real-time monitoring scenario from the paper's introduction: a dynamic
// environment (sensors) streams base-data updates; derived data (per-zone
// aggregates) is maintained by a batched rule; an alert rule watches the
// derived data. Runs on the THREADED executor — a real worker pool on the
// wall clock, the analogue of STRIP's process pool (§6.2).
//
//   build/examples/sensor_monitor

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "strip/common/logging.h"
#include "strip/engine/database.h"

using namespace strip;

int main() {
  Database::Options opts;
  opts.mode = ExecutorMode::kThreaded;
  opts.num_workers = 2;
  Database db(opts);

  auto check = [](Status st) {
    if (!st.ok()) {
      STRIP_LOG(ERROR, "%s", st.ToString().c_str());
      std::exit(1);
    }
  };

  check(db.ExecuteScript(R"sql(
    create table readings (sensor int, zone string, load double);
    create index on readings (sensor);
    create table zone_load (zone string, total double);
    create table alerts (zone string, total double, at int);
    insert into readings values
      (1, 'dock', 10.0), (2, 'dock', 12.0), (3, 'gate', 5.0), (4, 'gate', 7.0);
    insert into zone_load values ('dock', 22.0), ('gate', 12.0);
  )sql"));

  // Derived-data maintenance: fold reading changes into zone totals,
  // batched per zone over a 50 ms window (sensors report in bursts).
  check(db.RegisterFunction("fold_zone", [](FunctionContext& ctx) -> Status {
    const TempTable* d = ctx.BoundTable("delta");
    int zone = d->schema().FindColumn("zone");
    int oldv = d->schema().FindColumn("old_load");
    int newv = d->schema().FindColumn("new_load");
    if (d->size() == 0) return Status::OK();
    double change = 0;
    for (size_t i = 0; i < d->size(); ++i) {
      change += d->Get(i, newv).as_double() - d->Get(i, oldv).as_double();
    }
    auto n = ctx.Exec("update zone_load set total += " +
                      std::to_string(change) + " where zone = '" +
                      d->Get(0, zone).as_string() + "'");
    return n.status();
  }));
  check(db.Execute(R"sql(
    create rule maintain_zone_load on readings
    when updated load
    if
      select new.zone as zone, old.load as old_load, new.load as new_load
      from new, old
      where new.execute_order = old.execute_order
      bind as delta
    then execute fold_zone
    unique on zone
    after 0.05 seconds
  )sql").status());

  // Alerting on the DERIVED data: rules cascade — the recompute
  // transaction's own commit triggers this rule. The alert row records the
  // triggering transaction's commit time via the commit_time column (§2).
  check(db.RegisterFunction("raise_alert", [](FunctionContext& ctx) -> Status {
    const TempTable* hot = ctx.BoundTable("hot");
    for (size_t i = 0; i < hot->size(); ++i) {
      std::vector<Value> row = hot->MaterializeRow(i);
      auto n = ctx.Exec("insert into alerts values ('" +
                        row[0].as_string() + "', " +
                        std::to_string(row[1].as_double()) + ", " +
                        std::to_string(row[2].as_int()) + ")");
      if (!n.ok()) return n.status();
    }
    return Status::OK();
  }));
  check(db.Execute(R"sql(
    create rule watch_zones on zone_load
    when updated total
    if
      select new.zone as zone, new.total as total, commit_time
      from new
      where new.total > 40.0
      bind as hot
    then execute raise_alert
  )sql").status());

  // Simulate two sensor bursts arriving from the environment.
  std::printf("streaming sensor bursts...\n");
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 4; ++i) {
      check(db.Execute("update readings set load += 3.5 where sensor = " +
                       std::to_string(1 + (i % 2)))
                .status());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  db.threaded()->Drain();

  std::printf("\nzone totals:\n%s",
              db.Execute("select * from zone_load order by zone")
                  ->ToString().c_str());
  std::printf("\nalerts raised (batching kept recomputes to %llu):\n%s",
              static_cast<unsigned long long>(
                  db.rules().stats().tasks_created),
              db.Execute("select zone, total from alerts order by at")
                  ->ToString().c_str());
  return 0;
}
