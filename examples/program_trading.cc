// The paper's program trading application (§3) end to end, at a reduced
// scale: a synthetic market feed drives stock prices; STRIP rules with
// unique transactions maintain composite index prices (incrementally) and
// Black-Scholes option prices (by recomputation).
//
//   build/examples/program_trading [--scale=F]

#include <cstdio>
#include <cstring>
#include <string>

#include "strip/common/logging.h"
#include "strip/market/app_functions.h"
#include "strip/market/pta_runner.h"

using namespace strip;

int main(int argc, char** argv) {
  double scale = 0.01;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
  }

  TraceOptions topts = TraceOptions::Scaled(scale);
  std::printf("generating synthetic TAQ-like trace: %d stocks, %.0f s, "
              "~%d price changes...\n",
              topts.num_stocks, topts.duration_seconds, topts.target_updates);
  MarketTrace trace = MarketTrace::Generate(topts);

  PtaConfig cfg = PtaConfig::Scaled(scale * 4);
  PtaExperiment exp(trace, cfg);

  // Maintain comp_prices with the paper's best overall rule — unique on
  // composite symbol with a 1-second delay window (do_comps3, §5.1).
  Status st = exp.Setup(CompRuleSql(CompRuleVariant::kUniqueOnComp, 1.0));
  if (!st.ok()) {
    STRIP_LOG(ERROR, "setup failed: %s", st.ToString().c_str());
    return 1;
  }
  std::printf("tables: %zu stocks, %zu composite memberships, %zu options\n",
              exp.db().catalog().FindTable("stocks")->size(),
              exp.db().catalog().FindTable("comps_list")->size(),
              exp.db().catalog().FindTable("options_list")->size());

  std::printf("replaying the feed under the discrete-event executor...\n");
  auto result = exp.Run();
  if (!result.ok()) {
    STRIP_LOG(ERROR, "run failed: %s", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%llu update transactions -> %llu recompute transactions "
              "(%llu firings batched into queued tasks)\n",
              static_cast<unsigned long long>(result->num_updates),
              static_cast<unsigned long long>(result->num_recomputes),
              static_cast<unsigned long long>(result->firings_merged));
  std::printf("update CPU %.3f s, recompute CPU %.3f s over a %.0f s window "
              "(%.2f%% utilization)\n",
              result->update_cpu_seconds, result->recompute_cpu_seconds,
              result->duration_seconds, 100 * result->total_cpu_fraction);

  auto sample = exp.db().Execute(
      "select comp, price from comp_prices order by comp");
  if (sample.ok()) {
    std::printf("\nfirst composites after the session:\n");
    for (size_t i = 0; i < sample->num_rows() && i < 5; ++i) {
      std::printf("  %s  %.4f\n", sample->rows[i][0].as_string().c_str(),
                  sample->rows[i][1].as_double());
    }
  }

  st = CheckDerivedDataConsistency(exp.db(), cfg.risk_free_rate, 1e-6,
                                   /*check_comps=*/true,
                                   /*check_options=*/false);
  std::printf("\nconsistency vs from-scratch recomputation: %s\n",
              st.ok() ? "EXACT (within 1e-6)" : st.ToString().c_str());
  return st.ok() ? 0 : 1;
}
