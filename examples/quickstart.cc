// Quickstart: a table, a derived table, and one STRIP rule with a unique
// transaction that batches changes across transaction boundaries (§2).
//
//   build/examples/quickstart

#include <cstdio>

#include "strip/common/logging.h"
#include "strip/engine/database.h"

using strip::Database;
using strip::FunctionContext;
using strip::SecondsToMicros;
using strip::Status;
using strip::TempTable;

int main() {
  // A simulated-clock database: deterministic, single-server. Use
  // ExecutorMode::kThreaded for a real worker pool on the wall clock.
  Database::Options opts;
  opts.mode = strip::ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;  // pure logical time for the demo
  Database db(opts);

  auto check = [](Status st) {
    if (!st.ok()) {
      STRIP_LOG(ERROR, "%s", st.ToString().c_str());
      std::exit(1);
    }
  };

  // Base data: account balances. Derived data: one total per branch.
  check(db.ExecuteScript(R"sql(
    create table accounts (id int, branch string, balance double);
    create index on accounts (branch);
    create table branch_totals (branch string, total double);
    insert into accounts values
      (1, 'north', 100.0), (2, 'north', 250.0), (3, 'south', 75.0);
    insert into branch_totals values ('north', 350.0), ('south', 75.0);
  )sql"));

  // The rule action: a black-box C++ function (§2). It sees the changes
  // batched into its bound table `delta` and folds them into the totals.
  check(db.RegisterFunction("recompute_totals", [](FunctionContext& ctx) {
    const TempTable* delta = ctx.BoundTable("delta");
    int branch = delta->schema().FindColumn("branch");
    int oldb = delta->schema().FindColumn("old_balance");
    int newb = delta->schema().FindColumn("new_balance");
    for (size_t i = 0; i < delta->size(); ++i) {
      double change = delta->Get(i, newb).as_double() -
                      delta->Get(i, oldb).as_double();
      auto n = ctx.Exec(
          "update branch_totals set total += " + std::to_string(change) +
          " where branch = '" + delta->Get(i, branch).as_string() + "'");
      if (!n.ok()) return n.status();
    }
    return Status::OK();
  }));

  // The rule (Figure 2 syntax): batch all balance changes that arrive
  // within a 1-second window into ONE recompute transaction, partitioned
  // per branch (`unique on branch`).
  check(db.Execute(R"sql(
    create rule keep_totals on accounts
    when updated balance
    if
      select new.branch as branch, old.balance as old_balance,
             new.balance as new_balance
      from new, old
      where new.execute_order = old.execute_order
      bind as delta
    then execute recompute_totals
    unique on branch
    after 1.0 seconds
  )sql").status());

  // A burst of updates: three transactions within the delay window.
  check(db.Execute("update accounts set balance += 10.0 where id = 1").status());
  check(db.Execute("update accounts set balance += 5.0 where id = 2").status());
  check(db.Execute("update accounts set balance -= 25.0 where id = 3").status());

  std::printf("before the delay window closes:\n%s\n",
              db.Execute("select * from branch_totals order by branch")
                  ->ToString().c_str());

  // Let simulated time pass the 1-second window: the batched recompute
  // runs — one transaction for 'north' (two changes merged), one for
  // 'south'.
  db.simulated()->RunUntil(SecondsToMicros(2.0));

  std::printf("after (%llu recompute task(s), %llu firing(s) merged):\n%s",
              static_cast<unsigned long long>(db.rules().stats().tasks_created),
              static_cast<unsigned long long>(db.rules().stats().firings_merged),
              db.Execute("select * from branch_totals order by branch")
                  ->ToString().c_str());
  return 0;
}
