#include "strip/durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "strip/common/byteio.h"
#include "strip/common/crc32.h"
#include "strip/common/string_util.h"
#include "strip/feed/wire.h"

namespace strip {

namespace {

Status SyncFd(int fd, const char* what) {
  if (::fsync(fd) != 0) {
    return Status::Internal(StrFormat(
        "fsync(%s) failed: %s", what, std::strerror(errno)));
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so the rename itself is durable.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(StrFormat(
        "open('%s') for dirsync failed: %s", dir.c_str(),
        std::strerror(errno)));
  }
  Status st = SyncFd(fd, dir.c_str());
  ::close(fd);
  return st;
}

}  // namespace

SnapshotData CaptureSnapshot(Database& db, uint64_t lsn) {
  SnapshotData snap;
  snap.lsn = lsn;
  for (const std::string& name : db.catalog().ListTables()) {
    const Table* table = db.catalog().FindTable(name);
    if (table == nullptr) continue;
    TableSnapshot ts;
    ts.name = table->name();
    ts.columns = table->schema().columns();
    ts.rows.reserve(table->size());
    table->ForEachRecord([&](const RecordRef& rec) {
      ts.rows.push_back(rec->values);
    });
    snap.tables.push_back(std::move(ts));
  }
  return snap;
}

Status WriteSnapshot(const SnapshotData& snap, const std::string& path) {
  std::string body;
  PutU32(static_cast<uint32_t>(snap.tables.size()), &body);
  for (const TableSnapshot& ts : snap.tables) {
    PutLengthPrefixed(ts.name, &body);
    PutU32(static_cast<uint32_t>(ts.columns.size()), &body);
    for (const Column& col : ts.columns) {
      PutLengthPrefixed(col.name, &body);
      PutU8(static_cast<uint8_t>(col.type), &body);
    }
    PutU64(ts.rows.size(), &body);
    for (const std::vector<Value>& row : ts.rows) {
      for (const Value& v : row) AppendValue(v, &body);
    }
  }

  std::string file;
  PutU32(kSnapshotMagic, &file);
  PutU32(kSnapshotVersion, &file);
  PutU64(snap.lsn, &file);
  PutU32(static_cast<uint32_t>(body.size()), &file);
  PutU32(Crc32(body), &file);
  file += body;

  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(StrFormat(
        "open('%s') failed: %s", tmp.c_str(), std::strerror(errno)));
  }
  const char* data = file.data();
  size_t n = file.size();
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat(
          "write('%s') failed: %s", tmp.c_str(), std::strerror(err)));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  Status st = SyncFd(fd, tmp.c_str());
  ::close(fd);
  STRIP_RETURN_IF_ERROR(st);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(StrFormat(
        "rename('%s' -> '%s') failed: %s", tmp.c_str(), path.c_str(),
        std::strerror(errno)));
  }
  return SyncParentDir(path);
}

Result<SnapshotData> LoadSnapshot(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(StrFormat(
        "no snapshot at '%s': %s", path.c_str(), std::strerror(errno)));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat(
          "read('%s') failed: %s", path.c_str(), std::strerror(err)));
    }
    if (r == 0) break;
    data.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);

  ByteReader r(data);
  STRIP_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(StrFormat(
        "'%s' is not a snapshot (magic 0x%08x)", path.c_str(), magic));
  }
  STRIP_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(StrFormat(
        "snapshot '%s' has unsupported version %u", path.c_str(), version));
  }
  SnapshotData snap;
  STRIP_ASSIGN_OR_RETURN(snap.lsn, r.U64());
  STRIP_ASSIGN_OR_RETURN(uint32_t body_len, r.U32());
  STRIP_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
  if (body_len != r.remaining()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot '%s' truncated: header names %u body bytes, file has %zu "
        "(crash mid-checkpoint should be impossible — checkpoints rename "
        "into place)",
        path.c_str(), body_len, r.remaining()));
  }
  std::string_view body(data.data() + r.pos(), body_len);
  if (Crc32(body) != crc) {
    return Status::InvalidArgument(StrFormat(
        "snapshot '%s' failed its CRC check", path.c_str()));
  }

  ByteReader br(body);
  STRIP_ASSIGN_OR_RETURN(uint32_t ntables, br.U32());
  snap.tables.reserve(std::min<size_t>(ntables, br.remaining()));
  for (uint32_t t = 0; t < ntables; ++t) {
    TableSnapshot ts;
    STRIP_ASSIGN_OR_RETURN(ts.name, br.LengthPrefixed());
    STRIP_ASSIGN_OR_RETURN(uint32_t ncols, br.U32());
    if (ncols == 0 || ncols > br.remaining()) {
      return Status::InvalidArgument(StrFormat(
          "snapshot '%s': table '%s' names %u columns", path.c_str(),
          ts.name.c_str(), ncols));
    }
    for (uint32_t c = 0; c < ncols; ++c) {
      Column col;
      STRIP_ASSIGN_OR_RETURN(col.name, br.LengthPrefixed());
      STRIP_ASSIGN_OR_RETURN(uint8_t type, br.U8());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::InvalidArgument(StrFormat(
            "snapshot '%s': column '%s.%s' has bad type tag %u",
            path.c_str(), ts.name.c_str(), col.name.c_str(), type));
      }
      col.type = static_cast<ValueType>(type);
      ts.columns.push_back(std::move(col));
    }
    STRIP_ASSIGN_OR_RETURN(uint64_t nrows, br.U64());
    // Each row costs at least one tag byte per column.
    ts.rows.reserve(std::min<uint64_t>(nrows, br.remaining() / ncols));
    for (uint64_t row = 0; row < nrows; ++row) {
      std::vector<Value> values;
      values.reserve(ncols);
      for (uint32_t c = 0; c < ncols; ++c) {
        size_t off = br.pos();
        STRIP_ASSIGN_OR_RETURN(Value v, DecodeValue(body, &off));
        STRIP_RETURN_IF_ERROR(br.Skip(off - br.pos()));
        values.push_back(std::move(v));
      }
      ts.rows.push_back(std::move(values));
    }
    snap.tables.push_back(std::move(ts));
  }
  if (!br.exhausted()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot '%s' has %zu trailing body bytes", path.c_str(),
        br.remaining()));
  }
  return snap;
}

Status RestoreSnapshot(Database& db, const SnapshotData& snap) {
  for (const TableSnapshot& ts : snap.tables) {
    STRIP_ASSIGN_OR_RETURN(Table * table, db.catalog().GetTable(ts.name));
    if (table->size() != 0) {
      return Status::FailedPrecondition(StrFormat(
          "cannot restore into non-empty table '%s' (%zu rows)",
          ts.name.c_str(), table->size()));
    }
    const Schema& live = table->schema();
    if (live.num_columns() != static_cast<int>(ts.columns.size())) {
      return Status::FailedPrecondition(StrFormat(
          "snapshot table '%s' has %zu columns, live schema has %d — the "
          "schema script diverged from the snapshot",
          ts.name.c_str(), ts.columns.size(), live.num_columns()));
    }
    for (int c = 0; c < live.num_columns(); ++c) {
      const Column& want = ts.columns[static_cast<size_t>(c)];
      if (!EqualsIgnoreCase(live.column(c).name, want.name) ||
          live.column(c).type != want.type) {
        return Status::FailedPrecondition(StrFormat(
            "snapshot table '%s' column %d is %s %s, live schema has %s %s",
            ts.name.c_str(), c, want.name.c_str(),
            ValueTypeName(want.type), live.column(c).name.c_str(),
            ValueTypeName(live.column(c).type)));
      }
    }
    table->Reserve(ts.rows.size());
    for (const std::vector<Value>& row : ts.rows) {
      STRIP_ASSIGN_OR_RETURN(RowHandle handle,
                             table->Insert(MakeRecord(row)));
      (void)handle;
    }
  }
  return Status::OK();
}

}  // namespace strip
