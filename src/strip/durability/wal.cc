#include "strip/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "strip/common/byteio.h"
#include "strip/common/crc32.h"
#include "strip/common/logging.h"
#include "strip/common/string_util.h"
#include "strip/feed/wire.h"

namespace strip {

namespace {

/// Fixed part of every entry: magic + lsn + length + crc.
constexpr size_t kEntryHeaderSize = 4 + 8 + 4 + 4;

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat(
          "WAL write failed: %s", std::strerror(errno)));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path, bool* exists) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      *exists = false;
      return std::string();
    }
    return Status::Internal(StrFormat(
        "open('%s') failed: %s", path.c_str(), std::strerror(errno)));
  }
  *exists = true;
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat(
          "read('%s') failed: %s", path.c_str(), std::strerror(err)));
    }
    if (r == 0) break;
    data.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return data;
}

/// True if a complete, CRC-valid entry exists anywhere in data[from..).
/// Used to tell a torn tail from interior corruption: the writer emits one
/// entry per write() in one thread, so a crash tears only the LAST entry —
/// bad bytes with a whole valid entry after them cannot be a tear.
bool TailHidesValidEntry(std::string_view data, size_t from) {
  for (size_t pos = from; pos + kEntryHeaderSize <= data.size(); ++pos) {
    ByteReader r(data, pos);
    if (r.U32().take() != kWalEntryMagic) continue;
    r.U64().take();  // lsn
    uint32_t len = r.U32().take();
    uint32_t crc = r.U32().take();
    if (len > data.size() - pos - kEntryHeaderSize) continue;
    if (Crc32(data.substr(pos + kEntryHeaderSize, len)) == crc) return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   WalSyncPolicy policy) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(StrFormat(
        "open('%s') for WAL append failed: %s", path.c_str(),
        std::strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat(
        "lseek('%s') failed: %s", path.c_str(), std::strerror(err)));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      fd, next_lsn, policy, static_cast<uint64_t>(size)));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WalWriter::Append(const std::string& table,
                                   const FeedRecord& rec) {
  if (poisoned_) {
    return Status::Internal(
        "WAL writer is poisoned by an earlier failed append");
  }
  uint64_t lsn = next_lsn_;
  // Payload first (its length and CRC go into the header).
  std::string payload;
  PutLengthPrefixed(table, &payload);
  AppendFeedRecord(rec, &payload);

  buf_.clear();
  PutU32(kWalEntryMagic, &buf_);
  PutU64(lsn, &buf_);
  PutU32(static_cast<uint32_t>(payload.size()), &buf_);
  PutU32(Crc32(payload), &buf_);
  buf_ += payload;

  // One write() for the whole entry: O_APPEND makes it a single atomic-ish
  // extension, so a concurrent crash tears at most this one entry's tail —
  // exactly the case Replay discards.
  Status wrote = WriteAll(fd_, buf_.data(), buf_.size());
  if (!wrote.ok()) {
    // A prefix of the entry may have reached the file before the failure.
    // Left in place, a later successful append would land right after the
    // torn bytes, converting a recoverable torn tail into the interior
    // corruption Replay refuses. Cut the entry back out; if even that
    // fails, poison the writer so nothing can ever append after garbage.
    if (::ftruncate(fd_, static_cast<off_t>(size_bytes_)) != 0) {
      poisoned_ = true;
      return Status::Internal(StrFormat(
          "%s; rollback ftruncate also failed: %s — WAL writer poisoned",
          wrote.message().c_str(), std::strerror(errno)));
    }
    return wrote;
  }
  size_bytes_ += buf_.size();
  next_lsn_ = lsn + 1;
  if (policy_ == WalSyncPolicy::kEveryAppend) {
    STRIP_RETURN_IF_ERROR(Sync());
  }
  return lsn;
}

Status WalWriter::TruncateTo(uint64_t size_bytes, uint64_t next_lsn) {
  STRIP_CHECK_MSG(size_bytes <= size_bytes_ && next_lsn <= next_lsn_,
                  "WAL rollback must move backwards");
  if (::ftruncate(fd_, static_cast<off_t>(size_bytes)) != 0) {
    poisoned_ = true;
    return Status::Internal(StrFormat(
        "WAL rollback ftruncate('%llu') failed: %s — writer poisoned",
        static_cast<unsigned long long>(size_bytes), std::strerror(errno)));
  }
  // O_APPEND writes land at the new end-of-file, so the writer continues
  // cleanly from the restored prefix.
  size_bytes_ = size_bytes;
  next_lsn_ = next_lsn;
  poisoned_ = false;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(StrFormat(
        "fdatasync failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Result<WalReplayResult> WalReplay(
    const std::string& path, uint64_t from_lsn,
    const std::function<Status(const WalEntry&)>& fn) {
  WalReplayResult result;
  bool exists = false;
  STRIP_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path, &exists));
  if (!exists) return result;

  size_t pos = 0;
  uint64_t expect_lsn = 0;  // 0 = take the first entry's lsn as the base
  while (pos < data.size()) {
    // Anything that fails to parse from here on is either a torn tail
    // (tolerated: the entry was never acknowledged) or interior corruption
    // (fatal). The distinction: a torn tail is by construction the LAST
    // entry — the writer emits one entry per write() in one thread, so a
    // full valid entry cannot follow torn bytes. Truncation and CRC
    // failures end the scan here; whether they were really the tail is
    // settled below by TailHidesValidEntry.
    size_t remaining = data.size() - pos;
    if (remaining < kEntryHeaderSize) break;  // torn header
    ByteReader r(std::string_view(data), pos);
    uint32_t magic = r.U32().take();
    uint64_t lsn = r.U64().take();
    uint32_t len = r.U32().take();
    uint32_t crc = r.U32().take();
    if (magic != kWalEntryMagic) {
      return Status::Internal(StrFormat(
          "WAL '%s': bad entry magic 0x%08x at offset %zu", path.c_str(),
          magic, pos));
    }
    if (remaining - kEntryHeaderSize < len) break;  // torn payload
    std::string_view payload(data.data() + pos + kEntryHeaderSize, len);
    if (Crc32(payload) != crc) break;  // torn mid-entry overwrite
    if (expect_lsn != 0 && lsn != expect_lsn) {
      return Status::Internal(StrFormat(
          "WAL '%s': LSN %llu follows %llu (chain broken) at offset %zu",
          path.c_str(), static_cast<unsigned long long>(lsn),
          static_cast<unsigned long long>(expect_lsn - 1), pos));
    }

    WalEntry entry;
    entry.lsn = lsn;
    ByteReader pr(payload);
    STRIP_ASSIGN_OR_RETURN(entry.table, pr.LengthPrefixed());
    size_t rec_off = pr.pos();
    STRIP_ASSIGN_OR_RETURN(entry.record,
                           DecodeFeedRecord(payload, &rec_off));
    if (rec_off != payload.size()) {
      return Status::Internal(StrFormat(
          "WAL '%s': entry %llu has %zu trailing payload bytes",
          path.c_str(), static_cast<unsigned long long>(lsn),
          payload.size() - rec_off));
    }

    if (entry.lsn >= from_lsn) {
      STRIP_RETURN_IF_ERROR(fn(entry));
      ++result.entries_replayed;
    }
    expect_lsn = lsn + 1;
    pos += kEntryHeaderSize + len;
  }

  result.valid_bytes = pos;
  result.torn_bytes = data.size() - pos;
  if (expect_lsn != 0) result.next_lsn = expect_lsn;
  if (result.torn_bytes > 0 &&
      TailHidesValidEntry(std::string_view(data), pos + 1)) {
    // A whole valid entry past the bad bytes: these are acknowledged
    // records after a damaged one — interior corruption, not a crash tear.
    // Truncating here would silently lose them, so refuse to recover.
    return Status::Internal(StrFormat(
        "WAL '%s': entry at offset %zu is corrupt but valid entries follow "
        "(interior corruption, not a torn tail)",
        path.c_str(), pos));
  }
  if (result.torn_bytes > 0) {
    STRIP_LOG(WARN,
              "WAL '%s': discarding %llu torn tail bytes after %llu valid "
              "entries (crash mid-append; the torn records were never "
              "acknowledged)",
              path.c_str(),
              static_cast<unsigned long long>(result.torn_bytes),
              static_cast<unsigned long long>(result.entries_replayed));
  }
  return result;
}

}  // namespace strip
