#ifndef STRIP_DURABILITY_DURABLE_LOG_H_
#define STRIP_DURABILITY_DURABLE_LOG_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "strip/common/status.h"
#include "strip/durability/snapshot.h"
#include "strip/durability/wal.h"
#include "strip/engine/database.h"

namespace strip {

/// The durability manager behind strip_server (DESIGN.md §2.6): one data
/// directory holding the feed WAL (`feed.wal`) and the latest checkpoint
/// (`state.snap`), with the recovery procedure that rebuilds a kill -9'd
/// server:
///
///   1. re-run the schema script (tables, views, rules — code, not data;
///      the caller does this before Recover());
///   2. load the newest valid snapshot and install its rows directly,
///      rules NOT firing (derived rows are already in the snapshot);
///   3. replay WAL entries past the snapshot LSN through the ordinary
///      FeedImporter path, rules firing — which is precisely what rebuilds
///      the in-flight unique transactions that were queued inside their
///      delay windows when the process died;
///   4. truncate any torn WAL tail (records never acknowledged) and
///      reopen the log for appending.
///
/// Exactly-once at the boundary: a client's FeedAppend is acknowledged
/// with the LSN its batch is durable through, only after fdatasync. A
/// crash before the ack loses at most unacknowledged records (the client
/// retries); a crash after the ack replays the batch — and because feed
/// records are keyed upserts applied in LSN order, replay is idempotent.
class DurableLog {
 public:
  struct Options {
    std::string dir;  // must exist
    WalSyncPolicy sync = WalSyncPolicy::kManual;
  };

  /// Resolves the importer that applies replayed records for `table`
  /// (the server's per-feed-table FeedImporter registry).
  using ImporterResolver =
      std::function<Result<FeedImporter*>(const std::string& table)>;

  struct RecoveryStats {
    bool snapshot_loaded = false;
    uint64_t snapshot_lsn = 0;
    uint64_t snapshot_rows = 0;
    uint64_t entries_replayed = 0;
    /// Replayed entries that failed validation against the current schema
    /// (skipped with a WARN instead of refusing to boot — the live server
    /// validates batches before logging, so these can only come from an
    /// older build's WAL or a schema change).
    uint64_t entries_skipped = 0;
    uint64_t torn_bytes_discarded = 0;
    uint64_t next_lsn = 1;
  };

  explicit DurableLog(Options options);

  /// Runs recovery against `db` (whose schema script must already have
  /// run) and opens the WAL for appending. Must be called exactly once,
  /// before Append/Sync/Checkpoint. Replayed records are submitted through
  /// `resolver`'s importers; the caller drains the executor afterwards if
  /// it wants recovery fully applied before serving (the server does).
  Result<RecoveryStats> Recover(Database& db,
                                const ImporterResolver& resolver);

  /// Appends one feed record; returns its LSN. Durable per the sync
  /// policy; under kManual call Sync() before acknowledging.
  Result<uint64_t> Append(const std::string& table, const FeedRecord& rec);

  /// Forces appended entries to stable storage (group commit point).
  Status Sync();

  /// Rolls the log back to a position captured (via wal_bytes() /
  /// next_lsn()) before a batch: the server's group-commit abort path. A
  /// batch whose append or sync failed midway is cut back out so the log
  /// never holds entries the client was told failed.
  Status RollbackTo(uint64_t wal_bytes, uint64_t next_lsn);

  /// Writes a snapshot consistent through everything appended so far and
  /// truncates the WAL. The caller must hold the engine quiescent
  /// (drained executor, no active transactions). Returns the snapshot LSN.
  Result<uint64_t> Checkpoint(Database& db);

  /// One past the last appended entry.
  uint64_t next_lsn() const;

  /// Current WAL size (the checkpoint trigger the server polls).
  uint64_t wal_bytes() const;

  const std::string& wal_path() const { return wal_path_; }
  const std::string& snapshot_path() const { return snapshot_path_; }

 private:
  Options options_;
  std::string wal_path_;
  std::string snapshot_path_;

  mutable std::mutex mu_;
  std::unique_ptr<WalWriter> wal_;  // null until Recover
};

}  // namespace strip

#endif  // STRIP_DURABILITY_DURABLE_LOG_H_
