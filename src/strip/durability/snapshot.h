#ifndef STRIP_DURABILITY_SNAPSHOT_H_
#define STRIP_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/engine/database.h"

namespace strip {

/// Periodic full-state snapshot (DESIGN.md §2.6): the checkpoint half of
/// the durability story. A snapshot captures every catalog table's rows at
/// a quiescent moment, stamped with the WAL LSN it is consistent through;
/// recovery loads the newest valid snapshot and replays only the WAL tail
/// past its LSN. Without snapshots a long-lived server would replay its
/// entire ingest history on every restart.
///
/// The file is written to `<path>.tmp`, fsynced, and atomically renamed
/// into place, so a crash mid-checkpoint leaves the previous snapshot
/// untouched; a CRC over the whole body rejects a partially synced file.
///
/// Layout (little-endian):
///   u32 magic 'SNP1'   u32 format version
///   u64 lsn            (consistent through this WAL entry, inclusive)
///   u32 body length    u32 CRC-32 of body
///   body:
///     u32 table count, then per table:
///       name (u32 len + bytes)
///       u32 column count, per column: name (u32 len + bytes) + u8 type
///       u64 row count,   per row: one tagged wire value per column
///
/// Schema travels with the data so a snapshot from a mismatched schema
/// script (operator error) fails loudly at load instead of silently
/// zipping values into the wrong columns.

inline constexpr uint32_t kSnapshotMagic = 0x31504E53;  // 'SNP1'
inline constexpr uint32_t kSnapshotVersion = 1;

struct TableSnapshot {
  std::string name;
  std::vector<Column> columns;
  std::vector<std::vector<Value>> rows;
};

struct SnapshotData {
  uint64_t lsn = 0;
  std::vector<TableSnapshot> tables;
};

/// Captures every catalog table of `db`. The caller must hold the engine
/// quiescent (drained executor, no active transactions) — the checkpoint
/// path does — because rows are read without locks.
SnapshotData CaptureSnapshot(Database& db, uint64_t lsn);

/// Serializes and durably writes `snap` to `path` (tmp + rename + fsync).
Status WriteSnapshot(const SnapshotData& snap, const std::string& path);

/// Reads and verifies a snapshot file.
Result<SnapshotData> LoadSnapshot(const std::string& path);

/// Installs `snap`'s rows into `db`'s (already created, empty) tables,
/// bypassing transactions and rules: snapshot state already contains every
/// derived row, so re-firing maintenance rules here would double-apply
/// them. Fails if a table is missing, non-empty, or its live schema does
/// not match the snapshot's.
Status RestoreSnapshot(Database& db, const SnapshotData& snap);

}  // namespace strip

#endif  // STRIP_DURABILITY_SNAPSHOT_H_
