#ifndef STRIP_DURABILITY_WAL_H_
#define STRIP_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/feed/feed.h"

namespace strip {

/// The replayable write-ahead feed log (DESIGN.md §2.6). STRIP's tables
/// are main-memory; what makes a restarted server equal to the one that
/// crashed is that the *input stream* is durable: every ingested feed
/// record is appended (and fsynced, per policy) here before its upsert is
/// acknowledged, so recovery = load the last snapshot, then re-run the
/// tail of the feed through the same FeedImporter path. Rule firings —
/// including the in-flight unique transactions that were queued inside a
/// delay window at crash time — are not logged at all: replay re-triggers
/// them, which is both simpler and *more* faithful than logging task state
/// (the rule system is deterministic given the input stream and
/// quiescence).
///
/// Entry layout (little-endian), one per ingested record:
///
///   u32 magic 'WALE'    u64 lsn
///   u32 payload length  u32 CRC-32 of payload
///   payload = u32 table-name length + name + wire-v1 FeedRecord
///
/// LSNs increase by 1 per entry, starting at first_lsn (1 for a fresh
/// log). A kill -9 can tear the final entry mid-write; Replay treats a
/// truncated or CRC-failing *tail* as the end of the log (those records
/// were never acknowledged), but a bad entry *followed by a good one* is
/// real corruption and fails recovery.

inline constexpr uint32_t kWalEntryMagic = 0x454C4157;  // 'WALE'

/// One durable feed record with its position in the log.
struct WalEntry {
  uint64_t lsn = 0;
  std::string table;
  FeedRecord record;
};

/// When appends reach the disk platter.
enum class WalSyncPolicy {
  /// fdatasync before every Append returns — a positive ack means the
  /// record survives power loss. The latency floor is the device sync.
  kEveryAppend,
  /// Group commit: the caller syncs explicitly (the server syncs once per
  /// FeedAppend batch before acking, amortizing the fsync over the batch).
  kManual,
};

/// Appender. Not thread-safe: the server serializes appends through its
/// ingest path (one writer is the log's ordering guarantee).
class WalWriter {
 public:
  /// Opens (creating if absent) the log at `path` for appending. `next_lsn`
  /// must be one past the last valid entry already in the file — Recover /
  /// WalReplay report it.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t next_lsn,
                                                 WalSyncPolicy policy);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record bound for `table`; returns its LSN. Under
  /// kEveryAppend the entry is synced before returning.
  Result<uint64_t> Append(const std::string& table, const FeedRecord& rec);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Cuts the file back to `size_bytes` and rewinds the LSN counter — the
  /// group-commit rollback. A batch whose append or sync failed partway is
  /// removed from the log wholesale, so the file never holds entries the
  /// server refused to acknowledge. Un-poisons the writer on success (the
  /// file is back to a known-good prefix); poisons it if the truncate
  /// itself fails.
  Status TruncateTo(uint64_t size_bytes, uint64_t next_lsn);

  /// True once a failed append may have left bytes of unknown extent in
  /// the file AND the cleanup truncate also failed. Every further Append
  /// refuses: writing after garbage would turn a recoverable torn tail
  /// into the interior corruption Replay rejects.
  bool poisoned() const { return poisoned_; }

  /// LSN the next Append will get.
  uint64_t next_lsn() const { return next_lsn_; }

  /// Bytes in the log file (appended this session plus pre-existing).
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  WalWriter(int fd, uint64_t next_lsn, WalSyncPolicy policy,
            uint64_t size_bytes)
      : fd_(fd), next_lsn_(next_lsn), policy_(policy),
        size_bytes_(size_bytes) {}

  int fd_;
  uint64_t next_lsn_;
  WalSyncPolicy policy_;
  uint64_t size_bytes_;
  bool poisoned_ = false;
  std::string buf_;  // reused encode buffer
};

/// Replay outcome: entries handed to the callback plus how the log ended.
struct WalReplayResult {
  uint64_t entries_replayed = 0;
  uint64_t next_lsn = 1;        // one past the last valid entry
  uint64_t valid_bytes = 0;     // file prefix that parsed cleanly
  uint64_t torn_bytes = 0;      // discarded tail (crash mid-append)
};

/// Streams every valid entry with lsn >= `from_lsn` to `fn`, in order.
/// Entries below `from_lsn` (already covered by a snapshot) are decoded —
/// the CRC chain is still verified — but not delivered. A missing file is
/// an empty log, not an error. Stops cleanly at a torn tail; fails on
/// interior corruption or on the callback's first error.
Result<WalReplayResult> WalReplay(
    const std::string& path, uint64_t from_lsn,
    const std::function<Status(const WalEntry&)>& fn);

}  // namespace strip

#endif  // STRIP_DURABILITY_WAL_H_
