#include "strip/durability/durable_log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

DurableLog::DurableLog(Options options)
    : options_(std::move(options)),
      wal_path_(options_.dir + "/feed.wal"),
      snapshot_path_(options_.dir + "/state.snap") {}

Result<DurableLog::RecoveryStats> DurableLog::Recover(
    Database& db, const ImporterResolver& resolver) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ == nullptr, "DurableLog::Recover called twice");
  RecoveryStats stats;

  // 1. Snapshot, if one has ever been checkpointed.
  auto snap = LoadSnapshot(snapshot_path_);
  if (snap.ok()) {
    STRIP_RETURN_IF_ERROR(RestoreSnapshot(db, *snap));
    stats.snapshot_loaded = true;
    stats.snapshot_lsn = snap->lsn;
    for (const TableSnapshot& ts : snap->tables) {
      stats.snapshot_rows += ts.rows.size();
    }
  } else if (snap.status().code() != StatusCode::kNotFound) {
    return snap.status();  // a corrupt snapshot is not silently skipped
  }

  // 2. Replay the WAL tail through the ordinary feed path.
  STRIP_ASSIGN_OR_RETURN(
      WalReplayResult replay,
      WalReplay(wal_path_, stats.snapshot_lsn + 1,
                [&](const WalEntry& entry) -> Status {
                  STRIP_ASSIGN_OR_RETURN(FeedImporter * imp,
                                         resolver(entry.table));
                  // Synchronous, in LSN order — the same total order the
                  // live server applied (its dispatch lock serializes
                  // appends), so the recovered tables are byte-identical.
                  // Re-stamp arrival onto THIS process's clock: the logged
                  // `at` belongs to the dead process's epoch; the replayed
                  // batch arrives "now" and delay windows re-open from
                  // here, which is what rebuilds the in-flight unique
                  // transactions.
                  FeedRecord rec = entry.record;
                  rec.at = db.Now();
                  return imp->ApplyNow(rec);
                }));
  stats.entries_replayed = replay.entries_replayed;
  stats.torn_bytes_discarded = replay.torn_bytes;
  stats.next_lsn = replay.next_lsn;
  if (stats.snapshot_lsn + 1 > stats.next_lsn) {
    // Empty / truncated WAL after a checkpoint: the snapshot is ahead.
    stats.next_lsn = stats.snapshot_lsn + 1;
  }

  // 3. Drop the torn tail so reopened appends extend the *valid* prefix —
  // appending after garbage would turn a tolerated torn tail into fatal
  // interior corruption on the next recovery.
  if (replay.torn_bytes > 0) {
    if (::truncate(wal_path_.c_str(),
                   static_cast<off_t>(replay.valid_bytes)) != 0) {
      return Status::Internal(StrFormat(
          "truncate('%s', %llu) failed: %s", wal_path_.c_str(),
          static_cast<unsigned long long>(replay.valid_bytes),
          std::strerror(errno)));
    }
  }

  STRIP_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(wal_path_, stats.next_lsn, options_.sync));
  STRIP_LOG(INFO,
            "recovery: snapshot %s (lsn %llu, %llu rows), %llu WAL entries "
            "replayed, %llu torn bytes discarded, next lsn %llu",
            stats.snapshot_loaded ? "loaded" : "absent",
            static_cast<unsigned long long>(stats.snapshot_lsn),
            static_cast<unsigned long long>(stats.snapshot_rows),
            static_cast<unsigned long long>(stats.entries_replayed),
            static_cast<unsigned long long>(stats.torn_bytes_discarded),
            static_cast<unsigned long long>(stats.next_lsn));
  return stats;
}

Result<uint64_t> DurableLog::Append(const std::string& table,
                                    const FeedRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Append before Recover");
  return wal_->Append(table, rec);
}

Status DurableLog::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Sync before Recover");
  return wal_->Sync();
}

Result<uint64_t> DurableLog::Checkpoint(Database& db) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Checkpoint before Recover");
  uint64_t lsn = wal_->next_lsn() - 1;
  SnapshotData snap = CaptureSnapshot(db, lsn);
  STRIP_RETURN_IF_ERROR(WriteSnapshot(snap, snapshot_path_));
  // The snapshot covers every logged entry, so the WAL restarts empty.
  // Order matters: snapshot is durably in place first; a crash between
  // the rename and this truncate only means a few entries get replayed
  // on top of a snapshot that already contains them — idempotent upserts.
  wal_.reset();
  if (::truncate(wal_path_.c_str(), 0) != 0) {
    return Status::Internal(StrFormat(
        "truncate('%s') failed: %s", wal_path_.c_str(),
        std::strerror(errno)));
  }
  STRIP_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(wal_path_, lsn + 1, options_.sync));
  STRIP_LOG(INFO, "checkpoint: snapshot through lsn %llu, WAL truncated",
            static_cast<unsigned long long>(lsn));
  return lsn;
}

uint64_t DurableLog::next_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wal_ == nullptr ? 1 : wal_->next_lsn();
}

uint64_t DurableLog::wal_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wal_ == nullptr ? 0 : wal_->size_bytes();
}

}  // namespace strip
