#include "strip/durability/durable_log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

DurableLog::DurableLog(Options options)
    : options_(std::move(options)),
      wal_path_(options_.dir + "/feed.wal"),
      snapshot_path_(options_.dir + "/state.snap") {}

Result<DurableLog::RecoveryStats> DurableLog::Recover(
    Database& db, const ImporterResolver& resolver) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ == nullptr, "DurableLog::Recover called twice");
  RecoveryStats stats;

  // 1. Snapshot, if one has ever been checkpointed.
  auto snap = LoadSnapshot(snapshot_path_);
  if (snap.ok()) {
    STRIP_RETURN_IF_ERROR(RestoreSnapshot(db, *snap));
    stats.snapshot_loaded = true;
    stats.snapshot_lsn = snap->lsn;
    for (const TableSnapshot& ts : snap->tables) {
      stats.snapshot_rows += ts.rows.size();
    }
  } else if (snap.status().code() != StatusCode::kNotFound) {
    return snap.status();  // a corrupt snapshot is not silently skipped
  }

  // 2. Replay the WAL tail through the ordinary feed path.
  STRIP_ASSIGN_OR_RETURN(
      WalReplayResult replay,
      WalReplay(wal_path_, stats.snapshot_lsn + 1,
                [&](const WalEntry& entry) -> Status {
                  STRIP_ASSIGN_OR_RETURN(FeedImporter * imp,
                                         resolver(entry.table));
                  // Synchronous, in LSN order — the same total order the
                  // live server applied (its dispatch lock serializes
                  // appends), so the recovered tables are byte-identical.
                  // Re-stamp arrival onto THIS process's clock: the logged
                  // `at` belongs to the dead process's epoch; the replayed
                  // batch arrives "now" and delay windows re-open from
                  // here, which is what rebuilds the in-flight unique
                  // transactions.
                  FeedRecord rec = entry.record;
                  rec.at = db.Now();
                  Status applied = imp->ApplyNow(rec);
                  if (applied.code() == StatusCode::kInvalidArgument) {
                    // A record that cannot validate against the current
                    // schema. The live server validates every batch before
                    // its first append, so this entry came from an older
                    // build or predates a schema change. Refusing to boot
                    // would turn one bad record into a permanently dead
                    // server; skip it loudly and surface the count.
                    ++stats.entries_skipped;
                    STRIP_LOG(WARN,
                              "recovery: skipping WAL entry %llu for '%s': "
                              "%s",
                              static_cast<unsigned long long>(entry.lsn),
                              entry.table.c_str(),
                              applied.message().c_str());
                    return Status::OK();
                  }
                  return applied;
                }));
  stats.entries_replayed = replay.entries_replayed;
  stats.torn_bytes_discarded = replay.torn_bytes;
  stats.next_lsn = replay.next_lsn;
  if (stats.snapshot_lsn + 1 > stats.next_lsn) {
    // Empty / truncated WAL after a checkpoint: the snapshot is ahead.
    stats.next_lsn = stats.snapshot_lsn + 1;
  }

  // 3. Drop the torn tail so reopened appends extend the *valid* prefix —
  // appending after garbage would turn a tolerated torn tail into fatal
  // interior corruption on the next recovery.
  if (replay.torn_bytes > 0) {
    if (::truncate(wal_path_.c_str(),
                   static_cast<off_t>(replay.valid_bytes)) != 0) {
      return Status::Internal(StrFormat(
          "truncate('%s', %llu) failed: %s", wal_path_.c_str(),
          static_cast<unsigned long long>(replay.valid_bytes),
          std::strerror(errno)));
    }
  }

  STRIP_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(wal_path_, stats.next_lsn, options_.sync));
  STRIP_LOG(INFO,
            "recovery: snapshot %s (lsn %llu, %llu rows), %llu WAL entries "
            "replayed (%llu skipped), %llu torn bytes discarded, next lsn "
            "%llu",
            stats.snapshot_loaded ? "loaded" : "absent",
            static_cast<unsigned long long>(stats.snapshot_lsn),
            static_cast<unsigned long long>(stats.snapshot_rows),
            static_cast<unsigned long long>(stats.entries_replayed),
            static_cast<unsigned long long>(stats.entries_skipped),
            static_cast<unsigned long long>(stats.torn_bytes_discarded),
            static_cast<unsigned long long>(stats.next_lsn));
  return stats;
}

Result<uint64_t> DurableLog::Append(const std::string& table,
                                    const FeedRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Append before Recover");
  return wal_->Append(table, rec);
}

Status DurableLog::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Sync before Recover");
  return wal_->Sync();
}

Status DurableLog::RollbackTo(uint64_t wal_bytes, uint64_t next_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::RollbackTo before Recover");
  return wal_->TruncateTo(wal_bytes, next_lsn);
}

Result<uint64_t> DurableLog::Checkpoint(Database& db) {
  std::lock_guard<std::mutex> lk(mu_);
  STRIP_CHECK_MSG(wal_ != nullptr, "DurableLog::Checkpoint before Recover");
  uint64_t lsn = wal_->next_lsn() - 1;
  SnapshotData snap = CaptureSnapshot(db, lsn);
  STRIP_RETURN_IF_ERROR(WriteSnapshot(snap, snapshot_path_));
  // The snapshot covers every logged entry, so the WAL restarts empty.
  // Order matters twice. First, the snapshot is durably in place before
  // the truncate: a crash between the rename and the truncate only means
  // a few entries get replayed on top of a snapshot that already contains
  // them — idempotent upserts. Second, wal_ is replaced only after the
  // truncate and the reopen BOTH succeed: a failure on either path keeps
  // the old writer installed, so later Append/Sync/Checkpoint calls get
  // an error instead of a STRIP_CHECK abort on a null writer.
  if (::truncate(wal_path_.c_str(), 0) != 0) {
    return Status::Internal(StrFormat(
        "truncate('%s') failed: %s", wal_path_.c_str(),
        std::strerror(errno)));
  }
  auto reopened = WalWriter::Open(wal_path_, lsn + 1, options_.sync);
  if (!reopened.ok()) {
    // The file is already empty, so resync the kept writer's byte/LSN
    // accounting to it (a no-op ftruncate): its O_APPEND fd continues at
    // the emptied file's end, and a later group-commit rollback must not
    // work from a stale pre-truncate size.
    Status resync = wal_->TruncateTo(0, lsn + 1);
    STRIP_LOG(WARN, "checkpoint: WAL reopen failed (%s); keeping the "
              "previous writer (accounting resync: %s)",
              reopened.status().message().c_str(),
              resync.ok() ? "ok" : resync.message().c_str());
    return reopened.status();
  }
  wal_ = std::move(*reopened);
  STRIP_LOG(INFO, "checkpoint: snapshot through lsn %llu, WAL truncated",
            static_cast<unsigned long long>(lsn));
  return lsn;
}

uint64_t DurableLog::next_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wal_ == nullptr ? 1 : wal_->next_lsn();
}

uint64_t DurableLog::wal_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wal_ == nullptr ? 0 : wal_->size_bytes();
}

}  // namespace strip
