#include "strip/market/trace.h"

#include <algorithm>
#include <cmath>

#include "strip/common/logging.h"

namespace strip {

MarketTrace MarketTrace::Generate(const TraceOptions& options) {
  STRIP_CHECK(options.num_stocks > 0);
  STRIP_CHECK(options.duration_seconds > 0);
  MarketTrace trace;
  trace.options_ = options;

  Rng rng(options.seed);
  ZipfDistribution zipf(options.num_stocks, options.zipf_s);

  trace.initial_prices_.resize(static_cast<size_t>(options.num_stocks));
  std::vector<double> price(static_cast<size_t>(options.num_stocks));
  for (int s = 0; s < options.num_stocks; ++s) {
    // Snap initial prices to the tick grid.
    double p = rng.UniformReal(options.initial_price_min,
                               options.initial_price_max);
    p = std::round(p / options.tick) * options.tick;
    trace.initial_prices_[static_cast<size_t>(s)] = p;
    price[static_cast<size_t>(s)] = p;
  }

  const double window = options.duration_seconds;
  trace.quotes_.reserve(static_cast<size_t>(options.target_updates) + 64);
  trace.activity_.assign(static_cast<size_t>(options.num_stocks), 0);
  trace.activity_weights_.resize(static_cast<size_t>(options.num_stocks));
  for (int s = 0; s < options.num_stocks; ++s) {
    trace.activity_weights_[static_cast<size_t>(s)] = zipf.Pmf(s);
  }

  // Generate bursts until the target volume is reached. Each burst belongs
  // to one stock (chosen by Zipf activity), starts at a uniform time in the
  // window, and contains a geometric number of quotes a fraction of a
  // second apart — the market makers settling on a new price (§1).
  double p_burst = 1.0 / std::max(1.0, options.mean_burst_length);
  while (static_cast<int>(trace.quotes_.size()) < options.target_updates) {
    int32_t stock = static_cast<int32_t>(zipf.Sample(rng));
    double start = rng.UniformReal(0.0, window);
    int64_t burst_len = rng.Geometric(1, p_burst);
    double t = start;
    for (int64_t q = 0; q < burst_len && t < window; ++q) {
      // Move the price by one to three ticks, keeping it positive.
      double delta = options.tick *
                     static_cast<double>(rng.UniformInt(1, 3)) *
                     (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      double& p = price[static_cast<size_t>(stock)];
      if (p + delta < options.tick) delta = -delta;
      p += delta;
      trace.quotes_.push_back(Quote{stock, SecondsToMicros(t), p});
      ++trace.activity_[static_cast<size_t>(stock)];
      t += rng.Exponential(options.mean_intra_burst_gap);
    }
  }

  std::sort(trace.quotes_.begin(), trace.quotes_.end(),
            [](const Quote& a, const Quote& b) { return a.time < b.time; });

  // Spread quotes that landed in the same second evenly across it, as the
  // paper does with TAQ's second-resolution timestamps (§4.1). Our
  // generator already has sub-second times, so we only re-space quotes
  // with identical timestamps to keep the stream strictly ordered.
  for (size_t i = 1; i < trace.quotes_.size(); ++i) {
    if (trace.quotes_[i].time <= trace.quotes_[i - 1].time) {
      trace.quotes_[i].time = trace.quotes_[i - 1].time + 1;
    }
  }
  return trace;
}

}  // namespace strip
