#ifndef STRIP_MARKET_TRACE_H_
#define STRIP_MARKET_TRACE_H_

#include <cstdint>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/rng.h"

namespace strip {

/// One price quote: stock index, time, and the new price.
struct Quote {
  int32_t stock = 0;
  Timestamp time = 0;
  double price = 0;
};

/// Parameters of the synthetic TAQ-like quote stream.
///
/// SUBSTITUTION (DESIGN.md §4): the paper replays the NYSE TAQ consolidated
/// quote file from January 1994, which we do not have. The generator
/// reproduces the workload properties STRIP's batching gains depend on:
///  - heavily skewed per-stock activity (Zipf ranks; the paper's composites
///    and options are allocated proportionally to this activity),
///  - bursty quoting: a price move triggers a burst of quotes followed by
///    a comparatively long quiet period ([AKGM96a], §1),
///  - quotes spread evenly within 1-second buckets, exactly as the paper
///    post-processes TAQ's second-resolution timestamps (§4.1),
///  - prices moving in 1994-style fractional ticks (sixteenths).
struct TraceOptions {
  int num_stocks = 6600;
  /// Length of the simulated trading window.
  double duration_seconds = 1800;  // 30 minutes, as in the paper
  /// Approximate total number of price changes (>= the paper's 60k for a
  /// full 30-minute window).
  int target_updates = 60000;
  /// Zipf exponent of per-stock activity. The default is calibrated to the
  /// paper's workload statistics rather than classic web-style skew: §4.2
  /// describes a ~10x spread between heavily and lightly traded stocks
  /// (Netscape "a few thousand" vs Spyglass "a few hundred" trades/day),
  /// and §5.1 states a price change triggers ~12 composite recomputations
  /// on average — both hold near s = 0.35 (s = 1.0 would put hot stocks in
  /// essentially every composite and inflate that to several hundred).
  double zipf_s = 0.35;
  /// Mean quotes per burst (geometric, minimum 1).
  double mean_burst_length = 4.0;
  /// Mean gap between consecutive quotes inside a burst, in seconds.
  double mean_intra_burst_gap = 0.25;
  double initial_price_min = 10.0;
  double initial_price_max = 120.0;
  /// Price tick: 1994 US equities traded in sixteenths.
  double tick = 0.0625;
  uint64_t seed = 42;

  /// The paper's experimental scale (the defaults).
  static TraceOptions PaperScale() { return TraceOptions{}; }

  /// Laptop-friendly scale: same distributions, same stock universe, a
  /// shorter window with proportionally fewer updates.
  static TraceOptions Scaled(double fraction) {
    TraceOptions o;
    o.duration_seconds *= fraction;
    o.target_updates =
        static_cast<int>(static_cast<double>(o.target_updates) * fraction);
    return o;
  }
};

/// A generated quote stream plus the per-stock metadata the table
/// populator needs.
class MarketTrace {
 public:
  /// Deterministically generates a trace from `options` (same seed, same
  /// trace).
  static MarketTrace Generate(const TraceOptions& options);

  const TraceOptions& options() const { return options_; }

  /// Quotes sorted by time.
  const std::vector<Quote>& quotes() const { return quotes_; }

  /// Initial price per stock (before the first quote).
  const std::vector<double>& initial_prices() const {
    return initial_prices_;
  }

  /// Number of quotes per stock in this trace (realized counts).
  const std::vector<int64_t>& activity() const { return activity_; }

  /// Expected per-stock trading-activity share (the generator's Zipf pmf).
  /// The table populator uses this — not the realized counts — as the
  /// "trading activity" driving composite membership and option allocation
  /// (§4.2): the paper measures activity over a full day of trading, so
  /// every stock has a meaningful count, whereas a scaled-down trace
  /// leaves most stocks with zero realized quotes.
  const std::vector<double>& activity_weights() const {
    return activity_weights_;
  }

  Timestamp duration_micros() const {
    return SecondsToMicros(options_.duration_seconds);
  }

 private:
  TraceOptions options_;
  std::vector<Quote> quotes_;
  std::vector<double> initial_prices_;
  std::vector<int64_t> activity_;
  std::vector<double> activity_weights_;
};

}  // namespace strip

#endif  // STRIP_MARKET_TRACE_H_
