#ifndef STRIP_MARKET_POPULATE_H_
#define STRIP_MARKET_POPULATE_H_

#include <cstdint>
#include <string>

#include "strip/common/status.h"
#include "strip/engine/database.h"
#include "strip/market/trace.h"

namespace strip {

/// Sizing of the program-trading-application database (§4.2).
struct PtaConfig {
  int num_composites = 400;
  int stocks_per_composite = 200;
  int num_options = 50000;
  /// Continuously compounded risk-free rate used by f_bs.
  double risk_free_rate = 0.05;
  uint64_t seed = 7;

  /// The paper's baseline sizing (the defaults).
  static PtaConfig PaperScale() { return PtaConfig{}; }

  /// Smaller derived-data population for quick runs; fan-in per composite
  /// is preserved (it drives the temporal-spatial locality that batching
  /// exploits, §5.2).
  static PtaConfig Scaled(double fraction);
};

/// Stock symbol for trace index `i` ("s0000", "s0001", ...).
std::string StockSymbol(int i);
/// Composite symbol ("c000", ...).
std::string CompSymbol(int i);
/// Option symbol ("o00000", ...).
std::string OptionSymbol(int i);

/// Creates and populates the six PTA tables of §3:
///   stocks(symbol, price)              base data, from the trace
///   stock_stdev(symbol, stdev)         base data, random annualized vols
///   comps_list(comp, symbol, weight)   membership ~ trading activity
///   comp_prices(comp, price)           materialized view (weighted sums)
///   options_list(option_symbol, stock_symbol, strike, expiration)
///   option_prices(option_symbol, price) materialized view (Black-Scholes)
///
/// Also registers the scalar function f_bs (the paper's f_BS) and builds
/// hash indexes on the join / update columns. Deterministic in cfg.seed.
Status PopulatePtaTables(Database& db, const MarketTrace& trace,
                         const PtaConfig& cfg);

}  // namespace strip

#endif  // STRIP_MARKET_POPULATE_H_
