#include "strip/market/black_scholes.h"

#include <algorithm>
#include <cmath>

namespace strip {

double NormCdf(double x) {
  return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

double BlackScholesCall(double s, double k, double r, double sigma,
                        double t) {
  // Degenerate limits: at (or past) expiry, or with zero volatility, the
  // call is worth its discounted intrinsic value.
  if (t <= 0.0) return std::max(s - k, 0.0);
  if (sigma <= 0.0) return std::max(s - k * std::exp(-r * t), 0.0);
  double sq = sigma * std::sqrt(t);
  double d1 = (std::log(s / k) + (r + 0.5 * sigma * sigma) * t) / sq;
  double d2 = d1 - sq;
  return s * NormCdf(d1) - k * std::exp(-r * t) * NormCdf(d2);
}

}  // namespace strip
