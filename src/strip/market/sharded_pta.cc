#include "strip/market/sharded_pta.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "strip/cluster/cluster.h"
#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/feed/feed.h"
#include "strip/viewmaint/rule_gen.h"

namespace strip {

namespace {

uint64_t SplitMix(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string SymName(int i) { return StrFormat("S%04d", i); }

/// A dyadic price: a multiple of 1/16 in [8, 72). Products with the
/// (quarter-valued) weights are multiples of 1/64, so every partial sum —
/// on a shard, on the merge engine, or in the single-engine reference — is
/// exactly representable and equality across run modes is exact.
double DyadicPrice(uint64_t r) {
  return 8.0 + static_cast<double>(r % 1024) * 0.0625;
}

/// One record stream, shared verbatim by the cluster run and the
/// single-engine reference. Three phases: seed inserts (one per symbol),
/// the measured quote burst, and one deterministic closing quote per
/// symbol. The closing phase pins every symbol's final price, so the
/// final view state does not depend on how racing burst updates to the
/// same symbol interleaved — which run mode, worker count, and shard
/// count are all free to change.
struct Workload {
  std::vector<std::pair<int, double>> seed;
  std::vector<std::pair<int, double>> burst;
  std::vector<std::pair<int, double>> close;
};

Workload MakeWorkload(const ShardedPtaOptions& o) {
  Workload w;
  uint64_t rng = o.seed ^ 0x51a0000000000000ull;
  w.seed.reserve(static_cast<size_t>(o.num_syms));
  for (int i = 0; i < o.num_syms; ++i) {
    w.seed.emplace_back(i, DyadicPrice(SplitMix(rng)));
  }
  w.burst.reserve(static_cast<size_t>(o.num_updates));
  for (int i = 0; i < o.num_updates; ++i) {
    int sym = static_cast<int>(SplitMix(rng) %
                               static_cast<uint64_t>(o.num_syms));
    w.burst.emplace_back(sym, DyadicPrice(SplitMix(rng)));
  }
  w.close.reserve(static_cast<size_t>(o.num_syms));
  for (int i = 0; i < o.num_syms; ++i) {
    w.close.emplace_back(i, DyadicPrice(SplitMix(rng)));
  }
  return w;
}

/// DDL + replicated dimension + the partial view, identical on every
/// shard and on the single-engine reference.
Status SetUpSchema(Database& db, const ShardedPtaOptions& o) {
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
    create table stocks (symbol string, price double);
    create index on stocks (symbol);
    create table comps_list (symbol string, comp string, weight double);
    create index on comps_list (symbol);
  )"));
  // Every symbol belongs to two composites with a quarter-valued weight;
  // the dimension is replicated so no maintenance ever crosses a shard.
  std::string dims;
  for (int i = 0; i < o.num_syms; ++i) {
    int c1 = i % o.num_comps;
    int c2 = o.num_comps > 1
                 ? (c1 + 1 + (i / o.num_comps) % (o.num_comps - 1)) %
                       o.num_comps
                 : c1;
    double weight = 0.25 * static_cast<double>(1 + i % 3);
    dims += StrFormat("insert into comps_list values ('%s', 'C%02d', %f);\n",
                      SymName(i).c_str(), c1, weight);
    if (c2 != c1) {
      dims += StrFormat(
          "insert into comps_list values ('%s', 'C%02d', %f);\n",
          SymName(i).c_str(), c2, weight);
    }
  }
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(dims));
  return db.ExecuteScript(R"(
    create materialized view comp_prices as
      select comp, sum(stocks.price * weight) as total
      from stocks, comps_list
      where stocks.symbol = comps_list.symbol
      group by comp;
    create index on comp_prices (comp);
  )");
}

/// Shared measurement state of the order-submission actions across all
/// shard engines: firing count plus the wall-clock window from the first
/// order's start to the last one's finish (process-wide clock, so the
/// window is comparable across engines).
struct OrderStats {
  std::mutex mu;
  uint64_t firings = 0;
  bool have_window = false;
  std::chrono::steady_clock::time_point first_start;
  std::chrono::steady_clock::time_point last_finish;
};

/// The per-quote order rule: fires once per update transaction on the
/// shard's stocks partition (non-unique, no delay — orders are not
/// batchable), and its action blocks for the exchange round-trip. The
/// stall occupies one pool worker; with W workers per shard and K shards,
/// up to K*W stalls overlap, which is the scale-up this bench measures.
Status InstallOrderRule(Database& db, int64_t latency_micros,
                        std::shared_ptr<OrderStats> stats) {
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "submit_orders",
      [latency_micros, stats](FunctionContext&) -> Status {
        auto start = std::chrono::steady_clock::now();
        if (latency_micros > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(latency_micros));
        }
        auto finish = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(stats->mu);
        ++stats->firings;
        if (!stats->have_window || start < stats->first_start) {
          stats->first_start = start;
          stats->have_window = true;
        }
        if (stats->last_finish < finish) stats->last_finish = finish;
        return Status::OK();
      }));
  return db.Execute(R"(
    create rule pta_orders on stocks
    when updated price
    if
      select comp, weight, new.price as price
      from comps_list, new
      where comps_list.symbol = new.symbol
      bind as matches
    then execute submit_orders)")
      .status();
}

Result<std::vector<MergedGroup>> ReadView(Database& db) {
  STRIP_ASSIGN_OR_RETURN(
      ResultSet rows,
      db.Execute("select comp, total, _count from comp_prices "
                 "order by comp"));
  std::vector<MergedGroup> out;
  out.reserve(rows.num_rows());
  for (const std::vector<Value>& row : rows.rows) {
    MergedGroup g;
    g.comp = row[0].as_string();
    g.total = row[1].as_double();
    g.count = row[2].as_int();
    out.push_back(std::move(g));
  }
  return out;
}

FeedRecord QuoteRecord(const std::pair<int, double>& q) {
  FeedRecord rec;
  rec.at = 0;
  rec.values = {Value::Str(SymName(q.first)), Value::Double(q.second)};
  return rec;
}

}  // namespace

Result<ShardedPtaResult> RunShardedPta(const ShardedPtaOptions& options) {
  ClusterOptions copts;
  copts.num_shards = options.num_shards;
  copts.shard.mode = ExecutorMode::kThreaded;
  copts.shard.num_workers = options.num_workers;
  copts.shard.enable_metrics = options.enable_metrics;
  copts.merge = copts.shard;
  Cluster cluster(copts);

  for (int i = 0; i < cluster.num_shards(); ++i) {
    STRIP_RETURN_IF_ERROR(SetUpSchema(cluster.shard(i), options));
  }
  auto stats = std::make_shared<OrderStats>();
  for (int i = 0; i < cluster.num_shards(); ++i) {
    STRIP_RETURN_IF_ERROR(InstallOrderRule(
        cluster.shard(i), options.order_latency_micros, stats));
  }
  Cluster::TwoTierOptions tt;
  tt.tier1.delay_seconds = options.tier1_delay_seconds;
  tt.export_delay_seconds = options.export_delay_seconds;
  tt.merge_delay_seconds = options.merge_delay_seconds;
  STRIP_RETURN_IF_ERROR(cluster.ConnectTwoTier("comp_prices", "stocks", tt));
  STRIP_ASSIGN_OR_RETURN(FeedRouter * router, cluster.OpenFeed("stocks"));

  Workload w = MakeWorkload(options);

  // Phase 1: seed every symbol (inserts fire no order rule), drain.
  for (const auto& q : w.seed) {
    STRIP_RETURN_IF_ERROR(router->Route(QuoteRecord(q)));
  }
  STRIP_RETURN_IF_ERROR(cluster.DrainAll());

  // Phase 2: the measured burst.
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& q : w.burst) {
    STRIP_RETURN_IF_ERROR(router->Route(QuoteRecord(q)));
  }
  STRIP_RETURN_IF_ERROR(cluster.DrainAll());
  auto t1 = std::chrono::steady_clock::now();

  ShardedPtaResult result;
  result.num_shards = options.num_shards;
  result.num_workers = options.num_workers;
  result.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  {
    std::lock_guard<std::mutex> lock(stats->mu);
    result.num_firings = stats->firings;
    if (stats->have_window && stats->first_start < stats->last_finish) {
      result.firing_window_seconds =
          std::chrono::duration<double>(stats->last_finish -
                                        stats->first_start)
              .count();
      result.firings_per_second =
          static_cast<double>(result.num_firings) /
          result.firing_window_seconds;
    }
  }

  // Phase 3: closing quotes pin the final state; excluded from the
  // measurement but still routed through the same pipeline.
  for (const auto& q : w.close) {
    STRIP_RETURN_IF_ERROR(router->Route(QuoteRecord(q)));
  }
  STRIP_RETURN_IF_ERROR(cluster.DrainAll());

  result.num_records = router->total_routed();
  result.deltas_shipped = cluster.deltas_shipped();
  const FeedImporter* staging = cluster.staging_importer("comp_prices");
  result.staging_failed =
      staging != nullptr ? staging->records_failed() : 0;
  for (int i = 0; i < cluster.num_shards(); ++i) {
    result.wait_die_aborts += cluster.shard(i).locks().stats().
        wait_die_aborts.load(std::memory_order_relaxed);
  }
  result.wait_die_aborts += cluster.merge().locks().stats().
      wait_die_aborts.load(std::memory_order_relaxed);
  STRIP_ASSIGN_OR_RETURN(result.merged_view, ReadView(cluster.merge()));
  result.metrics_json =
      options.enable_metrics ? cluster.MetricsJson() : "{}";
  return result;
}

Result<std::vector<MergedGroup>> RunSingleEnginePta(
    const ShardedPtaOptions& options) {
  Database::Options db_opts;
  db_opts.mode = ExecutorMode::kSimulated;
  db_opts.advance_clock_by_cost = true;
  Database db(db_opts);
  STRIP_RETURN_IF_ERROR(SetUpSchema(db, options));
  RuleGenOptions gen;
  gen.delay_seconds = options.tier1_delay_seconds;
  gen.handle_insert_delete = true;
  gen.track_group_count = true;
  STRIP_RETURN_IF_ERROR(
      GenerateMaintenanceRule(db, "comp_prices", "stocks", gen).status());

  STRIP_ASSIGN_OR_RETURN(std::unique_ptr<FeedImporter> importer,
                         FeedImporter::Create(&db, "stocks"));
  Workload w = MakeWorkload(options);
  for (const auto* phase : {&w.seed, &w.burst, &w.close}) {
    for (const auto& q : *phase) {
      STRIP_RETURN_IF_ERROR(importer->Submit(QuoteRecord(q)));
    }
    db.simulated()->RunUntilQuiescent();
  }
  return ReadView(db);
}

Status CompareMergedViews(const std::vector<MergedGroup>& merged,
                          const std::vector<MergedGroup>& reference) {
  if (merged.size() != reference.size()) {
    return Status::Internal(StrFormat(
        "merged view has %zu groups, single-engine reference has %zu",
        merged.size(), reference.size()));
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    const MergedGroup& m = merged[i];
    const MergedGroup& r = reference[i];
    if (m.comp != r.comp || m.total != r.total || m.count != r.count) {
      return Status::Internal(StrFormat(
          "merged['%s'] = (%.6f, %lld) but single-engine reference has "
          "['%s'] = (%.6f, %lld)",
          m.comp.c_str(), m.total, static_cast<long long>(m.count),
          r.comp.c_str(), r.total, static_cast<long long>(r.count)));
    }
  }
  return Status::OK();
}

}  // namespace strip
