#include "strip/market/populate.h"

#include <algorithm>
#include <cmath>

#include "strip/common/rng.h"
#include "strip/common/string_util.h"
#include "strip/market/black_scholes.h"

namespace strip {

PtaConfig PtaConfig::Scaled(double fraction) {
  PtaConfig c;
  c.num_composites =
      std::max(8, static_cast<int>(c.num_composites * fraction));
  c.num_options = std::max(100, static_cast<int>(c.num_options * fraction));
  return c;
}

std::string StockSymbol(int i) { return StrFormat("s%04d", i); }
std::string CompSymbol(int i) { return StrFormat("c%03d", i); }
std::string OptionSymbol(int i) { return StrFormat("o%05d", i); }

namespace {

/// Weighted sample of `k` distinct indexes with probability proportional
/// to `weights` (exponential-keys method).
std::vector<int> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k, Rng& rng) {
  std::vector<std::pair<double, int>> keys;
  keys.reserve(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = std::max(weights[i], 1e-9);
    double u = rng.UniformReal(1e-12, 1.0);
    keys.emplace_back(-std::log(u) / w, static_cast<int>(i));
  }
  size_t kk = std::min(static_cast<size_t>(k), keys.size());
  std::partial_sort(keys.begin(), keys.begin() + static_cast<long>(kk),
                    keys.end());
  std::vector<int> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(keys[i].second);
  return out;
}

Status BulkInsert(Table* table, std::vector<Value> values) {
  return table->Insert(MakeRecord(std::move(values))).status();
}

}  // namespace

Status PopulatePtaTables(Database& db, const MarketTrace& trace,
                         const PtaConfig& cfg) {
  const int num_stocks = trace.options().num_stocks;
  Rng rng(cfg.seed);

  // The Black-Scholes pricer as a scalar SQL function, as in the
  // option_prices view definition (§3).
  double r = cfg.risk_free_rate;
  STRIP_RETURN_IF_ERROR(db.RegisterScalarFunction(
      "f_bs", [r](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 4) {
          return Status::InvalidArgument(
              "f_bs(price, strike, expiration, stdev) takes 4 arguments");
        }
        for (const Value& v : args) {
          if (!v.is_numeric()) {
            return Status::InvalidArgument("f_bs: numeric arguments only");
          }
        }
        return Value::Double(BlackScholesCall(
            args[0].as_double(), args[1].as_double(), r, args[3].as_double(),
            args[2].as_double()));
      }));

  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"sql(
    create table stocks (symbol string, price double);
    create index on stocks (symbol);
    create table stock_stdev (symbol string, stdev double);
    create index on stock_stdev (symbol);
    create table comps_list (comp string, symbol string, weight double);
    create index on comps_list (symbol);
    create table options_list (option_symbol string, stock_symbol string,
                               strike double, expiration double);
    create index on options_list (stock_symbol);
  )sql"));

  // Bulk population bypasses transactions (setup phase; no rules exist
  // yet), exactly like the paper's pre-experiment load.
  Table* stocks = db.catalog().FindTable("stocks");
  Table* stdevs = db.catalog().FindTable("stock_stdev");
  Table* comps_list = db.catalog().FindTable("comps_list");
  Table* options_list = db.catalog().FindTable("options_list");

  // Row counts are known up front: reserve so the load never rehashes
  // the row directories (nothing else runs during setup, so no lock).
  stocks->Reserve(static_cast<size_t>(num_stocks));
  stdevs->Reserve(static_cast<size_t>(num_stocks));
  comps_list->Reserve(static_cast<size_t>(cfg.num_composites) *
                      static_cast<size_t>(cfg.stocks_per_composite));
  options_list->Reserve(static_cast<size_t>(cfg.num_options));

  for (int i = 0; i < num_stocks; ++i) {
    STRIP_RETURN_IF_ERROR(BulkInsert(
        stocks, {Value::Str(StockSymbol(i)),
                 Value::Double(trace.initial_prices()[static_cast<size_t>(i)])}));
    // Annualized volatilities in a reasonable equity range.
    STRIP_RETURN_IF_ERROR(BulkInsert(
        stdevs, {Value::Str(StockSymbol(i)),
                 Value::Double(rng.UniformReal(0.10, 0.60))}));
  }

  // Composite membership: stocks chosen randomly but in direct proportion
  // to trading activity (§4.2). Uses the trace's expected activity shares
  // (scale-invariant) rather than realized counts — see
  // MarketTrace::activity_weights().
  std::vector<double> weights = trace.activity_weights();
  for (int c = 0; c < cfg.num_composites; ++c) {
    std::vector<int> members = WeightedSampleWithoutReplacement(
        weights, cfg.stocks_per_composite, rng);
    for (int s : members) {
      STRIP_RETURN_IF_ERROR(BulkInsert(
          comps_list,
          {Value::Str(CompSymbol(c)), Value::Str(StockSymbol(s)),
           Value::Double(rng.UniformReal(0.05, 0.50))}));
    }
  }

  // Options: the expected number of listed options for a stock is the
  // total number of options times the stock's fraction of the trace
  // (§4.2). Strike and expiration are drawn from reasonable ranges; the
  // pricing model is not data dependent (§4.2).
  double total_activity = 0;
  for (double w : weights) total_activity += w;
  std::vector<double> cum(weights.size());
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += total_activity > 0 ? weights[i] / total_activity
                              : 1.0 / static_cast<double>(weights.size());
    cum[i] = acc;
  }
  if (!cum.empty()) cum.back() = 1.0;
  for (int o = 0; o < cfg.num_options; ++o) {
    double u = rng.UniformReal(0.0, 1.0);
    auto it = std::lower_bound(cum.begin(), cum.end(), u);
    int s = static_cast<int>(it - cum.begin());
    double spot = trace.initial_prices()[static_cast<size_t>(s)];
    STRIP_RETURN_IF_ERROR(BulkInsert(
        options_list,
        {Value::Str(OptionSymbol(o)), Value::Str(StockSymbol(s)),
         Value::Double(spot * rng.UniformReal(0.8, 1.2)),
         Value::Double(rng.UniformReal(0.05, 0.75))}));
  }

  // The two materialized views of §3, then indexes on their key columns so
  // the maintenance functions can update single tuples cheaply.
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"sql(
    create materialized view comp_prices as
      select comp, sum(stocks.price * weight) as price
      from stocks, comps_list
      where stocks.symbol = comps_list.symbol
      group by comp;
    create materialized view option_prices as
      select option_symbol,
             f_bs(stocks.price, strike, expiration, stdev) as price
      from stocks, stock_stdev, options_list
      where stocks.symbol = options_list.stock_symbol
        and stocks.symbol = stock_stdev.symbol;
    create index on comp_prices (comp);
    create index on option_prices (option_symbol);
  )sql"));
  return Status::OK();
}

}  // namespace strip
