#include "strip/market/app_functions.h"

#include <memory>
#include <unordered_map>

#include "strip/common/string_util.h"
#include "strip/market/black_scholes.h"
#include "strip/rules/net_effect.h"

namespace strip {

namespace {

/// Column positions of the `matches` bound table, resolved once per call.
struct MatchesColumns {
  int comp = -1, weight = -1, old_price = -1, new_price = -1;
  int option_symbol = -1, stock_symbol = -1, strike = -1, expiration = -1;

  static Result<MatchesColumns> Resolve(const TempTable& t, bool options) {
    MatchesColumns c;
    const Schema& s = t.schema();
    auto need = [&](const char* name) -> Result<int> {
      int i = s.FindColumn(name);
      if (i < 0) {
        return Status::NotFound(StrFormat(
            "bound table '%s' lacks column '%s'", t.name().c_str(), name));
      }
      return i;
    };
    if (options) {
      STRIP_ASSIGN_OR_RETURN(c.option_symbol, need("option_symbol"));
      STRIP_ASSIGN_OR_RETURN(c.stock_symbol, need("stock_symbol"));
      STRIP_ASSIGN_OR_RETURN(c.strike, need("strike"));
      STRIP_ASSIGN_OR_RETURN(c.expiration, need("expiration"));
      STRIP_ASSIGN_OR_RETURN(c.new_price, need("new_price"));
    } else {
      STRIP_ASSIGN_OR_RETURN(c.comp, need("comp"));
      STRIP_ASSIGN_OR_RETURN(c.weight, need("weight"));
      STRIP_ASSIGN_OR_RETURN(c.old_price, need("old_price"));
      STRIP_ASSIGN_OR_RETURN(c.new_price, need("new_price"));
    }
    return c;
  }
};

/// Statements the maintenance functions execute, prepared once at
/// registration (after the PTA tables and indexes exist, so the frozen
/// plans probe them). The functions issue the same SQL as the paper's
/// pseudo-code (Figures 3, 6, 7, 8); every rule-action firing runs them
/// through the prepared-statement fast path.
struct PreparedStmts {
  PreparedStatementPtr update_comp;    // update comp_prices set price += ?1 where comp = ?2
  PreparedStatementPtr update_option;  // update option_prices set price = ?1 where option_symbol = ?2
  PreparedStatementPtr select_stdev;   // select stdev from stock_stdev where symbol = ?1

  static Result<std::shared_ptr<const PreparedStmts>> Make(Database& db) {
    auto p = std::make_shared<PreparedStmts>();
    STRIP_ASSIGN_OR_RETURN(
        p->update_comp,
        db.Prepare("update comp_prices set price += ? where comp = ?"));
    STRIP_ASSIGN_OR_RETURN(
        p->update_option,
        db.Prepare(
            "update option_prices set price = ? where option_symbol = ?"));
    STRIP_ASSIGN_OR_RETURN(
        p->select_stdev,
        db.Prepare("select stdev from stock_stdev where symbol = ?"));
    return std::shared_ptr<const PreparedStmts>(std::move(p));
  }
};

/// Applies one composite delta:
///   update comp_prices set price += change where comp = r.comp
Status ApplyCompChange(FunctionContext& ctx, const PreparedStmts& stmts,
                       const Value& comp, double change) {
  STRIP_ASSIGN_OR_RETURN(
      int n, ctx.Exec(*stmts.update_comp, {Value::Double(change), comp}));
  if (n != 1) {
    return Status::Internal(StrFormat(
        "comp_prices update for '%s' touched %d rows",
        comp.ToString().c_str(), n));
  }
  return Status::OK();
}

// --- compute_comps1 (Figure 3): one update per matches row ----------------
Status ComputeComps1(FunctionContext& ctx, const PreparedStmts& stmts) {
  const TempTable* matches = ctx.BoundTable("matches");
  if (matches == nullptr) {
    return Status::NotFound("bound table 'matches' missing");
  }
  STRIP_ASSIGN_OR_RETURN(MatchesColumns c,
                         MatchesColumns::Resolve(*matches, false));
  for (size_t i = 0; i < matches->size(); ++i) {
    double change = matches->Get(i, c.weight).as_double() *
                    (matches->Get(i, c.new_price).as_double() -
                     matches->Get(i, c.old_price).as_double());
    STRIP_RETURN_IF_ERROR(
        ApplyCompChange(ctx, stmts, matches->Get(i, c.comp), change));
  }
  return Status::OK();
}

/// Shared body of compute_comps2 / compute_comps3:
///   select comp, sum((new - old) * weight) as diff from matches
///   group by comp
/// folded in application code as in STRIP v2.0 (§4.3) through the
/// rules/net_effect helper, keyed on the comp Value directly (no string
/// round trip per row). Figure 7's variant runs with matches partitioned
/// to a single composite, so its fold degenerates to one accumulation —
/// and stays correct if a coarser partitioning ever hands it several.
Status ApplyFoldedCompDeltas(FunctionContext& ctx,
                             const PreparedStmts& stmts) {
  const TempTable* matches = ctx.BoundTable("matches");
  if (matches == nullptr) {
    return Status::NotFound("bound table 'matches' missing");
  }
  if (matches->size() == 0) return Status::OK();
  STRIP_ASSIGN_OR_RETURN(MatchesColumns c,
                         MatchesColumns::Resolve(*matches, false));
  std::vector<GroupDelta> rows;
  rows.reserve(matches->size());
  for (size_t i = 0; i < matches->size(); ++i) {
    GroupDelta d;
    d.key = matches->Get(i, c.comp);
    d.sums.push_back(matches->Get(i, c.weight).as_double() *
                     (matches->Get(i, c.new_price).as_double() -
                      matches->Get(i, c.old_price).as_double()));
    rows.push_back(std::move(d));
  }
  for (const GroupDelta& d : FoldGroupDeltas(std::move(rows))) {
    STRIP_RETURN_IF_ERROR(ApplyCompChange(ctx, stmts, d.key, d.sums[0]));
  }
  return Status::OK();
}

// --- compute_comps2 (Figure 6): aggregate per composite, then apply --------
Status ComputeComps2(FunctionContext& ctx, const PreparedStmts& stmts) {
  return ApplyFoldedCompDeltas(ctx, stmts);
}

// --- compute_comps3 (Figure 7): matches holds one composite ---------------
Status ComputeComps3(FunctionContext& ctx, const PreparedStmts& stmts) {
  return ApplyFoldedCompDeltas(ctx, stmts);
}

// --- compute_options1/2 (Figure 8 / §5.2) -----------------------------------
Status ComputeOptions(FunctionContext& ctx, const PreparedStmts& stmts,
                      double risk_free_rate, bool batched) {
  const TempTable* matches = ctx.BoundTable("matches");
  if (matches == nullptr) {
    return Status::NotFound("bound table 'matches' missing");
  }
  STRIP_ASSIGN_OR_RETURN(MatchesColumns c,
                         MatchesColumns::Resolve(*matches, true));

  // stdev = select stdev from stock_stdev where symbol = r.stock_symbol
  // (Figure 8), cached per call since a batch repeats stocks.
  std::unordered_map<Value, double, ValueHash> stdev_cache;
  auto stdev_of = [&](const Value& symbol) -> Result<double> {
    auto it = stdev_cache.find(symbol);
    if (it != stdev_cache.end()) return it->second;
    STRIP_ASSIGN_OR_RETURN(TempTable rows,
                           ctx.Query(*stmts.select_stdev, {symbol}));
    if (rows.size() != 1) {
      return Status::Internal(StrFormat("no stdev for stock '%s'",
                                        symbol.ToString().c_str()));
    }
    double sd = rows.Get(0, 0).as_double();
    stdev_cache.emplace(symbol, sd);
    return sd;
  };

  auto reprice = [&](size_t i, double spot) -> Status {
    STRIP_ASSIGN_OR_RETURN(double sd,
                           stdev_of(matches->Get(i, c.stock_symbol)));
    double price = BlackScholesCall(
        spot, matches->Get(i, c.strike).as_double(), risk_free_rate, sd,
        matches->Get(i, c.expiration).as_double());
    STRIP_ASSIGN_OR_RETURN(
        int n, ctx.Exec(*stmts.update_option,
                        {Value::Double(price),
                         matches->Get(i, c.option_symbol)}));
    if (n != 1) {
      return Status::Internal(StrFormat(
          "option_prices update for '%s' touched %d rows",
          matches->Get(i, c.option_symbol).ToString().c_str(), n));
    }
    return Status::OK();
  };

  if (!batched) {
    // Figure 8: every row — hence every change — is processed.
    for (size_t i = 0; i < matches->size(); ++i) {
      STRIP_RETURN_IF_ERROR(
          reprice(i, matches->Get(i, c.new_price).as_double()));
    }
    return Status::OK();
  }

  // Batched (§5.2): if a stock changed several times inside the window,
  // only its last value matters; each option is repriced once. Bound rows
  // arrive in commit order, so later rows supersede earlier ones.
  std::unordered_map<Value, size_t, ValueHash> last_row_of_option;
  std::unordered_map<Value, double, ValueHash> last_price_of_stock;
  for (size_t i = 0; i < matches->size(); ++i) {
    last_row_of_option[matches->Get(i, c.option_symbol)] = i;
    last_price_of_stock[matches->Get(i, c.stock_symbol)] =
        matches->Get(i, c.new_price).as_double();
  }
  for (const auto& [opt, i] : last_row_of_option) {
    (void)opt;
    double spot = last_price_of_stock[matches->Get(i, c.stock_symbol)];
    STRIP_RETURN_IF_ERROR(reprice(i, spot));
  }
  return Status::OK();
}

}  // namespace

Status RegisterPtaFunctions(Database& db, double risk_free_rate) {
  STRIP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStmts> stmts,
                         PreparedStmts::Make(db));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "compute_comps1",
      [stmts](FunctionContext& ctx) { return ComputeComps1(ctx, *stmts); }));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "compute_comps2",
      [stmts](FunctionContext& ctx) { return ComputeComps2(ctx, *stmts); }));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "compute_comps3",
      [stmts](FunctionContext& ctx) { return ComputeComps3(ctx, *stmts); }));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "compute_options1", [stmts, risk_free_rate](FunctionContext& ctx) {
        return ComputeOptions(ctx, *stmts, risk_free_rate,
                              /*batched=*/false);
      }));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "compute_options2", [stmts, risk_free_rate](FunctionContext& ctx) {
        return ComputeOptions(ctx, *stmts, risk_free_rate,
                              /*batched=*/true);
      }));
  return Status::OK();
}

const char* CompRuleVariantName(CompRuleVariant v) {
  switch (v) {
    case CompRuleVariant::kNonUnique: return "non-unique";
    case CompRuleVariant::kUnique: return "unique";
    case CompRuleVariant::kUniqueOnSymbol: return "unique on symbol";
    case CompRuleVariant::kUniqueOnComp: return "unique on comp";
  }
  return "?";
}

const char* OptionRuleVariantName(OptionRuleVariant v) {
  switch (v) {
    case OptionRuleVariant::kNonUnique: return "non-unique";
    case OptionRuleVariant::kUnique: return "unique";
    case OptionRuleVariant::kUniqueOnSymbol: return "unique on symbol";
    case OptionRuleVariant::kUniqueOnOptionSymbol:
      return "unique on option_symbol";
  }
  return "?";
}

std::string CompRuleFunction(CompRuleVariant v) {
  switch (v) {
    case CompRuleVariant::kNonUnique: return "compute_comps1";
    case CompRuleVariant::kUnique: return "compute_comps2";
    case CompRuleVariant::kUniqueOnSymbol: return "compute_comps2";
    case CompRuleVariant::kUniqueOnComp: return "compute_comps3";
  }
  return "";
}

std::string OptionRuleFunction(OptionRuleVariant v) {
  return v == OptionRuleVariant::kNonUnique ? "compute_options1"
                                            : "compute_options2";
}

std::string CompRuleSql(CompRuleVariant v, double delay_seconds) {
  std::string sql = StrFormat(R"sql(
    create rule do_comps on stocks
    when updated price
    if
      select comp, comps_list.symbol as symbol, weight,
             old.price as old_price, new.price as new_price
      from comps_list, new, old
      where comps_list.symbol = new.symbol
        and new.execute_order = old.execute_order
      bind as matches
    then execute %s)sql",
                              CompRuleFunction(v).c_str());
  switch (v) {
    case CompRuleVariant::kNonUnique:
      return sql;
    case CompRuleVariant::kUnique:
      sql += " unique";
      break;
    case CompRuleVariant::kUniqueOnSymbol:
      sql += " unique on symbol";
      break;
    case CompRuleVariant::kUniqueOnComp:
      sql += " unique on comp";
      break;
  }
  sql += StrFormat(" after %f seconds", delay_seconds);
  return sql;
}

std::string OptionRuleSql(OptionRuleVariant v, double delay_seconds) {
  std::string sql = StrFormat(R"sql(
    create rule do_options on stocks
    when updated price
    if
      select option_symbol, stock_symbol, strike, expiration,
             new.price as new_price
      from options_list, new
      where options_list.stock_symbol = new.symbol
      bind as matches
    then execute %s)sql",
                              OptionRuleFunction(v).c_str());
  switch (v) {
    case OptionRuleVariant::kNonUnique:
      return sql;
    case OptionRuleVariant::kUnique:
      sql += " unique";
      break;
    case OptionRuleVariant::kUniqueOnSymbol:
      sql += " unique on stock_symbol";
      break;
    case OptionRuleVariant::kUniqueOnOptionSymbol:
      sql += " unique on option_symbol";
      break;
  }
  sql += StrFormat(" after %f seconds", delay_seconds);
  return sql;
}

}  // namespace strip
