#ifndef STRIP_MARKET_PTA_RUNNER_H_
#define STRIP_MARKET_PTA_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/engine/prepared_statement.h"
#include "strip/market/populate.h"
#include "strip/market/trace.h"
#include "strip/sql/ast.h"

namespace strip {

/// Measurements of one program-trading experiment (the quantities reported
/// by Figures 9-14).
struct PtaRunResult {
  double duration_seconds = 0;        // simulated trading window
  uint64_t num_updates = 0;           // update transactions applied
  uint64_t num_recomputes = 0;        // N_r: recompute transactions run
  uint64_t tasks_created = 0;         // action tasks enqueued
  uint64_t firings_merged = 0;        // firings batched into queued tasks
  double update_cpu_seconds = 0;      // update txns incl. rule processing
  double recompute_cpu_seconds = 0;   // recompute transactions
  double total_cpu_seconds = 0;
  /// CPU fraction attributable to maintaining the view: recompute CPU plus
  /// the rule-processing share of update transactions, over the window.
  double recompute_cpu_fraction = 0;
  double total_cpu_fraction = 0;
  double avg_recompute_micros = 0;    // recompute transaction length
  /// Response time of update transactions (release -> finish on the
  /// virtual clock): the schedulability metric behind the paper's
  /// preference for short recompute transactions (§5.1). Long-running
  /// coarse batches occupy the CPU and delay updates released meanwhile.
  double avg_update_response_micros = 0;
  double max_update_response_micros = 0;
  uint64_t failed_tasks = 0;
  /// Temporal staleness of the derived data (§7): at each recompute commit,
  /// action commit time minus feed-arrival time of the oldest batched
  /// change it consumed. Larger delay windows batch more firings per task
  /// (cheaper) at the cost of staler derived data — the paper's tradeoff.
  double p50_staleness_seconds = 0;
  double p95_staleness_seconds = 0;
  double max_staleness_seconds = 0;
  /// Average firings consumed per executed recompute task.
  double avg_batching_factor = 0;
  /// Metrics-registry snapshot (JSON object) taken at quiescence.
  std::string metrics_json;
};

/// One experiment: a fresh simulated-mode database populated with the PTA
/// tables from `trace`, the maintenance functions registered, `rule_sql`
/// installed (empty = no rule, the update-only baseline), and the trace
/// replayed as one update transaction per quote released at its trace time
/// — exactly like the paper's real-time replay (§4.1) but on the virtual
/// clock. Run() drives the discrete-event simulation to quiescence.
///
/// Recompute transactions are the tasks whose function name starts with
/// "compute_"; everything else is an update transaction.
class PtaExperiment {
 public:
  PtaExperiment(const MarketTrace& trace, const PtaConfig& cfg);
  ~PtaExperiment();

  /// Populates tables, registers functions, installs the rule.
  Status Setup(const std::string& rule_sql);

  /// Replays the trace to quiescence and reports the measurements.
  Result<PtaRunResult> Run();

  /// The experiment's database (e.g. for post-run consistency checks).
  Database& db();

 private:
  Status ApplyQuote(const Quote& q);

  const MarketTrace& trace_;
  PtaConfig cfg_;
  std::unique_ptr<Database> db_;
  /// update stocks set price = ?1 where symbol = ?2 — prepared once in
  /// Setup (after the index on symbol exists, so the frozen plan probes
  /// it), executed once per quote.
  PreparedStatementPtr update_stmt_;
  std::vector<Value> symbols_;
};

/// Convenience wrapper: Setup + Run.
Result<PtaRunResult> RunPtaExperiment(const MarketTrace& trace,
                                      const PtaConfig& cfg,
                                      const std::string& rule_sql);

/// Parameters of a threaded (wall-clock) PTA throughput run.
struct ThreadedPtaOptions {
  int num_workers = 2;
  /// Fraction of the paper-scale database / trace (PtaConfig::Scaled,
  /// TraceOptions::Scaled).
  double scale = 0.05;
  /// Delay window of the comp_prices rule. Must exceed the update burst's
  /// duration so every composite's firings merge into one recompute task,
  /// making the firing count (≈ number of triggered composites) identical
  /// across worker counts — a fair throughput comparison.
  double delay_seconds = 1.0;
  /// Blocking stall per recompute firing, modeling the PTA's order
  /// submission to the exchange (the paper's program trades are I/O-bound
  /// on the outside world, not the CPU). Injected after each firing on its
  /// worker thread, so extra workers overlap the stalls.
  int64_t order_latency_micros = 20000;
  uint64_t seed = 42;
  /// Database::Options::enable_metrics passthrough; the overhead A/B in
  /// EXPERIMENTS.md toggles this on otherwise-identical runs.
  bool enable_metrics = true;
};

/// Measurements of one threaded PTA run.
struct ThreadedPtaResult {
  int num_workers = 0;
  uint64_t num_updates = 0;        // update transactions applied
  uint64_t update_restarts = 0;    // wait-die retries of update txns
  uint64_t num_firings = 0;        // recompute tasks run
  uint64_t failed_tasks = 0;
  double wall_seconds = 0;         // first submit -> drained
  /// First firing released -> last firing (incl. its stall) done.
  double firing_window_seconds = 0;
  double firings_per_second = 0;   // num_firings / firing window
  /// Queue + execution latency of a firing (release -> finish), excluding
  /// the injected order-submission stall.
  double p50_firing_latency_micros = 0;
  double p99_firing_latency_micros = 0;
  // Lock-manager counters (LockManagerStats snapshot).
  uint64_t lock_acquires = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_die_aborts = 0;
  uint64_t lock_wait_micros = 0;
  // Rule / executor counters.
  uint64_t tasks_created = 0;
  uint64_t firings_merged = 0;
  uint64_t tasks_run = 0;
  uint64_t tasks_failed = 0;
  /// Metrics-registry snapshot (JSON object) taken after the drain; "{}"
  /// when metrics were disabled for the run.
  std::string metrics_json;
};

/// Runs the PTA workload through the ThreadedExecutor on the wall clock:
/// a fresh threaded-mode database with `num_workers` workers, the unique-
/// on-comp rule (Figure 7) installed with `delay_seconds`, and the trace's
/// quotes burst-submitted as update tasks. Drains, then reports firing
/// throughput and latency percentiles. This is the scale-up experiment:
/// same workload, varying worker-pool size (§6.2's process pool).
Result<ThreadedPtaResult> RunThreadedPta(const ThreadedPtaOptions& options);

/// Verifies derived-data consistency after a run: recomputes comp_prices
/// (and option_prices when `check_options`) from base data and compares to
/// the maintained tables within `tolerance`. Used by the integration /
/// property tests — this is the paper's implicit correctness requirement.
Status CheckDerivedDataConsistency(Database& db, double risk_free_rate,
                                   double tolerance, bool check_comps,
                                   bool check_options);

}  // namespace strip

#endif  // STRIP_MARKET_PTA_RUNNER_H_
