#ifndef STRIP_MARKET_PTA_RUNNER_H_
#define STRIP_MARKET_PTA_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/engine/prepared_statement.h"
#include "strip/market/populate.h"
#include "strip/market/trace.h"
#include "strip/sql/ast.h"

namespace strip {

/// Measurements of one program-trading experiment (the quantities reported
/// by Figures 9-14).
struct PtaRunResult {
  double duration_seconds = 0;        // simulated trading window
  uint64_t num_updates = 0;           // update transactions applied
  uint64_t num_recomputes = 0;        // N_r: recompute transactions run
  uint64_t tasks_created = 0;         // action tasks enqueued
  uint64_t firings_merged = 0;        // firings batched into queued tasks
  double update_cpu_seconds = 0;      // update txns incl. rule processing
  double recompute_cpu_seconds = 0;   // recompute transactions
  double total_cpu_seconds = 0;
  /// CPU fraction attributable to maintaining the view: recompute CPU plus
  /// the rule-processing share of update transactions, over the window.
  double recompute_cpu_fraction = 0;
  double total_cpu_fraction = 0;
  double avg_recompute_micros = 0;    // recompute transaction length
  /// Response time of update transactions (release -> finish on the
  /// virtual clock): the schedulability metric behind the paper's
  /// preference for short recompute transactions (§5.1). Long-running
  /// coarse batches occupy the CPU and delay updates released meanwhile.
  double avg_update_response_micros = 0;
  double max_update_response_micros = 0;
  uint64_t failed_tasks = 0;
};

/// One experiment: a fresh simulated-mode database populated with the PTA
/// tables from `trace`, the maintenance functions registered, `rule_sql`
/// installed (empty = no rule, the update-only baseline), and the trace
/// replayed as one update transaction per quote released at its trace time
/// — exactly like the paper's real-time replay (§4.1) but on the virtual
/// clock. Run() drives the discrete-event simulation to quiescence.
///
/// Recompute transactions are the tasks whose function name starts with
/// "compute_"; everything else is an update transaction.
class PtaExperiment {
 public:
  PtaExperiment(const MarketTrace& trace, const PtaConfig& cfg);
  ~PtaExperiment();

  /// Populates tables, registers functions, installs the rule.
  Status Setup(const std::string& rule_sql);

  /// Replays the trace to quiescence and reports the measurements.
  Result<PtaRunResult> Run();

  /// The experiment's database (e.g. for post-run consistency checks).
  Database& db();

 private:
  Status ApplyQuote(const Quote& q);

  const MarketTrace& trace_;
  PtaConfig cfg_;
  std::unique_ptr<Database> db_;
  /// update stocks set price = ?1 where symbol = ?2 — prepared once in
  /// Setup (after the index on symbol exists, so the frozen plan probes
  /// it), executed once per quote.
  PreparedStatementPtr update_stmt_;
  std::vector<Value> symbols_;
};

/// Convenience wrapper: Setup + Run.
Result<PtaRunResult> RunPtaExperiment(const MarketTrace& trace,
                                      const PtaConfig& cfg,
                                      const std::string& rule_sql);

/// Verifies derived-data consistency after a run: recomputes comp_prices
/// (and option_prices when `check_options`) from base data and compares to
/// the maintained tables within `tolerance`. Used by the integration /
/// property tests — this is the paper's implicit correctness requirement.
Status CheckDerivedDataConsistency(Database& db, double risk_free_rate,
                                   double tolerance, bool check_comps,
                                   bool check_options);

}  // namespace strip

#endif  // STRIP_MARKET_PTA_RUNNER_H_
