#ifndef STRIP_MARKET_APP_FUNCTIONS_H_
#define STRIP_MARKET_APP_FUNCTIONS_H_

#include <string>

#include "strip/common/status.h"
#include "strip/engine/database.h"

namespace strip {

/// Registers the program-trading application's rule-action functions:
///   compute_comps1   (Figure 3)  one read-modify-write per matches row
///   compute_comps2   (Figure 6)  group changes per composite, then apply
///   compute_comps3   (Figure 7)  matches holds a single composite
///   compute_options1 (Figure 8)  reprice every option of every change
///   compute_options2 (§5.2)      batched: last price per stock wins
/// `risk_free_rate` parameterizes the Black-Scholes pricer.
///
/// As in STRIP v2.0, aggregation inside the functions is done in
/// application code rather than SQL (§4.3).
Status RegisterPtaFunctions(Database& db, double risk_free_rate = 0.05);

/// Batching variants for maintaining comp_prices (§5.1).
enum class CompRuleVariant {
  kNonUnique,        // Figure 3 (do_comps1)
  kUnique,           // Figure 6 (do_comps2): coarse, whole table
  kUniqueOnSymbol,   // unique on symbol
  kUniqueOnComp,     // Figure 7 (do_comps3): unique on comp
};

/// Batching variants for maintaining option_prices (§5.2).
enum class OptionRuleVariant {
  kNonUnique,            // Figure 8 (do_options1)
  kUnique,               // coarse
  kUniqueOnSymbol,       // unique on stock_symbol
  kUniqueOnOptionSymbol, // unique on option_symbol (unmanageable, §5.2)
};

const char* CompRuleVariantName(CompRuleVariant v);
const char* OptionRuleVariantName(OptionRuleVariant v);

/// The user function each variant executes.
std::string CompRuleFunction(CompRuleVariant v);
std::string OptionRuleFunction(OptionRuleVariant v);

/// CREATE RULE statement for the variant with the given delay window
/// (delay ignored for the non-unique variants, which run immediately).
std::string CompRuleSql(CompRuleVariant v, double delay_seconds);
std::string OptionRuleSql(OptionRuleVariant v, double delay_seconds);

}  // namespace strip

#endif  // STRIP_MARKET_APP_FUNCTIONS_H_
