#ifndef STRIP_MARKET_SHARDED_PTA_H_
#define STRIP_MARKET_SHARDED_PTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "strip/common/status.h"

namespace strip {

/// The partitioned PTA workload on the in-process cluster (DESIGN.md
/// §2.5): stock quotes route by symbol hash across N threaded shard
/// engines, each maintaining its partial composite-price view with tier-1
/// rules, while the merge engine folds shipped deltas into the top-level
/// `comp_prices`. Every quote also fires a per-shard order-submission rule
/// whose action blocks on a simulated exchange round-trip — the stall that
/// serializes a single engine and overlaps across shards, so firing
/// throughput scales with the shard count even on one CPU (the same
/// mechanism RunThreadedPta uses for worker scale-up, applied a level up).
struct ShardedPtaOptions {
  int num_shards = 4;
  /// Worker-pool size of EVERY engine (each shard and the merge).
  int num_workers = 4;
  int num_syms = 64;
  int num_comps = 12;
  /// Quote updates in the measured burst phase.
  int num_updates = 1600;
  /// Blocking order-submission latency per firing (0 disables the stall).
  int64_t order_latency_micros = 20000;
  /// Batching windows of the two-tier maintenance pipeline.
  double tier1_delay_seconds = 0.05;
  double export_delay_seconds = 0.05;
  double merge_delay_seconds = 0.05;
  uint64_t seed = 42;
  bool enable_metrics = true;
};

/// One group of the merged view, for the exact-equality guard. All prices
/// and weights in the workload are small dyadic rationals, so SUM columns
/// are exact in doubles and `==` across run modes is legitimate.
struct MergedGroup {
  std::string comp;
  double total = 0;
  int64_t count = 0;
};

struct ShardedPtaResult {
  int num_shards = 0;
  int num_workers = 0;
  uint64_t num_records = 0;  // routed records, all three phases
  uint64_t num_firings = 0;  // order submissions in the burst phase
  double wall_seconds = 0;   // burst submit -> cluster quiescent
  double firing_window_seconds = 0;  // first order start -> last finish
  double firings_per_second = 0;
  uint64_t deltas_shipped = 0;
  uint64_t staging_failed = 0;  // shipments dropped (must be 0)
  uint64_t wait_die_aborts = 0;  // summed across engines
  /// Final merged `comp_prices` (comp, total, _count), sorted by comp.
  std::vector<MergedGroup> merged_view;
  std::string metrics_json;  // Cluster::MetricsJson() (or "{}")
};

/// Runs the three-phase workload (seed inserts, measured quote burst,
/// deterministic closing quotes) on a threaded cluster and returns the
/// throughput numbers plus the final merged view.
Result<ShardedPtaResult> RunShardedPta(const ShardedPtaOptions& options);

/// Replays the identical record stream through ONE simulated engine with a
/// plain tier-1 maintained view — the reference for the equality guard.
Result<std::vector<MergedGroup>> RunSingleEnginePta(
    const ShardedPtaOptions& options);

/// Exact comparison of a cluster-merged view against the single-engine
/// reference; Internal error naming the first mismatch.
Status CompareMergedViews(const std::vector<MergedGroup>& merged,
                          const std::vector<MergedGroup>& reference);

}  // namespace strip

#endif  // STRIP_MARKET_SHARDED_PTA_H_
