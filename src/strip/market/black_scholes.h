#ifndef STRIP_MARKET_BLACK_SCHOLES_H_
#define STRIP_MARKET_BLACK_SCHOLES_H_

namespace strip {

/// Cumulative distribution function of the standard normal, computed from
/// the C math library error function (§4.3).
double NormCdf(double x);

/// Black-Scholes price of a European call option (Appendix B, [BS73]):
///
///   p = s * Phi(d1) - k * e^{-r t} * Phi(d2)
///   d1 = (ln(s / k) + (r + sigma^2 / 2) t) / (sigma sqrt(t))
///   d2 = d1 - sigma sqrt(t)
///
/// \param s      current price of the underlying stock
/// \param k      exercise (strike) price
/// \param r      continuously compounded risk-free rate of return
/// \param sigma  standard deviation of the annualized rate of return
/// \param t      time to expiration as a fraction of a year
double BlackScholesCall(double s, double k, double r, double sigma, double t);

}  // namespace strip

#endif  // STRIP_MARKET_BLACK_SCHOLES_H_
