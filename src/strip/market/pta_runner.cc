#include "strip/market/pta_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>

#include "strip/common/string_util.h"
#include "strip/market/app_functions.h"
#include "strip/sql/parser.h"

namespace strip {

namespace {

bool IsRecomputeFunction(const std::string& name) {
  return name.rfind("compute_", 0) == 0;
}

double Percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place.size() - 1) + 0.5);
  return sorted_in_place[std::min(idx, sorted_in_place.size() - 1)];
}

}  // namespace

PtaExperiment::PtaExperiment(const MarketTrace& trace, const PtaConfig& cfg)
    : trace_(trace), cfg_(cfg) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = true;
  db_ = std::make_unique<Database>(opts);
}

PtaExperiment::~PtaExperiment() = default;

Database& PtaExperiment::db() { return *db_; }

Status PtaExperiment::Setup(const std::string& rule_sql) {
    STRIP_RETURN_IF_ERROR(PopulatePtaTables(*db_, trace_, cfg_));
    STRIP_RETURN_IF_ERROR(RegisterPtaFunctions(*db_, cfg_.risk_free_rate));
    if (!rule_sql.empty()) {
      STRIP_RETURN_IF_ERROR(db_->Execute(rule_sql).status());
    }
    STRIP_ASSIGN_OR_RETURN(
        update_stmt_,
        db_->Prepare("update stocks set price = ? where symbol = ?"));
    symbols_.reserve(static_cast<size_t>(trace_.options().num_stocks));
    for (int i = 0; i < trace_.options().num_stocks; ++i) {
      symbols_.push_back(Value::Str(StockSymbol(i)));
    }
  return Status::OK();
}

Result<PtaRunResult> PtaExperiment::Run() {
  PtaRunResult result;
    result.duration_seconds = trace_.options().duration_seconds;
    result.num_updates = trace_.quotes().size();

    double update_response_total = 0;
    std::vector<double> staleness_seconds;
    uint64_t firings_consumed = 0;
    db_->executor().set_task_observer([&](const TaskControlBlock& t) {
      double cpu = static_cast<double>(t.cpu_nanos) / 1000.0;
      if (IsRecomputeFunction(t.function_name)) {
        ++result.num_recomputes;
        result.recompute_cpu_seconds += cpu / 1e6;
        if (t.commit_staleness_micros >= 0) {
          staleness_seconds.push_back(
              static_cast<double>(t.commit_staleness_micros) / 1e6);
        }
        firings_consumed += t.batched_firings;
      } else {
        result.update_cpu_seconds += cpu / 1e6;
        double response =
            static_cast<double>(t.finish_time - t.release_time);
        update_response_total += response;
        if (response > result.max_update_response_micros) {
          result.max_update_response_micros = response;
        }
      }
      if (!t.result.ok()) ++result.failed_tasks;
    });

    // Replay: one update transaction per price change, released at the
    // quote's trace time (the paper pre-loads the trace, §4.1).
    for (const Quote& q : trace_.quotes()) {
      TaskPtr task = db_->NewTask();
      task->release_time = q.time;
      task->work = [this, q](TaskControlBlock&) { return ApplyQuote(q); };
      db_->Submit(task);
    }
    db_->simulated()->RunUntilQuiescent();

    result.total_cpu_seconds =
        result.update_cpu_seconds + result.recompute_cpu_seconds;
    result.recompute_cpu_fraction =
        result.recompute_cpu_seconds / result.duration_seconds;
    result.total_cpu_fraction =
        result.total_cpu_seconds / result.duration_seconds;
    result.avg_recompute_micros =
        result.num_recomputes > 0
            ? result.recompute_cpu_seconds * 1e6 /
                  static_cast<double>(result.num_recomputes)
            : 0.0;
    result.avg_update_response_micros =
        result.num_updates > 0
            ? update_response_total / static_cast<double>(result.num_updates)
            : 0.0;
    result.tasks_created = db_->rules().stats().tasks_created;
    result.firings_merged = db_->rules().stats().firings_merged;
    if (!staleness_seconds.empty()) {
      result.p50_staleness_seconds = Percentile(staleness_seconds, 0.50);
      result.p95_staleness_seconds = Percentile(staleness_seconds, 0.95);
      result.max_staleness_seconds = staleness_seconds.back();  // sorted
    }
    if (result.num_recomputes > 0) {
      result.avg_batching_factor =
          static_cast<double>(firings_consumed) /
          static_cast<double>(result.num_recomputes);
    }
    result.metrics_json = db_->metrics().SnapshotJson();
  db_->executor().set_task_observer(nullptr);
  return result;
}

Status PtaExperiment::ApplyQuote(const Quote& q) {
  // `update stocks set price = ?1 where symbol = ?2` through the prepared
  // statement path — one ordinary single-tuple update transaction per
  // price change, like the paper's feed-driven update transactions (§4.3).
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  // Staleness is measured from the feed's arrival time — the quote's trace
  // timestamp — not from when the backlogged executor got to the update.
  txn->set_arrival_time(q.time);
  auto n = update_stmt_->ExecuteDml(
      txn, {Value::Double(q.price), symbols_[static_cast<size_t>(q.stock)]});
  if (!n.ok() || *n != 1) {
    Status ignored = db_->Abort(txn);
    (void)ignored;
    if (!n.ok()) return n.status();
    return Status::Internal(StrFormat("stock %d not found", q.stock));
  }
  return db_->Commit(txn);
}

Result<PtaRunResult> RunPtaExperiment(const MarketTrace& trace,
                                      const PtaConfig& cfg,
                                      const std::string& rule_sql) {
  PtaExperiment exp(trace, cfg);
  STRIP_RETURN_IF_ERROR(exp.Setup(rule_sql));
  return exp.Run();
}

Result<ThreadedPtaResult> RunThreadedPta(const ThreadedPtaOptions& options) {
  Database::Options db_opts;
  db_opts.mode = ExecutorMode::kThreaded;
  db_opts.num_workers = options.num_workers;
  db_opts.enable_metrics = options.enable_metrics;
  Database db(db_opts);

  PtaConfig cfg = PtaConfig::Scaled(options.scale);
  cfg.seed = options.seed;
  TraceOptions trace_opts = TraceOptions::Scaled(options.scale);
  trace_opts.seed = options.seed;
  MarketTrace trace = MarketTrace::Generate(trace_opts);

  STRIP_RETURN_IF_ERROR(PopulatePtaTables(db, trace, cfg));
  STRIP_RETURN_IF_ERROR(RegisterPtaFunctions(db, cfg.risk_free_rate));
  STRIP_RETURN_IF_ERROR(
      db.Execute(CompRuleSql(CompRuleVariant::kUniqueOnComp,
                             options.delay_seconds))
          .status());
  STRIP_ASSIGN_OR_RETURN(
      PreparedStatementPtr update_stmt,
      db.Prepare("update stocks set price = ? where symbol = ?"));
  std::vector<Value> symbols;
  symbols.reserve(static_cast<size_t>(trace_opts.num_stocks));
  for (int i = 0; i < trace_opts.num_stocks; ++i) {
    symbols.push_back(Value::Str(StockSymbol(i)));
  }

  ThreadedPtaResult result;
  result.num_workers = options.num_workers;
  result.num_updates = trace.quotes().size();

  // Firing measurements, folded in by the worker threads via the task
  // observer. The order-submission stall sleeps outside the mutex so
  // concurrent firings overlap their stalls — that overlap IS the scale-up.
  std::mutex obs_mu;
  std::vector<double> firing_latencies;
  Timestamp first_release = kNoDeadline;
  Timestamp last_done = 0;
  std::atomic<uint64_t> failed{0};
  db.executor().set_task_observer([&](const TaskControlBlock& t) {
    if (!t.result.ok()) failed.fetch_add(1, std::memory_order_relaxed);
    if (t.function_name.rfind("compute_", 0) != 0) return;
    if (options.order_latency_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.order_latency_micros));
    }
    Timestamp done = db.Now();
    std::lock_guard<std::mutex> lk(obs_mu);
    firing_latencies.push_back(
        static_cast<double>(t.finish_time - t.release_time));
    first_release = std::min(first_release, t.release_time);
    last_done = std::max(last_done, done);
  });

  // Burst-submit one update task per quote (ignoring trace inter-arrival
  // times: this experiment measures capacity, not a real-time replay). The
  // update transactions race on hot stocks rows; wait-die victims retry
  // with their original priority, like rule-action transactions do.
  std::atomic<uint64_t> restarts{0};
  Timestamp t0 = db.Now();
  for (const Quote& q : trace.quotes()) {
    TaskPtr task = db.NewTask();
    task->function_name = "apply_quote";
    const Value price = Value::Double(q.price);
    const Value& symbol = symbols[static_cast<size_t>(q.stock)];
    task->work = [&db, &update_stmt, &restarts, price,
                  symbol](TaskControlBlock&) -> Status {
      Status last;
      uint64_t priority = 0;
      for (int attempt = 0; attempt <= 10; ++attempt) {
        STRIP_ASSIGN_OR_RETURN(Transaction * txn, db.Begin(priority));
        if (priority == 0) priority = txn->priority();
        auto n = update_stmt->ExecuteDml(txn, {price, symbol});
        Status st = n.ok() ? db.Commit(txn) : n.status();
        if (!n.ok()) {
          Status ignored = db.Abort(txn);
          (void)ignored;
        }
        if (st.ok()) return Status::OK();
        if (st.code() != StatusCode::kAborted) return st;
        last = st;
        restarts.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(1 << std::min(attempt, 5), 32)));
      }
      return last;
    };
    db.Submit(std::move(task));
  }
  db.threaded()->Drain();
  Timestamp t1 = db.Now();
  db.executor().set_task_observer(nullptr);

  result.wall_seconds = static_cast<double>(t1 - t0) / 1e6;
  result.update_restarts = restarts.load();
  result.failed_tasks = failed.load();
  {
    std::lock_guard<std::mutex> lk(obs_mu);
    result.num_firings = firing_latencies.size();
    if (result.num_firings > 0 && last_done > first_release) {
      result.firing_window_seconds =
          static_cast<double>(last_done - first_release) / 1e6;
      result.firings_per_second =
          static_cast<double>(result.num_firings) /
          result.firing_window_seconds;
    }
    result.p50_firing_latency_micros = Percentile(firing_latencies, 0.50);
    result.p99_firing_latency_micros = Percentile(firing_latencies, 0.99);
  }
  const LockManagerStats& ls = db.locks().stats();
  result.lock_acquires = ls.acquires.load(std::memory_order_relaxed);
  result.lock_waits = ls.waits.load(std::memory_order_relaxed);
  result.lock_wait_die_aborts =
      ls.wait_die_aborts.load(std::memory_order_relaxed);
  result.lock_wait_micros = ls.wait_micros.load(std::memory_order_relaxed);
  result.tasks_created = db.rules().stats().tasks_created;
  result.firings_merged = db.rules().stats().firings_merged;
  result.tasks_run = db.executor().stats().tasks_run;
  result.tasks_failed = db.executor().stats().tasks_failed;
  result.metrics_json =
      options.enable_metrics ? db.metrics().SnapshotJson() : "{}";
  return result;
}

Status CheckDerivedDataConsistency(Database& db, double risk_free_rate,
                                   double tolerance, bool check_comps,
                                   bool check_options) {
  (void)risk_free_rate;  // f_bs is already registered with the right rate
  auto compare = [&](const std::string& view, const std::string& key_col,
                     const std::string& recompute_sql) -> Status {
    STRIP_ASSIGN_OR_RETURN(ResultSet expected,
                           db.Execute(recompute_sql));
    STRIP_ASSIGN_OR_RETURN(
        ResultSet actual,
        db.Execute(StrFormat("select %s, price from %s", key_col.c_str(),
                             view.c_str())));
    if (expected.num_rows() != actual.num_rows()) {
      return Status::Internal(StrFormat(
          "%s: %zu rows maintained vs %zu recomputed", view.c_str(),
          actual.num_rows(), expected.num_rows()));
    }
    std::map<std::string, double> want;
    for (const auto& row : expected.rows) {
      want[row[0].as_string()] = row[1].as_double();
    }
    for (const auto& row : actual.rows) {
      auto it = want.find(row[0].as_string());
      if (it == want.end()) {
        return Status::Internal(StrFormat(
            "%s: unexpected key '%s'", view.c_str(),
            row[0].as_string().c_str()));
      }
      double got = row[1].as_double();
      double exp_v = it->second;
      double err = std::fabs(got - exp_v);
      double rel = err / std::max(1.0, std::fabs(exp_v));
      if (err > tolerance && rel > tolerance) {
        return Status::Internal(StrFormat(
            "%s['%s'] = %.9f maintained vs %.9f recomputed (err %.3g)",
            view.c_str(), row[0].as_string().c_str(), got, exp_v, err));
      }
    }
    return Status::OK();
  };

  if (check_comps) {
    STRIP_RETURN_IF_ERROR(compare(
        "comp_prices", "comp",
        "select comp, sum(stocks.price * weight) as price "
        "from stocks, comps_list where stocks.symbol = comps_list.symbol "
        "group by comp"));
  }
  if (check_options) {
    STRIP_RETURN_IF_ERROR(compare(
        "option_prices", "option_symbol",
        "select option_symbol, "
        "f_bs(stocks.price, strike, expiration, stdev) as price "
        "from stocks, stock_stdev, options_list "
        "where stocks.symbol = options_list.stock_symbol "
        "and stocks.symbol = stock_stdev.symbol"));
  }
  return Status::OK();
}

}  // namespace strip
