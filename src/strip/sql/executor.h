#ifndef STRIP_SQL_EXECUTOR_H_
#define STRIP_SQL_EXECUTOR_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/sql/compiled_expr.h"
#include "strip/sql/expr_eval.h"
#include "strip/sql/plan.h"
#include "strip/storage/bound_table_set.h"
#include "strip/storage/catalog.h"
#include "strip/storage/temp_table.h"
#include "strip/txn/lock_manager.h"
#include "strip/txn/transaction.h"

namespace strip {

/// Everything a statement execution needs. The resolution order for table
/// names is: transition tables, then the task's bound tables, then the
/// catalog (§6.3).
struct ExecContext {
  Catalog* catalog = nullptr;
  LockManager* locks = nullptr;  // optional; when set, 2PL table locks
  Transaction* txn = nullptr;    // required for DML (logging); optional reads
  const BoundTableSet* transition = nullptr;  // inserted/deleted/new/old
  const BoundTableSet* bound = nullptr;       // task bound tables
  const ScalarFuncRegistry* funcs = nullptr;
  /// Pseudo columns resolved when nothing else matches a bare name — the
  /// rule system injects `commit_time` here at bind time (§2).
  const std::map<std::string, Value>* pseudo = nullptr;
  /// Bindings for '?' placeholders (prepared-statement execution).
  const std::vector<Value>* params = nullptr;
  /// When non-null, the executor appends one human-readable line per plan
  /// decision (scan method, join order and algorithm, aggregation, sort,
  /// limit) — the EXPLAIN facility. The query still executes.
  std::vector<std::string>* plan_trace = nullptr;
  /// Programs compiled at prepare time, keyed by Expr node (the prepared
  /// statement keeps the nodes alive). Consulted before the executor's own
  /// per-statement compile cache.
  const std::unordered_map<const Expr*, CompiledExpr>* precompiled = nullptr;
  /// Forces interpreted expression evaluation
  /// (Database::Options::enable_compiled_exprs = false).
  bool disable_compiled_exprs = false;
  /// When non-null, batched scans add the rows they visit here — the
  /// engine points it at the executing task's rows_scanned so per-rule
  /// cost counters can attribute scan work (src/strip/obs/rule_cost.h).
  uint64_t* rows_scanned = nullptr;
};

/// Executes parsed statements. Stateless between calls; cheap to construct.
///
/// Query processing: filter pushdown to scans, index-nested-loop joins when
/// an equi-join column of a standard table is indexed, hash joins otherwise,
/// greedy small-first join ordering, hash aggregation, sort for ORDER BY.
/// Output tables use the §6.1 pointer layout: bare standard-table columns
/// are pointer-backed, computed/aggregate/temp-derived columns materialized.
class SqlExecutor {
 public:
  explicit SqlExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Runs a SELECT, producing a temp table named `output_name`.
  Result<TempTable> ExecuteSelect(const SelectStmt& stmt,
                                  const std::string& output_name = "_result");

  /// Runs a SELECT whose FROM clause is already resolved and whose WHERE is
  /// already classified — the prepared-statement fast path. Acquires shared
  /// locks on the standard inputs (re-entrant after BindFrom).
  Result<TempTable> ExecuteSelectBound(const SelectStmt& stmt,
                                       const InputSet& inputs,
                                       const std::vector<Conjunct>& conjuncts,
                                       const std::string& output_name);

  /// DML; returns the number of affected rows.
  Result<int> ExecuteInsert(const InsertStmt& stmt);
  Result<int> ExecuteUpdate(const UpdateStmt& stmt);
  Result<int> ExecuteDelete(const DeleteStmt& stmt);

 private:
  /// An element scanned from an input: exactly one of rec / tuple set.
  struct ScanItem {
    RecordRef rec;
    const TempTuple* tuple = nullptr;
  };

  /// Resolves FROM entries through transition -> bound -> catalog.
  Result<InputSet> BindFrom(const std::vector<TableRef>& from);

  /// Acquires a table lock (no-op without a lock manager / transaction).
  Status LockTable(Table* table, LockMode mode);

  /// Scans input `i`, applying its pushed-down filters, invoking `emit`.
  /// Uses an index for `col = const` filters when available.
  Status ScanInput(const InputSet& inputs, int input,
                   const std::vector<const Expr*>& filters,
                   const std::function<Status(const ScanItem&)>& emit);

  /// Executes the join pipeline; returns surviving joined rows.
  Result<std::vector<JoinRow>> RunJoin(const InputSet& inputs,
                                       const std::vector<Conjunct>& conjuncts);

  /// Evaluates `expr` against `row`.
  Result<Value> Eval(const Expr& expr, const InputSet& inputs,
                     const JoinRow& row);

  /// Appends a plan-trace line when tracing is enabled.
  void Trace(const std::string& line);

  ExecContext ctx_;

  /// Per-statement-execution compiled-program cache, keyed by Expr node.
  /// Cleared at every top-level entry: programs carry slot positions
  /// resolved against that execution's InputSet (which lives on the
  /// caller's stack), so they must not survive into the next call.
  std::unordered_map<const Expr*, CompiledExpr> compiled_;
  std::unordered_set<const Expr*> interpret_only_;
  EvalFrame frame_;
};

}  // namespace strip

#endif  // STRIP_SQL_EXECUTOR_H_
