#include "strip/sql/parser.h"

#include "strip/common/string_util.h"
#include "strip/sql/lexer.h"

namespace strip {

namespace {

/// Keywords that terminate a table-expression inside larger constructs
/// (rule clauses, script parsing). Not reserved in general — only consulted
/// where the grammar needs a stopping point.
bool IsClauseBoundary(const std::string& word) {
  static const char* kWords[] = {
      "where", "group",  "groupby", "order",  "bind",   "then",
      "evaluate", "execute", "unique", "after", "select", "end", "if",
      "having", "limit",
  };
  for (const char* w : kWords) {
    if (EqualsIgnoreCase(word, w)) return true;
  }
  return false;
}

}  // namespace

// --------------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------------

Result<Statement> Parser::ParseStatement(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser p(std::move(tokens));
  STRIP_ASSIGN_OR_RETURN(Statement stmt, p.ParseOneStatement());
  p.Match(TokenKind::kSemicolon);
  if (!p.AtEof()) {
    return p.ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser p(std::move(tokens));
  std::vector<Statement> out;
  while (!p.AtEof()) {
    if (p.Match(TokenKind::kSemicolon)) continue;
    STRIP_ASSIGN_OR_RETURN(Statement stmt, p.ParseOneStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<ExprPtr> Parser::ParseExpression(const std::string& text) {
  STRIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  STRIP_ASSIGN_OR_RETURN(ExprPtr e, p.ParseExpr());
  if (!p.AtEof()) {
    return p.ErrorHere("trailing input after expression");
  }
  return e;
}

// --------------------------------------------------------------------------
// Token helpers
// --------------------------------------------------------------------------

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= tokens_.size()) return tokens_.back();  // EOF token
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::CheckKeyword(const char* kw, int ahead) const {
  const Token& t = Peek(ahead);
  return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(StrFormat("expected '%s'", kw));
  }
  return Status::OK();
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (!Match(kind)) {
    return ErrorHere(StrFormat("expected %s", what));
  }
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier(const char* what) {
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorHere(StrFormat("expected %s", what));
  }
  return ToLower(Advance().text);
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::InvalidArgument(StrFormat(
      "parse error at offset %d near '%s': %s", t.position,
      t.ToString().c_str(), message.c_str()));
}

// --------------------------------------------------------------------------
// Statement dispatch
// --------------------------------------------------------------------------

Result<Statement> Parser::ParseOneStatement() {
  if (CheckKeyword("select")) {
    STRIP_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
    return Statement(std::move(s));
  }
  if (CheckKeyword("create")) return ParseCreate();
  if (CheckKeyword("drop")) return ParseDrop();
  if (CheckKeyword("insert")) {
    STRIP_ASSIGN_OR_RETURN(InsertStmt s, ParseInsert());
    return Statement(std::move(s));
  }
  if (CheckKeyword("update")) {
    STRIP_ASSIGN_OR_RETURN(UpdateStmt s, ParseUpdate());
    return Statement(std::move(s));
  }
  if (CheckKeyword("delete")) {
    STRIP_ASSIGN_OR_RETURN(DeleteStmt s, ParseDelete());
    return Statement(std::move(s));
  }
  return ErrorHere("expected a statement");
}

Result<Statement> Parser::ParseCreate() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("create"));
  if (CheckKeyword("table")) {
    STRIP_ASSIGN_OR_RETURN(CreateTableStmt s, ParseCreateTable());
    return Statement(std::move(s));
  }
  if (CheckKeyword("index")) {
    STRIP_ASSIGN_OR_RETURN(CreateIndexStmt s, ParseCreateIndex());
    return Statement(std::move(s));
  }
  if (MatchKeyword("materialized")) {
    STRIP_ASSIGN_OR_RETURN(CreateViewStmt s, ParseCreateView(true));
    return Statement(std::move(s));
  }
  if (CheckKeyword("view")) {
    STRIP_ASSIGN_OR_RETURN(CreateViewStmt s, ParseCreateView(false));
    return Statement(std::move(s));
  }
  if (CheckKeyword("rule")) {
    STRIP_ASSIGN_OR_RETURN(CreateRuleStmt s, ParseCreateRule());
    return Statement(std::move(s));
  }
  return ErrorHere("expected TABLE, INDEX, VIEW, MATERIALIZED VIEW or RULE");
}

Result<Statement> Parser::ParseDrop() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("drop"));
  if (MatchKeyword("table")) {
    STRIP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    return Statement(DropTableStmt{std::move(name)});
  }
  if (MatchKeyword("rule")) {
    STRIP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("rule name"));
    return Statement(DropRuleStmt{std::move(name)});
  }
  return ErrorHere("expected TABLE or RULE");
}

Result<ValueType> Parser::ParseColumnType() {
  STRIP_ASSIGN_OR_RETURN(std::string type, ExpectIdentifier("column type"));
  // Optional length specifier, e.g. varchar(16): parsed and ignored (all
  // strings are variable length in this implementation).
  if (Match(TokenKind::kLParen)) {
    if (!Match(TokenKind::kIntLiteral)) {
      return ErrorHere("expected length in type specifier");
    }
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  }
  if (type == "int" || type == "integer" || type == "bigint") {
    return ValueType::kInt;
  }
  if (type == "double" || type == "real" || type == "float" ||
      type == "numeric" || type == "decimal") {
    return ValueType::kDouble;
  }
  if (type == "string" || type == "varchar" || type == "char" ||
      type == "text") {
    return ValueType::kString;
  }
  return ErrorHere(StrFormat("unknown column type '%s'", type.c_str()));
}

Result<CreateTableStmt> Parser::ParseCreateTable() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("table"));
  CreateTableStmt stmt;
  STRIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("table name"));
  STRIP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  do {
    STRIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    STRIP_ASSIGN_OR_RETURN(ValueType type, ParseColumnType());
    if (stmt.schema.FindColumn(col) >= 0) {
      return ErrorHere(StrFormat("duplicate column '%s'", col.c_str()));
    }
    stmt.schema.AddColumn(std::move(col), type);
  } while (Match(TokenKind::kComma));
  STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  return stmt;
}

Result<CreateIndexStmt> Parser::ParseCreateIndex() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("index"));
  CreateIndexStmt stmt;
  // Optional index name (absent when directly followed by ON).
  if (Check(TokenKind::kIdentifier) && !CheckKeyword("on")) {
    STRIP_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier("index name"));
  }
  STRIP_RETURN_IF_ERROR(ExpectKeyword("on"));
  STRIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  STRIP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  STRIP_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("column name"));
  STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  if (MatchKeyword("using")) {
    if (MatchKeyword("hash")) {
      stmt.kind = IndexKind::kHash;
    } else if (MatchKeyword("tree") || MatchKeyword("rbtree")) {
      stmt.kind = IndexKind::kRbTree;
    } else {
      return ErrorHere("expected HASH or TREE after USING");
    }
  }
  return stmt;
}

Result<CreateViewStmt> Parser::ParseCreateView(bool materialized) {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("view"));
  CreateViewStmt stmt;
  stmt.materialized = materialized;
  STRIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("view name"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("as"));
  STRIP_ASSIGN_OR_RETURN(stmt.query, ParseSelect());
  return stmt;
}

Result<InsertStmt> Parser::ParseInsert() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("insert"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("into"));
  InsertStmt stmt;
  STRIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (Match(TokenKind::kLParen)) {
    do {
      STRIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      stmt.columns.push_back(std::move(col));
    } while (Match(TokenKind::kComma));
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  }
  STRIP_RETURN_IF_ERROR(ExpectKeyword("values"));
  do {
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<ExprPtr> row;
    do {
      STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    stmt.rows.push_back(std::move(row));
  } while (Match(TokenKind::kComma));
  return stmt;
}

Result<UpdateStmt> Parser::ParseUpdate() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("update"));
  UpdateStmt stmt;
  STRIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    STRIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    ExprPtr rhs;
    if (Match(TokenKind::kEq)) {
      STRIP_ASSIGN_OR_RETURN(rhs, ParseExpr());
    } else if (Match(TokenKind::kPlusEq)) {
      // col += e  desugars to  col = col + e
      STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      rhs = MakeBinary(BinaryOp::kAdd, MakeColumnRef("", col), std::move(e));
    } else if (Match(TokenKind::kMinusEq)) {
      STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      rhs = MakeBinary(BinaryOp::kSub, MakeColumnRef("", col), std::move(e));
    } else {
      return ErrorHere("expected '=', '+=' or '-=' in SET clause");
    }
    stmt.sets.push_back(UpdateStmt::SetClause{std::move(col), std::move(rhs)});
  } while (Match(TokenKind::kComma));
  if (MatchKeyword("where")) {
    STRIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<DeleteStmt> Parser::ParseDelete() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("delete"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("from"));
  DeleteStmt stmt;
  STRIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (MatchKeyword("where")) {
    STRIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

// --------------------------------------------------------------------------
// SELECT
// --------------------------------------------------------------------------

Result<SelectStmt> Parser::ParseSelect() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("select"));
  SelectStmt stmt;
  if (MatchKeyword("distinct")) stmt.distinct = true;
  if (Match(TokenKind::kStar)) {
    stmt.star = true;
  } else {
    do {
      SelectItem item;
      STRIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        STRIP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      } else if (Check(TokenKind::kIdentifier) && !CheckKeyword("from")) {
        // Implicit alias: `expr name`.
        STRIP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      }
      stmt.items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
  }
  STRIP_RETURN_IF_ERROR(ExpectKeyword("from"));
  for (;;) {
    TableRef ref;
    STRIP_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
    if (Check(TokenKind::kIdentifier) && !IsClauseBoundary(Peek().text)) {
      if (MatchKeyword("as")) {
        STRIP_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      } else {
        STRIP_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      }
    }
    stmt.from.push_back(std::move(ref));
    // A comma continues the FROM list unless the next token begins another
    // query of a rule query-commalist (`..., select ...`).
    if (Check(TokenKind::kComma) && !CheckKeyword("select", 1)) {
      Advance();
      continue;
    }
    break;
  }
  if (MatchKeyword("where")) {
    STRIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (CheckKeyword("group")) {
    Advance();
    STRIP_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
    } while (Match(TokenKind::kComma) && !CheckKeyword("select"));
  } else if (MatchKeyword("groupby")) {  // the paper writes "groupby"
    do {
      STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
    } while (Match(TokenKind::kComma) && !CheckKeyword("select"));
  }
  if (MatchKeyword("having")) {
    STRIP_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
  }
  if (CheckKeyword("order")) {
    Advance();
    STRIP_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderByItem item;
      STRIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      stmt.order_by.push_back(std::move(item));
    } while (Match(TokenKind::kComma) && !CheckKeyword("select"));
  }
  if (MatchKeyword("limit")) {
    if (!Check(TokenKind::kIntLiteral)) {
      return ErrorHere("expected a row count after LIMIT");
    }
    stmt.limit = Advance().int_value;
    if (stmt.limit < 0) return ErrorHere("LIMIT must be non-negative");
  }
  return stmt;
}

// --------------------------------------------------------------------------
// CREATE RULE (Figure 2)
// --------------------------------------------------------------------------

Result<std::vector<RuleEvent>> Parser::ParseTransitionPredicate() {
  std::vector<RuleEvent> events;
  for (;;) {
    RuleEvent ev;
    if (MatchKeyword("inserted")) {
      ev.kind = RuleEventKind::kInserted;
    } else if (MatchKeyword("deleted")) {
      ev.kind = RuleEventKind::kDeleted;
    } else if (MatchKeyword("updated")) {
      ev.kind = RuleEventKind::kUpdated;
      // Optional column-commalist: `updated price, volume`. Columns are
      // identifiers that are not the next event keyword or a clause opener.
      while (Check(TokenKind::kIdentifier) && !CheckKeyword("inserted") &&
             !CheckKeyword("deleted") && !CheckKeyword("updated") &&
             !CheckKeyword("if") && !CheckKeyword("then") &&
             !CheckKeyword("or")) {
        STRIP_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
        ev.columns.push_back(std::move(col));
        if (!Match(TokenKind::kComma)) break;
      }
    } else {
      if (events.empty()) {
        return ErrorHere("expected INSERTED, DELETED or UPDATED");
      }
      break;
    }
    events.push_back(std::move(ev));
    // Events may be separated by whitespace (Figure 2), 'or', or commas.
    MatchKeyword("or");
    Match(TokenKind::kComma);
    if (!CheckKeyword("inserted") && !CheckKeyword("deleted") &&
        !CheckKeyword("updated")) {
      break;
    }
  }
  return events;
}

Result<std::vector<RuleQuery>> Parser::ParseQueryCommalist() {
  std::vector<RuleQuery> queries;
  for (;;) {
    RuleQuery rq;
    STRIP_ASSIGN_OR_RETURN(rq.query, ParseSelect());
    if (MatchKeyword("bind")) {
      STRIP_RETURN_IF_ERROR(ExpectKeyword("as"));
      STRIP_ASSIGN_OR_RETURN(rq.bind_as,
                             ExpectIdentifier("bound table name"));
    }
    queries.push_back(std::move(rq));
    // Another query follows after a comma or directly with SELECT.
    if (Match(TokenKind::kComma)) {
      continue;
    }
    if (CheckKeyword("select")) continue;
    break;
  }
  return queries;
}

Result<CreateRuleStmt> Parser::ParseCreateRule() {
  STRIP_RETURN_IF_ERROR(ExpectKeyword("rule"));
  CreateRuleStmt stmt;
  STRIP_ASSIGN_OR_RETURN(stmt.rule_name, ExpectIdentifier("rule name"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("on"));
  STRIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  STRIP_RETURN_IF_ERROR(ExpectKeyword("when"));
  STRIP_ASSIGN_OR_RETURN(stmt.events, ParseTransitionPredicate());
  if (MatchKeyword("if")) {
    STRIP_ASSIGN_OR_RETURN(stmt.condition, ParseQueryCommalist());
  }
  STRIP_RETURN_IF_ERROR(ExpectKeyword("then"));
  if (MatchKeyword("evaluate")) {
    STRIP_ASSIGN_OR_RETURN(stmt.evaluate, ParseQueryCommalist());
  }
  STRIP_RETURN_IF_ERROR(ExpectKeyword("execute"));
  STRIP_ASSIGN_OR_RETURN(stmt.function_name,
                         ExpectIdentifier("function name"));
  if (MatchKeyword("unique")) {
    stmt.unique = true;
    if (MatchKeyword("on")) {
      do {
        STRIP_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("unique column"));
        // Accept qualified names (`unique on x.a`); only the column part
        // matters since bound-table column names are unique (Appendix A).
        if (Match(TokenKind::kDot)) {
          STRIP_ASSIGN_OR_RETURN(col, ExpectIdentifier("unique column"));
        }
        stmt.unique_columns.push_back(std::move(col));
      } while (Match(TokenKind::kComma));
    }
  }
  if (MatchKeyword("after")) {
    if (Check(TokenKind::kDoubleLiteral)) {
      stmt.delay_seconds = Advance().double_value;
    } else if (Check(TokenKind::kIntLiteral)) {
      stmt.delay_seconds = static_cast<double>(Advance().int_value);
    } else {
      return ErrorHere("expected a delay value after AFTER");
    }
    if (!MatchKeyword("seconds") && !MatchKeyword("second") &&
        !MatchKeyword("secs") && !MatchKeyword("s")) {
      return ErrorHere("expected SECONDS after the delay value");
    }
    if (stmt.delay_seconds < 0) {
      return ErrorHere("delay must be non-negative");
    }
  }
  // Optional terminator used in some of the paper's figures.
  if (MatchKeyword("end")) {
    if (!MatchKeyword("rule") && !MatchKeyword("function")) {
      return ErrorHere("expected RULE after END");
    }
  }
  return stmt;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  STRIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (CheckKeyword("or")) {
    Advance();
    STRIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  STRIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (CheckKeyword("and")) {
    Advance();
    STRIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(e));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  STRIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  // IN-lists and BETWEEN desugar into OR / AND chains here, optionally
  // under NOT: `x not in (...)`, `x not between a and b`.
  bool negated = false;
  if (CheckKeyword("not") &&
      (CheckKeyword("in", 1) || CheckKeyword("between", 1))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("in")) {
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after IN"));
    ExprPtr chain;
    do {
      STRIP_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      ExprPtr eq = MakeBinary(BinaryOp::kEq, lhs->Clone(), std::move(item));
      chain = chain == nullptr
                  ? std::move(eq)
                  : MakeBinary(BinaryOp::kOr, std::move(chain), std::move(eq));
    } while (Match(TokenKind::kComma));
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (negated) chain = MakeUnary(UnaryOp::kNot, std::move(chain));
    return chain;
  }
  if (MatchKeyword("between")) {
    STRIP_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    STRIP_RETURN_IF_ERROR(ExpectKeyword("and"));
    STRIP_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    // Clone before the move: evaluation order of call arguments is
    // unsequenced.
    ExprPtr lhs_copy = lhs->Clone();
    ExprPtr ge = MakeBinary(BinaryOp::kGe, std::move(lhs_copy), std::move(lo));
    ExprPtr le = MakeBinary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    ExprPtr range =
        MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
    if (negated) range = MakeUnary(UnaryOp::kNot, std::move(range));
    return range;
  }
  if (negated) return ErrorHere("expected IN or BETWEEN after NOT");
  BinaryOp op;
  if (Match(TokenKind::kEq)) {
    op = BinaryOp::kEq;
  } else if (Match(TokenKind::kNe)) {
    op = BinaryOp::kNe;
  } else if (Match(TokenKind::kLt)) {
    op = BinaryOp::kLt;
  } else if (Match(TokenKind::kLe)) {
    op = BinaryOp::kLe;
  } else if (Match(TokenKind::kGt)) {
    op = BinaryOp::kGt;
  } else if (Match(TokenKind::kGe)) {
    op = BinaryOp::kGe;
  } else {
    return lhs;
  }
  STRIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditive() {
  STRIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Match(TokenKind::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenKind::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    STRIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  STRIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Match(TokenKind::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenKind::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    STRIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(e));
  }
  Match(TokenKind::kPlus);  // unary plus is a no-op
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (Match(TokenKind::kQuestion)) {
    return MakeParameter(next_param_++);
  }
  if (Match(TokenKind::kLParen)) {
    STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return e;
  }
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIntLiteral: {
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    }
    case TokenKind::kDoubleLiteral: {
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    }
    case TokenKind::kStringLiteral: {
      Advance();
      return MakeLiteral(Value::Str(t.text));
    }
    case TokenKind::kIdentifier:
      break;
    default:
      return ErrorHere("expected an expression");
  }
  if (EqualsIgnoreCase(t.text, "null")) {
    Advance();
    return MakeLiteral(Value::Null());
  }
  if (EqualsIgnoreCase(t.text, "true")) {
    Advance();
    return MakeLiteral(Value::Bool(true));
  }
  if (EqualsIgnoreCase(t.text, "false")) {
    Advance();
    return MakeLiteral(Value::Bool(false));
  }
  std::string name = ToLower(Advance().text);
  // Function call.
  if (Check(TokenKind::kLParen)) {
    Advance();
    bool star_arg = false;
    std::vector<ExprPtr> args;
    if (Match(TokenKind::kStar)) {
      star_arg = true;
    } else if (!Check(TokenKind::kRParen)) {
      do {
        STRIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        args.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
    }
    STRIP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (IsAggregateName(name)) {
      if (star_arg && name != "count") {
        return ErrorHere("only count(*) may take '*'");
      }
      return MakeAggregate(std::move(name), std::move(args), star_arg);
    }
    if (star_arg) {
      return ErrorHere("'*' argument is only valid in count(*)");
    }
    return MakeFuncCall(std::move(name), std::move(args));
  }
  // Qualified or bare column reference.
  if (Match(TokenKind::kDot)) {
    STRIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    return MakeColumnRef(std::move(name), std::move(col));
  }
  return MakeColumnRef("", std::move(name));
}

}  // namespace strip
