#include "strip/sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "strip/common/string_util.h"

namespace strip {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, size_t pos, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = static_cast<int>(pos);
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      push(TokenKind::kIdentifier, start, input.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        } else {
          i = save;  // not an exponent; e.g. "12e" = number then identifier
        }
      }
      std::string text = input.substr(start, i - start);
      Token t;
      t.position = static_cast<int>(start);
      t.text = text;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote ''
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "unterminated string literal at offset %zu", start));
      }
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(text);
      t.position = static_cast<int>(start);
      out.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('!', '=') || two('<', '>')) {
      push(TokenKind::kNe, start);
      i += 2;
      continue;
    }
    if (two('<', '=')) { push(TokenKind::kLe, start); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, start); i += 2; continue; }
    if (two('+', '=')) { push(TokenKind::kPlusEq, start); i += 2; continue; }
    if (two('-', '=')) { push(TokenKind::kMinusEq, start); i += 2; continue; }
    switch (c) {
      case '(': push(TokenKind::kLParen, start); break;
      case ')': push(TokenKind::kRParen, start); break;
      case ',': push(TokenKind::kComma, start); break;
      case '.': push(TokenKind::kDot, start); break;
      case ';': push(TokenKind::kSemicolon, start); break;
      case '*': push(TokenKind::kStar, start); break;
      case '+': push(TokenKind::kPlus, start); break;
      case '-': push(TokenKind::kMinus, start); break;
      case '/': push(TokenKind::kSlash, start); break;
      case '=': push(TokenKind::kEq, start); break;
      case '<': push(TokenKind::kLt, start); break;
      case '>': push(TokenKind::kGt, start); break;
      case '?': push(TokenKind::kQuestion, start); break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
    ++i;
  }
  push(TokenKind::kEof, n);
  return out;
}

}  // namespace strip
