#include "strip/sql/compiled_expr.h"

#include <utility>

#include "strip/common/string_util.h"

namespace strip {

/// Emits ops for one Expr tree. Exactly one of `inputs` / `schema` is set
/// (join vs. single-table mode); both null means constant mode.
struct ExprCompiler {
  CompiledExpr* out;
  const InputSet* inputs = nullptr;
  const std::string* table_name = nullptr;
  const Schema* schema = nullptr;
  const std::map<std::string, Value>* pseudo = nullptr;
  const ScalarFuncRegistry* funcs = nullptr;

  int32_t AddLiteral(Value v) {
    out->literals_.push_back(std::move(v));
    return static_cast<int32_t>(out->literals_.size() - 1);
  }

  int32_t Emit(ExprOpCode code, int32_t a = 0, int32_t b = 0) {
    ExprOp op;
    op.code = code;
    op.a = a;
    op.b = b;
    out->ops_.push_back(op);
    return static_cast<int32_t>(out->ops_.size() - 1);
  }

  Status EmitColumnRef(const Expr& expr) {
    if (inputs != nullptr) {
      auto acc = inputs->Resolve(expr.qualifier, expr.column);
      if (acc.ok()) {
        const BoundInput& in =
            inputs->inputs()[static_cast<size_t>(acc->input)];
        if (in.is_temp()) {
          Emit(ExprOpCode::kPushExtra, in.extra_base + acc->column);
        } else {
          Emit(ExprOpCode::kPushSlot, in.slot, acc->column);
        }
        return Status::OK();
      }
      return EmitPseudoOrFail(expr, acc.status());
    }
    if (schema != nullptr) {
      if (expr.qualifier.empty() || expr.qualifier == *table_name) {
        int c = schema->FindColumn(expr.column);
        if (c >= 0) {
          Emit(ExprOpCode::kPushRecord, c);
          return Status::OK();
        }
      }
      return EmitPseudoOrFail(
          expr, Status::NotFound(StrFormat("unknown column '%s'",
                                           expr.column.c_str())));
    }
    return Status::InvalidArgument(StrFormat(
        "column '%s' referenced in a constant context", expr.column.c_str()));
  }

  Status EmitPseudoOrFail(const Expr& expr, Status resolve_error) {
    if (expr.qualifier.empty() && pseudo != nullptr &&
        pseudo->count(expr.column) > 0) {
      out->names_.push_back(expr.column);
      Emit(ExprOpCode::kPushPseudo,
           static_cast<int32_t>(out->names_.size() - 1));
      return Status::OK();
    }
    return resolve_error;
  }

  Status EmitExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        Emit(ExprOpCode::kPushLiteral, AddLiteral(expr.literal));
        return Status::OK();
      case ExprKind::kParameter:
        if (expr.param_index < 0) {
          return Status::InvalidArgument("negative parameter index");
        }
        Emit(ExprOpCode::kPushParam, expr.param_index);
        return Status::OK();
      case ExprKind::kColumnRef:
        return EmitColumnRef(expr);
      case ExprKind::kBinary: {
        if (expr.bin_op == BinaryOp::kAnd || expr.bin_op == BinaryOp::kOr) {
          // lhs; JumpIf{False,True} end; rhs; ToBool; end:
          STRIP_RETURN_IF_ERROR(EmitExpr(*expr.args[0]));
          int32_t jump = Emit(expr.bin_op == BinaryOp::kAnd
                                  ? ExprOpCode::kJumpIfFalse
                                  : ExprOpCode::kJumpIfTrue);
          STRIP_RETURN_IF_ERROR(EmitExpr(*expr.args[1]));
          Emit(ExprOpCode::kToBool);
          out->ops_[static_cast<size_t>(jump)].a =
              static_cast<int32_t>(out->ops_.size());
          return Status::OK();
        }
        STRIP_RETURN_IF_ERROR(EmitExpr(*expr.args[0]));
        STRIP_RETURN_IF_ERROR(EmitExpr(*expr.args[1]));
        ExprOp op;
        op.code = ExprOpCode::kBinary;
        op.bin_op = expr.bin_op;
        out->ops_.push_back(op);
        return Status::OK();
      }
      case ExprKind::kUnary:
        STRIP_RETURN_IF_ERROR(EmitExpr(*expr.args[0]));
        Emit(expr.un_op == UnaryOp::kNot ? ExprOpCode::kNot
                                         : ExprOpCode::kNegate);
        return Status::OK();
      case ExprKind::kFuncCall: {
        if (funcs == nullptr) {
          return Status::InvalidArgument(StrFormat(
              "no function registry for call to '%s'",
              expr.func_name.c_str()));
        }
        const ScalarFunc* fn = funcs->Find(expr.func_name);
        if (fn == nullptr) {
          return Status::NotFound(StrFormat("unknown function '%s'",
                                            expr.func_name.c_str()));
        }
        for (const auto& a : expr.args) STRIP_RETURN_IF_ERROR(EmitExpr(*a));
        out->call_funcs_.push_back(fn);
        Emit(ExprOpCode::kCall,
             static_cast<int32_t>(out->call_funcs_.size() - 1),
             static_cast<int32_t>(expr.args.size()));
        return Status::OK();
      }
      case ExprKind::kAggregate:
        return Status::Unimplemented(StrFormat(
            "aggregate %s() cannot be compiled", expr.func_name.c_str()));
    }
    return Status::Internal("unexpected expression kind");
  }
};

namespace {

Result<CompiledExpr> RunCompiler(const Expr& expr, ExprCompiler compiler) {
  CompiledExpr compiled;
  compiler.out = &compiled;
  STRIP_RETURN_IF_ERROR(compiler.EmitExpr(expr));
  return compiled;
}

}  // namespace

Result<CompiledExpr> CompiledExpr::Compile(
    const Expr& expr, const InputSet& inputs,
    const std::map<std::string, Value>* pseudo,
    const ScalarFuncRegistry* funcs) {
  ExprCompiler c;
  c.inputs = &inputs;
  c.pseudo = pseudo;
  c.funcs = funcs;
  return RunCompiler(expr, c);
}

Result<CompiledExpr> CompiledExpr::CompileSingleTable(
    const Expr& expr, const std::string& table_name, const Schema& schema,
    const std::map<std::string, Value>* pseudo,
    const ScalarFuncRegistry* funcs) {
  ExprCompiler c;
  c.table_name = &table_name;
  c.schema = &schema;
  c.pseudo = pseudo;
  c.funcs = funcs;
  return RunCompiler(expr, c);
}

Result<CompiledExpr> CompiledExpr::CompileConstant(
    const Expr& expr, const ScalarFuncRegistry* funcs) {
  ExprCompiler c;
  c.funcs = funcs;
  return RunCompiler(expr, c);
}

Result<Value> CompiledExpr::Eval(EvalFrame& frame) const {
  std::vector<Value>& st = frame.stack;
  st.clear();
  const size_t n = ops_.size();
  size_t pc = 0;
  while (pc < n) {
    const ExprOp& op = ops_[pc];
    switch (op.code) {
      case ExprOpCode::kPushLiteral:
        st.push_back(literals_[static_cast<size_t>(op.a)]);
        break;
      case ExprOpCode::kPushParam:
        if (frame.params == nullptr ||
            op.a >= static_cast<int32_t>(frame.params->size())) {
          return Status::InvalidArgument(
              StrFormat("unbound statement parameter ?%d", op.a + 1));
        }
        st.push_back((*frame.params)[static_cast<size_t>(op.a)]);
        break;
      case ExprOpCode::kPushSlot: {
        const RecordRef& rec = frame.row->slots[static_cast<size_t>(op.a)];
        if (rec == nullptr) {
          return Status::Internal("compiled read of an unjoined input slot");
        }
        st.push_back(rec->values[static_cast<size_t>(op.b)]);
        break;
      }
      case ExprOpCode::kPushExtra:
        st.push_back(frame.row->extras[static_cast<size_t>(op.a)]);
        break;
      case ExprOpCode::kPushRecord:
        st.push_back(frame.rec->values[static_cast<size_t>(op.a)]);
        break;
      case ExprOpCode::kPushPseudo: {
        const std::string& name = names_[static_cast<size_t>(op.a)];
        if (frame.pseudo != nullptr) {
          auto it = frame.pseudo->find(name);
          if (it != frame.pseudo->end()) {
            st.push_back(it->second);
            break;
          }
        }
        return Status::NotFound(
            StrFormat("unknown column '%s'", name.c_str()));
      }
      case ExprOpCode::kBinary: {
        STRIP_ASSIGN_OR_RETURN(
            Value v, EvalBinaryOp(op.bin_op, st[st.size() - 2], st.back()));
        st.pop_back();
        st.back() = std::move(v);
        break;
      }
      case ExprOpCode::kNegate: {
        Value& v = st.back();
        if (!v.is_null()) {
          if (v.type() == ValueType::kInt) {
            v = Value::Int(-v.as_int());
          } else if (v.type() == ValueType::kDouble) {
            v = Value::Double(-v.as_double());
          } else {
            return Status::InvalidArgument("negation of non-numeric value");
          }
        }
        break;
      }
      case ExprOpCode::kNot:
        st.back() = Value::Bool(!st.back().IsTruthy());
        break;
      case ExprOpCode::kCall: {
        const size_t argc = static_cast<size_t>(op.b);
        frame.call_args.clear();
        for (size_t i = st.size() - argc; i < st.size(); ++i) {
          frame.call_args.push_back(std::move(st[i]));
        }
        st.resize(st.size() - argc);
        STRIP_ASSIGN_OR_RETURN(
            Value v,
            (*call_funcs_[static_cast<size_t>(op.a)])(frame.call_args));
        st.push_back(std::move(v));
        break;
      }
      case ExprOpCode::kJumpIfFalse: {
        bool truthy = st.back().IsTruthy();
        st.pop_back();
        if (!truthy) {
          st.push_back(Value::Bool(false));
          pc = static_cast<size_t>(op.a);
          continue;
        }
        break;
      }
      case ExprOpCode::kJumpIfTrue: {
        bool truthy = st.back().IsTruthy();
        st.pop_back();
        if (truthy) {
          st.push_back(Value::Bool(true));
          pc = static_cast<size_t>(op.a);
          continue;
        }
        break;
      }
      case ExprOpCode::kToBool:
        st.back() = Value::Bool(st.back().IsTruthy());
        break;
    }
    ++pc;
  }
  return std::move(st.back());
}

}  // namespace strip
