#include "strip/sql/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

namespace {

/// RowContext over a single table record (UPDATE / DELETE row filtering).
class SingleTableRowContext final : public RowContext {
 public:
  SingleTableRowContext(const std::string& table_name, const Schema* schema,
                        const std::map<std::string, Value>* pseudo)
      : table_name_(table_name), schema_(schema), pseudo_(pseudo) {}

  void set_record(const Record* rec) { rec_ = rec; }

  Result<Value> GetColumn(const std::string& qualifier,
                          const std::string& column) const override {
    if (qualifier.empty() || qualifier == table_name_) {
      int c = schema_->FindColumn(column);
      if (c >= 0) return rec_->values[static_cast<size_t>(c)];
    }
    if (qualifier.empty() && pseudo_ != nullptr) {
      auto it = pseudo_->find(column);
      if (it != pseudo_->end()) return it->second;
    }
    return Status::NotFound(StrFormat("unknown column '%s'", column.c_str()));
  }

 private:
  // By value: callers may pass a temporary name, and the context outlives
  // the full expression in which it was constructed.
  const std::string table_name_;
  const Schema* schema_;
  const std::map<std::string, Value>* pseudo_;
  const Record* rec_ = nullptr;
};

/// RowContext that resolves every column to null (empty aggregate groups).
class NullRowContext final : public RowContext {
 public:
  Result<Value> GetColumn(const std::string&,
                          const std::string&) const override {
    return Value::Null();
  }
};

/// True iff `expr` contains no column references (after pseudo columns are
/// accounted as constants they still count as non-column here only if they
/// are resolvable; we treat any colref as non-constant for safety except
/// pseudo ones).
bool IsConstantExpr(const Expr& expr, const InputSet& inputs,
                    const std::map<std::string, Value>* pseudo) {
  std::vector<int> refs;
  Status st = CollectReferencedInputs(expr, inputs, pseudo, refs);
  return st.ok() && refs.empty();
}

/// Result type inference for output schemas. Types are advisory for temp
/// tables (used when materializing into standard tables).
ValueType InferExprType(const Expr& expr, const InputSet& inputs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.type() == ValueType::kNull ? ValueType::kDouble
                                                     : expr.literal.type();
    case ExprKind::kColumnRef: {
      auto acc = inputs.Resolve(expr.qualifier, expr.column);
      if (acc.ok()) {
        return inputs.inputs()[static_cast<size_t>(acc->input)]
            .schema()
            .column(acc->column)
            .type;
      }
      return ValueType::kDouble;  // pseudo columns are timestamps (ints) or
                                  // app-defined; double is the safe default
    }
    case ExprKind::kUnary:
      return expr.un_op == UnaryOp::kNot
                 ? ValueType::kInt
                 : InferExprType(*expr.args[0], inputs);
    case ExprKind::kBinary:
      switch (expr.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          ValueType l = InferExprType(*expr.args[0], inputs);
          ValueType r = InferExprType(*expr.args[1], inputs);
          return (l == ValueType::kInt && r == ValueType::kInt)
                     ? ValueType::kInt
                     : ValueType::kDouble;
        }
        case BinaryOp::kDiv:
          return ValueType::kDouble;
        default:
          return ValueType::kInt;  // comparisons / logic -> boolean int
      }
    case ExprKind::kFuncCall:
    case ExprKind::kParameter:
      return ValueType::kDouble;
    case ExprKind::kAggregate: {
      if (expr.func_name == "count") return ValueType::kInt;
      if (expr.func_name == "avg") return ValueType::kDouble;
      if (!expr.args.empty()) return InferExprType(*expr.args[0], inputs);
      return ValueType::kDouble;
    }
  }
  return ValueType::kDouble;
}

/// Collects pointers to every aggregate node in `expr`.
void CollectAggregates(const Expr& expr, std::vector<const Expr*>& out) {
  if (expr.kind == ExprKind::kAggregate) {
    out.push_back(&expr);
    return;  // nested aggregates are rejected at evaluation time
  }
  for (const auto& a : expr.args) CollectAggregates(*a, out);
}

/// Streaming accumulator for one aggregate call within one group.
struct AggState {
  int64_t count = 0;          // non-null inputs seen (rows for count(*))
  double sum_d = 0;
  int64_t sum_i = 0;
  bool saw_double = false;
  bool has_extremum = false;
  Value extremum;

  void Accumulate(const Expr& agg, const Value& v) {
    if (agg.star_arg) {  // count(*)
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    if (agg.func_name == "sum" || agg.func_name == "avg") {
      if (v.type() == ValueType::kDouble) saw_double = true;
      sum_d += v.as_double();
      if (v.type() == ValueType::kInt) sum_i += v.as_int();
    } else if (agg.func_name == "min" || agg.func_name == "max") {
      if (!has_extremum) {
        extremum = v;
        has_extremum = true;
      } else {
        int c = Value::Compare(v, extremum);
        if ((agg.func_name == "min" && c < 0) ||
            (agg.func_name == "max" && c > 0)) {
          extremum = v;
        }
      }
    }
  }

  Value Finalize(const Expr& agg) const {
    if (agg.func_name == "count") return Value::Int(count);
    if (count == 0) return Value::Null();
    if (agg.func_name == "sum") {
      return saw_double ? Value::Double(sum_d) : Value::Int(sum_i);
    }
    if (agg.func_name == "avg") {
      return Value::Double(sum_d / static_cast<double>(count));
    }
    return extremum;  // min / max
  }
};

/// Evaluates an expression in which aggregate nodes take pre-computed
/// values from `agg_values` (keyed by node pointer).
Result<Value> EvalWithAggregates(
    const Expr& expr, const RowContext& ctx,
    const std::unordered_map<const Expr*, Value>& agg_values,
    const ScalarFuncRegistry* funcs, const std::vector<Value>* params) {
  auto it = agg_values.find(&expr);
  if (it != agg_values.end()) return it->second;
  if (!expr.ContainsAggregate()) return EvalExpr(expr, &ctx, funcs, params);
  switch (expr.kind) {
    case ExprKind::kBinary: {
      STRIP_ASSIGN_OR_RETURN(
          Value l, EvalWithAggregates(*expr.args[0], ctx, agg_values, funcs, params));
      STRIP_ASSIGN_OR_RETURN(
          Value r, EvalWithAggregates(*expr.args[1], ctx, agg_values, funcs, params));
      return EvalBinaryOp(expr.bin_op, l, r);
    }
    case ExprKind::kUnary: {
      STRIP_ASSIGN_OR_RETURN(
          Value v, EvalWithAggregates(*expr.args[0], ctx, agg_values, funcs, params));
      if (expr.un_op == UnaryOp::kNot) return Value::Bool(!v.IsTruthy());
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.as_int());
      return Value::Double(-v.as_double());
    }
    case ExprKind::kFuncCall: {
      if (funcs == nullptr) {
        return Status::InvalidArgument("no function registry");
      }
      const ScalarFunc* fn = funcs->Find(expr.func_name);
      if (fn == nullptr) {
        return Status::NotFound(
            StrFormat("unknown function '%s'", expr.func_name.c_str()));
      }
      std::vector<Value> args;
      for (const auto& a : expr.args) {
        STRIP_ASSIGN_OR_RETURN(
            Value v, EvalWithAggregates(*a, ctx, agg_values, funcs, params));
        args.push_back(std::move(v));
      }
      return (*fn)(args);
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument("nested aggregate calls");
    default:
      return Status::Internal("unexpected aggregate expression shape");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Binding and scans
// ---------------------------------------------------------------------------

void SqlExecutor::Trace(const std::string& line) {
  if (ctx_.plan_trace != nullptr) ctx_.plan_trace->push_back(line);
}

Result<InputSet> SqlExecutor::BindFrom(const std::vector<TableRef>& from) {
  InputSet inputs;
  if (from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  for (const TableRef& ref : from) {
    std::string name = ToLower(ref.table);
    const TempTable* temp = nullptr;
    if (ctx_.transition != nullptr) temp = ctx_.transition->Find(name);
    if (temp == nullptr && ctx_.bound != nullptr) {
      temp = ctx_.bound->Find(name);
    }
    if (temp != nullptr) {
      inputs.Add(ref.EffectiveName(), nullptr, temp);
      Trace(StrFormat("source %s: temp table (%zu rows)",
                      ref.EffectiveName().c_str(), temp->size()));
      continue;
    }
    if (ctx_.catalog != nullptr) {
      Table* table = ctx_.catalog->FindTable(name);
      if (table != nullptr) {
        STRIP_RETURN_IF_ERROR(LockTable(table, LockMode::kShared));
        inputs.Add(ref.EffectiveName(), table, nullptr);
        Trace(StrFormat("source %s: table (%zu rows)",
                        ref.EffectiveName().c_str(), table->size()));
        continue;
      }
    }
    return Status::NotFound(StrFormat("no table '%s'", name.c_str()));
  }
  return inputs;
}

Status SqlExecutor::LockTable(Table* table, LockMode mode) {
  if (ctx_.locks == nullptr || ctx_.txn == nullptr) return Status::OK();
  return ctx_.locks->Acquire(ctx_.txn, LockKey::WholeTable(table), mode);
}

Result<Value> SqlExecutor::Eval(const Expr& expr, const InputSet& inputs,
                                const JoinRow& row) {
  if (!ctx_.disable_compiled_exprs) {
    const CompiledExpr* prog = nullptr;
    if (ctx_.precompiled != nullptr) {
      auto it = ctx_.precompiled->find(&expr);
      if (it != ctx_.precompiled->end()) prog = &it->second;
    }
    if (prog == nullptr && interpret_only_.count(&expr) == 0) {
      auto it = compiled_.find(&expr);
      if (it == compiled_.end()) {
        auto c = CompiledExpr::Compile(expr, inputs, ctx_.pseudo, ctx_.funcs);
        if (c.ok()) {
          it = compiled_.emplace(&expr, std::move(*c)).first;
        } else {
          // Unresolvable / uncompilable: the interpreter preserves lazy
          // error semantics (e.g. a bogus column behind a short-circuit).
          interpret_only_.insert(&expr);
        }
      }
      if (it != compiled_.end()) prog = &it->second;
    }
    if (prog != nullptr) {
      frame_.row = &row;
      frame_.rec = nullptr;
      frame_.params = ctx_.params;
      frame_.pseudo = ctx_.pseudo;
      return prog->Eval(frame_);
    }
  }
  JoinRowContext ctx(&inputs, &row, ctx_.pseudo);
  return EvalExpr(expr, &ctx, ctx_.funcs, ctx_.params);
}

Status SqlExecutor::ScanInput(
    const InputSet& inputs, int input, const std::vector<const Expr*>& filters,
    const std::function<Status(const ScanItem&)>& emit) {
  const BoundInput& in = inputs.inputs()[static_cast<size_t>(input)];

  // Probe for an indexable `col = const` filter on a standard table.
  const Index* index = nullptr;
  Value index_key;
  if (in.table != nullptr) {
    for (const Expr* f : filters) {
      if (f->kind != ExprKind::kBinary || f->bin_op != BinaryOp::kEq) continue;
      for (int side = 0; side < 2 && index == nullptr; ++side) {
        const Expr& col_side = *f->args[static_cast<size_t>(side)];
        const Expr& const_side = *f->args[static_cast<size_t>(1 - side)];
        if (col_side.kind != ExprKind::kColumnRef) continue;
        auto acc = inputs.Resolve(col_side.qualifier, col_side.column);
        if (!acc.ok() || acc->input != input) continue;
        if (!IsConstantExpr(const_side, inputs, ctx_.pseudo)) continue;
        Index* idx = in.table->FindIndexByPosition(acc->column);
        if (idx == nullptr) continue;
        JoinRow empty;  // constant side references no inputs
        empty.slots.resize(static_cast<size_t>(inputs.num_slots()));
        empty.extras.resize(static_cast<size_t>(inputs.num_extras()));
        STRIP_ASSIGN_OR_RETURN(index_key, Eval(const_side, inputs, empty));
        index = idx;
      }
      if (index != nullptr) break;
    }
  }

  JoinRow probe;
  probe.slots.resize(static_cast<size_t>(inputs.num_slots()));
  probe.extras.resize(static_cast<size_t>(inputs.num_extras()));

  auto passes = [&](const ScanItem& item) -> Result<bool> {
    if (item.rec != nullptr) {
      inputs.FillFromStandard(probe, input, item.rec);
    } else {
      inputs.FillFromTemp(probe, input, *item.tuple);
    }
    for (const Expr* f : filters) {
      STRIP_ASSIGN_OR_RETURN(Value v, Eval(*f, inputs, probe));
      if (!v.IsTruthy()) return false;
    }
    return true;
  };

  if (index != nullptr) {
    Trace(StrFormat("scan %s: index probe %s = %s", in.name.c_str(),
                    in.table->schema().column(index->column()).name.c_str(),
                    index_key.ToString().c_str()));
    std::vector<RowHandle> rows;
    index->Lookup(index_key, rows);
    for (RowHandle r : rows) {
      ScanItem item;
      item.rec = r->rec;
      STRIP_ASSIGN_OR_RETURN(bool ok, passes(item));
      if (ok) STRIP_RETURN_IF_ERROR(emit(item));
    }
    return Status::OK();
  }

  if (in.table != nullptr) {
    // Batched full scan: gather a ScanBatch of live-slot handles per page
    // walk, then run the filter loop tight over the batch so compiled
    // expression programs read contiguous slots instead of chasing nodes.
    PageManager::ScanPos pos;
    ScanBatch batch;
    while (in.table->NextBatch(pos, batch)) {
      if (ctx_.rows_scanned != nullptr) *ctx_.rows_scanned += batch.count;
      for (size_t i = 0; i < batch.count; ++i) {
        ScanItem item;
        item.rec = batch.rows[i]->rec;
        STRIP_ASSIGN_OR_RETURN(bool ok, passes(item));
        if (ok) STRIP_RETURN_IF_ERROR(emit(item));
      }
    }
    return Status::OK();
  }

  for (const TempTuple& t : in.temp->tuples()) {
    ScanItem item;
    item.tuple = &t;
    STRIP_ASSIGN_OR_RETURN(bool ok, passes(item));
    if (ok) STRIP_RETURN_IF_ERROR(emit(item));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Join pipeline
// ---------------------------------------------------------------------------

Result<std::vector<JoinRow>> SqlExecutor::RunJoin(
    const InputSet& inputs, const std::vector<Conjunct>& conjuncts) {
  const int n = static_cast<int>(inputs.inputs().size());

  // Partition conjuncts: per-input filters, equi-joins, residual.
  std::vector<std::vector<const Expr*>> input_filters(
      static_cast<size_t>(n));
  std::vector<const Conjunct*> joins;     // multi-input
  for (const Conjunct& c : conjuncts) {
    if (c.referenced.size() <= 1) {
      int target = c.referenced.empty() ? 0 : c.referenced[0];
      input_filters[static_cast<size_t>(target)].push_back(c.expr);
    } else {
      joins.push_back(&c);
    }
  }

  // Effective input size: tiny when an indexed equality pins the scan.
  auto effective_size = [&](int i) -> size_t {
    const BoundInput& in = inputs.inputs()[static_cast<size_t>(i)];
    size_t sz = in.EstimatedRows();
    if (in.table != nullptr) {
      for (const Expr* f : input_filters[static_cast<size_t>(i)]) {
        if (f->kind == ExprKind::kBinary && f->bin_op == BinaryOp::kEq) {
          for (int side = 0; side < 2; ++side) {
            const Expr& cs = *f->args[static_cast<size_t>(side)];
            if (cs.kind != ExprKind::kColumnRef) continue;
            auto acc = inputs.Resolve(cs.qualifier, cs.column);
            if (acc.ok() && acc->input == i &&
                in.table->FindIndexByPosition(acc->column) != nullptr) {
              return 1;
            }
          }
        }
      }
    }
    return sz;
  };

  // Pick the starting input: the smallest.
  std::vector<bool> joined(static_cast<size_t>(n), false);
  int first = 0;
  for (int i = 1; i < n; ++i) {
    if (effective_size(i) < effective_size(first)) first = i;
  }

  Trace(StrFormat("start with %s",
                  inputs.inputs()[static_cast<size_t>(first)].name.c_str()));
  std::vector<JoinRow> current;
  {
    JoinRow proto;
    proto.slots.resize(static_cast<size_t>(inputs.num_slots()));
    proto.extras.resize(static_cast<size_t>(inputs.num_extras()));
    STRIP_RETURN_IF_ERROR(ScanInput(
        inputs, first, input_filters[static_cast<size_t>(first)],
        [&](const ScanItem& item) {
          JoinRow row = proto;
          if (item.rec != nullptr) {
            inputs.FillFromStandard(row, first, item.rec);
          } else {
            inputs.FillFromTemp(row, first, *item.tuple);
          }
          current.push_back(std::move(row));
          return Status::OK();
        }));
  }
  joined[static_cast<size_t>(first)] = true;

  auto all_joined = [&](const std::vector<int>& refs) {
    for (int r : refs) {
      if (!joined[static_cast<size_t>(r)]) return false;
    }
    return true;
  };

  std::vector<bool> join_applied(joins.size(), false);

  for (int step = 1; step < n; ++step) {
    // Choose the next input: prefer one connected by an equi-join to the
    // joined set; among candidates, smallest effective size. The join side
    // on the new input must be resolvable; the other side must be fully
    // joined already.
    int next = -1;
    size_t next_size = 0;
    bool next_connected = false;
    for (int i = 0; i < n; ++i) {
      if (joined[static_cast<size_t>(i)]) continue;
      bool connected = false;
      for (const Conjunct* j : joins) {
        if (!j->equi_join) continue;
        int other = -1;
        if (j->lhs_input == i) other = j->rhs_input;
        if (j->rhs_input == i) other = j->lhs_input;
        if (other >= 0 && joined[static_cast<size_t>(other)]) {
          connected = true;
          break;
        }
      }
      size_t sz = effective_size(i);
      if (next < 0 || (connected && !next_connected) ||
          (connected == next_connected && sz < next_size)) {
        next = i;
        next_size = sz;
        next_connected = connected;
      }
    }
    STRIP_CHECK(next >= 0);

    // Collect the usable equi-join keys for `next`.
    std::vector<const Expr*> next_keys;    // side referencing `next`
    std::vector<const Expr*> other_keys;   // side referencing joined inputs
    std::vector<size_t> used_joins;
    for (size_t ji = 0; ji < joins.size(); ++ji) {
      const Conjunct* j = joins[ji];
      if (!j->equi_join || join_applied[ji]) continue;
      const Expr* mine = nullptr;
      const Expr* theirs = nullptr;
      int other_input = -1;
      if (j->lhs_input == next) {
        mine = j->lhs;
        theirs = j->rhs;
        other_input = j->rhs_input;
      } else if (j->rhs_input == next) {
        mine = j->rhs;
        theirs = j->lhs;
        other_input = j->lhs_input;
      } else {
        continue;
      }
      if (!joined[static_cast<size_t>(other_input)]) continue;
      next_keys.push_back(mine);
      other_keys.push_back(theirs);
      used_joins.push_back(ji);
    }

    std::vector<JoinRow> merged;

    // Index-nested-loop: single equality whose `next` side is a bare
    // indexed column of a standard table.
    const BoundInput& nin = inputs.inputs()[static_cast<size_t>(next)];
    Index* index = nullptr;
    int index_key_pos = -1;
    size_t index_join_slot = 0;
    if (nin.table != nullptr && !next_keys.empty()) {
      for (size_t k = 0; k < next_keys.size(); ++k) {
        const Expr* mine = next_keys[k];
        if (mine->kind != ExprKind::kColumnRef) continue;
        auto acc = inputs.Resolve(mine->qualifier, mine->column);
        if (!acc.ok() || acc->input != next) continue;
        Index* idx = nin.table->FindIndexByPosition(acc->column);
        if (idx != nullptr) {
          index = idx;
          index_key_pos = acc->column;
          index_join_slot = k;
          break;
        }
      }
    }

    const auto& filters = input_filters[static_cast<size_t>(next)];

    auto emit_if_match = [&](JoinRow& base, const ScanItem& item)
        -> Status {
      JoinRow row = base;
      if (item.rec != nullptr) {
        inputs.FillFromStandard(row, next, item.rec);
      } else {
        inputs.FillFromTemp(row, next, *item.tuple);
      }
      // Remaining equality keys + next's filters.
      for (size_t k = 0; k < next_keys.size(); ++k) {
        if (index != nullptr && k == index_join_slot) continue;
        STRIP_ASSIGN_OR_RETURN(Value a, Eval(*next_keys[k], inputs, row));
        STRIP_ASSIGN_OR_RETURN(Value b, Eval(*other_keys[k], inputs, row));
        if (a.is_null() || b.is_null() || a != b) return Status::OK();
      }
      merged.push_back(std::move(row));
      return Status::OK();
    };

    if (index != nullptr) {
      (void)index_key_pos;
      Trace(StrFormat("index-nested-loop join %s (index on %s)",
                      nin.name.c_str(),
                      nin.table->schema()
                          .column(index_key_pos)
                          .name.c_str()));
      std::vector<RowHandle> rows;  // reused across probes (Lookup appends)
      for (JoinRow& base : current) {
        STRIP_ASSIGN_OR_RETURN(Value key,
                               Eval(*other_keys[index_join_slot], inputs,
                                    base));
        if (key.is_null()) continue;
        rows.clear();
        index->Lookup(key, rows);
        for (RowHandle r : rows) {
          // Apply next's pushed-down filters on the candidate first.
          JoinRow probe = base;
          inputs.FillFromStandard(probe, next, r->rec);
          bool pass = true;
          for (const Expr* f : filters) {
            STRIP_ASSIGN_OR_RETURN(Value v, Eval(*f, inputs, probe));
            if (!v.IsTruthy()) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          ScanItem item;
          item.rec = r->rec;
          STRIP_RETURN_IF_ERROR(emit_if_match(base, item));
        }
      }
    } else if (!next_keys.empty()) {
      // Hash join: build on `next`, probe with current rows.
      Trace(StrFormat("hash join %s (%zu equi key%s)", nin.name.c_str(),
                      next_keys.size(), next_keys.size() == 1 ? "" : "s"));
      std::unordered_map<std::vector<Value>, std::vector<ScanItem>,
                         ValueVectorHash, ValueVectorEq>
          build;
      JoinRow probe;
      probe.slots.resize(static_cast<size_t>(inputs.num_slots()));
      probe.extras.resize(static_cast<size_t>(inputs.num_extras()));
      STRIP_RETURN_IF_ERROR(ScanInput(
          inputs, next, filters, [&](const ScanItem& item) -> Status {
            if (item.rec != nullptr) {
              inputs.FillFromStandard(probe, next, item.rec);
            } else {
              inputs.FillFromTemp(probe, next, *item.tuple);
            }
            std::vector<Value> key;
            key.reserve(next_keys.size());
            for (const Expr* e : next_keys) {
              STRIP_ASSIGN_OR_RETURN(Value v, Eval(*e, inputs, probe));
              key.push_back(std::move(v));
            }
            build[std::move(key)].push_back(item);
            return Status::OK();
          }));
      for (JoinRow& base : current) {
        std::vector<Value> key;
        key.reserve(other_keys.size());
        bool null_key = false;
        for (const Expr* e : other_keys) {
          STRIP_ASSIGN_OR_RETURN(Value v, Eval(*e, inputs, base));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key.push_back(std::move(v));
        }
        if (null_key) continue;
        auto it = build.find(key);
        if (it == build.end()) continue;
        for (const ScanItem& item : it->second) {
          JoinRow row = base;
          if (item.rec != nullptr) {
            inputs.FillFromStandard(row, next, item.rec);
          } else {
            inputs.FillFromTemp(row, next, *item.tuple);
          }
          merged.push_back(std::move(row));
        }
      }
    } else {
      // Cross / nested-loop join.
      Trace(StrFormat("nested-loop join %s", nin.name.c_str()));
      std::vector<ScanItem> items;
      STRIP_RETURN_IF_ERROR(
          ScanInput(inputs, next, filters, [&](const ScanItem& item) {
            items.push_back(item);
            return Status::OK();
          }));
      for (JoinRow& base : current) {
        for (const ScanItem& item : items) {
          STRIP_RETURN_IF_ERROR(emit_if_match(base, item));
        }
      }
    }

    for (size_t ji : used_joins) join_applied[ji] = true;
    joined[static_cast<size_t>(next)] = true;
    current = std::move(merged);

    // Apply any residual conjunct that just became fully bound.
    for (size_t ji = 0; ji < joins.size(); ++ji) {
      if (join_applied[ji]) continue;
      const Conjunct* j = joins[ji];
      if (!all_joined(j->referenced)) continue;
      std::vector<JoinRow> kept;
      kept.reserve(current.size());
      for (JoinRow& row : current) {
        STRIP_ASSIGN_OR_RETURN(Value v, Eval(*j->expr, inputs, row));
        if (v.IsTruthy()) kept.push_back(std::move(row));
      }
      current = std::move(kept);
      join_applied[ji] = true;
    }
  }

  return current;
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

Result<TempTable> SqlExecutor::ExecuteSelect(const SelectStmt& stmt,
                                             const std::string& output_name) {
  STRIP_ASSIGN_OR_RETURN(InputSet inputs, BindFrom(stmt.from));
  STRIP_ASSIGN_OR_RETURN(
      std::vector<Conjunct> conjuncts,
      ClassifyConjuncts(stmt.where.get(), inputs, ctx_.pseudo));
  return ExecuteSelectBound(stmt, inputs, conjuncts, output_name);
}

Result<TempTable> SqlExecutor::ExecuteSelectBound(
    const SelectStmt& stmt, const InputSet& inputs,
    const std::vector<Conjunct>& conjuncts, const std::string& output_name) {
  // Programs cached in earlier executions carry slot positions for a
  // different InputSet; drop them before touching this one.
  compiled_.clear();
  interpret_only_.clear();

  // Locks are per-execution, never part of a frozen plan: re-acquire shared
  // locks on every standard input (a no-op when BindFrom just did).
  for (const BoundInput& in : inputs.inputs()) {
    if (in.table != nullptr) {
      STRIP_RETURN_IF_ERROR(LockTable(in.table, LockMode::kShared));
    }
  }

  STRIP_ASSIGN_OR_RETURN(std::vector<JoinRow> rows,
                         RunJoin(inputs, conjuncts));

  // Expand the select list (star -> every column of every input).
  std::vector<SelectItem> expanded;
  const std::vector<SelectItem>* items = &stmt.items;
  if (stmt.star) {
    for (const BoundInput& in : inputs.inputs()) {
      for (int c = 0; c < in.schema().num_columns(); ++c) {
        SelectItem item;
        item.expr = MakeColumnRef(in.name, in.schema().column(c).name);
        item.alias = in.schema().column(c).name;
        expanded.push_back(std::move(item));
      }
    }
    items = &expanded;
  }
  if (items->empty()) {
    return Status::InvalidArgument("empty select list");
  }

  // Bind-time validation: every column reference in the select list,
  // group-by, and order-by must resolve (or be a pseudo column), even when
  // the inputs are empty.
  {
    std::vector<int> refs;
    for (const SelectItem& item : *items) {
      STRIP_RETURN_IF_ERROR(
          CollectReferencedInputs(*item.expr, inputs, ctx_.pseudo, refs));
    }
    for (const auto& g : stmt.group_by) {
      STRIP_RETURN_IF_ERROR(
          CollectReferencedInputs(*g, inputs, ctx_.pseudo, refs));
    }
    for (const auto& ob : stmt.order_by) {
      // An order-by may also name an output column.
      if (ob.expr->kind == ExprKind::kColumnRef &&
          ob.expr->qualifier.empty()) {
        bool is_output = false;
        for (size_t i = 0; i < items->size(); ++i) {
          if ((*items)[i].OutputName(static_cast<int>(i)) ==
              ob.expr->column) {
            is_output = true;
            break;
          }
        }
        if (is_output) continue;
      }
      STRIP_RETURN_IF_ERROR(
          CollectReferencedInputs(*ob.expr, inputs, ctx_.pseudo, refs));
    }
  }

  bool has_aggregates = !stmt.group_by.empty();
  for (const SelectItem& item : *items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  if (stmt.having != nullptr) {
    if (stmt.having->ContainsAggregate()) has_aggregates = true;
    if (!has_aggregates) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    std::vector<int> refs;
    STRIP_RETURN_IF_ERROR(
        CollectReferencedInputs(*stmt.having, inputs, ctx_.pseudo, refs));
  }

  // Output schema.
  Schema out_schema;
  for (size_t i = 0; i < items->size(); ++i) {
    out_schema.AddColumn((*items)[i].OutputName(static_cast<int>(i)),
                         InferExprType(*(*items)[i].expr, inputs));
  }

  std::vector<std::vector<Value>> out_rows;       // aggregate path
  std::vector<size_t> row_order;                  // non-agg: index into rows
  TempTable result = TempTable::Materialized(output_name, out_schema);

  if (has_aggregates) {
    Trace(StrFormat("hash aggregate: %zu group key(s)%s",
                    stmt.group_by.size(),
                    stmt.having != nullptr ? ", having filter" : ""));
    // ---- hash aggregation ----
    std::vector<const Expr*> agg_nodes;
    for (const SelectItem& item : *items) {
      CollectAggregates(*item.expr, agg_nodes);
    }
    for (const auto& ob : stmt.order_by) {
      CollectAggregates(*ob.expr, agg_nodes);
    }
    if (stmt.having != nullptr) CollectAggregates(*stmt.having, agg_nodes);
    struct Group {
      size_t representative;
      std::vector<AggState> states;
    };
    std::unordered_map<std::vector<Value>, Group, ValueVectorHash,
                       ValueVectorEq>
        groups;
    for (size_t r = 0; r < rows.size(); ++r) {
      std::vector<Value> key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        STRIP_ASSIGN_OR_RETURN(Value v, Eval(*g, inputs, rows[r]));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) {
        it->second.representative = r;
        it->second.states.resize(agg_nodes.size());
      }
      for (size_t a = 0; a < agg_nodes.size(); ++a) {
        const Expr& agg = *agg_nodes[a];
        Value v;  // null for count(*)
        if (!agg.star_arg) {
          if (agg.args.size() != 1) {
            return Status::InvalidArgument(StrFormat(
                "%s() takes exactly one argument", agg.func_name.c_str()));
          }
          STRIP_ASSIGN_OR_RETURN(v, Eval(*agg.args[0], inputs, rows[r]));
        }
        it->second.states[a].Accumulate(agg, v);
      }
    }
    // A global aggregate over zero rows still produces one output row.
    if (groups.empty() && stmt.group_by.empty()) {
      Group g;
      g.representative = SIZE_MAX;
      g.states.resize(agg_nodes.size());
      groups.emplace(std::vector<Value>{}, std::move(g));
    }

    NullRowContext null_ctx;
    struct OutRow {
      std::vector<Value> values;
      std::vector<Value> sort_keys;
    };
    std::vector<OutRow> produced;
    produced.reserve(groups.size());
    for (auto& [key, group] : groups) {
      std::unordered_map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < agg_nodes.size(); ++a) {
        agg_values[agg_nodes[a]] = group.states[a].Finalize(*agg_nodes[a]);
      }
      JoinRowContext row_ctx(&inputs,
                             group.representative == SIZE_MAX
                                 ? nullptr
                                 : &rows[group.representative],
                             ctx_.pseudo);
      const RowContext& ctx =
          group.representative == SIZE_MAX
              ? static_cast<const RowContext&>(null_ctx)
              : static_cast<const RowContext&>(row_ctx);
      if (stmt.having != nullptr) {
        STRIP_ASSIGN_OR_RETURN(
            Value keep, EvalWithAggregates(*stmt.having, ctx, agg_values,
                                           ctx_.funcs, ctx_.params));
        if (!keep.IsTruthy()) continue;
      }
      OutRow out;
      out.values.reserve(items->size());
      for (const SelectItem& item : *items) {
        STRIP_ASSIGN_OR_RETURN(
            Value v, EvalWithAggregates(*item.expr, ctx, agg_values,
                                        ctx_.funcs, ctx_.params));
        out.values.push_back(std::move(v));
      }
      for (const auto& ob : stmt.order_by) {
        // Order keys: output column name, else expression over the group.
        if (ob.expr->kind == ExprKind::kColumnRef &&
            ob.expr->qualifier.empty() &&
            out_schema.FindColumn(ob.expr->column) >= 0) {
          out.sort_keys.push_back(
              out.values[static_cast<size_t>(
                  out_schema.FindColumn(ob.expr->column))]);
        } else {
          STRIP_ASSIGN_OR_RETURN(
              Value v,
              EvalWithAggregates(*ob.expr, ctx, agg_values, ctx_.funcs,
                                 ctx_.params));
          out.sort_keys.push_back(std::move(v));
        }
      }
      produced.push_back(std::move(out));
    }
    if (!stmt.order_by.empty()) {
      Trace(StrFormat("sort %zu group row(s)", produced.size()));
      std::stable_sort(produced.begin(), produced.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                           int c = Value::Compare(a.sort_keys[k],
                                                  b.sort_keys[k]);
                           if (c != 0) {
                             return stmt.order_by[k].descending ? c > 0
                                                                : c < 0;
                           }
                         }
                         return false;
                       });
    }
    if (stmt.distinct) {
      std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
          seen;
      std::vector<OutRow> unique_rows;
      for (OutRow& out : produced) {
        if (seen.insert(out.values).second) {
          unique_rows.push_back(std::move(out));
        }
      }
      produced = std::move(unique_rows);
    }
    for (OutRow& out : produced) {
      if (stmt.limit >= 0 &&
          static_cast<int64_t>(result.size()) >= stmt.limit) {
        break;
      }
      TempTuple t;
      t.extra = std::move(out.values);
      result.Append(std::move(t));
    }
    return result;
  }

  // ---- non-aggregate projection with the §6.1 pointer layout ----
  // Classify output columns: bare standard-table column refs stay
  // pointer-backed; everything else is materialized.
  struct OutCol {
    bool pointer = false;
    int input = -1;        // for pointer columns
    int column = -1;
    const Expr* expr = nullptr;
  };
  std::vector<OutCol> out_cols;
  std::vector<int> used_slot_of_input(inputs.inputs().size(), -1);
  int num_out_slots = 0;
  int num_out_extra = 0;
  std::vector<TempColumnMap> layout;
  for (const SelectItem& item : *items) {
    OutCol oc;
    oc.expr = item.expr.get();
    if (item.expr->kind == ExprKind::kColumnRef) {
      auto acc = inputs.Resolve(item.expr->qualifier, item.expr->column);
      if (acc.ok() &&
          !inputs.inputs()[static_cast<size_t>(acc->input)].is_temp()) {
        oc.pointer = true;
        oc.input = acc->input;
        oc.column = acc->column;
        int& slot = used_slot_of_input[static_cast<size_t>(acc->input)];
        if (slot < 0) slot = num_out_slots++;
        layout.push_back(TempColumnMap{slot, acc->column});
        out_cols.push_back(oc);
        continue;
      }
    }
    layout.push_back(
        TempColumnMap{TempColumnMap::kMaterializedSlot, num_out_extra++});
    out_cols.push_back(oc);
  }
  result = TempTable(output_name, out_schema, std::move(layout),
                     num_out_slots, num_out_extra);

  // Sort order for non-aggregate queries: evaluate order keys per join row.
  row_order.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) row_order[i] = i;
  if (!stmt.order_by.empty()) {
    Trace(StrFormat("sort %zu row(s)", rows.size()));
    // Resolve each order key: an unqualified name that does not resolve in
    // the inputs but matches an output column orders by that output
    // expression.
    std::vector<const Expr*> key_exprs;
    for (const auto& ob : stmt.order_by) {
      const Expr* e = ob.expr.get();
      if (e->kind == ExprKind::kColumnRef && e->qualifier.empty() &&
          !inputs.Resolve("", e->column).ok()) {
        for (size_t i = 0; i < items->size(); ++i) {
          if ((*items)[i].OutputName(static_cast<int>(i)) == e->column) {
            e = (*items)[i].expr.get();
            break;
          }
        }
      }
      key_exprs.push_back(e);
    }
    std::vector<std::vector<Value>> keys(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      keys[i].reserve(stmt.order_by.size());
      for (const Expr* ke : key_exprs) {
        STRIP_ASSIGN_OR_RETURN(Value v, Eval(*ke, inputs, rows[i]));
        keys[i].push_back(std::move(v));
      }
    }
    std::stable_sort(row_order.begin(), row_order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int c = Value::Compare(keys[a][k], keys[b][k]);
                         if (c != 0) {
                           return stmt.order_by[k].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq>
      seen;
  for (size_t ri : row_order) {
    if (stmt.limit >= 0 &&
        static_cast<int64_t>(result.size()) >= stmt.limit) {
      break;
    }
    const JoinRow& row = rows[ri];
    TempTuple t;
    t.slots.resize(static_cast<size_t>(num_out_slots));
    t.extra.resize(static_cast<size_t>(num_out_extra));
    int extra_i = 0;
    for (const OutCol& oc : out_cols) {
      if (oc.pointer) {
        const BoundInput& in = inputs.inputs()[static_cast<size_t>(oc.input)];
        int slot = used_slot_of_input[static_cast<size_t>(oc.input)];
        t.slots[static_cast<size_t>(slot)] =
            row.slots[static_cast<size_t>(in.slot)];
      } else {
        STRIP_ASSIGN_OR_RETURN(Value v, Eval(*oc.expr, inputs, row));
        t.extra[static_cast<size_t>(extra_i++)] = std::move(v);
      }
    }
    if (stmt.distinct) {
      std::vector<Value> key;
      key.reserve(static_cast<size_t>(out_schema.num_columns()));
      for (int c = 0; c < out_schema.num_columns(); ++c) {
        key.push_back(result.Get(t, c));
      }
      if (!seen.insert(std::move(key)).second) continue;
    }
    result.Append(std::move(t));
  }
  return result;
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

namespace {

/// Rows of `table` matching `where`, using an indexed `col = const` probe
/// when available. `funcs` / `pseudo` as in the executor context.
Result<std::vector<RowHandle>> CollectMatchingRows(
    Table* table, const Expr* where, const ScalarFuncRegistry* funcs,
    const std::map<std::string, Value>* pseudo,
    const std::vector<Value>* params, uint64_t* rows_scanned = nullptr) {
  std::vector<RowHandle> out;
  SingleTableRowContext ctx(table->name(), &table->schema(), pseudo);

  // Try `col = const` probe over the conjuncts.
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, conjuncts);
  Index* index = nullptr;
  Value key;
  for (const Expr* f : conjuncts) {
    if (f->kind != ExprKind::kBinary || f->bin_op != BinaryOp::kEq) continue;
    for (int side = 0; side < 2 && index == nullptr; ++side) {
      const Expr& col_side = *f->args[static_cast<size_t>(side)];
      const Expr& const_side = *f->args[static_cast<size_t>(1 - side)];
      if (col_side.kind != ExprKind::kColumnRef) continue;
      if (!col_side.qualifier.empty() && col_side.qualifier != table->name()) {
        continue;
      }
      int c = table->schema().FindColumn(col_side.column);
      if (c < 0) continue;
      Index* idx = table->FindIndexByPosition(c);
      if (idx == nullptr) continue;
      // The other side must be constant (no column references).
      auto probe = EvalExpr(const_side, nullptr, funcs, params);
      if (!probe.ok()) continue;
      key = probe.take();
      index = idx;
    }
    if (index != nullptr) break;
  }

  auto matches = [&](const RecordRef& rec) -> Result<bool> {
    if (where == nullptr) return true;
    ctx.set_record(rec.get());
    STRIP_ASSIGN_OR_RETURN(Value v, EvalExpr(*where, &ctx, funcs, params));
    return v.IsTruthy();
  };

  if (index != nullptr) {
    std::vector<RowHandle> candidates;
    index->Lookup(key, candidates);
    for (RowHandle r : candidates) {
      STRIP_ASSIGN_OR_RETURN(bool ok, matches(r->rec));
      if (ok) out.push_back(r);
    }
    return out;
  }
  PageManager::ScanPos pos;
  ScanBatch batch;
  while (table->NextBatch(pos, batch)) {
    if (rows_scanned != nullptr) *rows_scanned += batch.count;
    for (size_t i = 0; i < batch.count; ++i) {
      STRIP_ASSIGN_OR_RETURN(bool ok, matches(batch.rows[i]->rec));
      if (ok) out.push_back(batch.rows[i]);
    }
  }
  return out;
}

}  // namespace

Result<int> SqlExecutor::ExecuteInsert(const InsertStmt& stmt) {
  if (ctx_.catalog == nullptr) {
    return Status::FailedPrecondition("no catalog");
  }
  if (ctx_.txn == nullptr) {
    return Status::FailedPrecondition("INSERT requires a transaction");
  }
  STRIP_ASSIGN_OR_RETURN(Table * table, ctx_.catalog->GetTable(stmt.table));
  STRIP_RETURN_IF_ERROR(LockTable(table, LockMode::kExclusive));
  const Schema& schema = table->schema();

  // Column mapping: position in VALUES -> column position.
  std::vector<int> mapping;
  if (stmt.columns.empty()) {
    for (int i = 0; i < schema.num_columns(); ++i) mapping.push_back(i);
  } else {
    for (const std::string& col : stmt.columns) {
      int c = schema.FindColumn(col);
      if (c < 0) {
        return Status::NotFound(StrFormat("no column '%s' in table '%s'",
                                          col.c_str(), stmt.table.c_str()));
      }
      mapping.push_back(c);
    }
  }

  int inserted = 0;
  for (const auto& row_exprs : stmt.rows) {
    if (row_exprs.size() != mapping.size()) {
      return Status::InvalidArgument(StrFormat(
          "INSERT arity mismatch: %zu values for %zu columns",
          row_exprs.size(), mapping.size()));
    }
    std::vector<Value> values(static_cast<size_t>(schema.num_columns()));
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      STRIP_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*row_exprs[i], nullptr, ctx_.funcs, ctx_.params));
      values[static_cast<size_t>(mapping[i])] = std::move(v);
    }
    STRIP_ASSIGN_OR_RETURN(RowHandle it, table->Insert(MakeRecord(values)));
    ctx_.txn->log().Append(LogOp::kInsert, table, it->id, nullptr, it->rec);
    ++inserted;
  }
  return inserted;
}

Result<int> SqlExecutor::ExecuteUpdate(const UpdateStmt& stmt) {
  if (ctx_.catalog == nullptr) {
    return Status::FailedPrecondition("no catalog");
  }
  if (ctx_.txn == nullptr) {
    return Status::FailedPrecondition("UPDATE requires a transaction");
  }
  STRIP_ASSIGN_OR_RETURN(Table * table, ctx_.catalog->GetTable(stmt.table));
  STRIP_RETURN_IF_ERROR(LockTable(table, LockMode::kExclusive));
  const Schema& schema = table->schema();

  std::vector<int> set_cols;
  for (const auto& sc : stmt.sets) {
    int c = schema.FindColumn(sc.column);
    if (c < 0) {
      return Status::NotFound(StrFormat("no column '%s' in table '%s'",
                                        sc.column.c_str(),
                                        stmt.table.c_str()));
    }
    set_cols.push_back(c);
  }

  STRIP_ASSIGN_OR_RETURN(
      std::vector<RowHandle> targets,
      CollectMatchingRows(table, stmt.where.get(), ctx_.funcs, ctx_.pseudo,
                          ctx_.params, ctx_.rows_scanned));

  SingleTableRowContext ctx(table->name(), &schema, ctx_.pseudo);
  for (RowHandle it : targets) {
    RecordRef old_rec = it->rec;
    ctx.set_record(old_rec.get());
    std::vector<Value> values = old_rec->values;
    for (size_t i = 0; i < stmt.sets.size(); ++i) {
      STRIP_ASSIGN_OR_RETURN(
          Value v,
          EvalExpr(*stmt.sets[i].expr, &ctx, ctx_.funcs, ctx_.params));
      values[static_cast<size_t>(set_cols[i])] = std::move(v);
    }
    STRIP_RETURN_IF_ERROR(table->Update(it, MakeRecord(std::move(values))));
    ctx_.txn->log().Append(LogOp::kUpdate, table, it->id, old_rec, it->rec);
  }
  return static_cast<int>(targets.size());
}

Result<int> SqlExecutor::ExecuteDelete(const DeleteStmt& stmt) {
  if (ctx_.catalog == nullptr) {
    return Status::FailedPrecondition("no catalog");
  }
  if (ctx_.txn == nullptr) {
    return Status::FailedPrecondition("DELETE requires a transaction");
  }
  STRIP_ASSIGN_OR_RETURN(Table * table, ctx_.catalog->GetTable(stmt.table));
  STRIP_RETURN_IF_ERROR(LockTable(table, LockMode::kExclusive));

  STRIP_ASSIGN_OR_RETURN(
      std::vector<RowHandle> targets,
      CollectMatchingRows(table, stmt.where.get(), ctx_.funcs, ctx_.pseudo,
                          ctx_.params, ctx_.rows_scanned));

  for (RowHandle it : targets) {
    ctx_.txn->log().Append(LogOp::kDelete, table, it->id, it->rec, nullptr);
    table->Erase(it);
  }
  return static_cast<int>(targets.size());
}

}  // namespace strip
