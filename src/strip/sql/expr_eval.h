#ifndef STRIP_SQL_EXPR_EVAL_H_
#define STRIP_SQL_EXPR_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/storage/value.h"

namespace strip {

/// Resolves column references during expression evaluation.
class RowContext {
 public:
  virtual ~RowContext() = default;

  /// Value of `qualifier.column` (qualifier may be empty for bare names).
  /// NotFound for unknown columns; InvalidArgument for ambiguous bare names.
  virtual Result<Value> GetColumn(const std::string& qualifier,
                                  const std::string& column) const = 0;
};

/// A scalar SQL function: values in, value out.
using ScalarFunc =
    std::function<Result<Value>(const std::vector<Value>& args)>;

/// Named scalar functions available to expressions. A registry pre-loaded
/// with math builtins (abs, sqrt, exp, ln, log, pow, floor, ceil, erf,
/// normcdf, least, greatest) is created by Database; applications register
/// more (the program-trading example registers the Black-Scholes pricer as
/// `f_bs`, the paper's f_BS).
class ScalarFuncRegistry {
 public:
  /// Registry containing the builtin math functions.
  static ScalarFuncRegistry WithBuiltins();

  /// Registers `fn` under `name` (case-insensitive). Fails on duplicates.
  Status Register(const std::string& name, ScalarFunc fn);

  /// The function, or nullptr.
  const ScalarFunc* Find(const std::string& name) const;

 private:
  std::map<std::string, ScalarFunc> funcs_;
};

/// Evaluates a non-aggregate expression against a row. Nulls propagate
/// through arithmetic and comparisons; AND/OR treat null as false
/// (two-valued logic — documented simplification).
/// `row` may be null for constant expressions; `funcs` may be null if the
/// expression contains no function calls; `params` binds '?' placeholders
/// (an unbound placeholder is an error).
Result<Value> EvalExpr(const Expr& expr, const RowContext* row,
                       const ScalarFuncRegistry* funcs,
                       const std::vector<Value>* params = nullptr);

/// Evaluates a binary arithmetic / comparison / logic operation.
Result<Value> EvalBinaryOp(BinaryOp op, const Value& lhs, const Value& rhs);

}  // namespace strip

#endif  // STRIP_SQL_EXPR_EVAL_H_
