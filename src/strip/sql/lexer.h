#ifndef STRIP_SQL_LEXER_H_
#define STRIP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/token.h"

namespace strip {

/// Tokenizes a SQL / rule-definition string. Comments: `-- to end of line`.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace strip

#endif  // STRIP_SQL_LEXER_H_
