#include "strip/sql/token.h"

#include "strip/common/string_util.h"

namespace strip {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kDoubleLiteral: return "double literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlusEq: return "'+='";
    case TokenKind::kMinusEq: return "'-='";
    case TokenKind::kQuestion: return "'?'";
  }
  return "?";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kIntLiteral ||
      kind == TokenKind::kDoubleLiteral) {
    return text;
  }
  if (kind == TokenKind::kStringLiteral) return "'" + text + "'";
  return TokenKindName(kind);
}

}  // namespace strip
