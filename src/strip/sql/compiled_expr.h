#ifndef STRIP_SQL_COMPILED_EXPR_H_
#define STRIP_SQL_COMPILED_EXPR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/sql/expr_eval.h"
#include "strip/sql/plan.h"
#include "strip/storage/record.h"
#include "strip/storage/schema.h"

namespace strip {

/// Per-execution state for running compiled expression programs. One frame
/// is reused across rows (and across expressions): the stack and the call
/// scratch keep their capacity, so steady-state evaluation allocates
/// nothing.
struct EvalFrame {
  const JoinRow* row = nullptr;   // join-mode programs read slots/extras
  const Record* rec = nullptr;    // single-table-mode programs read values
  const std::vector<Value>* params = nullptr;
  const std::map<std::string, Value>* pseudo = nullptr;
  std::vector<Value> stack;
  std::vector<Value> call_args;
};

enum class ExprOpCode : uint8_t {
  kPushLiteral,  // push literals[a]
  kPushParam,    // push (*params)[a]; error when unbound
  kPushSlot,     // push row->slots[a]->values[b]     (join mode)
  kPushExtra,    // push row->extras[a]               (join mode)
  kPushRecord,   // push rec->values[a]               (single-table mode)
  kPushPseudo,   // push pseudo lookup of names[a]
  kBinary,       // pop rhs, lhs; push EvalBinaryOp(bin_op, lhs, rhs)
  kNegate,       // pop v; push -v (null propagates)
  kNot,          // pop v; push Bool(!truthy)
  kCall,         // pop b args; push call_funcs[a](args)
  kJumpIfFalse,  // pop v; if !truthy: push Bool(false), jump to a
  kJumpIfTrue,   // pop v; if truthy: push Bool(true), jump to a
  kToBool,       // pop v; push Bool(truthy)
};

struct ExprOp {
  ExprOpCode code = ExprOpCode::kPushLiteral;
  BinaryOp bin_op = BinaryOp::kAdd;
  int32_t a = 0;
  int32_t b = 0;
};

/// An Expr tree flattened into a postfix program over a value stack, with
/// every column reference resolved to a slot/offset at compile time —
/// evaluation performs no name hashing, no string lowering, and (after
/// frame warmup) no allocation. AND/OR short-circuit via jump opcodes with
/// the interpreter's exact semantics (left operand first, Bool result).
///
/// Compilation is best-effort: any construct whose resolution could differ
/// from the interpreter's lazy behavior (unresolvable columns, unknown
/// functions, aggregates) fails to compile, and the caller falls back to
/// EvalExpr. A compiled program therefore always produces the same value or
/// error the interpreter would.
class CompiledExpr {
 public:
  /// Join-row mode: columns resolve through `inputs` exactly like
  /// JoinRowContext (inputs first, then pseudo for bare names).
  static Result<CompiledExpr> Compile(
      const Expr& expr, const InputSet& inputs,
      const std::map<std::string, Value>* pseudo,
      const ScalarFuncRegistry* funcs);

  /// Single-table mode: columns resolve against one record's schema exactly
  /// like the UPDATE/DELETE row context (qualifier empty or == table name,
  /// then pseudo).
  static Result<CompiledExpr> CompileSingleTable(
      const Expr& expr, const std::string& table_name, const Schema& schema,
      const std::map<std::string, Value>* pseudo,
      const ScalarFuncRegistry* funcs);

  /// Constant mode: no column references allowed (INSERT values, index
  /// probe keys). Parameters and function calls are fine.
  static Result<CompiledExpr> CompileConstant(const Expr& expr,
                                              const ScalarFuncRegistry* funcs);

  /// Runs the program against the frame's current row / record / params.
  Result<Value> Eval(EvalFrame& frame) const;

  size_t num_ops() const { return ops_.size(); }

 private:
  friend struct ExprCompiler;

  std::vector<ExprOp> ops_;
  std::vector<Value> literals_;
  std::vector<const ScalarFunc*> call_funcs_;  // stable: registry is a map
  std::vector<std::string> names_;             // pseudo-column names
};

}  // namespace strip

#endif  // STRIP_SQL_COMPILED_EXPR_H_
