#include "strip/sql/ast.h"

#include "strip/common/string_util.h"

namespace strip {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kParameter:
      return StrFormat("?%d", param_index + 1);
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinaryOpName(bin_op) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(un_op == UnaryOp::kNeg ? "-" : "not ") +
             args[0]->ToString();
    case ExprKind::kFuncCall:
    case ExprKind::kAggregate: {
      std::string s = func_name + "(";
      if (star_arg) s += "*";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->column = column;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->func_name = func_name;
  out->star_arg = star_arg;
  out->param_index = param_index;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->Clone());
  return out;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = ToLower(qualifier);
  e->column = ToLower(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = ToLower(name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeAggregate(std::string name, std::vector<ExprPtr> args,
                      bool star_arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->func_name = ToLower(name);
  e->args = std::move(args);
  e->star_arg = star_arg;
  return e;
}

ExprPtr MakeParameter(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParameter;
  e->param_index = index;
  return e;
}

bool IsAggregateName(const std::string& name) {
  std::string n = ToLower(name);
  return n == "sum" || n == "count" || n == "avg" || n == "min" || n == "max";
}

std::string SelectItem::OutputName(int position) const {
  if (!alias.empty()) return ToLower(alias);
  if (expr->kind == ExprKind::kColumnRef) return expr->column;
  return StrFormat("_col%d", position);
}

SelectStmt SelectStmt::Clone() const {
  SelectStmt out;
  out.star = star;
  out.distinct = distinct;
  out.having = having ? having->Clone() : nullptr;
  out.limit = limit;
  out.items.reserve(items.size());
  for (const auto& it : items) {
    out.items.push_back(SelectItem{it.expr->Clone(), it.alias});
  }
  out.from = from;
  out.where = where ? where->Clone() : nullptr;
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  out.order_by.reserve(order_by.size());
  for (const auto& o : order_by) {
    out.order_by.push_back(OrderByItem{o.expr->Clone(), o.descending});
  }
  return out;
}

std::string SelectStmt::ToString() const {
  std::string s = "select ";
  if (distinct) s += "distinct ";
  if (star) {
    s += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) s += ", ";
      s += items[i].expr->ToString();
      if (!items[i].alias.empty()) s += " as " + items[i].alias;
    }
  }
  s += " from ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) s += ", ";
    s += from[i].table;
    if (!from[i].alias.empty()) s += " " + from[i].alias;
  }
  if (where) s += " where " + where->ToString();
  if (!group_by.empty()) {
    s += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += group_by[i]->ToString();
    }
  }
  if (having) s += " having " + having->ToString();
  if (!order_by.empty()) {
    s += " order by ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += order_by[i].expr->ToString();
      if (order_by[i].descending) s += " desc";
    }
  }
  if (limit >= 0) s += StrFormat(" limit %lld", static_cast<long long>(limit));
  return s;
}

RuleQuery RuleQuery::Clone() const {
  RuleQuery out;
  out.query = query.Clone();
  out.bind_as = bind_as;
  return out;
}

}  // namespace strip
