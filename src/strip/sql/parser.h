#ifndef STRIP_SQL_PARSER_H_
#define STRIP_SQL_PARSER_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/sql/token.h"

namespace strip {

/// Recursive-descent parser for the STRIP SQL subset plus the rule grammar
/// of Figure 2. Keywords are case-insensitive and not reserved.
class Parser {
 public:
  /// Parses a single statement (trailing ';' optional).
  static Result<Statement> ParseStatement(const std::string& sql);

  /// Parses a ';'-separated script.
  static Result<std::vector<Statement>> ParseScript(const std::string& sql);

  /// Parses a standalone expression (used by tests and the view manager).
  static Result<ExprPtr> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // Token stream helpers.
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  /// Case-insensitive keyword test / consume on the current identifier.
  bool CheckKeyword(const char* kw, int ahead = 0) const;
  bool MatchKeyword(const char* kw);
  Status ExpectKeyword(const char* kw);
  Status Expect(TokenKind kind, const char* what);
  Result<std::string> ExpectIdentifier(const char* what);
  Status ErrorHere(const std::string& message) const;

  // Statements.
  Result<Statement> ParseOneStatement();
  Result<SelectStmt> ParseSelect();
  Result<Statement> ParseCreate();
  Result<CreateTableStmt> ParseCreateTable();
  Result<CreateIndexStmt> ParseCreateIndex();
  Result<CreateViewStmt> ParseCreateView(bool materialized);
  Result<CreateRuleStmt> ParseCreateRule();
  Result<InsertStmt> ParseInsert();
  Result<UpdateStmt> ParseUpdate();
  Result<DeleteStmt> ParseDelete();
  Result<Statement> ParseDrop();

  // Rule clauses.
  Result<std::vector<RuleEvent>> ParseTransitionPredicate();
  Result<std::vector<RuleQuery>> ParseQueryCommalist();

  // Expressions (precedence climbing).
  Result<ExprPtr> ParseExpr();        // or
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  Result<ValueType> ParseColumnType();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;  // '?' placeholders numbered in textual order
};

}  // namespace strip

#endif  // STRIP_SQL_PARSER_H_
