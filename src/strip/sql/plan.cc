#include "strip/sql/plan.h"

#include <algorithm>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

void InputSet::Add(std::string name, Table* table, const TempTable* temp) {
  BoundInput in;
  in.name = ToLower(name);
  in.table = table;
  in.temp = temp;
  if (table != nullptr) {
    in.slot = num_slots_++;
  } else {
    STRIP_CHECK(temp != nullptr);
    in.extra_base = num_extras_;
    num_extras_ += temp->schema().num_columns();
  }
  inputs_.push_back(std::move(in));
}

Result<ColumnAccessor> InputSet::Resolve(const std::string& qualifier,
                                         const std::string& column) const {
  if (!qualifier.empty()) {
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (inputs_[i].name == qualifier) {
        int c = inputs_[i].schema().FindColumn(column);
        if (c < 0) {
          return Status::NotFound(StrFormat("no column '%s' in '%s'",
                                            column.c_str(),
                                            qualifier.c_str()));
        }
        return ColumnAccessor{static_cast<int>(i), c};
      }
    }
    return Status::NotFound(
        StrFormat("unknown table '%s' in column reference", qualifier.c_str()));
  }
  ColumnAccessor found;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    int c = inputs_[i].schema().FindColumn(column);
    if (c >= 0) {
      if (found.valid()) {
        return Status::InvalidArgument(
            StrFormat("ambiguous column '%s'", column.c_str()));
      }
      found = ColumnAccessor{static_cast<int>(i), c};
    }
  }
  if (!found.valid()) {
    return Status::NotFound(StrFormat("unknown column '%s'", column.c_str()));
  }
  return found;
}

const Value& InputSet::Read(const JoinRow& row,
                            const ColumnAccessor& acc) const {
  const BoundInput& in = inputs_[static_cast<size_t>(acc.input)];
  if (in.table != nullptr) {
    return row.slots[static_cast<size_t>(in.slot)]
        ->values[static_cast<size_t>(acc.column)];
  }
  return row.extras[static_cast<size_t>(in.extra_base + acc.column)];
}

void InputSet::FillFromStandard(JoinRow& row, int input,
                                const RecordRef& rec) const {
  const BoundInput& in = inputs_[static_cast<size_t>(input)];
  STRIP_CHECK(in.table != nullptr);
  row.slots[static_cast<size_t>(in.slot)] = rec;
}

void InputSet::FillFromTemp(JoinRow& row, int input,
                            const TempTuple& tuple) const {
  const BoundInput& in = inputs_[static_cast<size_t>(input)];
  STRIP_CHECK(in.temp != nullptr);
  int n = in.temp->schema().num_columns();
  for (int c = 0; c < n; ++c) {
    row.extras[static_cast<size_t>(in.extra_base + c)] =
        in.temp->Get(tuple, c);
  }
}

Result<Value> JoinRowContext::GetColumn(const std::string& qualifier,
                                        const std::string& column) const {
  auto acc = inputs_->Resolve(qualifier, column);
  if (acc.ok()) {
    return inputs_->Read(*row_, *acc);
  }
  if (qualifier.empty() && pseudo_ != nullptr) {
    auto it = pseudo_->find(column);
    if (it != pseudo_->end()) return it->second;
  }
  return acc.status();
}

void SplitConjuncts(const Expr* where, std::vector<const Expr*>& out) {
  if (where == nullptr) return;
  if (where->kind == ExprKind::kBinary && where->bin_op == BinaryOp::kAnd) {
    SplitConjuncts(where->args[0].get(), out);
    SplitConjuncts(where->args[1].get(), out);
    return;
  }
  out.push_back(where);
}

Status CollectReferencedInputs(const Expr& expr, const InputSet& inputs,
                               const std::map<std::string, Value>* pseudo,
                               std::vector<int>& out) {
  if (expr.kind == ExprKind::kColumnRef) {
    auto acc = inputs.Resolve(expr.qualifier, expr.column);
    if (!acc.ok()) {
      if (expr.qualifier.empty() && pseudo != nullptr &&
          pseudo->count(expr.column) > 0) {
        return Status::OK();  // pseudo column: no input
      }
      return acc.status();
    }
    if (std::find(out.begin(), out.end(), acc->input) == out.end()) {
      out.push_back(acc->input);
    }
    return Status::OK();
  }
  for (const auto& a : expr.args) {
    STRIP_RETURN_IF_ERROR(
        CollectReferencedInputs(*a, inputs, pseudo, out));
  }
  return Status::OK();
}

Result<std::vector<Conjunct>> ClassifyConjuncts(
    const Expr* where, const InputSet& inputs,
    const std::map<std::string, Value>* pseudo) {
  std::vector<const Expr*> raw;
  SplitConjuncts(where, raw);
  std::vector<Conjunct> out;
  out.reserve(raw.size());
  for (const Expr* e : raw) {
    Conjunct c;
    c.expr = e;
    STRIP_RETURN_IF_ERROR(
        CollectReferencedInputs(*e, inputs, pseudo, c.referenced));
    std::sort(c.referenced.begin(), c.referenced.end());
    if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kEq) {
      std::vector<int> l, r;
      STRIP_RETURN_IF_ERROR(
          CollectReferencedInputs(*e->args[0], inputs, pseudo, l));
      STRIP_RETURN_IF_ERROR(
          CollectReferencedInputs(*e->args[1], inputs, pseudo, r));
      if (l.size() == 1 && r.size() == 1 && l[0] != r[0]) {
        c.equi_join = true;
        c.lhs = e->args[0].get();
        c.lhs_input = l[0];
        c.rhs = e->args[1].get();
        c.rhs_input = r[0];
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace strip
