#ifndef STRIP_SQL_AST_H_
#define STRIP_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "strip/storage/index.h"
#include "strip/storage/schema.h"
#include "strip/storage/value.h"

namespace strip {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,    // 42, 3.5, 'abc', null
  kColumnRef,  // col or tbl.col
  kBinary,
  kUnary,
  kFuncCall,   // scalar function: f(args...)
  kAggregate,  // sum/count/avg/min/max (count(*) has no args)
  kParameter,  // ?: prepared-statement placeholder, bound at execution
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp {
  kNeg,
  kNot,
};

const char* BinaryOpName(BinaryOp op);

/// A SQL expression tree node. One struct with a kind tag rather than a
/// class hierarchy: the node set is small and closed, and a flat struct
/// keeps the evaluator a single switch.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef: qualifier may be empty ("price" vs "new.price").
  std::string qualifier;
  std::string column;

  // kBinary (args[0], args[1]) / kUnary (args[0])
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNeg;

  // kFuncCall / kAggregate: lower-cased name.
  std::string func_name;

  std::vector<ExprPtr> args;

  /// True for count(*): an aggregate with star_arg and no args.
  bool star_arg = false;

  /// kParameter: 0-based ordinal in textual order ('?' placeholders are
  /// numbered left to right within one statement).
  int param_index = 0;

  std::string ToString() const;

  /// Deep copy.
  ExprPtr Clone() const;

  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeAggregate(std::string name, std::vector<ExprPtr> args,
                      bool star_arg);
ExprPtr MakeParameter(int index);

/// True iff `name` is an aggregate function name (sum/count/avg/min/max).
bool IsAggregateName(const std::string& name);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// One item of a select list: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // "" if none

  /// Output column name: alias, else bare column name, else a synthesized
  /// name assigned by the planner.
  std::string OutputName(int position) const;
};

/// FROM-clause entry: `name [alias]`. The name resolves to a bound table
/// (when running inside a rule context), a transition table, or a catalog
/// table, in that order.
struct TableRef {
  std::string table;
  std::string alias;  // "" if none

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// SELECT [DISTINCT] ... FROM ... [WHERE ...] [GROUP BY ...] [HAVING ...]
/// [ORDER BY ...] [LIMIT n]. IN-lists and BETWEEN are desugared by the
/// parser into OR / AND chains.
struct SelectStmt {
  bool star = false;               // SELECT *
  bool distinct = false;           // SELECT DISTINCT
  std::vector<SelectItem> items;   // empty iff star
  std::vector<TableRef> from;
  ExprPtr where;                   // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                  // may be null; requires aggregation
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;              // -1 = no limit

  SelectStmt() = default;
  SelectStmt(SelectStmt&&) = default;
  SelectStmt& operator=(SelectStmt&&) = default;

  /// Deep copy (rules keep their condition queries and re-run them).
  SelectStmt Clone() const;

  std::string ToString() const;
};

struct CreateTableStmt {
  std::string name;
  Schema schema;
};

struct DropTableStmt {
  std::string name;
};

struct CreateIndexStmt {
  std::string index_name;  // informational
  std::string table;
  std::string column;
  IndexKind kind = IndexKind::kHash;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;           // empty = schema order
  std::vector<std::vector<ExprPtr>> rows;     // VALUES (...), (...)
};

struct UpdateStmt {
  struct SetClause {
    std::string column;
    ExprPtr expr;  // `col += e` is desugared to `col = col + e` at parse
  };
  std::string table;
  std::vector<SetClause> sets;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

/// CREATE [MATERIALIZED] VIEW name AS select. Views are registered with the
/// view manager; materialized ones get a backing table.
struct CreateViewStmt {
  std::string name;
  bool materialized = false;
  SelectStmt query;
};

// ---------------------------------------------------------------------------
// Rule definition (Figure 2)
// ---------------------------------------------------------------------------

/// Transition-predicate event.
enum class RuleEventKind {
  kInserted,
  kDeleted,
  kUpdated,
};

struct RuleEvent {
  RuleEventKind kind = RuleEventKind::kInserted;
  /// For kUpdated: restrict to updates touching these columns (empty =
  /// any column).
  std::vector<std::string> columns;
};

/// A condition / evaluate query with an optional `bind as` name.
struct RuleQuery {
  SelectStmt query;
  std::string bind_as;  // "" = not bound

  RuleQuery Clone() const;
};

/// create rule name on t-name when events [if queries] then
///   [evaluate queries] execute fn [unique [on cols]] [after t seconds]
struct CreateRuleStmt {
  std::string rule_name;
  std::string table;
  std::vector<RuleEvent> events;
  std::vector<RuleQuery> condition;   // `if` clause
  std::vector<RuleQuery> evaluate;    // `evaluate` clause
  std::string function_name;          // `execute` clause
  bool unique = false;
  std::vector<std::string> unique_columns;  // `unique on c1, c2`
  double delay_seconds = 0.0;               // `after t seconds`
};

struct DropRuleStmt {
  std::string name;
};

/// Any parsed statement.
using Statement =
    std::variant<SelectStmt, CreateTableStmt, DropTableStmt, CreateIndexStmt,
                 InsertStmt, UpdateStmt, DeleteStmt, CreateViewStmt,
                 CreateRuleStmt, DropRuleStmt>;

}  // namespace strip

#endif  // STRIP_SQL_AST_H_
