#ifndef STRIP_SQL_TOKEN_H_
#define STRIP_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace strip {

/// Lexical token kinds for the STRIP SQL subset (plus the rule-definition
/// grammar of Figure 2).
enum class TokenKind {
  kEof,
  kIdentifier,   // table / column / function names (case-insensitive)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // '...'

  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,         // =
  kNe,         // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlusEq,     // += (used in UPDATE ... SET col += expr)
  kMinusEq,    // -=
  kQuestion,   // ? (prepared-statement parameter placeholder)
};

const char* TokenKindName(TokenKind k);

/// One lexed token. Identifier text is preserved as written; keyword
/// recognition happens in the parser via case-insensitive comparison, so
/// keywords are NOT reserved (a table may be called `value`).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // identifier / literal spelling
  int64_t int_value = 0;
  double double_value = 0;
  int position = 0;        // byte offset in the input, for error messages

  std::string ToString() const;
};

}  // namespace strip

#endif  // STRIP_SQL_TOKEN_H_
