#ifndef STRIP_SQL_PLAN_H_
#define STRIP_SQL_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/sql/expr_eval.h"
#include "strip/storage/bound_table_set.h"
#include "strip/storage/table.h"
#include "strip/storage/temp_table.h"

namespace strip {

/// One resolved FROM-clause input: a standard table or a temporary
/// (transition / bound) table, with its position in intermediate join rows.
struct BoundInput {
  std::string name;               // effective (alias or table) name, lowered
  Table* table = nullptr;         // exactly one of table / temp is set
  const TempTable* temp = nullptr;

  /// Standard tables contribute one RecordRef slot to join rows; temp
  /// tables have their columns copied into the join row's extras array.
  int slot = -1;
  int extra_base = -1;

  const Schema& schema() const {
    return table != nullptr ? table->schema() : temp->schema();
  }
  size_t EstimatedRows() const {
    return table != nullptr ? table->size() : temp->size();
  }
  bool is_temp() const { return temp != nullptr; }
};

/// Identifies a column of one bound input.
struct ColumnAccessor {
  int input = -1;
  int column = -1;

  bool valid() const { return input >= 0; }
};

/// An intermediate row during join processing: one RecordRef per standard
/// input (pointer scheme, §6.1) plus materialized values for temp-input
/// columns. Slots for inputs not yet joined are null.
struct JoinRow {
  std::vector<RecordRef> slots;
  std::vector<Value> extras;
};

/// The resolved FROM clause: owns the input descriptors and resolves
/// column references.
class InputSet {
 public:
  /// Adds an input; assigns slot / extra_base positions.
  void Add(std::string name, Table* table, const TempTable* temp);

  const std::vector<BoundInput>& inputs() const { return inputs_; }
  int num_slots() const { return num_slots_; }
  int num_extras() const { return num_extras_; }

  /// Resolves `qualifier.column` (empty qualifier = search all inputs;
  /// ambiguity is an error). NotFound when no input has the column.
  Result<ColumnAccessor> Resolve(const std::string& qualifier,
                                 const std::string& column) const;

  /// Reads the accessor's value from a join row.
  const Value& Read(const JoinRow& row, const ColumnAccessor& acc) const;

  /// Fills the join-row positions of input `i` from its scan row.
  /// For standard inputs `rec` is used; for temp inputs `tuple`.
  void FillFromStandard(JoinRow& row, int input, const RecordRef& rec) const;
  void FillFromTemp(JoinRow& row, int input, const TempTuple& tuple) const;

 private:
  std::vector<BoundInput> inputs_;
  int num_slots_ = 0;
  int num_extras_ = 0;
};

/// RowContext over a JoinRow, with optional pseudo-columns (e.g. the
/// rule system's `commit_time`) consulted when normal resolution fails.
class JoinRowContext final : public RowContext {
 public:
  JoinRowContext(const InputSet* inputs, const JoinRow* row,
                 const std::map<std::string, Value>* pseudo = nullptr)
      : inputs_(inputs), row_(row), pseudo_(pseudo) {}

  void set_row(const JoinRow* row) { row_ = row; }

  Result<Value> GetColumn(const std::string& qualifier,
                          const std::string& column) const override;

 private:
  const InputSet* inputs_;
  const JoinRow* row_;
  const std::map<std::string, Value>* pseudo_;
};

/// Splits a WHERE tree into top-level AND conjuncts (borrowed pointers
/// into the statement's expression tree).
void SplitConjuncts(const Expr* where, std::vector<const Expr*>& out);

/// Appends the indexes of every input referenced by `expr` (via resolvable
/// column refs) to `out`, deduplicated. Unresolvable bare names that match
/// a pseudo column are ignored. Fails on genuinely unknown columns.
Status CollectReferencedInputs(const Expr& expr, const InputSet& inputs,
                               const std::map<std::string, Value>* pseudo,
                               std::vector<int>& out);

/// A classified WHERE conjunct.
struct Conjunct {
  const Expr* expr = nullptr;
  std::vector<int> referenced;  // input indexes, sorted

  /// Equi-join decomposition: expr is `lhs = rhs` where each side
  /// references exactly one (distinct) input.
  bool equi_join = false;
  const Expr* lhs = nullptr;
  int lhs_input = -1;
  const Expr* rhs = nullptr;
  int rhs_input = -1;
};

/// Classifies the conjuncts of `where` against `inputs`.
Result<std::vector<Conjunct>> ClassifyConjuncts(
    const Expr* where, const InputSet& inputs,
    const std::map<std::string, Value>* pseudo);

}  // namespace strip

#endif  // STRIP_SQL_PLAN_H_
