#include "strip/sql/expr_eval.h"

#include <cmath>

#include "strip/common/string_util.h"

namespace strip {

namespace {

Result<Value> EvalArith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == BinaryOp::kAdd && a.type() == ValueType::kString &&
        b.type() == ValueType::kString) {
      return Value::Str(a.as_string() + b.as_string());  // concatenation
    }
    return Status::InvalidArgument(
        StrFormat("arithmetic on non-numeric values (%s %s %s)",
                  a.ToString().c_str(), BinaryOpName(op),
                  b.ToString().c_str()));
  }
  // Division always yields double (financial workloads; avoids silent
  // truncation). Other ops preserve int when both sides are ints.
  if (op == BinaryOp::kDiv) {
    double d = b.as_double();
    if (d == 0.0) {
      return Status::InvalidArgument("division by zero");
    }
    return Value::Double(a.as_double() / d);
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    int64_t x = a.as_int(), y = b.as_int();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(x + y);
      case BinaryOp::kSub: return Value::Int(x - y);
      case BinaryOp::kMul: return Value::Int(x * y);
      default: break;
    }
  }
  double x = a.as_double(), y = b.as_double();
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(x + y);
    case BinaryOp::kSub: return Value::Double(x - y);
    case BinaryOp::kMul: return Value::Double(x * y);
    default: break;
  }
  return Status::Internal("unexpected arithmetic operator");
}

Result<Value> EvalCompare(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_numeric() != b.is_numeric()) {
    return Status::InvalidArgument(StrFormat(
        "cannot compare %s with %s", ValueTypeName(a.type()),
        ValueTypeName(b.type())));
  }
  int c = Value::Compare(a, b);
  bool r = false;
  switch (op) {
    case BinaryOp::kEq: r = c == 0; break;
    case BinaryOp::kNe: r = c != 0; break;
    case BinaryOp::kLt: r = c < 0; break;
    case BinaryOp::kLe: r = c <= 0; break;
    case BinaryOp::kGt: r = c > 0; break;
    case BinaryOp::kGe: r = c >= 0; break;
    default:
      return Status::Internal("unexpected comparison operator");
  }
  return Value::Bool(r);
}

Result<Value> Arg1Math(const std::vector<Value>& args, const char* name,
                       double (*fn)(double)) {
  if (args.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("%s() takes exactly one argument", name));
  }
  if (args[0].is_null()) return Value::Null();
  if (!args[0].is_numeric()) {
    return Status::InvalidArgument(
        StrFormat("%s() requires a numeric argument", name));
  }
  return Value::Double(fn(args[0].as_double()));
}

}  // namespace

Result<Value> EvalBinaryOp(BinaryOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return EvalArith(op, a, b);
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalCompare(op, a, b);
    case BinaryOp::kAnd:
      return Value::Bool(a.IsTruthy() && b.IsTruthy());
    case BinaryOp::kOr:
      return Value::Bool(a.IsTruthy() || b.IsTruthy());
  }
  return Status::Internal("unexpected binary operator");
}

Result<Value> EvalExpr(const Expr& expr, const RowContext* row,
                       const ScalarFuncRegistry* funcs,
                       const std::vector<Value>* params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kParameter: {
      if (params == nullptr ||
          expr.param_index >= static_cast<int>(params->size()) ||
          expr.param_index < 0) {
        return Status::InvalidArgument(StrFormat(
            "unbound statement parameter ?%d", expr.param_index + 1));
      }
      return (*params)[static_cast<size_t>(expr.param_index)];
    }
    case ExprKind::kColumnRef: {
      if (row == nullptr) {
        return Status::InvalidArgument(StrFormat(
            "column '%s' referenced in a constant context",
            expr.column.c_str()));
      }
      return row->GetColumn(expr.qualifier, expr.column);
    }
    case ExprKind::kBinary: {
      // Short-circuit AND/OR on the left operand.
      if (expr.bin_op == BinaryOp::kAnd || expr.bin_op == BinaryOp::kOr) {
        STRIP_ASSIGN_OR_RETURN(Value lhs,
                               EvalExpr(*expr.args[0], row, funcs, params));
        bool l = lhs.IsTruthy();
        if (expr.bin_op == BinaryOp::kAnd && !l) return Value::Bool(false);
        if (expr.bin_op == BinaryOp::kOr && l) return Value::Bool(true);
        STRIP_ASSIGN_OR_RETURN(Value rhs,
                               EvalExpr(*expr.args[1], row, funcs, params));
        return Value::Bool(rhs.IsTruthy());
      }
      STRIP_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.args[0], row, funcs, params));
      STRIP_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.args[1], row, funcs, params));
      return EvalBinaryOp(expr.bin_op, lhs, rhs);
    }
    case ExprKind::kUnary: {
      STRIP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], row, funcs, params));
      if (expr.un_op == UnaryOp::kNot) {
        return Value::Bool(!v.IsTruthy());
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.as_int());
      if (v.type() == ValueType::kDouble) return Value::Double(-v.as_double());
      return Status::InvalidArgument("negation of non-numeric value");
    }
    case ExprKind::kFuncCall: {
      if (funcs == nullptr) {
        return Status::InvalidArgument(StrFormat(
            "no function registry for call to '%s'", expr.func_name.c_str()));
      }
      const ScalarFunc* fn = funcs->Find(expr.func_name);
      if (fn == nullptr) {
        return Status::NotFound(StrFormat("unknown function '%s'",
                                          expr.func_name.c_str()));
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        STRIP_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, row, funcs, params));
        args.push_back(std::move(v));
      }
      return (*fn)(args);
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(StrFormat(
          "aggregate %s() outside of a select list", expr.func_name.c_str()));
  }
  return Status::Internal("unexpected expression kind");
}

Status ScalarFuncRegistry::Register(const std::string& name, ScalarFunc fn) {
  std::string key = ToLower(name);
  if (funcs_.count(key) > 0) {
    return Status::AlreadyExists(
        StrFormat("function '%s' already registered", key.c_str()));
  }
  funcs_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

const ScalarFunc* ScalarFuncRegistry::Find(const std::string& name) const {
  auto it = funcs_.find(ToLower(name));
  return it == funcs_.end() ? nullptr : &it->second;
}

ScalarFuncRegistry ScalarFuncRegistry::WithBuiltins() {
  ScalarFuncRegistry r;
  auto reg1 = [&r](const char* name, double (*fn)(double)) {
    Status st = r.Register(name, [name, fn](const std::vector<Value>& args) {
      return Arg1Math(args, name, fn);
    });
    (void)st;
  };
  reg1("sqrt", [](double x) { return std::sqrt(x); });
  reg1("exp", [](double x) { return std::exp(x); });
  reg1("ln", [](double x) { return std::log(x); });
  reg1("log", [](double x) { return std::log10(x); });
  reg1("floor", [](double x) { return std::floor(x); });
  reg1("ceil", [](double x) { return std::ceil(x); });
  reg1("erf", [](double x) { return std::erf(x); });
  // Cumulative distribution function of the standard normal, computed from
  // the C math library error function as in the paper (§4.3).
  reg1("normcdf",
       [](double x) { return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0))); });

  Status st = r.Register("abs", [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) {
      return Status::InvalidArgument("abs() takes exactly one argument");
    }
    const Value& v = args[0];
    if (v.is_null()) return Value::Null();
    if (v.type() == ValueType::kInt) {
      return Value::Int(v.as_int() < 0 ? -v.as_int() : v.as_int());
    }
    if (v.type() == ValueType::kDouble) {
      return Value::Double(std::fabs(v.as_double()));
    }
    return Status::InvalidArgument("abs() requires a numeric argument");
  });
  st = r.Register("pow", [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) {
      return Status::InvalidArgument("pow() takes exactly two arguments");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (!args[0].is_numeric() || !args[1].is_numeric()) {
      return Status::InvalidArgument("pow() requires numeric arguments");
    }
    return Value::Double(std::pow(args[0].as_double(), args[1].as_double()));
  });
  auto extremum = [](const char* name, bool want_max) {
    return [name, want_max](const std::vector<Value>& args) -> Result<Value> {
      if (args.empty()) {
        return Status::InvalidArgument(
            StrFormat("%s() requires at least one argument", name));
      }
      Value best = args[0];
      for (const Value& v : args) {
        if (v.is_null()) return Value::Null();
        int c = Value::Compare(v, best);
        if (want_max ? c > 0 : c < 0) best = v;
      }
      return best;
    };
  };
  st = r.Register("least", extremum("least", false));
  st = r.Register("greatest", extremum("greatest", true));
  (void)st;
  return r;
}

}  // namespace strip
