#include "strip/obs/watchdog.h"

#include <algorithm>

#include "strip/obs/json.h"

namespace strip {

const char* WatchdogStateName(WatchdogState s) {
  switch (s) {
    case WatchdogState::kOk: return "ok";
    case WatchdogState::kWarn: return "warn";
    case WatchdogState::kShed: return "shed";
  }
  return "?";
}

std::string WatchdogVerdict::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("state").String(WatchdogStateName(state));
  w.Key("at").Int(at);
  w.Key("consecutive_breaches").Int(consecutive_breaches);
  w.Key("consecutive_clean").Int(consecutive_clean);
  w.Key("worst_signal").String(worst_signal);
  w.Key("signals").BeginArray();
  for (const WatchdogSignal& s : signals) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("observed").Double(s.observed);
    w.Key("threshold").Double(s.threshold);
    w.Key("samples").Uint(s.samples);
    w.Key("breached").Bool(s.breached);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Watchdog::Watchdog(MetricsRegistry* metrics, WatchdogSlo slo)
    : metrics_(metrics), slo_(std::move(slo)) {}

double Watchdog::IntervalP99(const std::string& prefix, uint64_t* samples) {
  // Merge this interval's new observations across every histogram under
  // the prefix. They all share DefaultLatencyBoundsMicros, so bucket i
  // means the same range everywhere; a histogram with foreign bounds is
  // skipped rather than merged into the wrong edges.
  std::vector<int64_t> bounds;
  std::vector<uint64_t> merged;
  uint64_t total = 0;
  for (const auto& [name, hist] : metrics_->Histograms(prefix)) {
    const size_t nb = hist->bounds().size();
    std::vector<uint64_t> cur(nb + 1);
    for (size_t i = 0; i <= nb; ++i) cur[i] = hist->bucket_count(i);
    auto it = prev_buckets_.find(name);
    if (it == prev_buckets_.end()) {
      // First sighting (construction, or a rule registered mid-flight):
      // baseline only, so pre-watchdog history is never judged.
      prev_buckets_.emplace(name, std::move(cur));
      continue;
    }
    if (bounds.empty()) {
      bounds = hist->bounds();
      merged.assign(bounds.size() + 1, 0);
    }
    if (hist->bounds() != bounds || it->second.size() != cur.size()) {
      it->second = std::move(cur);
      continue;
    }
    for (size_t i = 0; i < cur.size(); ++i) {
      uint64_t delta = cur[i] - std::min(cur[i], it->second[i]);
      merged[i] += delta;
      total += delta;
    }
    it->second = std::move(cur);
  }
  *samples = total;
  if (total == 0) return 0.0;

  // p99 by linear interpolation inside the owning bucket, mirroring
  // Histogram::Percentile but over the interval's deltas. The overflow
  // bucket extrapolates one rung up the 1-3-10 ladder — min/max are
  // lifetime values, useless for an interval.
  double target = 0.99 * static_cast<double>(total);
  double seen = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    double in_bucket = static_cast<double>(merged[i]);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      double hi = i < bounds.size()
                      ? static_cast<double>(bounds[i])
                      : static_cast<double>(bounds.back()) * 3.0;
      double frac = (target - seen) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(bounds.back()) * 3.0;
}

WatchdogVerdict Watchdog::Evaluate(Timestamp now) {
  WatchdogVerdict v;
  v.at = now;

  if (slo_.staleness_p99_us > 0) {
    WatchdogSignal s;
    s.name = "staleness_p99_us";
    s.threshold = static_cast<double>(slo_.staleness_p99_us);
    s.observed = IntervalP99(slo_.staleness_prefix, &s.samples);
    s.breached = s.samples > 0 && s.observed > s.threshold;
    v.signals.push_back(std::move(s));
  }
  if (slo_.queue_wait_p99_us > 0) {
    WatchdogSignal s;
    s.name = "queue_wait_p99_us";
    s.threshold = static_cast<double>(slo_.queue_wait_p99_us);
    s.observed = IntervalP99(slo_.queue_wait_prefix, &s.samples);
    s.breached = s.samples > 0 && s.observed > s.threshold;
    v.signals.push_back(std::move(s));
  }
  if (slo_.max_lock_abort_rate > 0) {
    std::map<std::string, double> gauges = metrics_->GaugeValues();
    double aborts = 0, acquires = 0;
    auto it = gauges.find("locks.wait_die_aborts");
    if (it != gauges.end()) aborts = it->second;
    it = gauges.find("locks.acquires");
    if (it != gauges.end()) acquires = it->second;
    double d_aborts = std::max(0.0, aborts - prev_aborts_);
    double d_acquires = std::max(0.0, acquires - prev_acquires_);
    prev_aborts_ = aborts;
    prev_acquires_ = acquires;
    WatchdogSignal s;
    s.name = "lock_abort_rate";
    s.threshold = slo_.max_lock_abort_rate;
    s.samples = static_cast<uint64_t>(d_acquires);
    s.observed = baselined_ && d_acquires > 0 ? d_aborts / d_acquires : 0.0;
    s.breached = s.samples > 0 && s.observed > s.threshold;
    v.signals.push_back(std::move(s));
  }

  // The first call only set baselines; judge from the second call on.
  bool first = !baselined_;
  baselined_ = true;

  bool breached = false;
  bool warned = false;
  double worst_ratio = 0;
  for (const WatchdogSignal& s : v.signals) {
    if (first || s.threshold <= 0) continue;
    double ratio = s.observed / s.threshold;
    if (s.samples > 0 && ratio > worst_ratio) {
      worst_ratio = ratio;
      v.worst_signal = s.name;
    }
    breached = breached || s.breached;
    warned = warned || (s.samples > 0 && ratio >= slo_.warn_fraction);
  }
  if (worst_ratio < slo_.warn_fraction) v.worst_signal.clear();

  if (breached) {
    ++consecutive_breaches_;
    consecutive_clean_ = 0;
  } else {
    consecutive_breaches_ = 0;
    ++consecutive_clean_;
  }

  WatchdogState prev = state_;
  if (state_ == WatchdogState::kShed) {
    if (consecutive_clean_ >= slo_.clear_intervals) {
      state_ = WatchdogState::kOk;
    }
  } else if (consecutive_breaches_ >= slo_.trip_intervals) {
    state_ = WatchdogState::kShed;
  } else if (breached || warned) {
    // Breaching but not yet tripped, or merely near a threshold: warn.
    state_ = WatchdogState::kWarn;
  } else {
    state_ = WatchdogState::kOk;
  }

  v.state = state_;
  v.consecutive_breaches = consecutive_breaches_;
  v.consecutive_clean = consecutive_clean_;
  last_verdict_ = v;
  if (state_ == WatchdogState::kShed && prev != WatchdogState::kShed &&
      on_shed_) {
    on_shed_(v);
  }
  return v;
}

}  // namespace strip
