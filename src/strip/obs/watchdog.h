#ifndef STRIP_OBS_WATCHDOG_H_
#define STRIP_OBS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/obs/metrics.h"

namespace strip {

/// Service-level objectives the watchdog evaluates per interval. A
/// threshold of 0 (or a non-positive rate) disables that check.
struct WatchdogSlo {
  /// p99 of rule-commit staleness over the interval, micros
  /// (histograms under `staleness_prefix`).
  int64_t staleness_p99_us = 0;
  /// p99 of task queue wait over the interval, micros
  /// (histograms under `queue_wait_prefix`).
  int64_t queue_wait_p99_us = 0;
  /// Wait-die aborts per lock acquire over the interval
  /// (locks.wait_die_aborts / locks.acquires deltas).
  double max_lock_abort_rate = 0.0;

  /// Fraction of a threshold at which the verdict escalates to `warn`.
  double warn_fraction = 0.75;
  /// Consecutive breaching intervals before entering `shed`.
  int trip_intervals = 2;
  /// Consecutive clean intervals before `shed` clears back to `ok`.
  int clear_intervals = 2;

  /// Histogram name prefixes the two latency signals aggregate over. The
  /// defaults cover every rule's staleness histogram and the global task
  /// queue; narrow them to watch a single rule.
  std::string staleness_prefix = "rules.staleness_us.";
  std::string queue_wait_prefix = "task.queue_wait_us";
};

/// `ok` -> `warn` -> `shed`: warn is advisory (approaching a threshold or
/// breaching one without having tripped yet); shed means the system should
/// drop load (the paper's overload regime, §7 — staleness grows without
/// bound once the rule system cannot keep up).
enum class WatchdogState { kOk, kWarn, kShed };

const char* WatchdogStateName(WatchdogState s);

/// One evaluated signal of a verdict.
struct WatchdogSignal {
  std::string name;       // "staleness_p99_us" / "queue_wait_p99_us" / ...
  double observed = 0;    // this interval's value
  double threshold = 0;   // the SLO it is judged against
  uint64_t samples = 0;   // observations the value is based on
  bool breached = false;  // observed > threshold
};

/// The structured overload verdict published by Evaluate().
struct WatchdogVerdict {
  WatchdogState state = WatchdogState::kOk;
  Timestamp at = 0;  // evaluation time (caller's clock)
  int consecutive_breaches = 0;
  int consecutive_clean = 0;
  /// The signal furthest over (or closest to) its threshold; empty while
  /// everything is comfortably under.
  std::string worst_signal;
  std::vector<WatchdogSignal> signals;

  std::string ToJson() const;
};

/// Overload watchdog: call Evaluate() periodically; each call judges the
/// *interval since the previous call* — histogram bucket-count deltas and
/// lock-counter deltas, never lifetime aggregates — against the SLOs, and
/// runs the ok/warn/shed state machine with hysteresis (trip_intervals to
/// enter shed, clear_intervals of clean air to leave it). An interval with
/// no observations is clean: a drained system recovers.
///
/// The first Evaluate() after construction (and the first sighting of any
/// newly registered per-rule histogram) only records a baseline — history
/// predating the watchdog is never judged.
///
/// Not thread-safe: evaluate from one thread (the probe/monitor thread).
class Watchdog {
 public:
  Watchdog(MetricsRegistry* metrics, WatchdogSlo slo);

  const WatchdogSlo& slo() const { return slo_; }
  WatchdogState state() const { return state_; }
  const WatchdogVerdict& last_verdict() const { return last_verdict_; }

  /// Invoked (synchronously, inside Evaluate) on every transition *into*
  /// shed — the flight-recorder hook.
  void set_on_shed(std::function<void(const WatchdogVerdict&)> fn) {
    on_shed_ = std::move(fn);
  }

  WatchdogVerdict Evaluate(Timestamp now);

 private:
  /// Interval p99 across all histograms under `prefix`, from bucket-count
  /// deltas vs. the previous evaluation. `samples` gets the interval's
  /// total observation count.
  double IntervalP99(const std::string& prefix, uint64_t* samples);

  MetricsRegistry* metrics_;
  WatchdogSlo slo_;
  WatchdogState state_ = WatchdogState::kOk;
  WatchdogVerdict last_verdict_;
  int consecutive_breaches_ = 0;
  int consecutive_clean_ = 0;
  bool baselined_ = false;
  /// Previous bucket counts per histogram name (count appended last).
  std::map<std::string, std::vector<uint64_t>> prev_buckets_;
  double prev_aborts_ = 0;
  double prev_acquires_ = 0;
  std::function<void(const WatchdogVerdict&)> on_shed_;
};

}  // namespace strip

#endif  // STRIP_OBS_WATCHDOG_H_
