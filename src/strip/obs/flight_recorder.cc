#include "strip/obs/flight_recorder.h"

#include <fstream>

#include "strip/common/string_util.h"
#include "strip/obs/json.h"

namespace strip {

Status WriteFlightRecord(const std::string& path, const std::string& reason,
                         const std::string& verdict_json,
                         const TraceRing& ring,
                         const MetricsRegistry& metrics) {
  JsonWriter w;
  w.BeginObject();
  w.Key("reason").String(reason);
  w.Key("wall_micros").Int(TraceRing::WallMicros());
  if (verdict_json.empty()) {
    w.Key("verdict").Null();
  } else {
    w.Key("verdict").Raw(verdict_json);
  }
  w.Key("trace").Raw(ring.ToChromeJson());
  w.Key("metrics").Raw(metrics.SnapshotJson());
  w.EndObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal(
        StrFormat("cannot open flight record '%s'", path.c_str()));
  }
  out << w.str() << "\n";
  out.close();
  if (!out) {
    return Status::Internal(
        StrFormat("short write to flight record '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace strip
