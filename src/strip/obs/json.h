#ifndef STRIP_OBS_JSON_H_
#define STRIP_OBS_JSON_H_

#include <cstdint>
#include <string>

namespace strip {

/// Escapes `s` for inclusion in a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

/// Minimal streaming JSON builder: handles commas, nesting, and string
/// escaping so every exporter in the system (metrics snapshots, Chrome
/// traces, BENCH_*.json files) emits structurally valid JSON from one
/// code path instead of hand-placed fprintf commas.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name").String("pta");
///   w.Key("runs").BeginArray();
///   w.BeginObject(); w.Key("workers").Int(4); w.EndObject();
///   w.EndArray();
///   w.EndObject();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& k);

  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Uint(uint64_t v);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON value (e.g. a registry snapshot) in as
  /// the next value; the fragment must itself be valid JSON.
  JsonWriter& Raw(const std::string& json_fragment);

  const std::string& str() const { return out_; }

 private:
  /// Emits the comma separating this value from a preceding sibling.
  void BeforeValue();

  std::string out_;
  /// True when the next value at the current nesting level needs a
  /// leading comma. Keys set `after_key_` so their value skips it.
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace strip

#endif  // STRIP_OBS_JSON_H_
