#ifndef STRIP_OBS_TRACE_CONTEXT_H_
#define STRIP_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace strip {

/// Causal identity carried through the firing pipeline: feed record ->
/// feed transaction -> rule firing -> (possibly merged) action task ->
/// action transaction -> view commit. Every hop keeps `trace_id` and mints
/// a fresh `span_id` whose `parent_span_id` points at the hop that caused
/// it, so an exported trace reconstructs the causal chain even across
/// unique-transaction merging and executor work stealing.
///
/// An all-zero context means "untraced" (e.g. ad-hoc SQL through the
/// shell); consumers must not mint children off it.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool traced() const { return trace_id != 0; }
};

namespace internal {
inline std::atomic<uint64_t>& TraceIdCounter() {
  static std::atomic<uint64_t> next{1};
  return next;
}
}  // namespace internal

/// Allocates a process-unique non-zero id (shared pool for trace and span
/// ids — uniqueness is all that matters, not density).
inline uint64_t NextTraceId() {
  return internal::TraceIdCounter().fetch_add(1, std::memory_order_relaxed);
}

/// A fresh root context: new trace id, new span, no parent.
inline TraceContext NewTraceContext() {
  TraceContext ctx;
  ctx.trace_id = NextTraceId();
  ctx.span_id = NextTraceId();
  ctx.parent_span_id = 0;
  return ctx;
}

/// A child span within the parent's trace. For an untraced parent this
/// starts a fresh root instead (never fabricates a child of trace 0).
inline TraceContext ChildOf(const TraceContext& parent) {
  if (!parent.traced()) return NewTraceContext();
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = NextTraceId();
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

}  // namespace strip

#endif  // STRIP_OBS_TRACE_CONTEXT_H_
