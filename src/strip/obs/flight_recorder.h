#ifndef STRIP_OBS_FLIGHT_RECORDER_H_
#define STRIP_OBS_FLIGHT_RECORDER_H_

#include <string>

#include "strip/common/status.h"
#include "strip/obs/metrics.h"
#include "strip/obs/trace_ring.h"

namespace strip {

/// Dumps the system's black box to `path` as one JSON object:
///
///   {"reason": "<why the dump happened>",
///    "wall_micros": <TraceRing::WallMicros() at dump time>,
///    "verdict": <watchdog verdict object, or null>,
///    "trace": <TraceRing::ToChromeJson(): {"traceEvents": [...], ...}>,
///    "metrics": <MetricsRegistry::SnapshotJson()>}
///
/// Written when the chaos harness's invariant checker trips or the
/// watchdog enters shed — the last `ring.capacity()` lifecycle events plus
/// a full metrics snapshot are usually enough to reconstruct what the
/// system was doing when it went wrong. `verdict_json` may be empty (no
/// watchdog involved); when present it must be valid JSON.
Status WriteFlightRecord(const std::string& path, const std::string& reason,
                         const std::string& verdict_json,
                         const TraceRing& ring,
                         const MetricsRegistry& metrics);

}  // namespace strip

#endif  // STRIP_OBS_FLIGHT_RECORDER_H_
