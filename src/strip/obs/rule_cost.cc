#include "strip/obs/rule_cost.h"

namespace strip {

const RuleCostHandles* RuleCostTracker::Handles(
    const std::string& function_name) {
  {
    SpinLockGuard g(lock_);
    auto it = handles_.find(function_name);
    if (it != handles_.end()) return it->second.get();
  }
  // First sighting of this function: resolve the instruments outside the
  // spinlock (registry lookups take a mutex), then publish. A racing first
  // sighting resolves the same registry pointers, so last-in wins safely.
  auto h = std::make_unique<RuleCostHandles>();
  h->queue_wait_us =
      registry_->histogram("rules.queue_wait_us." + function_name);
  h->lock_wait_us =
      registry_->histogram("rules.lock_wait_us." + function_name);
  h->exec_us = registry_->histogram("rules.exec_us." + function_name);
  h->cpu_micros = registry_->counter("rules.cost.cpu_micros." + function_name);
  h->rows_scanned =
      registry_->counter("rules.cost.rows_scanned." + function_name);
  h->deltas_folded =
      registry_->counter("rules.cost.deltas_folded." + function_name);
  h->lock_aborts =
      registry_->counter("rules.cost.lock_aborts." + function_name);
  SpinLockGuard g(lock_);
  auto [it, _] = handles_.try_emplace(function_name, std::move(h));
  return it->second.get();
}

}  // namespace strip
