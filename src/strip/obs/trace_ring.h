#ifndef STRIP_OBS_TRACE_RING_H_
#define STRIP_OBS_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/spin_lock.h"

namespace strip {

/// A point in a transaction/task lifecycle (§6.2 Figure 15 flow):
/// submit -> (delayed ->) ready -> start -> commit/abort/restart -> finish,
/// plus merge events for firings batched into queued unique tasks.
enum class TraceEventKind : uint8_t {
  kSubmit,    // task handed to the executor
  kDelayed,   // parked in the delay queue (future release time)
  kReady,     // entered a ready queue
  kStart,     // task body began executing
  kFinish,    // task body done (result recorded)
  kCommit,    // a transaction committed (id = txn id)
  kAbort,     // a transaction aborted (id = txn id)
  kRestart,   // action transaction killed by wait-die, retrying
  kMerge,     // a firing merged into an already-queued unique task
};

const char* TraceEventKindName(TraceEventKind k);

/// One lifecycle record. `ts` is the owning executor's clock (virtual in
/// simulated mode); `wall_ts` is process wall time, so traces from the
/// simulated executor still interleave correctly with real time.
struct TraceEvent {
  uint64_t id = 0;  // task id (lifecycle) or transaction id (commit/abort)
  uint64_t trace_id = 0;  // causal trace this event belongs to (0 = untraced)
  Timestamp ts = 0;
  Timestamp wall_ts = 0;
  TraceEventKind kind = TraceEventKind::kSubmit;
  char name[23] = {0};  // function / label, truncated
};

/// Fixed-capacity ring of the most recent lifecycle events. Appends from
/// any thread; a spinlock guards the (tiny) slot write so snapshots are
/// race-free — the sections are a memcpy of ~48 bytes, far below the cost
/// of the SQL work between events.
class TraceRing {
 public:
  /// capacity == 0 disables the ring: Record() becomes a cheap no-op.
  explicit TraceRing(size_t capacity);

  void Record(TraceEventKind kind, uint64_t id, Timestamp ts,
              const char* name = "", uint64_t trace_id = 0);

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }
  /// Events recorded over the ring's lifetime (>= capacity once wrapped).
  uint64_t total_recorded() const;
  /// Events silently evicted because writers outran the ring: every write
  /// past capacity overwrites (drops) the oldest retained event. Relaxed
  /// read — safe from any thread, exported as `trace.dropped_events`.
  uint64_t total_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): start->finish pairs
  /// become complete ("X") slices on one track per task; the remaining
  /// lifecycle points become instant ("i") events. Load via
  /// chrome://tracing or https://ui.perfetto.dev.
  ///
  /// `pid` / `process_name` label the track: the cluster exports each
  /// engine's ring under its own process ("shard0".."shardN", "merge") so a
  /// routed record's causal trace reads across engine lanes. Pass
  /// `bare = true` to emit only the event array items (no enclosing
  /// document), letting the cluster splice several rings into one file.
  std::string ToChromeJson(int pid = 1,
                           const std::string& process_name = "",
                           bool bare = false) const;

  /// Monotonic process wall clock shared by every ring (micros since the
  /// first use in the process).
  static Timestamp WallMicros();

 private:
  const size_t capacity_;
  mutable SpinLock lock_;
  std::vector<TraceEvent> slots_;
  uint64_t next_ = 0;  // total appended; next_ % capacity_ is the write slot
  std::atomic<uint64_t> dropped_{0};  // overwritten (evicted) events
};

}  // namespace strip

#endif  // STRIP_OBS_TRACE_RING_H_
