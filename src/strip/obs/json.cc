#include "strip/obs/json.h"

#include <cmath>
#include <cstdio>

namespace strip {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  after_key_ = true;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json_fragment) {
  BeforeValue();
  out_ += json_fragment;
  need_comma_ = true;
  return *this;
}

}  // namespace strip
