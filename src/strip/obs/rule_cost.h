#ifndef STRIP_OBS_RULE_COST_H_
#define STRIP_OBS_RULE_COST_H_

#include <map>
#include <memory>
#include <string>

#include "strip/common/spin_lock.h"
#include "strip/obs/metrics.h"

namespace strip {

/// Registry handles for one rule function's latency breakdown and cost
/// attribution. All instruments live in the owning MetricsRegistry under
/// per-rule names:
///   rules.queue_wait_us.<fn>    release -> start (histogram)
///   rules.lock_wait_us.<fn>     blocked in wait-die acquisition (histogram)
///   rules.exec_us.<fn>          action body CPU time (histogram)
///   rules.cost.cpu_micros.<fn>      total CPU micros (counter)
///   rules.cost.rows_scanned.<fn>    rows touched by batched scans (counter)
///   rules.cost.deltas_folded.<fn>   group deltas netted away (counter)
///   rules.cost.lock_aborts.<fn>     wait-die restarts charged (counter)
struct RuleCostHandles {
  Histogram* queue_wait_us = nullptr;
  Histogram* lock_wait_us = nullptr;
  Histogram* exec_us = nullptr;
  Counter* cpu_micros = nullptr;
  Counter* rows_scanned = nullptr;
  Counter* deltas_folded = nullptr;
  Counter* lock_aborts = nullptr;
};

/// Resolves and caches per-rule instrument handles. MetricsRegistry takes
/// a mutex per lookup, far too slow for the executor's task-finish path;
/// this tracker resolves each function's seven handles once and afterwards
/// serves them from a spinlock-guarded map (one tiny find per task).
class RuleCostTracker {
 public:
  explicit RuleCostTracker(MetricsRegistry* registry)
      : registry_(registry) {}
  RuleCostTracker(const RuleCostTracker&) = delete;
  RuleCostTracker& operator=(const RuleCostTracker&) = delete;

  /// Handles for `function_name`, creating the instruments on first use.
  /// The returned pointer is stable for the tracker's lifetime.
  const RuleCostHandles* Handles(const std::string& function_name);

 private:
  MetricsRegistry* registry_;
  SpinLock lock_;
  std::map<std::string, std::unique_ptr<RuleCostHandles>> handles_;
};

}  // namespace strip

#endif  // STRIP_OBS_RULE_COST_H_
