#include "strip/obs/metrics.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "strip/obs/json.h"

namespace strip {

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::Set(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

double Gauge::Get() const {
  uint64_t bits = bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<int64_t>::max()),
      max_(std::numeric_limits<int64_t>::min()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
}

std::vector<int64_t> Histogram::DefaultLatencyBoundsMicros() {
  // 1, 3, 10, 30, ... microseconds up to 1000 s: ~2 buckets per decade
  // bounds the p-estimate error to ~sqrt(10)x while keeping the histogram
  // at 19 atomics.
  std::vector<int64_t> b;
  for (int64_t decade = 1; decade <= 1'000'000'000; decade *= 10) {
    b.push_back(decade);
    b.push_back(decade * 3);
  }
  return b;
}

std::vector<int64_t> Histogram::DefaultCountBounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

void Histogram::Observe(int64_t value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<int64_t>::max() ? 0 : v;
}

int64_t Histogram::max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<int64_t>::min() ? 0 : v;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(n);
  double seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate inside [lo, hi], clamped to the observed extremes so
      // the overflow bucket and sparse edge buckets stay truthful.
      double lo = i == 0 ? static_cast<double>(std::min<int64_t>(min(), 0))
                         : static_cast<double>(bounds_[i - 1]);
      double hi = i < bounds_.size() ? static_cast<double>(bounds_[i])
                                     : static_cast<double>(max());
      lo = std::max(lo, static_cast<double>(min()));
      hi = std::min(hi, static_cast<double>(max()));
      if (hi < lo) hi = lo;
      double frac = in_bucket == 0 ? 0 : (target - seen) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  callbacks_[name] = std::move(fn);
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Get();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  // Callbacks may take locks of their own (e.g. plan-cache size); copy
  // them out so they run without holding the registry mutex.
  std::map<std::string, double> out;
  std::vector<std::pair<std::string, std::function<double()>>> cbs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, g] : gauges_) out[name] = g->Get();
    for (const auto& [name, fn] : callbacks_) cbs.emplace_back(name, fn);
  }
  for (const auto& [name, fn] : cbs) out[name] = fn();
  return out;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms(const std::string& prefix) const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  std::lock_guard<std::mutex> lk(mu_);
  // std::map iterates in name order, so the matching range is contiguous.
  for (auto it = histograms_.lower_bound(prefix); it != histograms_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second.get());
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::map<std::string, uint64_t> counters = CounterValues();
  std::map<std::string, double> gauges = GaugeValues();
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, h] : histograms_) {
      hists.emplace_back(name, h.get());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, v] : counters) w.Key(name).Uint(v);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : gauges) w.Key(name).Double(v);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : hists) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(h->count());
    w.Key("sum").Int(h->sum());
    w.Key("min").Int(h->min());
    w.Key("max").Int(h->max());
    w.Key("mean").Double(h->mean());
    w.Key("p50").Double(h->Percentile(0.50));
    w.Key("p95").Double(h->Percentile(0.95));
    w.Key("p99").Double(h->Percentile(0.99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse export: zero buckets add only noise
      w.BeginArray();
      if (i < h->bounds().size()) {
        w.Int(h->bounds()[i]);
      } else {
        w.Null();  // +inf overflow bucket
      }
      w.Uint(n);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace strip
