#include "strip/obs/trace_ring.h"

#include <chrono>
#include <cstring>
#include <map>

#include "strip/obs/json.h"

namespace strip {

const char* TraceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kSubmit: return "submit";
    case TraceEventKind::kDelayed: return "delayed";
    case TraceEventKind::kReady: return "ready";
    case TraceEventKind::kStart: return "start";
    case TraceEventKind::kFinish: return "finish";
    case TraceEventKind::kCommit: return "commit";
    case TraceEventKind::kAbort: return "abort";
    case TraceEventKind::kRestart: return "restart";
    case TraceEventKind::kMerge: return "merge";
  }
  return "?";
}

Timestamp TraceRing::WallMicros() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               epoch)
      .count();
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity) {
  slots_.resize(capacity_);
}

void TraceRing::Record(TraceEventKind kind, uint64_t id, Timestamp ts,
                       const char* name, uint64_t trace_id) {
  if (capacity_ == 0) return;
  TraceEvent e;
  e.id = id;
  e.trace_id = trace_id;
  e.ts = ts;
  e.kind = kind;
  if (name != nullptr) {
    std::strncpy(e.name, name, sizeof(e.name) - 1);
  }
  SpinLockGuard g(lock_);
  // Stamp the wall clock under the lock: stamped outside, two racing
  // recorders could publish in the opposite order they read the clock,
  // exporting a trace whose ring order and wall_ts order disagree (events
  // appear to run backwards in time once the ring wraps).
  e.wall_ts = WallMicros();
  if (next_ >= capacity_) {
    // The slot we are about to reuse still holds a live event; count the
    // eviction so consumers can tell a truncated trace from a complete one.
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  slots_[next_ % capacity_] = e;
  ++next_;
}

uint64_t TraceRing::total_recorded() const {
  if (capacity_ == 0) return 0;
  SpinLockGuard g(lock_);
  return next_;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  if (capacity_ == 0) return out;
  SpinLockGuard g(lock_);
  uint64_t n = next_ < capacity_ ? next_ : capacity_;
  out.reserve(n);
  uint64_t first = next_ - n;
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(slots_[(first + i) % capacity_]);
  }
  return out;
}

std::string TraceRing::ToChromeJson(int pid, const std::string& process_name,
                                    bool bare) const {
  std::vector<TraceEvent> events = Snapshot();

  // Pair starts with finishes per task id to form complete slices; a start
  // whose finish rotated out of the ring degrades to an instant event.
  std::map<uint64_t, size_t> open_start;  // id -> index into `events`
  std::vector<bool> consumed(events.size(), false);
  struct Slice {
    size_t start_idx;
    Timestamp dur;
  };
  std::vector<Slice> slices;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.kind == TraceEventKind::kStart) {
      open_start[e.id] = i;
    } else if (e.kind == TraceEventKind::kFinish) {
      auto it = open_start.find(e.id);
      if (it != open_start.end()) {
        slices.push_back({it->second, e.ts - events[it->second].ts});
        consumed[it->second] = true;
        consumed[i] = true;
        open_start.erase(it);
      }
    }
  }

  JsonWriter w;
  if (!bare) {
    w.BeginObject();
    w.Key("displayTimeUnit").String("ms");
    w.Key("traceEvents").BeginArray();
  } else {
    w.BeginArray();
  }
  if (!process_name.empty()) {
    // Metadata event naming the pid's lane in the viewer.
    w.BeginObject();
    w.Key("name").String("process_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(pid);
    w.Key("args").BeginObject();
    w.Key("name").String(process_name);
    w.EndObject();
    w.EndObject();
  }
  for (const Slice& s : slices) {
    const TraceEvent& e = events[s.start_idx];
    w.BeginObject();
    w.Key("name").String(e.name[0] != '\0' ? e.name : "task");
    w.Key("cat").String("task");
    w.Key("ph").String("X");
    w.Key("ts").Int(e.ts);
    w.Key("dur").Int(s.dur < 1 ? 1 : s.dur);
    w.Key("pid").Int(pid);
    w.Key("tid").Uint(e.id);
    w.Key("args").BeginObject();
    w.Key("id").Uint(e.id);
    w.Key("trace_id").Uint(e.trace_id);
    w.Key("wall_ts").Int(e.wall_ts);
    w.EndObject();
    w.EndObject();
  }
  for (size_t i = 0; i < events.size(); ++i) {
    if (consumed[i]) continue;
    const TraceEvent& e = events[i];
    w.BeginObject();
    std::string label = TraceEventKindName(e.kind);
    if (e.name[0] != '\0') {
      label += ':';
      label += e.name;
    }
    w.Key("name").String(label);
    w.Key("cat").String("lifecycle");
    w.Key("ph").String("i");
    w.Key("ts").Int(e.ts);
    w.Key("pid").Int(pid);
    w.Key("tid").Uint(e.id);
    w.Key("s").String("t");
    w.Key("args").BeginObject();
    w.Key("id").Uint(e.id);
    w.Key("trace_id").Uint(e.trace_id);
    w.Key("wall_ts").Int(e.wall_ts);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  if (!bare) w.EndObject();
  return w.str();
}

}  // namespace strip
