#ifndef STRIP_OBS_METRICS_H_
#define STRIP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace strip {

/// Monotonic counter. One relaxed atomic increment on the hot path;
/// cache-line aligned so unrelated counters registered together don't
/// false-share.
class alignas(64) Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written value (doubles stored as bit patterns so Set/Get are a
/// single relaxed atomic op).
class alignas(64) Gauge {
 public:
  void Set(double v);
  double Get() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the first
/// N buckets plus an implicit +inf overflow bucket. Observations are two
/// relaxed increments (bucket + count) and two relaxed adds (sum) — no
/// locks, safe from any thread. min/max are maintained with CAS loops,
/// still wait-free in practice (contention only on new extremes).
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  /// Exponential 1us..1000s bounds (~2 buckets per decade), the default
  /// for every latency / staleness histogram in the system.
  static std::vector<int64_t> DefaultLatencyBoundsMicros();
  /// Small linear bounds 1..64 doubling, for count-like distributions
  /// (e.g. firings batched per recompute task).
  static std::vector<int64_t> DefaultCountBounds();

  void Observe(int64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const;
  double mean() const;

  /// Percentile estimate by linear interpolation within the owning bucket
  /// (exact for values on bucket edges; bounded by bucket width otherwise).
  /// q in [0,1]. Returns 0 for an empty histogram.
  double Percentile(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_;
  std::atomic<int64_t> max_;
};

/// Thread-safe registry of named counters, gauges, and histograms.
/// Registration (first lookup of a name) takes a mutex; the returned
/// pointers are stable for the registry's lifetime, so hot paths resolve
/// their instruments once and then pay only the relaxed atomic ops.
///
/// Existing subsystem stats structs (ExecutorStats, RuleStats,
/// LockManagerStats, ...) are wired in through callback gauges: the struct
/// stays the source of truth on its hot path, and the registry pulls the
/// current value at snapshot time for free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// First call for a name fixes its bounds; later calls ignore `bounds`.
  Histogram* histogram(const std::string& name,
                       std::vector<int64_t> bounds =
                           Histogram::DefaultLatencyBoundsMicros());

  /// Registers (or replaces) a pull gauge evaluated at snapshot time.
  void RegisterCallback(const std::string& name,
                        std::function<double()> fn);

  /// Point-in-time copies for programmatic consumers (tests, benches).
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;  // incl. callbacks

  /// Finds an existing histogram (nullptr if never registered).
  const Histogram* FindHistogram(const std::string& name) const;

  /// All histograms whose name starts with `prefix` (all of them for "").
  /// The pointers are stable for the registry's lifetime, so consumers
  /// (watchdog SLO evaluation, shell `.health`) can hold them across calls.
  std::vector<std::pair<std::string, const Histogram*>> Histograms(
      const std::string& prefix = "") const;

  /// Full snapshot as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count,sum,min,max,mean,p50,p95,p99,max,
  ///                          buckets: [[upper_bound, count], ...]}}}
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> callbacks_;
};

}  // namespace strip

#endif  // STRIP_OBS_METRICS_H_
