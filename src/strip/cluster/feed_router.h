#ifndef STRIP_CLUSTER_FEED_ROUTER_H_
#define STRIP_CLUSTER_FEED_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "strip/common/status.h"
#include "strip/feed/feed.h"

namespace strip {

/// Deterministic symbol hash used to partition the feed across shards.
/// Independent of std::hash (whose value is implementation-defined and may
/// vary across processes): the same key routes to the same shard on every
/// run and on every machine, so frozen chaos seeds and checked-in bench
/// numbers are reproducible. Numeric keys hash by canonical value (an int
/// and the equal-valued double route identically, matching Value equality).
uint64_t RouteHash(const Value& key);

/// The owning shard of `key` among `num_shards` shards.
int ShardFor(const Value& key, int num_shards);

/// Splits one logical feed stream across N shard engines by symbol hash.
/// Each record is wire-encoded (feed/wire.h) before it is handed to the
/// owning shard's inbox — the router-to-shard hop crosses the same byte
/// boundary a socket would, making the wire format the cluster's actual
/// protocol rather than a convention.
///
/// Routing is stateless and deterministic; the router adds a root trace
/// context to untraced records so the causal trace of everything a record
/// causes (shard upsert, rule firings, shipped deltas, merge commit)
/// starts at the routing hop.
class FeedRouter {
 public:
  /// A shard's receive side: consumes the wire bytes of one record.
  using Inbox = std::function<Status(std::string_view)>;

  explicit FeedRouter(std::vector<Inbox> inboxes);

  /// Routes one record to its owning shard (by values[0]).
  Status Route(const FeedRecord& rec);

  /// Routes a whole pre-loaded stream in order.
  Status RouteAll(const std::vector<FeedRecord>& stream);

  int num_shards() const { return static_cast<int>(inboxes_.size()); }

  /// Records routed to shard `i` so far.
  uint64_t routed(int i) const {
    return counts_[static_cast<size_t>(i)]->load(std::memory_order_relaxed);
  }
  uint64_t total_routed() const;

 private:
  std::vector<Inbox> inboxes_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> counts_;
};

}  // namespace strip

#endif  // STRIP_CLUSTER_FEED_ROUTER_H_
