#include "strip/cluster/cluster.h"

#include <utility>

#include "strip/common/string_util.h"
#include "strip/feed/wire.h"
#include "strip/obs/json.h"
#include "strip/rules/net_effect.h"
#include "strip/storage/table.h"

namespace strip {

namespace {

/// Drives one engine to quiescence in whichever mode it runs.
void DrainEngine(Database& db) {
  if (db.threaded() != nullptr) {
    db.threaded()->Drain();
  } else {
    db.simulated()->RunUntilQuiescent();
  }
}

bool EngineHasPending(Database& db) {
  if (db.simulated() != nullptr) {
    return db.simulated()->num_ready() + db.simulated()->num_delayed() > 0;
  }
  return false;  // threaded Drain() already blocked until empty
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Database>(options_.shard));
  }
  merge_ = std::make_unique<Database>(options_.merge);
}

Cluster::~Cluster() = default;

Status Cluster::ExecuteOnShards(const std::string& sql) {
  for (auto& shard : shards_) {
    STRIP_RETURN_IF_ERROR(shard->ExecuteScript(sql));
  }
  return Status::OK();
}

Status Cluster::ExecuteEverywhere(const std::string& sql) {
  STRIP_RETURN_IF_ERROR(ExecuteOnShards(sql));
  return merge_->ExecuteScript(sql);
}

Result<FeedRouter*> Cluster::OpenFeed(const std::string& table) {
  if (feeds_.count(table) != 0) {
    return Status::AlreadyExists(
        StrFormat("feed on '%s' already open", table.c_str()));
  }
  Feed feed;
  std::vector<FeedRouter::Inbox> inboxes;
  for (auto& shard : shards_) {
    STRIP_ASSIGN_OR_RETURN(std::unique_ptr<FeedImporter> importer,
                           FeedImporter::Create(shard.get(), table));
    FeedImporter* raw = importer.get();
    feed.importers.push_back(std::move(importer));
    // The shard's receive side: decode the wire bytes back into records
    // and submit them. One Route() call ships one record, but the inbox
    // accepts any concatenation — the transport, not the router, decides
    // how records coalesce into buffers.
    inboxes.push_back([raw](std::string_view bytes) -> Status {
      size_t offset = 0;
      while (offset < bytes.size()) {
        STRIP_ASSIGN_OR_RETURN(FeedRecord rec,
                               DecodeFeedRecord(bytes, &offset));
        STRIP_RETURN_IF_ERROR(raw->Submit(std::move(rec)));
      }
      return Status::OK();
    });
  }
  feed.router = std::make_unique<FeedRouter>(std::move(inboxes));
  FeedRouter* router = feed.router.get();
  feeds_.emplace(table, std::move(feed));
  return router;
}

Status Cluster::ConnectTwoTier(const std::string& view_name,
                               const std::string& fact_table,
                               const TwoTierOptions& options) {
  if (staging_importers_.count(view_name) != 0) {
    return Status::AlreadyExists(
        StrFormat("view '%s' is already two-tier", view_name.c_str()));
  }
  // Tier-2 ships SUM/_count deltas, so tier-1 must track the hidden count.
  RuleGenOptions tier1 = options.tier1;
  tier1.handle_insert_delete = true;
  tier1.track_group_count = true;

  // 1. Tier-1 rules on every shard maintain its partial view.
  for (auto& shard : shards_) {
    STRIP_RETURN_IF_ERROR(
        GenerateMaintenanceRule(*shard, view_name, fact_table, tier1)
            .status());
  }

  // 2. The top-level view table on the merge engine, with the partial
  // views' layout (EnableHiddenCount has appended _count by now).
  STRIP_ASSIGN_OR_RETURN(Table * partial,
                         shards_[0]->catalog().GetTable(view_name));
  const Schema& schema = partial->schema();
  std::string ddl = "create table " + view_name + " (";
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) ddl += ", ";
    ddl += schema.column(c).name + " " +
           ValueTypeName(schema.column(c).type);
  }
  ddl += "); create index on " + view_name + " (" + schema.column(0).name +
         ");";
  STRIP_RETURN_IF_ERROR(merge_->ExecuteScript(ddl));

  // Seed it from the shards' current partial contents. The same group can
  // live on several shards (the group key need not be the routing key), so
  // partial rows fold — SUM columns and _count add — before insertion.
  std::vector<GroupDelta> seed;
  for (auto& shard : shards_) {
    STRIP_ASSIGN_OR_RETURN(ResultSet rows,
                           shard->Execute("select * from " + view_name));
    for (const auto& row : rows.rows) {
      GroupDelta d;
      d.key = row[0];
      for (size_t c = 1; c + 1 < row.size(); ++c) {
        d.sums.push_back(row[c].as_double());
      }
      d.count = row.back().as_int();
      seed.push_back(std::move(d));
    }
  }
  if (!seed.empty()) {
    std::vector<GroupDelta> folded = FoldGroupDeltas(std::move(seed));
    std::string ins = "insert into " + view_name + " values (?";
    for (int c = 1; c < schema.num_columns(); ++c) ins += ", ?";
    ins += ")";
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr insert, merge_->Prepare(ins));
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, merge_->Begin());
    for (const GroupDelta& d : folded) {
      std::vector<Value> params;
      params.push_back(d.key);
      for (double s : d.sums) params.push_back(Value::Double(s));
      params.push_back(Value::Int(d.count));
      auto n = insert->ExecuteDml(txn, params);
      if (!n.ok()) {
        Status ignored = merge_->Abort(txn);
        (void)ignored;
        return n.status();
      }
    }
    STRIP_RETURN_IF_ERROR(merge_->Commit(txn));
  }

  // 3. Merge rule + staging table on the merge engine, and its importer.
  MergeRuleOptions merge_opts;
  merge_opts.delay_seconds = options.merge_delay_seconds;
  STRIP_ASSIGN_OR_RETURN(MergeRuleSpec merge_spec,
                         GenerateMergeRule(*merge_, view_name, merge_opts));
  STRIP_ASSIGN_OR_RETURN(
      std::unique_ptr<FeedImporter> staging,
      FeedImporter::Create(merge_.get(), merge_spec.staging_table));
  FeedImporter* staging_raw = staging.get();
  staging_importers_.emplace(view_name, std::move(staging));

  // 4. Export rules on every shard, shipping folded deltas across the
  // wire boundary into the staging importer. The encode/decode round trip
  // is deliberate: the hop is byte-identical to a socket hop.
  for (int i = 0; i < num_shards(); ++i) {
    ShardExportOptions export_opts;
    export_opts.shard_id = i;
    export_opts.delay_seconds = options.export_delay_seconds;
    auto sink = [this, staging_raw](const FeedRecord& rec) -> Status {
      std::string bytes = EncodeFeedRecord(rec);
      size_t offset = 0;
      STRIP_ASSIGN_OR_RETURN(FeedRecord decoded,
                             DecodeFeedRecord(bytes, &offset));
      STRIP_RETURN_IF_ERROR(staging_raw->Submit(std::move(decoded)));
      deltas_shipped_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };
    STRIP_RETURN_IF_ERROR(
        GenerateShardDeltaExport(*shards_[static_cast<size_t>(i)], view_name,
                                 export_opts, sink)
            .status());
  }
  return Status::OK();
}

Status Cluster::DrainAll() {
  // Shard drains can ship deltas into the merge engine; merge drains never
  // feed back into shards. One shards-then-merge pass usually suffices,
  // but loop to a fixed point in case a drain races a late shipment.
  for (int pass = 0; pass < 16; ++pass) {
    uint64_t shipped_before = deltas_shipped();
    for (auto& shard : shards_) DrainEngine(*shard);
    DrainEngine(*merge_);
    bool pending = EngineHasPending(*merge_);
    for (auto& shard : shards_) pending = pending || EngineHasPending(*shard);
    if (!pending && deltas_shipped() == shipped_before) {
      return Status::OK();
    }
  }
  return Status::Internal("cluster did not quiesce in 16 drain passes");
}

std::string Cluster::MetricsJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("num_shards").Int(num_shards());
  w.Key("deltas_shipped").Uint(deltas_shipped());
  for (size_t i = 0; i < shards_.size(); ++i) {
    w.Key(StrFormat("shard%zu", i)).Raw(shards_[i]->metrics().SnapshotJson());
  }
  w.Key("merge").Raw(merge_->metrics().SnapshotJson());
  w.EndObject();
  return w.str();
}

std::string Cluster::ChromeTraceJson() const {
  // Splice every engine's bare event array into one traceEvents list, one
  // pid (process lane) per engine.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto splice = [&](const TraceRing& ring, int pid, const std::string& name) {
    std::string bare = ring.ToChromeJson(pid, name, /*bare=*/true);
    if (bare.size() <= 2) return;  // "[]": nothing recorded
    if (!first) out += ',';
    first = false;
    out.append(bare, 1, bare.size() - 2);
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    splice(shards_[i]->trace_ring(), static_cast<int>(i) + 1,
           StrFormat("shard%zu", i));
  }
  splice(merge_->trace_ring(), static_cast<int>(shards_.size()) + 1, "merge");
  out += "]}";
  return out;
}

}  // namespace strip
