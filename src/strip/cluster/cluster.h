#ifndef STRIP_CLUSTER_CLUSTER_H_
#define STRIP_CLUSTER_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/cluster/feed_router.h"
#include "strip/engine/database.h"
#include "strip/feed/feed.h"
#include "strip/viewmaint/rule_gen.h"

namespace strip {

/// An in-process shared-nothing cluster: N independent `strip::Database`
/// shard engines plus one merge engine, behind a symbol-hash FeedRouter
/// (DESIGN.md §2.5). Every engine has its own executor, lock manager,
/// catalog, rule engine, and unique-transaction manager — the only things
/// crossing an engine boundary are wire-encoded feed records (feed/wire.h):
/// routed base updates going in, and folded group deltas shipped from each
/// shard's partial view to the merge engine's staging table.
///
/// Running everything in one process (threads, not processes) keeps the
/// whole cluster inside the reach of the chaos harness, ASan, and TSan,
/// while the byte-level protocol keeps the architecture honest: promoting
/// a shard to a real remote process changes transport, not semantics.
struct ClusterOptions {
  int num_shards = 4;
  /// Per-shard engine options (each shard gets its own copy).
  Database::Options shard;
  /// Merge engine options.
  Database::Options merge;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Database& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  Database& merge() { return *merge_; }

  /// Runs a DDL / DML script on every shard engine (e.g. creating the
  /// fact and dimension tables of the sharded schema).
  Status ExecuteOnShards(const std::string& sql);

  /// Same, shards plus the merge engine.
  Status ExecuteEverywhere(const std::string& sql);

  /// Opens a routed feed into `table` (which must exist on every shard,
  /// keyed + indexed on its first column): creates one FeedImporter per
  /// shard and returns a router whose inboxes decode the wire bytes and
  /// submit the record to the owning shard. The router is owned by the
  /// cluster and stays valid for its lifetime.
  Result<FeedRouter*> OpenFeed(const std::string& table);

  struct TwoTierOptions {
    /// Tier-1 options for the per-shard partial-view maintenance rules.
    RuleGenOptions tier1;
    /// Shard-side export window (one shipment per window per shard).
    double export_delay_seconds = 0.5;
    /// Merge-side window (staged deltas folded into one application pass).
    double merge_delay_seconds = 0.5;
  };

  /// Wires up two-tier maintenance for the materialized aggregation view
  /// `view_name` (already created on every shard) over `fact_table`:
  ///
  ///   1. tier-1 maintenance rules on each shard keep its PARTIAL view
  ///      (GenerateMaintenanceRule);
  ///   2. the top-level view table (same layout incl. `_count`) is created
  ///      on the merge engine, seeded from the shard partials' current
  ///      contents, plus its `<view>_deltas` staging table and merge rule
  ///      (GenerateMergeRule);
  ///   3. export rules on each shard fold the partial view's changes into
  ///      net group deltas and ship them — wire-encoded — to the staging
  ///      importer (GenerateShardDeltaExport).
  Status ConnectTwoTier(const std::string& view_name,
                        const std::string& fact_table,
                        const TwoTierOptions& options);

  /// Drives every engine to quiescence, including the cross-engine
  /// cascade: shard export rules may ship deltas into the merge engine
  /// while draining, so engines are drained in passes until a full pass
  /// ships nothing new. Works in both executor modes.
  Status DrainAll();

  /// Group deltas shipped across the shard->merge boundary so far.
  uint64_t deltas_shipped() const {
    return deltas_shipped_.load(std::memory_order_relaxed);
  }

  /// The staging importer ConnectTwoTier installed for `view_name`, or
  /// nullptr. Its submitted/applied/failed counters tell whether every
  /// shipped delta actually landed — a failed staging upsert is a delta
  /// lost in flight, which the chaos harness treats as an invariant
  /// violation in its own right.
  const FeedImporter* staging_importer(const std::string& view_name) const {
    auto it = staging_importers_.find(view_name);
    return it == staging_importers_.end() ? nullptr : it->second.get();
  }

  /// One JSON object with every engine's metrics snapshot, keyed
  /// "shard0".."shardN-1" and "merge", plus cluster-level counters.
  std::string MetricsJson() const;

  /// All engines' trace rings spliced into one Chrome trace document, one
  /// process lane per engine ("shard0".."shardN-1", "merge") — a routed
  /// record's causal trace reads across lanes via its shared trace_id.
  std::string ChromeTraceJson() const;

 private:
  struct Feed {
    std::vector<std::unique_ptr<FeedImporter>> importers;  // one per shard
    std::unique_ptr<FeedRouter> router;
  };

  ClusterOptions options_;
  std::vector<std::unique_ptr<Database>> shards_;
  std::unique_ptr<Database> merge_;
  std::map<std::string, Feed> feeds_;
  /// Staging importers created by ConnectTwoTier, keyed by view name.
  std::map<std::string, std::unique_ptr<FeedImporter>> staging_importers_;
  std::atomic<uint64_t> deltas_shipped_{0};
};

}  // namespace strip

#endif  // STRIP_CLUSTER_CLUSTER_H_
