#include "strip/cluster/feed_router.h"

#include <cmath>
#include <cstring>

#include "strip/common/string_util.h"
#include "strip/feed/wire.h"

namespace strip {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// splitmix64 finalizer: FNV's low bits correlate for short keys (stock
/// symbols are 4-6 bytes); the mix spreads them so ShardFor's modulo sees
/// uniform bits even at 2 shards.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t RouteHash(const Value& key) {
  uint64_t h = kFnvOffset;
  switch (key.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Canonical numeric form: integral doubles hash as their int value,
      // consistent with Value equality (Int(3) == Double(3.0)).
      double d = key.as_double();
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        h = Fnv1a(h, &i, sizeof(i));
      } else {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        h = Fnv1a(h, &bits, sizeof(bits));
      }
      break;
    }
    case ValueType::kString: {
      const std::string& s = key.as_string();
      h = Fnv1a(h, s.data(), s.size());
      break;
    }
  }
  return Mix(h);
}

int ShardFor(const Value& key, int num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<int>(RouteHash(key) %
                          static_cast<uint64_t>(num_shards));
}

FeedRouter::FeedRouter(std::vector<Inbox> inboxes)
    : inboxes_(std::move(inboxes)) {
  counts_.reserve(inboxes_.size());
  for (size_t i = 0; i < inboxes_.size(); ++i) {
    counts_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

Status FeedRouter::Route(const FeedRecord& rec) {
  if (inboxes_.empty()) {
    return Status::FailedPrecondition("router has no shards");
  }
  if (rec.values.empty()) {
    return Status::InvalidArgument("feed record has no key column");
  }
  int shard = ShardFor(rec.values[0], num_shards());
  std::string bytes;
  if (rec.trace.traced()) {
    bytes = EncodeFeedRecord(rec);
  } else {
    // The routing hop is where the record enters the cluster: root the
    // causal trace here so shard-side spans chain back across the wire.
    FeedRecord traced = rec;
    traced.trace = NewTraceContext();
    bytes = EncodeFeedRecord(traced);
  }
  STRIP_RETURN_IF_ERROR(inboxes_[static_cast<size_t>(shard)](bytes));
  counts_[static_cast<size_t>(shard)]->fetch_add(1,
                                                 std::memory_order_relaxed);
  return Status::OK();
}

Status FeedRouter::RouteAll(const std::vector<FeedRecord>& stream) {
  for (const FeedRecord& rec : stream) {
    STRIP_RETURN_IF_ERROR(Route(rec));
  }
  return Status::OK();
}

uint64_t FeedRouter::total_routed() const {
  uint64_t total = 0;
  for (const auto& c : counts_) {
    total += c->load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace strip
