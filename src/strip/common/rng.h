#ifndef STRIP_COMMON_RNG_H_
#define STRIP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace strip {

/// Seeded random source used by the market-trace generator and the property
/// tests. All distributions needed to model the TAQ-like workload live here
/// so that a single seed reproduces a whole experiment.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Geometric number of trials >= 1 with success probability p in (0, 1]:
  /// models burst lengths.
  int64_t Geometric(int64_t min_value, double p);

  /// Standard normal.
  double Gaussian(double mean, double stddev);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(s) sampler over ranks 1..n, precomputing the CDF once. Rank 1 is the
/// most popular item. Models the heavy skew of per-stock trading activity.
class ZipfDistribution {
 public:
  /// `n` items, exponent `s` (s = 0 is uniform; s ~ 1 is classic Zipf).
  ZipfDistribution(int64_t n, double s);

  /// Returns a rank in [0, n): 0 is the hottest item.
  int64_t Sample(Rng& rng) const;

  /// Probability mass of rank `i` (0-based).
  double Pmf(int64_t i) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.0
};

}  // namespace strip

#endif  // STRIP_COMMON_RNG_H_
