#include "strip/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace strip {

namespace {

void DefaultSink(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "STRIP %s %s:%d: %s\n", LogLevelName(level), file,
               line, msg.c_str());
}

// The sink is read on every record; guarded by a mutex only around the
// copy so a long-running sink call never blocks other loggers on install.
std::mutex g_sink_mu;
LogSink g_sink = DefaultSink;

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lk(g_sink_mu);
  g_sink = sink ? std::move(sink) : DefaultSink;
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (static_cast<int>(level) <
          g_min_level.load(std::memory_order_relaxed) &&
      level != LogLevel::kFatal) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string msg;
  if (n > 0) {
    msg.resize(static_cast<size_t>(n));
    std::vsnprintf(msg.data(), msg.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);

  LogSink sink;
  {
    std::lock_guard<std::mutex> lk(g_sink_mu);
    sink = g_sink;
  }
  sink(level, file, line, msg);
  if (level == LogLevel::kFatal) std::abort();
}

void FatalError(const char* file, int line, const char* msg) {
  LogMessage(LogLevel::kFatal, file, line, "%s", msg);
  std::abort();  // unreachable: LogMessage aborts on kFatal
}

bool LogRateLimiter::ShouldLog(uint64_t* suppressed) {
  int64_t now = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  int64_t next = next_allowed_us_.load(std::memory_order_relaxed);
  while (now >= next) {
    if (next_allowed_us_.compare_exchange_weak(next, now + interval_us_,
                                               std::memory_order_relaxed)) {
      if (suppressed != nullptr) {
        *suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
      }
      return true;
    }
    // `next` reloaded by the failed CAS; another thread won this window.
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace strip
