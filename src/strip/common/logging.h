#ifndef STRIP_COMMON_LOGGING_H_
#define STRIP_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace strip {

/// Severity, ordered. kFatal aborts after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelName(LogLevel level);

/// Receives every emitted log record. Installed process-wide; must be
/// callable from any thread.
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const std::string& msg)>;

/// Replaces the process log sink (default: "STRIP <LEVEL> file:line: msg"
/// to stderr). Passing nullptr restores the default. Intended for process
/// setup (tests capturing output, embedders routing into their logger);
/// not synchronized against concurrent logging.
void SetLogSink(LogSink sink);

/// Runtime minimum level (below it, records are dropped even when they
/// pass the compile-time gate). Default kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// printf-style record emission; prefer the STRIP_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

/// Aborts the process with a message; used for unrecoverable invariant
/// violations where returning Status::Internal is impossible (destructors,
/// noexcept paths).
[[noreturn]] void FatalError(const char* file, int line, const char* msg);

/// Throttle for log statements on hot paths: ShouldLog() returns true at
/// most once per `interval_us` (the first call always passes) and reports
/// how many calls it swallowed since the last pass, so the emitted message
/// can say "N similar suppressed" instead of the N messages. Counters the
/// statement accompanies stay exact — only the log line is throttled.
/// Thread-safe and wait-free (one CAS per passing call).
class LogRateLimiter {
 public:
  explicit LogRateLimiter(int64_t interval_us = 5'000'000)
      : interval_us_(interval_us) {}

  /// True when the caller should emit. On true, *suppressed (may be null)
  /// gets the number of calls swallowed since the last emission.
  bool ShouldLog(uint64_t* suppressed = nullptr);

 private:
  const int64_t interval_us_;
  std::atomic<int64_t> next_allowed_us_{0};
  std::atomic<uint64_t> suppressed_{0};
};

// Spellable enumerator aliases so STRIP_LOG(INFO, ...) reads naturally at
// the call site while staying a compile-time constant for the level gate.
inline constexpr LogLevel kLogDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogWARN = LogLevel::kWarn;
inline constexpr LogLevel kLogERROR = LogLevel::kError;
inline constexpr LogLevel kLogFATAL = LogLevel::kFatal;

}  // namespace strip

/// Compile-time floor: statements below it compile to nothing (the whole
/// call site, arguments included, is dead-stripped). Override with
/// -DSTRIP_MIN_LOG_LEVEL=2 (numeric LogLevel value) to remove DEBUG/INFO
/// call sites from release binaries entirely.
#ifndef STRIP_MIN_LOG_LEVEL
#define STRIP_MIN_LOG_LEVEL 0
#endif

/// Leveled, printf-style logging:
///   STRIP_LOG(INFO, "loaded %zu rules", n);
///   STRIP_LOG(ERROR, "feed apply failed: %s", st.ToString().c_str());
/// Levels: DEBUG, INFO, WARN, ERROR, FATAL (FATAL aborts after logging).
#define STRIP_LOG(level, ...)                                               \
  do {                                                                      \
    if constexpr (static_cast<int>(::strip::kLog##level) >=                 \
                  STRIP_MIN_LOG_LEVEL) {                                    \
      ::strip::LogMessage(::strip::kLog##level, __FILE__, __LINE__,         \
                          __VA_ARGS__);                                     \
    }                                                                       \
  } while (0)

/// Invariant check active in all build modes (cheap conditions only).
#define STRIP_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::strip::FatalError(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define STRIP_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) ::strip::FatalError(__FILE__, __LINE__, msg);         \
  } while (0)

#endif  // STRIP_COMMON_LOGGING_H_
