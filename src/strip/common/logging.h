#ifndef STRIP_COMMON_LOGGING_H_
#define STRIP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace strip {

/// Aborts the process with a message; used for unrecoverable invariant
/// violations where returning Status::Internal is impossible (destructors,
/// noexcept paths).
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "STRIP FATAL %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace strip

/// Invariant check active in all build modes (cheap conditions only).
#define STRIP_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::strip::FatalError(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define STRIP_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) ::strip::FatalError(__FILE__, __LINE__, msg);         \
  } while (0)

#endif  // STRIP_COMMON_LOGGING_H_
