#ifndef STRIP_COMMON_CRC32_H_
#define STRIP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace strip {

/// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), the checksum guarding
/// every v2 wire frame and every WAL entry. Table-driven, byte-at-a-time:
/// the payloads it covers are small (frames cap at kMaxFramePayload) and
/// the durability path is dominated by fsync, so simplicity beats a
/// slice-by-8 implementation here.
///
/// `Crc32(data)` is the one-shot form. The (crc, data) overload continues
/// a running checksum so multi-buffer callers (WAL header + payload) can
/// fold without concatenating.
uint32_t Crc32(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32(std::string_view data) {
  return Crc32(0, data.data(), data.size());
}

}  // namespace strip

#endif  // STRIP_COMMON_CRC32_H_
