#ifndef STRIP_COMMON_BYTEIO_H_
#define STRIP_COMMON_BYTEIO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "strip/common/status.h"
#include "strip/common/string_util.h"

namespace strip {

/// Little-endian byte-buffer primitives shared by everything above the v1
/// record codec: the v2 frame envelope, the session protocol, and the WAL.
/// Writers append to a std::string; ByteReader is a bounds-checked cursor
/// that fails with InvalidArgument (never reads past the end) on
/// truncation, which the callers surface as "torn" input.

inline void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

inline void PutU16(uint16_t v, std::string* out) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// u32 length prefix + bytes. Strings on the wire are opaque octets.
inline void PutLengthPrefixed(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view buf, size_t offset = 0)
      : buf_(buf), pos_(offset) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }

  /// True once every byte has been consumed — strict decoders require this
  /// so a payload with trailing garbage is rejected, not silently accepted.
  bool exhausted() const { return pos_ == buf_.size(); }

  Result<uint8_t> U8() {
    STRIP_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(buf_[pos_++]);
  }

  Result<uint16_t> U16() {
    STRIP_RETURN_IF_ERROR(Need(2));
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<uint16_t>(
          v | static_cast<uint16_t>(static_cast<uint8_t>(buf_[pos_ + i]))
                  << (8 * i));
    }
    pos_ += 2;
    return v;
  }

  Result<uint32_t> U32() {
    STRIP_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    STRIP_RETURN_IF_ERROR(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> Bytes(size_t n) {
    STRIP_RETURN_IF_ERROR(Need(n));
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Reads a u32 length prefix, then that many bytes. The length is
  /// validated against the remaining buffer before any allocation.
  Result<std::string> LengthPrefixed() {
    STRIP_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > remaining()) {
      return Status::InvalidArgument(StrFormat(
          "length prefix %u exceeds the %zu remaining bytes at offset %zu",
          n, remaining(), pos_ - 4));
    }
    return Bytes(n);
  }

  /// Advances past `n` bytes without materializing them (used when a
  /// nested codec already consumed them from the underlying buffer).
  Status Skip(size_t n) {
    STRIP_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::OK();
  }

  /// The rest of the buffer (possibly empty); consumes it.
  std::string Rest() {
    std::string s(buf_.substr(pos_));
    pos_ = buf_.size();
    return s;
  }

 private:
  Status Need(size_t n) {
    if (n > remaining()) {
      return Status::InvalidArgument(StrFormat(
          "buffer truncated at offset %zu (need %zu bytes, have %zu)",
          pos_, n, remaining()));
    }
    return Status::OK();
  }

  std::string_view buf_;
  size_t pos_;
};

}  // namespace strip

#endif  // STRIP_COMMON_BYTEIO_H_
