#include "strip/common/clock.h"

#include <chrono>

namespace strip {

namespace {

Timestamp SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RealClock::RealClock() : epoch_(SteadyNowMicros()) {}

Timestamp RealClock::Now() const { return SteadyNowMicros() - epoch_; }

StopWatch::StopWatch() : start_(SteadyNowNanos()) {}

Timestamp StopWatch::ElapsedMicros() const {
  return (SteadyNowNanos() - start_) / 1000;
}

int64_t StopWatch::ElapsedNanos() const { return SteadyNowNanos() - start_; }

void StopWatch::Restart() { start_ = SteadyNowNanos(); }

}  // namespace strip
