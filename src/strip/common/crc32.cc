#include "strip/common/crc32.h"

#include <array>

namespace strip {

namespace {

/// The reflected-polynomial lookup table, built once on first use.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace strip
