#ifndef STRIP_COMMON_STATUS_H_
#define STRIP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace strip {

/// Error category for a failed operation. Kept deliberately small: the
/// library does not throw; every fallible public API returns a Status or a
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad SQL, bad schema, ...)
  kNotFound,          // named table / rule / function / column missing
  kAlreadyExists,     // duplicate table / rule / function name
  kFailedPrecondition,// operation illegal in the current state
  kAborted,           // transaction aborted (deadlock victim, explicit abort)
  kInternal,          // invariant violation inside the library
  kUnimplemented,     // feature outside the supported SQL subset
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation with no payload.
///
/// Usage mirrors absl::Status / rocksdb::Status:
///
///   Status s = db.Execute("create table t (x int)");
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;           // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define STRIP_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::strip::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which it declares).
#define STRIP_ASSIGN_OR_RETURN(lhs, expr)      \
  STRIP_ASSIGN_OR_RETURN_IMPL(                 \
      STRIP_CONCAT_(_res_, __LINE__), lhs, expr)

#define STRIP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.take()

#define STRIP_CONCAT_INNER_(a, b) a##b
#define STRIP_CONCAT_(a, b) STRIP_CONCAT_INNER_(a, b)

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace strip

#endif  // STRIP_COMMON_STATUS_H_
