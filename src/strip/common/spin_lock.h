#ifndef STRIP_COMMON_SPIN_LOCK_H_
#define STRIP_COMMON_SPIN_LOCK_H_

#include <atomic>

namespace strip {

/// Minimal test-and-set spinlock. The paper (§6.3) guards the unique
/// transaction hash tables with spinlocks; critical sections there are a few
/// pointer operations, so spinning beats a mutex under the threaded executor.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin; the critical sections protected by this lock are tiny.
    }
  }
  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace strip

#endif  // STRIP_COMMON_SPIN_LOCK_H_
