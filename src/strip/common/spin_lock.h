#ifndef STRIP_COMMON_SPIN_LOCK_H_
#define STRIP_COMMON_SPIN_LOCK_H_

#include <atomic>
#include <thread>

namespace strip {

/// Minimal test-and-set spinlock. The paper (§6.3) guards the unique
/// transaction hash tables with spinlocks; critical sections there are a few
/// pointer operations, so spinning beats a mutex under the threaded executor.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // The critical sections protected by this lock are tiny, so a short
      // spin usually wins; but if the holder was preempted (or there are
      // more runnable threads than cores) pure spinning burns the holder's
      // timeslice, so yield after a bounded burst.
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace strip

#endif  // STRIP_COMMON_SPIN_LOCK_H_
