#include "strip/common/rng.h"

#include <algorithm>
#include <cmath>

#include "strip/common/logging.h"

namespace strip {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::Exponential(double mean) {
  STRIP_CHECK(mean > 0);
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

int64_t Rng::Geometric(int64_t min_value, double p) {
  STRIP_CHECK(p > 0 && p <= 1);
  std::geometric_distribution<int64_t> d(p);
  return min_value + d(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  STRIP_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (int64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformReal(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it - cdf_.begin();
}

double ZipfDistribution::Pmf(int64_t i) const {
  STRIP_CHECK(i >= 0 && i < n());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace strip
