#ifndef STRIP_COMMON_CLOCK_H_
#define STRIP_COMMON_CLOCK_H_

#include <cstdint>

namespace strip {

/// Microseconds since an arbitrary epoch. All timing in the library —
/// transaction commit times, task release times, delay windows — is expressed
/// in Timestamp units so that the whole system can run either against the
/// wall clock or against a simulated clock.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerSecond = 1'000'000;

/// Converts seconds (as used in rule `after` clauses) to Timestamp units.
constexpr Timestamp SecondsToMicros(double seconds) {
  return static_cast<Timestamp>(seconds * kMicrosPerSecond);
}

constexpr double MicrosToSeconds(Timestamp t) {
  return static_cast<double>(t) / kMicrosPerSecond;
}

/// Time source abstraction. The paper's experiments replay a trace in real
/// time on a real machine; our reproduction supports both a RealClock (for
/// the threaded executor and examples) and a VirtualClock (for deterministic
/// discrete-event benchmark runs; see DESIGN.md §4).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since this clock's epoch.
  virtual Timestamp Now() const = 0;
};

/// Monotonic wall clock.
class RealClock final : public Clock {
 public:
  RealClock();
  Timestamp Now() const override;

 private:
  Timestamp epoch_;  // steady_clock reading at construction
};

/// Manually advanced clock for simulation and tests.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_; }

  /// Moves time forward to `t`; time never goes backwards.
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }
  void Advance(Timestamp delta) { now_ += delta; }

 private:
  Timestamp now_;
};

/// Measures real CPU-ish busy time (monotonic clock) for a code region.
/// Used by the simulated executor to attribute real execution cost to tasks
/// while the simulation clock stands still.
class StopWatch {
 public:
  StopWatch();
  /// Microseconds of wall time since construction or the last Restart().
  Timestamp ElapsedMicros() const;
  /// Nanoseconds; use for sub-microsecond task bodies.
  int64_t ElapsedNanos() const;
  void Restart();

 private:
  int64_t start_;  // nanoseconds
};

}  // namespace strip

#endif  // STRIP_COMMON_CLOCK_H_
