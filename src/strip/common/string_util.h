#ifndef STRIP_COMMON_STRING_UTIL_H_
#define STRIP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace strip {

/// ASCII lower-casing; SQL identifiers and keywords are case-insensitive.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Canonical form of a SQL statement for plan-cache keying: lower-cased,
/// whitespace runs collapsed to single spaces, ends trimmed. Single-quoted
/// string literals are preserved verbatim (case and spacing intact).
std::string NormalizeSql(std::string_view sql);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace strip

#endif  // STRIP_COMMON_STRING_UTIL_H_
