#include "strip/feed/framing.h"

#include "strip/common/crc32.h"
#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloOk: return "hello_ok";
    case FrameType::kPrepare: return "prepare";
    case FrameType::kPrepared: return "prepared";
    case FrameType::kExec: return "exec";
    case FrameType::kRows: return "rows";
    case FrameType::kFeedAppend: return "feed_append";
    case FrameType::kAppended: return "appended";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kAdmin: return "admin";
    case FrameType::kAdminOk: return "admin_ok";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

Status AppendFrame(const Frame& frame, std::string* out) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(StrFormat(
        "frame payload of %zu bytes exceeds the %u-byte limit",
        frame.payload.size(), kMaxFramePayload));
  }
  out->push_back(static_cast<char>(kFrameMagic));
  out->push_back(static_cast<char>(kFrameVersion));
  out->push_back(static_cast<char>(frame.type));
  out->push_back(static_cast<char>(frame.flags));
  PutU64(frame.seq, out);
  PutU32(static_cast<uint32_t>(frame.payload.size()), out);
  PutU32(Crc32(frame.payload), out);
  out->append(frame.payload);
  return Status::OK();
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  Status st = AppendFrame(frame, &out);
  STRIP_CHECK_MSG(st.ok(), "EncodeFrame: oversized payload");
  return out;
}

FrameDecode TryDecodeFrame(std::string_view buf, size_t* offset, Frame* out,
                           std::string* error) {
  const size_t start = *offset;
  const size_t avail = buf.size() - start;
  // Header fields are validated as soon as their bytes are present, so a
  // hostile length or bad magic is rejected without waiting for (or
  // allocating) a payload.
  if (avail >= 1 && static_cast<uint8_t>(buf[start]) != kFrameMagic) {
    *error = StrFormat("bad frame magic 0x%02x at offset %zu",
                       static_cast<uint8_t>(buf[start]), start);
    return FrameDecode::kCorrupt;
  }
  if (avail >= 2 && static_cast<uint8_t>(buf[start + 1]) != kFrameVersion) {
    *error = StrFormat("unsupported frame version %u (expected %u)",
                       static_cast<uint8_t>(buf[start + 1]), kFrameVersion);
    return FrameDecode::kCorrupt;
  }
  if (avail >= 3) {
    uint8_t type = static_cast<uint8_t>(buf[start + 2]);
    if (type == 0 || type > kMaxFrameType) {
      *error = StrFormat("bad frame type %u at offset %zu", type, start + 2);
      return FrameDecode::kCorrupt;
    }
  }
  if (avail >= 16) {
    uint32_t len = GetU32(buf.data() + start + 12);
    if (len > kMaxFramePayload) {
      *error = StrFormat("frame payload length %u exceeds the %u-byte limit",
                         len, kMaxFramePayload);
      return FrameDecode::kCorrupt;
    }
  }
  if (avail < kFrameHeaderSize) return FrameDecode::kNeedMore;

  uint32_t len = GetU32(buf.data() + start + 12);
  uint32_t crc = GetU32(buf.data() + start + 16);
  if (avail < kFrameHeaderSize + len) return FrameDecode::kNeedMore;

  std::string_view payload = buf.substr(start + kFrameHeaderSize, len);
  uint32_t actual = Crc32(payload);
  if (actual != crc) {
    *error = StrFormat(
        "frame CRC mismatch at offset %zu (header 0x%08x, payload 0x%08x)",
        start, crc, actual);
    return FrameDecode::kCorrupt;
  }
  out->type = static_cast<FrameType>(static_cast<uint8_t>(buf[start + 2]));
  out->flags = static_cast<uint8_t>(buf[start + 3]);
  out->seq = GetU64(buf.data() + start + 4);
  out->payload.assign(payload);
  *offset = start + kFrameHeaderSize + len;
  return FrameDecode::kFrame;
}

}  // namespace strip
