#ifndef STRIP_FEED_FRAMING_H_
#define STRIP_FEED_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "strip/common/status.h"

namespace strip {

/// Wire v2: the framed request/response envelope the network front-end
/// speaks (DESIGN.md §2.6). Where wire v1 (wire.h) concatenates bare feed
/// records — fine between in-process cluster engines that trust each other
/// — a socket carries bytes from arbitrary peers over a transport that can
/// deliver partial reads, so v2 wraps every message in a self-delimiting,
/// checksummed frame:
///
///   u8  magic 'F'         u8  version (kFrameVersion)
///   u8  type (FrameType)  u8  flags
///   u64 seq               (request id; responses echo their request's seq)
///   u32 payload length    u32 CRC-32 of the payload bytes
///   payload...
///
/// All integers little-endian; header is kFrameHeaderSize bytes. The
/// payload encoding per type is net/protocol.h's business; this layer only
/// guarantees that a decoded frame arrived whole and uncorrupted.
///
/// Decoding is incremental (TryDecodeFrame): a prefix of a frame is
/// kNeedMore — the connection keeps reading — while a bad magic, version,
/// type, an over-limit length, or a CRC mismatch is kCorrupt, after which
/// the stream has lost sync and the connection must be dropped (there is
/// no resynchronization marker; TCP gives us ordering, not framing).

inline constexpr uint8_t kFrameMagic = 'F';
inline constexpr uint8_t kFrameVersion = 2;
inline constexpr size_t kFrameHeaderSize = 20;

/// Hard ceiling on a single frame's payload. A length field above this is
/// treated as corruption (or hostility), not as a request to buffer 4 GB:
/// the decoder rejects the frame before allocating anything.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Message kinds of the session protocol. Requests are odd-numbered, their
/// responses even (kError answers any request).
enum class FrameType : uint8_t {
  kHello = 1,       // client -> server: protocol version + priority
  kHelloOk = 2,     // server -> client: session accepted
  kPrepare = 3,     // SQL text -> prepared-statement handle
  kPrepared = 4,
  kExec = 5,        // handle + '?' params -> rows / affected count
  kRows = 6,
  kFeedAppend = 7,  // wire-v1 feed records -> durable ack with WAL lsn
  kAppended = 8,
  kPing = 9,
  kPong = 10,
  kAdmin = 11,      // drain / checkpoint / stats (tests, smoke, ops)
  kAdminOk = 12,
  kError = 13,      // server -> client: status code + message
};

inline constexpr uint8_t kMaxFrameType = 13;

const char* FrameTypeName(FrameType t);

/// One decoded (or to-be-encoded) frame.
struct Frame {
  FrameType type = FrameType::kError;
  uint8_t flags = 0;
  uint64_t seq = 0;
  std::string payload;
};

/// Appends the complete encoding of `frame` (header + payload) to `out`.
/// Fails only if the payload exceeds kMaxFramePayload.
Status AppendFrame(const Frame& frame, std::string* out);

/// Convenience: encode into a fresh string (payload must be within limit;
/// CHECK-fails otherwise — callers building oversized frames are bugs, not
/// input errors).
std::string EncodeFrame(const Frame& frame);

/// Incremental decode outcome; see TryDecodeFrame.
enum class FrameDecode {
  kFrame,     // *out holds a whole verified frame; *offset advanced
  kNeedMore,  // buf[*offset..] is a valid proper prefix; read more bytes
  kCorrupt,   // stream lost sync (details in *error); drop the connection
};

/// Attempts to decode one frame starting at `buf[*offset]`. On kFrame the
/// offset advances past it; otherwise the offset is untouched. `error` is
/// filled only for kCorrupt.
FrameDecode TryDecodeFrame(std::string_view buf, size_t* offset, Frame* out,
                           std::string* error);

}  // namespace strip

#endif  // STRIP_FEED_FRAMING_H_
