#ifndef STRIP_FEED_WIRE_H_
#define STRIP_FEED_WIRE_H_

#include <string>
#include <string_view>
#include <vector>

#include "strip/common/status.h"
#include "strip/feed/feed.h"

namespace strip {

/// Binary wire format for feed records: the shard-to-shard protocol of the
/// in-process cluster (src/strip/cluster). The router serializes each
/// record before handing it to the owning shard, and shard delta exports
/// travel to the merge shard the same way — every hop crosses the same
/// byte boundary a socket would, so the format (not shared pointers) is
/// the contract between engines.
///
/// Layout per record, little-endian:
///   u8  magic 'R'        u8  version (kWireVersion)
///   i64 at               (release timestamp, receiver's clock domain)
///   u64 trace_id         u64 span_id          u64 parent_span_id
///   u32 value count      then per value:
///     u8 type tag (ValueType)  payload:
///       kNull   — none
///       kInt    — i64
///       kDouble — 8-byte IEEE-754 bit pattern (exact round trip)
///       kString — u32 length + bytes
/// Records concatenate into a stream with no framing beyond the per-record
/// magic; decode errors name the offset so a torn stream is diagnosable.

inline constexpr uint8_t kWireVersion = 1;

/// Appends one tagged value (the per-value layout above). The same value
/// encoding is shared by the v2 frame envelope (feed/framing.h), the
/// session protocol (net/protocol.h), and the WAL (durability/wal.h), so
/// a Value crosses every byte boundary in the system the same way.
void AppendValue(const Value& v, std::string* out);

/// Decodes one tagged value starting at `buf[*offset]`; advances `*offset`
/// past it. Fails (offset untouched) on a bad tag or truncation.
Result<Value> DecodeValue(std::string_view buf, size_t* offset);

/// Appends the encoding of `rec` to `out`.
void AppendFeedRecord(const FeedRecord& rec, std::string* out);

/// Encodes one record.
std::string EncodeFeedRecord(const FeedRecord& rec);

/// Decodes one record starting at `buf[*offset]`; advances `*offset` past
/// it. Fails (offset untouched) on bad magic, version, tag, or truncation.
Result<FeedRecord> DecodeFeedRecord(std::string_view buf, size_t* offset);

/// Decodes a whole stream of concatenated records.
Result<std::vector<FeedRecord>> DecodeFeedStream(std::string_view buf);

}  // namespace strip

#endif  // STRIP_FEED_WIRE_H_
