#include "strip/feed/wire.h"

#include <algorithm>
#include <cstring>

#include "strip/common/string_util.h"

namespace strip {

namespace {

constexpr uint8_t kMagic = 'R';

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(double d, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(bits, out);
}

/// Bounds-checked little-endian reader over the stream.
class Reader {
 public:
  Reader(std::string_view buf, size_t offset) : buf_(buf), pos_(offset) {}

  size_t pos() const { return pos_; }

  Result<uint8_t> U8() {
    STRIP_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(buf_[pos_++]);
  }

  Result<uint32_t> U32() {
    STRIP_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    STRIP_RETURN_IF_ERROR(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> Double() {
    STRIP_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  Result<std::string> Bytes(size_t n) {
    STRIP_RETURN_IF_ERROR(Need(n));
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  Status Need(size_t n) {
    if (pos_ + n > buf_.size()) {
      return Status::InvalidArgument(StrFormat(
          "wire record truncated at offset %zu (need %zu bytes, have %zu)",
          pos_, n, buf_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view buf_;
  size_t pos_;
};

/// Decodes one tagged value through an already-positioned reader.
Result<Value> ReadValue(Reader& r) {
  STRIP_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      STRIP_ASSIGN_OR_RETURN(uint64_t v, r.U64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      STRIP_ASSIGN_OR_RETURN(double d, r.Double());
      return Value::Double(d);
    }
    case ValueType::kString: {
      STRIP_ASSIGN_OR_RETURN(uint32_t len, r.U32());
      STRIP_ASSIGN_OR_RETURN(std::string s, r.Bytes(len));
      return Value::Str(std::move(s));
    }
    default:
      return Status::InvalidArgument(StrFormat(
          "bad wire value tag %u at offset %zu", tag, r.pos() - 1));
  }
}

}  // namespace

void AppendValue(const Value& v, std::string* out) {
  PutU8(static_cast<uint8_t>(v.type()), out);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutU64(static_cast<uint64_t>(v.as_int()), out);
      break;
    case ValueType::kDouble:
      PutDouble(v.as_double(), out);
      break;
    case ValueType::kString:
      PutU32(static_cast<uint32_t>(v.as_string().size()), out);
      out->append(v.as_string());
      break;
  }
}

Result<Value> DecodeValue(std::string_view buf, size_t* offset) {
  Reader r(buf, *offset);
  STRIP_ASSIGN_OR_RETURN(Value v, ReadValue(r));
  *offset = r.pos();
  return v;
}

void AppendFeedRecord(const FeedRecord& rec, std::string* out) {
  PutU8(kMagic, out);
  PutU8(kWireVersion, out);
  PutU64(static_cast<uint64_t>(rec.at), out);
  PutU64(rec.trace.trace_id, out);
  PutU64(rec.trace.span_id, out);
  PutU64(rec.trace.parent_span_id, out);
  PutU32(static_cast<uint32_t>(rec.values.size()), out);
  for (const Value& v : rec.values) {
    AppendValue(v, out);
  }
}

std::string EncodeFeedRecord(const FeedRecord& rec) {
  std::string out;
  AppendFeedRecord(rec, &out);
  return out;
}

Result<FeedRecord> DecodeFeedRecord(std::string_view buf, size_t* offset) {
  Reader r(buf, *offset);
  STRIP_ASSIGN_OR_RETURN(uint8_t magic, r.U8());
  if (magic != kMagic) {
    return Status::InvalidArgument(StrFormat(
        "bad wire magic 0x%02x at offset %zu", magic, *offset));
  }
  STRIP_ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kWireVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported wire version %u (expected %u)", version, kWireVersion));
  }
  FeedRecord rec;
  STRIP_ASSIGN_OR_RETURN(uint64_t at, r.U64());
  rec.at = static_cast<Timestamp>(at);
  STRIP_ASSIGN_OR_RETURN(rec.trace.trace_id, r.U64());
  STRIP_ASSIGN_OR_RETURN(rec.trace.span_id, r.U64());
  STRIP_ASSIGN_OR_RETURN(rec.trace.parent_span_id, r.U64());
  STRIP_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  // `count` is untrusted input: every value costs at least its 1-byte tag,
  // so the bytes remaining after the header bound how many values could
  // possibly follow. Reserving the raw u32 would let one corrupt byte
  // demand a multi-GB allocation before the per-value bounds checks ever
  // ran; the clamped reserve is exact for well-formed input (null-only
  // records) and the loop below still rejects the torn stream.
  rec.values.reserve(std::min<size_t>(count, buf.size() - r.pos()));
  for (uint32_t i = 0; i < count; ++i) {
    STRIP_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    rec.values.push_back(std::move(v));
  }
  *offset = r.pos();
  return rec;
}

Result<std::vector<FeedRecord>> DecodeFeedStream(std::string_view buf) {
  std::vector<FeedRecord> out;
  size_t offset = 0;
  while (offset < buf.size()) {
    STRIP_ASSIGN_OR_RETURN(FeedRecord rec, DecodeFeedRecord(buf, &offset));
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace strip
