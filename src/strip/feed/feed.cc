#include "strip/feed/feed.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "strip/common/string_util.h"
#include "strip/sql/parser.h"

namespace strip {

// ---------------------------------------------------------------------------
// FeedImporter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FeedImporter>> FeedImporter::Create(
    Database* db, const std::string& table_name) {
  STRIP_ASSIGN_OR_RETURN(Table * table, db->catalog().GetTable(table_name));
  const Schema& schema = table->schema();
  if (schema.num_columns() < 2) {
    return Status::InvalidArgument(
        "feed tables need a key column plus at least one value column");
  }
  if (table->FindIndexByPosition(0) == nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "feed table '%s' must be indexed on its key column '%s'",
        table->name().c_str(), schema.column(0).name.c_str()));
  }

  // update t set c1 = ?, ..., cn = ? where key = ?
  std::string update_sql = "update " + table->name() + " set ";
  for (int c = 1; c < schema.num_columns(); ++c) {
    if (c > 1) update_sql += ", ";
    update_sql += schema.column(c).name + " = ?";
  }
  update_sql += " where " + schema.column(0).name + " = ?";
  STRIP_ASSIGN_OR_RETURN(Statement update_stmt,
                         Parser::ParseStatement(update_sql));

  std::string insert_sql = "insert into " + table->name() + " values (";
  for (int c = 0; c < schema.num_columns(); ++c) {
    insert_sql += c > 0 ? ", ?" : "?";
  }
  insert_sql += ")";
  STRIP_ASSIGN_OR_RETURN(Statement insert_stmt,
                         Parser::ParseStatement(insert_sql));

  return std::unique_ptr<FeedImporter>(new FeedImporter(
      db, table, std::move(update_stmt), std::move(insert_stmt)));
}

FeedImporter::FeedImporter(Database* db, Table* table, Statement update_stmt,
                           Statement insert_stmt)
    : db_(db),
      table_(table),
      update_stmt_(std::move(update_stmt)),
      insert_stmt_(std::move(insert_stmt)) {}

Status FeedImporter::Apply(const FeedRecord& rec, TaskControlBlock* tcb) {
  // Feed upserts retry wait-die aborts under the engine's action-retry
  // policy, keeping the first attempt's priority (same discipline as
  // Database::RunActionTask). The feed is at-least-once: a record dropped
  // on an abort is simply lost — harmless for an idempotent market quote,
  // but fatal for a cluster delta shipment, where a lost record desyncs
  // the merged view from its shards for good.
  Status last;
  uint64_t priority = 0;
  for (int attempt = 0; attempt <= db_->options().action_retry_limit;
       ++attempt) {
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin(priority));
    if (priority == 0) priority = txn->priority();
    if (tcb != nullptr) {
      // The record's root context, stamped in Submit: the feed upsert is
      // the first span of everything this record causes downstream.
      txn->set_trace(ChildOf(tcb->trace));
      txn->set_lock_wait_sink(&tcb->lock_wait_micros);
    }
    auto run = [&]() -> Status {
      // Upsert: try the keyed update, insert on miss.
      std::vector<Value> update_params(rec.values.begin() + 1,
                                       rec.values.end());
      update_params.push_back(rec.values[0]);
      STRIP_ASSIGN_OR_RETURN(
          int n, db_->ExecuteDml(txn, update_stmt_, update_params));
      if (n == 0) {
        STRIP_ASSIGN_OR_RETURN(
            n, db_->ExecuteDml(txn, insert_stmt_, rec.values));
      }
      if (n != 1) {
        return Status::Internal(StrFormat(
            "feed upsert touched %d rows in '%s'", n,
            table_->name().c_str()));
      }
      return Status::OK();
    };
    Status st = run();
    if (st.ok()) {
      st = db_->Commit(txn);
      if (st.ok()) {
        applied_.fetch_add(1, std::memory_order_relaxed);
        return st;
      }
    } else {
      Status ignored = db_->Abort(txn);
      (void)ignored;
    }
    if (st.code() != StatusCode::kAborted) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      return st;  // real failure; retrying cannot help
    }
    last = st;
    if (db_->threaded() != nullptr) {
      // Back off so the conflicting older transaction can finish; the
      // simulated executor is single-threaded and never needs this.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(1 << std::min(attempt, 5), 32)));
    }
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Status FeedImporter::Validate(const FeedRecord& rec) const {
  const Schema& schema = table_->schema();
  if (static_cast<int>(rec.values.size()) != schema.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "feed record arity %zu does not match table '%s'",
        rec.values.size(), table_->name().c_str()));
  }
  for (int i = 0; i < schema.num_columns(); ++i) {
    const Value& v = rec.values[static_cast<size_t>(i)];
    if (v.is_null()) continue;
    ValueType want = schema.column(i).type;
    if (v.type() == want) continue;
    if (want == ValueType::kDouble && v.type() == ValueType::kInt) continue;
    return Status::InvalidArgument(StrFormat(
        "feed record for table '%s' column '%s': expected %s, got %s",
        table_->name().c_str(), schema.column(i).name.c_str(),
        ValueTypeName(want), ValueTypeName(v.type())));
  }
  return Status::OK();
}

Status FeedImporter::ApplyNow(const FeedRecord& rec) {
  STRIP_RETURN_IF_ERROR(Validate(rec));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Apply(rec, nullptr);
}

Status FeedImporter::Submit(FeedRecord rec) {
  STRIP_RETURN_IF_ERROR(Validate(rec));
  TaskPtr task = db_->NewTask();
  task->release_time = rec.at;
  // Every feed record starts its own causal trace: spans of the upsert
  // transaction, any rules it fires, and their view commits all chain back
  // to this root (ISSUE: trace stamped at feed ingestion). Records that
  // already carry a context — routed across cluster shards — keep it, so
  // the trace spans router -> shard firing -> merge commit.
  task->trace = rec.trace.traced() ? rec.trace : NewTraceContext();
  task->work = [this, rec = std::move(rec)](TaskControlBlock& tcb) {
    return Apply(rec, &tcb);
  };
  db_->Submit(std::move(task));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FeedImporter::SubmitAll(const std::vector<FeedRecord>& stream) {
  ReserveForBurst(stream.size());
  for (const FeedRecord& rec : stream) {
    STRIP_RETURN_IF_ERROR(Submit(rec));
  }
  return Status::OK();
}

void FeedImporter::ReserveForBurst(size_t incoming) {
  if (incoming == 0) return;
  // Pre-size the table's arena page directory and row-id map for the
  // worst case (every record a fresh insert) so a market-open burst does
  // not rehash the directory mid-stream. Capacity changes race with
  // concurrent readers, so take the table exclusively for the moment it
  // takes; best-effort — on a wait-die abort the burst just pays the
  // rehashes like it used to.
  auto txn = db_->Begin();
  if (!txn.ok()) return;
  Status locked = db_->locks().Acquire(*txn, LockKey::WholeTable(table_),
                                       LockMode::kExclusive);
  if (locked.ok()) {
    table_->Reserve(table_->size() + incoming);
  }
  Status ignored = db_->Abort(*txn);  // release the lock; nothing logged
  (void)ignored;
}

// ---------------------------------------------------------------------------
// TableExporter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TableExporter>> TableExporter::Create(
    Database* db, const std::string& table_name, double delay_seconds,
    ExportSink sink) {
  STRIP_ASSIGN_OR_RETURN(Table * table, db->catalog().GetTable(table_name));
  std::string rule_name = "export_" + table->name();
  std::string fn_name = rule_name + "_fn";
  auto batches = std::make_shared<std::atomic<uint64_t>>(0);

  // The action materializes its three bound tables into an ExportBatch.
  STRIP_RETURN_IF_ERROR(db->RegisterFunction(
      fn_name,
      [db, sink = std::move(sink), batches](FunctionContext& ctx) -> Status {
        ExportBatch batch;
        batch.delivered_at = db->Now();
        auto fill = [&](const char* name,
                        std::vector<std::vector<Value>>& out) -> Status {
          const TempTable* t = ctx.BoundTable(name);
          if (t == nullptr) {
            return Status::Internal("export bound table missing");
          }
          for (size_t i = 0; i < t->size(); ++i) {
            out.push_back(t->MaterializeRow(i));
          }
          return Status::OK();
        };
        STRIP_RETURN_IF_ERROR(fill("_export_ins", batch.inserted));
        STRIP_RETURN_IF_ERROR(fill("_export_upd", batch.updated_new));
        STRIP_RETURN_IF_ERROR(fill("_export_del", batch.deleted));
        batches->fetch_add(1, std::memory_order_relaxed);
        sink(batch);
        return Status::OK();
      }));

  // Rule: any change to the table binds all three transition views. The
  // evaluate clause is used so an empty kind (e.g. no deletes) does not
  // make the condition false.
  CreateRuleStmt rule;
  rule.rule_name = rule_name;
  rule.table = table->name();
  rule.events = {RuleEvent{RuleEventKind::kInserted, {}},
                 RuleEvent{RuleEventKind::kDeleted, {}},
                 RuleEvent{RuleEventKind::kUpdated, {}}};
  auto star_query = [&](const char* from, const char* bind) {
    RuleQuery rq;
    rq.query.star = true;
    rq.query.from.push_back(TableRef{from, ""});
    rq.bind_as = bind;
    return rq;
  };
  rule.evaluate.push_back(star_query("inserted", "_export_ins"));
  rule.evaluate.push_back(star_query("new", "_export_upd"));
  rule.evaluate.push_back(star_query("deleted", "_export_del"));
  rule.function_name = fn_name;
  rule.unique = true;  // batch everything in the window into one delivery
  rule.delay_seconds = delay_seconds;
  STRIP_RETURN_IF_ERROR(db->rules().CreateRule(std::move(rule)));

  return std::unique_ptr<TableExporter>(
      new TableExporter(db, std::move(rule_name), std::move(batches)));
}

TableExporter::~TableExporter() {
  // Stop exporting; the function registration stays (cheap, inert).
  Status ignored = db_->rules().DropRule(rule_name_);
  (void)ignored;
}

}  // namespace strip
