#ifndef STRIP_FEED_FEED_H_
#define STRIP_FEED_FEED_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/status.h"
#include "strip/engine/database.h"
#include "strip/obs/trace_context.h"

namespace strip {

/// The import/export system of Figure 15 ([AKGM96b]): alongside user
/// applications and the rule system, it is the third source of tasks in
/// STRIP. The importer turns an external update stream (e.g. a market
/// feed) into upsert transactions released at their feed timestamps; the
/// exporter streams a table's changes out to a consumer by installing a
/// rule whose action delivers batched bound tables to a callback.

/// One imported record: upsert into `table` keyed on its first schema
/// column. `at` is the release time on the database's clock.
struct FeedRecord {
  Timestamp at = 0;
  std::vector<Value> values;  // full row in schema order
  /// Causal context the record travels under. Untraced (all-zero) records
  /// get a fresh root context at Submit — the single-engine feed path.
  /// A traced record keeps its context, so a record forwarded between
  /// cluster shards (or a shard delta shipped to the merge engine)
  /// continues the trace that began at the original ingestion point.
  TraceContext trace{};
};

/// Imports an external stream into one table as keyed upserts: if a row
/// with the same key exists it is updated (firing `updated` rules),
/// otherwise inserted (firing `inserted` rules). Each record runs as its
/// own transaction inside its own task, exactly like STRIP's feed handler.
class FeedImporter {
 public:
  /// The key column is the table's first column, which must be indexed
  /// (feeds are keyed streams; the paper's stocks table is keyed by
  /// symbol).
  static Result<std::unique_ptr<FeedImporter>> Create(
      Database* db, const std::string& table);

  /// Checks `rec` against the table schema: arity plus per-column value
  /// type (null anywhere, exact match, or int into a double column — the
  /// same rules Table::ValidateRecord enforces at insert). The server runs
  /// this over a whole batch BEFORE the first WAL append: a record that
  /// cannot ever apply must be refused at the wire, because once it is
  /// durably logged every future recovery replays the same failure and the
  /// server can never boot again.
  Status Validate(const FeedRecord& rec) const;

  /// Submits one record as a task released at `rec.at`.
  Status Submit(FeedRecord rec);

  /// Applies one record synchronously in the caller's thread: the upsert
  /// runs (and commits, firing rules) before this returns; only the
  /// triggered action tasks stay asynchronous. The network server uses
  /// this instead of Submit so that per-key apply order equals WAL append
  /// order — the property that makes crash-recovery replay land on the
  /// byte-identical final state (DESIGN.md §2.6).
  Status ApplyNow(const FeedRecord& rec);

  /// Submits a whole pre-loaded stream (the paper loads its trace into
  /// memory before the experiment, §4.1). Pre-reserves table capacity for
  /// the stream so the burst does not rehash the row directory mid-flight.
  Status SubmitAll(const std::vector<FeedRecord>& stream);

  uint64_t records_submitted() const { return submitted_.load(); }
  uint64_t records_applied() const { return applied_.load(); }
  uint64_t records_failed() const { return failed_.load(); }

 private:
  FeedImporter(Database* db, Table* table, Statement update_stmt,
               Statement insert_stmt);

  /// Applies one record inside its own transaction. When run from a
  /// submitted task, `tcb` carries the record's root trace context into
  /// the transaction (and receives its lock waits).
  Status Apply(const FeedRecord& rec, TaskControlBlock* tcb);

  /// Best-effort capacity reservation for `incoming` upserts, under a
  /// short whole-table exclusive lock.
  void ReserveForBurst(size_t incoming);

  Database* db_;
  Table* table_;
  Statement update_stmt_;  // update t set c2=?, ... where key=?
  Statement insert_stmt_;  // insert into t values (?, ?, ...)
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> failed_{0};
};

/// A batch of exported changes: materialized rows of the export rule's
/// bound table (the table's columns plus execute_order).
struct ExportBatch {
  Timestamp delivered_at = 0;
  std::vector<std::vector<Value>> inserted;
  std::vector<std::vector<Value>> updated_new;  // new images of updates
  std::vector<std::vector<Value>> deleted;
};

using ExportSink = std::function<void(const ExportBatch&)>;

/// Streams a table's changes to `sink` by installing a rule on the table.
/// Batching is the rule system's: with `delay_seconds > 0` the export rule
/// runs as a unique transaction collecting everything that happened in the
/// window into one batch — export consumers get the same batching lever
/// applications do.
class TableExporter {
 public:
  /// Installs rule `export_<table>` executing function `export_<table>_fn`.
  /// Fails if either name is taken.
  static Result<std::unique_ptr<TableExporter>> Create(
      Database* db, const std::string& table, double delay_seconds,
      ExportSink sink);

  ~TableExporter();

  uint64_t batches_delivered() const { return batches_->load(); }

 private:
  TableExporter(Database* db, std::string rule_name,
                std::shared_ptr<std::atomic<uint64_t>> batches)
      : db_(db), rule_name_(std::move(rule_name)),
        batches_(std::move(batches)) {}

  Database* db_;
  std::string rule_name_;
  std::shared_ptr<std::atomic<uint64_t>> batches_;
};

}  // namespace strip

#endif  // STRIP_FEED_FEED_H_
