#ifndef STRIP_TESTING_FAULT_INJECTOR_H_
#define STRIP_TESTING_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "strip/common/clock.h"

namespace strip {

/// Knobs for the deterministic chaos harness (DESIGN.md §9). All rates are
/// probabilities in [0, 1]; every decision is a pure hash of (seed, site,
/// ids), so two runs with the same seed make identical choices regardless
/// of how many other decisions were interleaved — the property that makes
/// failing schedules replayable and shrinkable.
struct FaultInjectorConfig {
  uint64_t seed = 1;

  /// Forced wait-die deaths: probability that a lock Acquire is killed with
  /// Status::Aborted before touching the lock table, exercising the
  /// caller's restart path (release all shard locks, retry with the
  /// original priority).
  double lock_abort_rate = 0.0;

  /// Executor worker stalls: probability that the (simulated) worker burns
  /// virtual time before running a task, perturbing arrival order of
  /// everything behind it.
  double stall_rate = 0.0;
  Timestamp max_stall_micros = 20'000;

  /// Delayed timer promotions: probability that a delay-queue task is
  /// released late, as if the timer fired behind schedule.
  double extra_delay_rate = 0.0;
  Timestamp max_extra_delay_micros = 100'000;

  /// Deterministic task costs: when set, tasks submitted without a fixed
  /// cost get one derived from the seed (replacing the measured wall-clock
  /// cost, which would make virtual time nondeterministic).
  bool assign_fixed_costs = true;
  Timestamp max_task_cost_micros = 500;
};

/// Counters for what actually fired (reported by the chaos runner).
struct FaultInjectionStats {
  std::atomic<uint64_t> lock_aborts{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> extra_delays{0};
  std::atomic<uint64_t> costs_assigned{0};
};

/// Seeded fault source consulted from hook points in the lock manager and
/// the simulated executor. Thread-safe: decisions are stateless hashes and
/// the stats are atomics, so the same injector can also be installed under
/// the threaded executor (the ASan/TSan chaos CI job does).
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultInjectorConfig& config() const { return config_; }
  const FaultInjectionStats& stats() const { return stats_; }

  /// Hook: LockManager::Acquire entry. True = kill this request with an
  /// injected wait-die abort. Keyed by (txn id, acquire sequence within the
  /// txn) so a restarted transaction — fresh id — redraws its fate.
  bool ShouldAbortLockAcquire(uint64_t txn_id, uint64_t acquire_seq);

  /// Hook: simulated executor, before running a task. Virtual micros the
  /// worker stalls first (0 = no stall).
  Timestamp StallBeforeRun(uint64_t task_id);

  /// Hook: SimulatedExecutor::Submit for delayed tasks. Extra micros added
  /// to the release time (0 = on-time promotion).
  Timestamp ExtraReleaseDelay(uint64_t task_id);

  /// Hook: SimulatedExecutor::Submit. Deterministic fixed cost for a task
  /// that has none (-1 = leave the task's cost alone).
  Timestamp AssignCost(uint64_t task_id);

 private:
  /// Uniform double in [0, 1) from a pure hash of (seed, site, a, b).
  double UnitHash(uint64_t site, uint64_t a, uint64_t b = 0) const;
  /// Uniform integer in [0, bound) from the same hash family.
  uint64_t RangeHash(uint64_t site, uint64_t a, uint64_t bound) const;

  const FaultInjectorConfig config_;
  FaultInjectionStats stats_;
};

}  // namespace strip

#endif  // STRIP_TESTING_FAULT_INJECTOR_H_
