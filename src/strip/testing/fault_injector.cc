#include "strip/testing/fault_injector.h"

#include "strip/txn/lock_manager.h"  // Mix64

namespace strip {

namespace {

// Distinct site tags keep the decision streams independent: the same task
// id must not couple "does it stall" to "what does it cost".
constexpr uint64_t kSiteLockAbort = 0x10c4ab047ull;
constexpr uint64_t kSiteStall = 0x57a11ull;
constexpr uint64_t kSiteDelay = 0xde1a9ull;
constexpr uint64_t kSiteCost = 0xc057ull;

}  // namespace

double FaultInjector::UnitHash(uint64_t site, uint64_t a, uint64_t b) const {
  uint64_t h = Mix64(config_.seed ^ Mix64(site ^ Mix64(a) ^ Mix64(b ^ site)));
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t FaultInjector::RangeHash(uint64_t site, uint64_t a,
                                  uint64_t bound) const {
  if (bound == 0) return 0;
  uint64_t h = Mix64(config_.seed ^ Mix64(site ^ Mix64(a ^ 0x9e37ull)));
  return h % bound;
}

bool FaultInjector::ShouldAbortLockAcquire(uint64_t txn_id,
                                           uint64_t acquire_seq) {
  if (config_.lock_abort_rate <= 0.0) return false;
  if (UnitHash(kSiteLockAbort, txn_id, acquire_seq) >=
      config_.lock_abort_rate) {
    return false;
  }
  stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Timestamp FaultInjector::StallBeforeRun(uint64_t task_id) {
  if (config_.stall_rate <= 0.0 || config_.max_stall_micros <= 0) return 0;
  if (UnitHash(kSiteStall, task_id) >= config_.stall_rate) return 0;
  stats_.stalls.fetch_add(1, std::memory_order_relaxed);
  return 1 + static_cast<Timestamp>(RangeHash(
                 kSiteStall, task_id,
                 static_cast<uint64_t>(config_.max_stall_micros)));
}

Timestamp FaultInjector::ExtraReleaseDelay(uint64_t task_id) {
  if (config_.extra_delay_rate <= 0.0 || config_.max_extra_delay_micros <= 0) {
    return 0;
  }
  if (UnitHash(kSiteDelay, task_id) >= config_.extra_delay_rate) return 0;
  stats_.extra_delays.fetch_add(1, std::memory_order_relaxed);
  return 1 + static_cast<Timestamp>(RangeHash(
                 kSiteDelay, task_id,
                 static_cast<uint64_t>(config_.max_extra_delay_micros)));
}

Timestamp FaultInjector::AssignCost(uint64_t task_id) {
  if (!config_.assign_fixed_costs || config_.max_task_cost_micros <= 0) {
    return -1;
  }
  stats_.costs_assigned.fetch_add(1, std::memory_order_relaxed);
  return 1 + static_cast<Timestamp>(RangeHash(
                 kSiteCost, task_id,
                 static_cast<uint64_t>(config_.max_task_cost_micros)));
}

}  // namespace strip
