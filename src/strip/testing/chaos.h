#ifndef STRIP_TESTING_CHAOS_H_
#define STRIP_TESTING_CHAOS_H_

#include <cstdint>
#include <string>

#include "strip/common/status.h"
#include "strip/testing/fault_injector.h"
#include "strip/testing/invariant_checker.h"
#include "strip/txn/scheduler.h"

namespace strip {

/// One seeded chaos run (DESIGN.md §9): a self-contained rule workload on
/// the virtual-clock simulated executor, driven one step at a time with
/// the full invariant suite between steps and a shadow recompute at
/// quiescence. Everything — the feed, its perturbations (bursts, reorders,
/// duplicates), and every fault decision — derives from `seed`, so a
/// failing seed replays exactly.
struct ChaosOptions {
  uint64_t seed = 1;

  // --- workload shape ---------------------------------------------------
  int num_syms = 6;           // distinct base-table symbols
  int num_events = 120;       // price-update events in the feed
  int mean_gap_micros = 4000; // mean virtual-time gap between events
  double recompute_delay_seconds = 0.03;  // `unique on sym` rule window
  double audit_delay_seconds = 0.08;      // coarse `unique` rule window
  SchedulingPolicy policy = SchedulingPolicy::kFifo;

  // --- feed perturbations (probabilities per event) ---------------------
  double burst_rate = 0.15;      // collapse the gap to 0 (same-instant)
  double reorder_rate = 0.10;    // swap with the previous event's slot
  double duplicate_rate = 0.05;  // re-deliver the event a moment later
  /// Follow the price update with a delete + re-insert of the same base
  /// row (state-preserving): exercises slot tombstoning, reuse, and — via
  /// txn undo under injected aborts — resurrection, the page-arena paths a
  /// pure update stream never touches. 0 by default so pre-churn canned
  /// seeds keep their exact RNG stream.
  double churn_rate = 0.0;

  // --- maintained view (invariant f) ------------------------------------
  /// Adds a weighted-sum join view over `base` and a static sector
  /// dimension, kept up to date by a GENERATED delta-maintenance rule
  /// (rule_gen.h) rather than a hand-written recompute. Feed updates drive
  /// the delta path; churn (enable it too) drives the insert/delete path
  /// and the hidden-count bookkeeping. At quiescence invariant (f) demands
  /// exact equality with a from-scratch recompute — sector weights are 0.5
  /// and prices integral, so every delta is exact in double. Off by
  /// default so pre-view canned seeds keep their exact schedules.
  bool with_maintained_view = false;
  double view_delay_seconds = 0.05;  // generated rule's batching window

  // --- fault injection --------------------------------------------------
  /// `faults.seed` is overwritten with `seed` by RunChaos.
  FaultInjectorConfig faults = [] {
    FaultInjectorConfig c;
    c.lock_abort_rate = 0.04;
    c.stall_rate = 0.10;
    c.extra_delay_rate = 0.10;
    return c;
  }();
  InvariantOptions invariants;

  /// Run the step-invariant suite after every executor step (the default;
  /// the shrinker can turn it off to isolate a shadow-recompute failure).
  bool check_every_step = true;

  // --- flight recorder (obs/flight_recorder.h) --------------------------
  /// When non-empty, the first invariant / workload failure dumps the
  /// trace ring + metrics snapshot to this path (one JSON object; load
  /// the "trace" member in chrome://tracing, or validate the whole dump
  /// with tools/validate_trace.py).
  std::string flight_record_path;
  /// When > 0, deliberately corrupts the derived table after this many
  /// executor steps so the invariant suite MUST trip — the end-to-end
  /// exercise of the failure path and the flight recorder. The run's
  /// failure is expected; its dump is the artifact under test.
  uint64_t plant_failure_at_step = 0;
};

/// What a chaos run produced. `execute_order` is the deterministic
/// schedule log — one line per finished task with virtual start/finish
/// times and result codes, no wall-clock values — so two runs of the same
/// seed must produce byte-identical logs.
struct ChaosReport {
  bool ok = false;
  std::string failure;  // first invariant / workload error ("" when ok)
  std::string execute_order;

  uint64_t steps = 0;
  uint64_t tasks_run = 0;
  uint64_t feed_events = 0;       // update tasks submitted (incl. dups)
  uint64_t applied_updates = 0;   // update txns that committed
  uint64_t churn_events = 0;      // delete+re-insert churn txns committed
  uint64_t rule_tasks_created = 0;
  uint64_t firings_merged = 0;
  uint64_t wait_die_aborts = 0;   // injected + organic, from lock stats
  uint64_t deltas_shipped = 0;    // cluster runs: shard->merge shipments

  struct InjectedCounts {
    uint64_t lock_aborts = 0;
    uint64_t stalls = 0;
    uint64_t extra_delays = 0;
    uint64_t costs_assigned = 0;
  } injected;
};

/// Builds the workload, runs it to quiescence under the injector, and
/// checks every invariant class. Never throws; failures land in
/// `report.failure`.
ChaosReport RunChaos(const ChaosOptions& options);

/// Sharded-cluster chaos (invariant g): the same seeded perturbed feed,
/// symbol-hash routed — over the wire format — across `num_shards`
/// simulated shard engines that maintain per-shard partial views, with
/// folded group deltas shipped to a merge engine's staging table
/// (cluster/cluster.h two-tier wiring). Engines are stepped round-robin,
/// one virtual step each, with the step-invariant suite run per engine;
/// each engine draws from its own seed-derived fault injector. At
/// quiescence every engine passes its per-engine quiescent checks —
/// invariant (f) covers each shard's partial view — and invariant (g)
/// demands the merge engine's composite view exactly equal a from-scratch
/// recompute over the UNION of the shard base tables (weights are 0.5 and
/// prices integral, so equality is exact), with the staging table fully
/// consumed.
///
/// Differences from the single-engine run: the feed enters through
/// FeedImporter upserts, which retry wait-die deaths under the engine's
/// action-retry policy but can still exhaust it under injected aborts, so
/// `kAborted` task results are tolerated (a dropped base record leaves
/// base untouched — both sides of invariant (g) see the same state; a
/// dropped delta shipment surfaces in the staging importer's `failed`
/// counter, printed with any (g) mismatch); `churn_rate` and
/// `with_maintained_view` are ignored (the composite view is always on,
/// updates-and-inserts only); `plant_failure_at_step` plants a bogus group
/// row in the merge engine's composite view, which nothing repairs and
/// invariant (g) MUST catch.
ChaosReport RunClusterChaos(const ChaosOptions& options, int num_shards);

/// Greedy seed shrinker: given options whose run fails, repeatedly tries
/// smaller feeds and disabled fault classes, keeping each change only if
/// the failure survives. Returns the minimal still-failing options plus
/// the final report and a human-readable trail of what was tried.
struct ShrinkResult {
  ChaosOptions options;
  ChaosReport report;
  int runs = 0;       // total RunChaos invocations spent shrinking
  std::string trail;  // one line per shrink attempt (kept / reverted)
};
ShrinkResult ShrinkFailure(const ChaosOptions& failing, int max_runs = 48);

}  // namespace strip

#endif  // STRIP_TESTING_CHAOS_H_
