#include "strip/testing/chaos.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <map>

#include "strip/cluster/cluster.h"
#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/obs/flight_recorder.h"
#include "strip/viewmaint/rule_gen.h"

namespace strip {
namespace {

/// Sequential splitmix64 stream for feed generation. Generation happens
/// once, up front, single-threaded, so a sequential stream is fine here;
/// the *injector* uses order-independent pure hashes instead because its
/// draw sites interleave unpredictably.
class SplitMix {
 public:
  explicit SplitMix(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  double Unit() { return (Next() >> 11) * 0x1.0p-53; }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

/// One price-update message of the synthetic feed.
struct FeedEvent {
  int sym;              // index into the symbol universe
  double price;         // new absolute price (integral, exact in double)
  Timestamp at;         // virtual-time release of the update task
  uint64_t priority;    // wait-die age: generation order, kept on retry
  bool duplicate;       // re-delivery of an earlier message
  bool churn = false;   // also delete + re-insert the row (state-preserving)
};

std::string SymName(int i) { return StrFormat("S%d", i); }

/// Generates the perturbed feed: base events in generation order, then
/// seeded bursts (gap collapsed to zero), adjacent release-time swaps
/// (late delivery), and duplicates (re-delivery with the same payload).
std::vector<FeedEvent> MakeFeed(const ChaosOptions& o) {
  SplitMix rng(o.seed ^ 0xfeedfeedfeedfeedull);
  std::vector<FeedEvent> events;
  events.reserve(o.num_events);
  Timestamp t = 10'000;
  for (int i = 0; i < o.num_events; ++i) {
    FeedEvent e;
    e.sym = static_cast<int>(rng.Below(static_cast<uint64_t>(o.num_syms)));
    e.price = 1.0 + static_cast<double>(rng.Below(1000));
    Timestamp gap =
        1 + static_cast<Timestamp>(rng.Below(2 * o.mean_gap_micros));
    if (rng.Unit() < o.burst_rate) gap = 0;
    t += gap;
    e.at = t;
    e.priority = static_cast<uint64_t>(i) + 1;
    e.duplicate = false;
    events.push_back(e);
  }
  // Reorder: swap release times of adjacent events, so the message
  // generated (and aged) first is delivered second.
  for (size_t i = 1; i < events.size(); ++i) {
    if (rng.Unit() < o.reorder_rate) {
      std::swap(events[i - 1].at, events[i].at);
    }
  }
  // Duplicates: re-deliver a message shortly after the original. Same
  // payload; its update is value-identical so rules must not re-fire.
  size_t originals = events.size();
  for (size_t i = 0; i < originals; ++i) {
    if (rng.Unit() < o.duplicate_rate) {
      FeedEvent dup = events[i];
      dup.at += 1 + static_cast<Timestamp>(rng.Below(500));
      dup.priority = static_cast<uint64_t>(originals + i) + 1;
      dup.duplicate = true;
      events.push_back(dup);
    }
  }
  // Churn: after applying the update, the event also deletes and
  // re-inserts its base row — tombstoning the slot and reclaiming it (or
  // resurrecting it on txn undo). The short-circuit keeps the RNG stream
  // of pre-churn seeds byte-identical when the rate is zero.
  for (FeedEvent& e : events) {
    e.churn = o.churn_rate > 0 && rng.Unit() < o.churn_rate;
  }
  return events;
}

/// The churn half of a churn event: delete the row and re-insert it with
/// its current values, in one transaction. State-preserving (the shadow
/// recompute can't tell), but the row's slot is tombstoned and reallocated
/// — and when the injector kills the transaction mid-flight, the undo path
/// resurrects the deleted row. The row id changes; nothing outside the
/// transaction holds one.
Status ApplyChurn(Database& db, const FeedEvent& e, uint64_t* churned) {
  const std::string sym = SymName(e.sym);
  constexpr int kRetryLimit = 16;
  Status last;
  for (int attempt = 0; attempt <= kRetryLimit; ++attempt) {
    Result<Transaction*> txn = db.Begin(e.priority);
    if (!txn.ok()) return txn.status();
    auto run = [&]() -> Status {
      Result<ResultSet> row = db.ExecuteInTxn(
          *txn, StrFormat("select price, ver from base where sym = '%s'",
                          sym.c_str()));
      STRIP_RETURN_IF_ERROR(row.status());
      if (row->num_rows() != 1) {
        return Status::Internal(StrFormat(
            "churn: %zu base rows for '%s'", row->num_rows(), sym.c_str()));
      }
      double price = row->rows[0][0].as_double();
      long long ver = static_cast<long long>(row->rows[0][1].as_int());
      STRIP_RETURN_IF_ERROR(
          db.ExecuteInTxn(*txn, StrFormat("delete from base where sym = '%s'",
                                          sym.c_str()))
              .status());
      return db
          .ExecuteInTxn(*txn,
                        StrFormat("insert into base values ('%s', %.1f, %lld)",
                                  sym.c_str(), price, ver))
          .status();
    };
    Status st = run();
    if (st.ok()) {
      last = db.Commit(*txn);
      if (last.ok()) {
        ++*churned;
        return Status::OK();
      }
    } else {
      last = st;
      (void)db.Abort(*txn);
    }
    if (last.code() != StatusCode::kAborted) return last;
  }
  return last;
}

/// Applies one feed event inside its own transaction, retrying injected
/// (and organic) wait-die deaths with the ORIGINAL priority — the same
/// restart discipline the engine uses for rule actions.
Status ApplyEvent(Database& db, const FeedEvent& e, uint64_t* applied) {
  const std::string sql =
      StrFormat("update base set price = %.1f, ver += 1 where sym = '%s'",
                e.price, SymName(e.sym).c_str());
  constexpr int kRetryLimit = 16;
  Status last;
  for (int attempt = 0; attempt <= kRetryLimit; ++attempt) {
    Result<Transaction*> txn = db.Begin(e.priority);
    if (!txn.ok()) return txn.status();
    Result<ResultSet> r = db.ExecuteInTxn(*txn, sql);
    if (r.ok()) {
      last = db.Commit(*txn);
      if (last.ok()) {
        ++*applied;
        return Status::OK();
      }
    } else {
      last = r.status();
      (void)db.Abort(*txn);
    }
    if (last.code() != StatusCode::kAborted) return last;
  }
  return last;
}

/// Invariant (d): the maintained derived data must equal a brute-force
/// shadow recompute. Two closed-form checks that survive batching, merging,
/// duplicates, and retries:
///   - every derived.double_price equals 2 * base.price, and
///   - audit_total.n equals sum(derived.firings): the coarse-unique audit
///     rule folds exactly one transition row per committed recompute.
Status ShadowRecompute(Database& db) {
  Result<ResultSet> base = db.Execute("select sym, price from base order by sym");
  STRIP_RETURN_IF_ERROR(base.status());
  Result<ResultSet> derived =
      db.Execute("select sym, double_price, firings from derived order by sym");
  STRIP_RETURN_IF_ERROR(derived.status());
  if (base->num_rows() != derived->num_rows()) {
    return Status::Internal(StrFormat(
        "invariant d: %zu base rows but %zu derived rows",
        base->num_rows(), derived->num_rows()));
  }
  int64_t total_firings = 0;
  for (size_t i = 0; i < base->num_rows(); ++i) {
    if (base->rows[i][0] != derived->rows[i][0]) {
      return Status::Internal(StrFormat(
          "invariant d: row %zu key mismatch (%s vs %s)", i,
          base->rows[i][0].ToString().c_str(),
          derived->rows[i][0].ToString().c_str()));
    }
    double want = 2.0 * base->rows[i][1].as_double();
    double got = derived->rows[i][1].as_double();
    if (want != got) {  // prices are integral: exact comparison is right
      return Status::Internal(StrFormat(
          "invariant d: derived(%s) = %.1f but shadow recompute says %.1f",
          base->rows[i][0].ToString().c_str(), got, want));
    }
    total_firings += derived->rows[i][2].as_int();
  }
  Result<ResultSet> audit =
      db.Execute("select n from audit_total where k = 'all'");
  STRIP_RETURN_IF_ERROR(audit.status());
  if (audit->num_rows() != 1) {
    return Status::Internal("invariant d: audit_total row missing");
  }
  int64_t audited = audit->rows[0][0].as_int();
  if (audited != total_firings) {
    return Status::Internal(StrFormat(
        "invariant d: audit_total.n = %lld but derived tables record %lld "
        "recompute firings",
        static_cast<long long>(audited),
        static_cast<long long>(total_firings)));
  }
  return Status::OK();
}

Status SetUpWorkload(Database& db, const ChaosOptions& o) {
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
    create table base (sym string, price double, ver int);
    create index on base (sym);
    create table derived (sym string, double_price double, firings int);
    create index on derived (sym);
    create table audit_total (k string, n int);
  )"));
  for (int i = 0; i < o.num_syms; ++i) {
    STRIP_RETURN_IF_ERROR(
        db.Execute(StrFormat("insert into base values ('%s', 100.0, 0)",
                             SymName(i).c_str()))
            .status());
    STRIP_RETURN_IF_ERROR(
        db.Execute(StrFormat("insert into derived values ('%s', 200.0, 0)",
                             SymName(i).c_str()))
            .status());
  }
  STRIP_RETURN_IF_ERROR(
      db.Execute("insert into audit_total values ('all', 0)").status());

  // The maintained computation: derived.double_price = 2 * base.price,
  // recomputed per symbol by a `unique on sym` delayed rule. Deliberately
  // reads base inside the action (not the transition values) so merged /
  // batched firings still converge to the latest committed price.
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "chaos_recompute", [](FunctionContext& ctx) -> Status {
        const TempTable* changed = ctx.BoundTable("changed");
        if (changed == nullptr || changed->size() == 0) {
          return Status::Internal("chaos_recompute: empty bound table");
        }
        // `unique on sym` partitions firings per symbol: every row in this
        // task's bound table carries the same sym.
        const std::string sym = changed->Get(0, 0).as_string();
        Result<TempTable> price = ctx.Query(
            StrFormat("select price from base where sym = '%s'", sym.c_str()));
        STRIP_RETURN_IF_ERROR(price.status());
        if (price->size() != 1) {
          return Status::Internal(
              StrFormat("chaos_recompute: %zu base rows for '%s'",
                        price->size(), sym.c_str()));
        }
        double p = price->Get(0, 0).as_double();
        return ctx.Exec(StrFormat("update derived set double_price = %.1f, "
                                  "firings += 1 where sym = '%s'",
                                  2.0 * p, sym.c_str()))
            .status();
      }));

  // Cascaded audit: a coarse `unique` rule on the derived table counts
  // committed recompute firings. Keyed on `updated firings` (which always
  // changes) so the count is closed-form: one transition row per commit.
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "chaos_audit", [](FunctionContext& ctx) -> Status {
        const TempTable* rows = ctx.BoundTable("changed_rows");
        if (rows == nullptr) {
          return Status::Internal("chaos_audit: missing bound table");
        }
        return ctx.Exec(StrFormat(
                            "update audit_total set n += %zu where k = 'all'",
                            rows->size()))
            .status();
      }));

  STRIP_RETURN_IF_ERROR(
      db.Execute(StrFormat(R"(
        create rule chaos_recompute on base when updated price
        if select new.sym as sym from new bind as changed
        then execute chaos_recompute unique on sym after %f seconds
      )",
                           o.recompute_delay_seconds))
          .status());
  STRIP_RETURN_IF_ERROR(
      db.Execute(StrFormat(R"(
        create rule chaos_audit on derived when updated firings
        if select new.sym as sym from new bind as changed_rows
        then execute chaos_audit unique after %f seconds
      )",
                           o.audit_delay_seconds))
          .status());

  // Invariant (f) fixture: a weighted-sum join view maintained by a
  // GENERATED delta rule (dim-probe strategy: the group key and weight
  // live on the dimension, prices on the fact). The feed's updates flow
  // through the delta path; churn's delete + re-insert pairs flow through
  // the _ins/_del companions and the hidden-count bookkeeping. Weights of
  // 0.5 against integral prices keep every delta exact in double, so the
  // quiescent comparison with a from-scratch recompute is strict.
  if (o.with_maintained_view) {
    STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
      create table sectors (sym string, sec string, w double);
      create index on sectors (sym);
    )"));
    for (int i = 0; i < o.num_syms; ++i) {
      STRIP_RETURN_IF_ERROR(
          db.Execute(StrFormat("insert into sectors values ('%s', 'SEC%d', 0.5)",
                               SymName(i).c_str(), i % 3))
              .status());
    }
    STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
      create materialized view chaos_view as
        select sec, sum(base.price * w) as total
        from base, sectors
        where base.sym = sectors.sym
        group by sec;
      create index on chaos_view (sec);
    )"));
    RuleGenOptions gen;
    gen.delay_seconds = o.view_delay_seconds;
    STRIP_RETURN_IF_ERROR(
        GenerateMaintenanceRule(db, "chaos_view", "base", gen).status());
  }
  return Status::OK();
}

}  // namespace

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;

  Database::Options db_opts;
  db_opts.mode = ExecutorMode::kSimulated;
  db_opts.policy = options.policy;
  // Virtual time advances by task cost; the injector pins every cost to a
  // seed-derived value so the clock itself is deterministic.
  db_opts.advance_clock_by_cost = true;
  Database db(db_opts);

  auto fail = [&](const Status& st, const char* where) {
    if (!report.failure.empty()) return;
    report.failure = StrFormat("[seed %llu, step %llu, %s] %s",
                               static_cast<unsigned long long>(options.seed),
                               static_cast<unsigned long long>(report.steps),
                               where, st.ToString().c_str());
    // Black-box dump at first failure: the retained lifecycle events and
    // the full metrics snapshot, while the wreckage is still warm.
    if (!options.flight_record_path.empty()) {
      Status wrote =
          WriteFlightRecord(options.flight_record_path, report.failure,
                            /*verdict_json=*/"", db.trace_ring(),
                            db.metrics());
      if (!wrote.ok()) {
        report.failure += StrFormat(" (flight record failed: %s)",
                                    wrote.ToString().c_str());
      }
    }
  };

  Status setup = SetUpWorkload(db, options);
  if (!setup.ok()) {
    fail(setup, "setup");
    return report;
  }

  // Faults start only after the workload is built: the schema and seed
  // rows are the fixture, not the system under test.
  FaultInjectorConfig fi_config = options.faults;
  fi_config.seed = options.seed;
  FaultInjector injector(fi_config);
  db.locks().set_fault_injector(&injector);
  SimulatedExecutor* sim = db.simulated();
  sim->set_fault_injector(&injector);

  sim->set_task_observer([&](const TaskControlBlock& t) {
    ++report.tasks_run;
    // Virtual-clock times and result codes only — no wall values — so two
    // runs of one seed must produce byte-identical logs.
    report.execute_order += StrFormat(
        "task=%llu fn=%s rel=%lld start=%lld finish=%lld cost=%lld rc=%d\n",
        static_cast<unsigned long long>(t.id()),
        t.function_name.empty() ? "-" : t.function_name.c_str(),
        static_cast<long long>(t.release_time),
        static_cast<long long>(t.start_time),
        static_cast<long long>(t.finish_time),
        static_cast<long long>(t.cpu_micros), static_cast<int>(t.result.code()));
    if (!t.result.ok()) {
      fail(t.result, "task result");
    }
  });

  std::vector<FeedEvent> events = MakeFeed(options);
  report.feed_events = events.size();
  uint64_t applied = 0;
  uint64_t churned = 0;
  for (const FeedEvent& e : events) {
    TaskPtr task = db.NewTask();
    task->release_time = e.at;
    task->function_name =
        e.churn ? "feed-churn" : (e.duplicate ? "feed-dup" : "feed");
    FeedEvent ev = e;
    Database* dbp = &db;
    uint64_t* appliedp = &applied;
    uint64_t* churnedp = &churned;
    task->work = [dbp, ev, appliedp, churnedp](TaskControlBlock&) {
      STRIP_RETURN_IF_ERROR(ApplyEvent(*dbp, ev, appliedp));
      if (ev.churn) return ApplyChurn(*dbp, ev, churnedp);
      return Status::OK();
    };
    db.Submit(std::move(task));
  }

  InvariantChecker checker(&db, options.invariants);
  bool planted = false;
  while (sim->RunOneStep()) {
    ++report.steps;
    if (options.plant_failure_at_step > 0 && !planted &&
        report.steps >= options.plant_failure_at_step) {
      // Corrupt the audit ledger outside any rule firing: nothing watches
      // audit_total, so unlike a derived-table corruption (which a later
      // chaos_recompute firing would silently repair) this is permanent
      // and invariant (d) MUST catch it at quiescence.
      planted = true;
      Status st =
          db.Execute("update audit_total set n += 1000000 where k = 'all'")
              .status();
      if (!st.ok()) fail(st, "planting failure");
    }
    if (options.check_every_step) {
      Status st = checker.CheckStep();
      if (!st.ok()) {
        fail(st, "step invariants");
        break;
      }
    }
  }
  if (report.failure.empty()) {
    // The quiescent validation runs real queries through the engine; it
    // must observe the final state, not draw injected faults of its own.
    db.locks().set_fault_injector(nullptr);
    Status st = checker.CheckQuiescent(ShadowRecompute);
    if (!st.ok()) fail(st, "quiescence");
  }

  report.applied_updates = applied;
  report.churn_events = churned;
  report.rule_tasks_created = db.rules().stats().tasks_created;
  report.firings_merged = db.rules().stats().firings_merged;
  report.wait_die_aborts =
      db.locks().stats().wait_die_aborts.load(std::memory_order_relaxed);
  const FaultInjectionStats& fi = injector.stats();
  report.injected.lock_aborts = fi.lock_aborts.load(std::memory_order_relaxed);
  report.injected.stalls = fi.stalls.load(std::memory_order_relaxed);
  report.injected.extra_delays =
      fi.extra_delays.load(std::memory_order_relaxed);
  report.injected.costs_assigned =
      fi.costs_assigned.load(std::memory_order_relaxed);

  // Detach hooks before the Database (and its executor) outlive them —
  // they reference stack objects of this frame.
  sim->set_task_observer(nullptr);
  sim->set_fault_injector(nullptr);
  db.locks().set_fault_injector(nullptr);

  report.ok = report.failure.empty();
  return report;
}

// ---------------------------------------------------------------------------
// Sharded-cluster chaos: invariant (g)
// ---------------------------------------------------------------------------

namespace {

/// Invariant (g): the merge engine's composite view must exactly equal a
/// from-scratch recompute over the UNION of the shard base tables. The
/// recompute never reads maintained state — it re-joins each shard's base
/// against its (replicated) sectors dimension and aggregates in plain
/// C++ — so agreement means the whole two-tier pipeline (tier-1 partials,
/// folded shipments, merge application) preserved the data, not that two
/// maintained copies drifted together. Weights are 0.5 and prices
/// integral, so every comparison is exact.
Status CheckClusterComposite(Cluster& cluster) {
  struct Agg {
    double total = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, Agg> want;
  for (int i = 0; i < cluster.num_shards(); ++i) {
    Result<ResultSet> pairs = cluster.shard(i).Execute(
        "select sec, base.price, w from base, sectors "
        "where base.sym = sectors.sym");
    STRIP_RETURN_IF_ERROR(pairs.status());
    for (const std::vector<Value>& row : pairs->rows) {
      Agg& a = want[row[0].as_string()];
      a.total += row[1].as_double() * row[2].as_double();
      ++a.count;
    }
  }

  Result<ResultSet> got = cluster.merge().Execute(
      "select sec, total, _count from chaos_view order by sec");
  STRIP_RETURN_IF_ERROR(got.status());
  if (got->num_rows() != want.size()) {
    return Status::Internal(StrFormat(
        "invariant g: merged view has %zu groups but the shard union "
        "recomputes %zu",
        got->num_rows(), want.size()));
  }
  auto it = want.begin();
  for (size_t i = 0; i < got->num_rows(); ++i, ++it) {
    const std::string sec = got->rows[i][0].as_string();
    if (sec != it->first) {
      return Status::Internal(StrFormat(
          "invariant g: merged group '%s' but recompute says '%s'",
          sec.c_str(), it->first.c_str()));
    }
    double total = got->rows[i][1].as_double();
    int64_t count = got->rows[i][2].as_int();
    if (total != it->second.total || count != it->second.count) {
      // Split the failure between the tiers: the per-shard partial rows
      // for this group (tier 1) versus what the shipments made of them
      // (tier 2), plus the staging importer's delivery counters — a
      // `failed` shipment is a delta lost in flight.
      std::string detail;
      double fold_total = 0.0;
      int64_t fold_count = 0;
      for (int s = 0; s < cluster.num_shards(); ++s) {
        Result<ResultSet> part = cluster.shard(s).Execute(
            StrFormat("select total, _count from chaos_view "
                      "where sec = '%s'",
                      sec.c_str()));
        if (!part.ok()) continue;
        for (const std::vector<Value>& row : part->rows) {
          detail += StrFormat(" shard%d=(%.4f,%lld)", s,
                              row[0].as_double(),
                              static_cast<long long>(row[1].as_int()));
          fold_total += row[0].as_double();
          fold_count += row[1].as_int();
        }
      }
      const FeedImporter* staging = cluster.staging_importer("chaos_view");
      if (staging != nullptr) {
        detail += StrFormat(
            " staging submitted=%llu applied=%llu failed=%llu",
            static_cast<unsigned long long>(staging->records_submitted()),
            static_cast<unsigned long long>(staging->records_applied()),
            static_cast<unsigned long long>(staging->records_failed()));
      }
      return Status::Internal(StrFormat(
          "invariant g: merged('%s') = (%.4f, %lld) but shard-union "
          "recompute says (%.4f, %lld); partials fold to (%.4f, %lld):%s",
          sec.c_str(), total, static_cast<long long>(count),
          it->second.total, static_cast<long long>(it->second.count),
          fold_total, static_cast<long long>(fold_count), detail.c_str()));
    }
  }

  // Every staged delta must have been consumed and deleted by the merge
  // rule — residue means a shipment was applied twice or never.
  Result<ResultSet> staged =
      cluster.merge().Execute("select _seq from chaos_view_deltas");
  STRIP_RETURN_IF_ERROR(staged.status());
  if (staged->num_rows() != 0) {
    return Status::Internal(StrFormat(
        "invariant g: %zu staged deltas left at quiescence",
        staged->num_rows()));
  }
  return Status::OK();
}

Status SetUpClusterWorkload(Cluster& cluster, const ChaosOptions& o) {
  STRIP_RETURN_IF_ERROR(cluster.ExecuteOnShards(R"(
    create table base (sym string, price double, ver int);
    create index on base (sym);
    create table sectors (sym string, sec string, w double);
    create index on sectors (sym);
  )"));
  // The dimension is replicated: every shard can resolve any symbol's
  // sector locally, so a routed fact row never needs a cross-shard probe.
  std::string dims;
  for (int i = 0; i < o.num_syms; ++i) {
    dims += StrFormat("insert into sectors values ('%s', 'SEC%d', 0.5);\n",
                      SymName(i).c_str(), i % 3);
  }
  STRIP_RETURN_IF_ERROR(cluster.ExecuteOnShards(dims));
  STRIP_RETURN_IF_ERROR(cluster.ExecuteOnShards(R"(
    create materialized view chaos_view as
      select sec, sum(base.price * w) as total
      from base, sectors
      where base.sym = sectors.sym
      group by sec;
    create index on chaos_view (sec);
  )"));

  Cluster::TwoTierOptions tt;
  tt.tier1.delay_seconds = o.view_delay_seconds;
  tt.export_delay_seconds = o.view_delay_seconds;
  tt.merge_delay_seconds = o.view_delay_seconds;
  return cluster.ConnectTwoTier("chaos_view", "base", tt);
}

}  // namespace

ChaosReport RunClusterChaos(const ChaosOptions& options, int num_shards) {
  ChaosReport report;

  ClusterOptions copts;
  copts.num_shards = num_shards < 1 ? 1 : num_shards;
  copts.shard.mode = ExecutorMode::kSimulated;
  copts.shard.policy = options.policy;
  copts.shard.advance_clock_by_cost = true;
  copts.merge = copts.shard;
  Cluster cluster(copts);

  const int engines = cluster.num_shards() + 1;  // shards + merge
  auto engine = [&](int i) -> Database& {
    return i < cluster.num_shards() ? cluster.shard(i) : cluster.merge();
  };
  auto engine_name = [&](int i) -> std::string {
    return i < cluster.num_shards() ? StrFormat("shard%d", i)
                                    : std::string("merge");
  };

  auto fail = [&](const Status& st, const std::string& where) {
    if (!report.failure.empty()) return;
    report.failure = StrFormat("[seed %llu, step %llu, %s] %s",
                               static_cast<unsigned long long>(options.seed),
                               static_cast<unsigned long long>(report.steps),
                               where.c_str(), st.ToString().c_str());
    // The merge engine is where invariant (g) failures land; its ring and
    // metrics are the most useful black box for a cluster failure.
    if (!options.flight_record_path.empty()) {
      Status wrote = WriteFlightRecord(
          options.flight_record_path, report.failure, /*verdict_json=*/"",
          cluster.merge().trace_ring(), cluster.merge().metrics());
      if (!wrote.ok()) {
        report.failure += StrFormat(" (flight record failed: %s)",
                                    wrote.ToString().c_str());
      }
    }
  };

  Status setup = SetUpClusterWorkload(cluster, options);
  if (!setup.ok()) {
    fail(setup, "setup");
    return report;
  }
  Result<FeedRouter*> router = cluster.OpenFeed("base");
  if (!router.ok()) {
    fail(router.status(), "setup");
    return report;
  }

  // One injector per engine, each drawing from its own seed stream —
  // faults on one shard must not shift another shard's draws.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<InvariantChecker> checkers;
  checkers.reserve(static_cast<size_t>(engines));
  for (int i = 0; i < engines; ++i) {
    FaultInjectorConfig c = options.faults;
    c.seed = options.seed ^
             (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(i) + 1));
    injectors.push_back(std::make_unique<FaultInjector>(c));
    engine(i).locks().set_fault_injector(injectors.back().get());
    engine(i).simulated()->set_fault_injector(injectors.back().get());
    checkers.emplace_back(&engine(i), options.invariants);
    std::string name = engine_name(i);
    engine(i).simulated()->set_task_observer(
        [&report, &fail, name](const TaskControlBlock& t) {
          ++report.tasks_run;
          report.execute_order += StrFormat(
              "%s task=%llu fn=%s rel=%lld start=%lld finish=%lld cost=%lld "
              "rc=%d\n",
              name.c_str(), static_cast<unsigned long long>(t.id()),
              t.function_name.empty() ? "-" : t.function_name.c_str(),
              static_cast<long long>(t.release_time),
              static_cast<long long>(t.start_time),
              static_cast<long long>(t.finish_time),
              static_cast<long long>(t.cpu_micros),
              static_cast<int>(t.result.code()));
          // Feed upserts do not retry wait-die deaths; an aborted record
          // simply never lands, which both sides of invariant (g) agree
          // on. Anything other than a clean abort is a real failure.
          if (!t.result.ok() && t.result.code() != StatusCode::kAborted) {
            fail(t.result, name + " task result");
          }
        });
  }

  // The same perturbed feed, entering through the router: each record is
  // wire-encoded, hash-routed by symbol, and upserted by the owning
  // shard's importer at its release time.
  std::vector<FeedEvent> events = MakeFeed(options);
  report.feed_events = events.size();
  for (const FeedEvent& e : events) {
    FeedRecord rec;
    rec.at = e.at;
    rec.values = {Value::Str(SymName(e.sym)), Value::Double(e.price),
                  Value::Int(static_cast<int64_t>(e.priority))};
    Status st = (*router)->Route(rec);
    if (!st.ok()) {
      fail(st, "routing");
      break;
    }
  }

  // Round-robin, one virtual step per engine per pass. A shard's export
  // firing enqueues merge work mid-pass, so the loop only exits after a
  // full pass in which NO engine had anything to run.
  bool planted = false;
  bool any = true;
  while (any && report.failure.empty()) {
    any = false;
    for (int i = 0; i < engines && report.failure.empty(); ++i) {
      if (!engine(i).simulated()->RunOneStep()) continue;
      any = true;
      ++report.steps;
      if (options.plant_failure_at_step > 0 && !planted &&
          report.steps >= options.plant_failure_at_step) {
        // A bogus group in the merged view: no delta will ever key it, so
        // nothing repairs it and invariant (g) MUST trip at quiescence.
        planted = true;
        Status st = cluster.merge()
                        .Execute("insert into chaos_view values "
                                 "('BOGUS', 1000000.0, 1)")
                        .status();
        if (!st.ok()) fail(st, "planting failure");
      }
      if (options.check_every_step) {
        Status st = checkers[static_cast<size_t>(i)].CheckStep();
        if (!st.ok()) fail(st, engine_name(i) + " step invariants");
      }
    }
  }

  if (report.failure.empty()) {
    // Quiescent validation runs real queries; it must not draw faults.
    for (int i = 0; i < engines; ++i) {
      engine(i).locks().set_fault_injector(nullptr);
    }
    // Per-engine quiescent suite: invariant (f) checks each shard's
    // partial view against its local from-scratch recompute; the cross-
    // shard shadow is invariant (g) below.
    for (int i = 0; i < engines && report.failure.empty(); ++i) {
      Status st = checkers[static_cast<size_t>(i)].CheckQuiescent(nullptr);
      if (!st.ok()) fail(st, engine_name(i) + " quiescence");
    }
    if (report.failure.empty()) {
      Status st = CheckClusterComposite(cluster);
      if (!st.ok()) fail(st, "quiescence");
    }
  }

  report.applied_updates = (*router)->total_routed();
  report.deltas_shipped = cluster.deltas_shipped();
  for (int i = 0; i < engines; ++i) {
    Database& db = engine(i);
    report.rule_tasks_created += db.rules().stats().tasks_created;
    report.firings_merged += db.rules().stats().firings_merged;
    report.wait_die_aborts +=
        db.locks().stats().wait_die_aborts.load(std::memory_order_relaxed);
    const FaultInjectionStats& fi = injectors[static_cast<size_t>(i)]->stats();
    report.injected.lock_aborts +=
        fi.lock_aborts.load(std::memory_order_relaxed);
    report.injected.stalls += fi.stalls.load(std::memory_order_relaxed);
    report.injected.extra_delays +=
        fi.extra_delays.load(std::memory_order_relaxed);
    report.injected.costs_assigned +=
        fi.costs_assigned.load(std::memory_order_relaxed);
    // Detach hooks before the cluster (and its executors) outlive them.
    db.simulated()->set_task_observer(nullptr);
    db.simulated()->set_fault_injector(nullptr);
    db.locks().set_fault_injector(nullptr);
  }

  report.ok = report.failure.empty();
  return report;
}

ShrinkResult ShrinkFailure(const ChaosOptions& failing, int max_runs) {
  ShrinkResult res;
  res.options = failing;
  res.report = RunChaos(failing);
  res.runs = 1;
  if (res.report.ok) {
    res.trail = "baseline run passed; nothing to shrink\n";
    return res;
  }

  auto attempt = [&](const char* what, const ChaosOptions& trial) {
    if (res.runs >= max_runs) return false;
    ChaosReport r = RunChaos(trial);
    ++res.runs;
    if (!r.ok) {
      res.options = trial;
      res.report = std::move(r);
      res.trail += StrFormat("%s: still fails — kept\n", what);
      return true;
    }
    res.trail += StrFormat("%s: passes — reverted\n", what);
    return false;
  };

  // Phase 1: halve the feed while the failure survives.
  while (res.options.num_events > 1) {
    ChaosOptions trial = res.options;
    trial.num_events = std::max(1, trial.num_events / 2);
    if (!attempt(StrFormat("events %d -> %d", res.options.num_events,
                           trial.num_events)
                     .c_str(),
                 trial)) {
      break;
    }
  }

  // Phase 2: disable one fault / perturbation class at a time. Whatever
  // survives is the minimal ingredient list for the failure.
  struct Knob {
    const char* name;
    void (*zero)(ChaosOptions&);
  };
  const Knob knobs[] = {
      {"no injected lock aborts",
       [](ChaosOptions& o) { o.faults.lock_abort_rate = 0; }},
      {"no worker stalls", [](ChaosOptions& o) { o.faults.stall_rate = 0; }},
      {"no late promotions",
       [](ChaosOptions& o) { o.faults.extra_delay_rate = 0; }},
      {"no bursts", [](ChaosOptions& o) { o.burst_rate = 0; }},
      {"no reorders", [](ChaosOptions& o) { o.reorder_rate = 0; }},
      {"no duplicates", [](ChaosOptions& o) { o.duplicate_rate = 0; }},
      {"no churn", [](ChaosOptions& o) { o.churn_rate = 0; }},
      {"no maintained view",
       [](ChaosOptions& o) { o.with_maintained_view = false; }},
  };
  for (const Knob& k : knobs) {
    ChaosOptions trial = res.options;
    k.zero(trial);
    attempt(k.name, trial);
  }
  return res;
}

}  // namespace strip
