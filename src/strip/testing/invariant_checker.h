#ifndef STRIP_TESTING_INVARIANT_CHECKER_H_
#define STRIP_TESTING_INVARIANT_CHECKER_H_

#include <cstdint>
#include <functional>

#include "strip/common/status.h"

namespace strip {

class Database;

/// Which invariant classes CheckStep validates (all on by default; the
/// seed shrinker disables classes to isolate a failure).
struct InvariantOptions {
  bool check_refcounts = true;         // (a) record pins vs. use_count
  bool check_lock_residue = true;      // (b) no locks held by finished txns
  bool check_unique_directory = true;  // (c) directory vs. delay-queue
  bool check_page_consistency = true;  // (e) arena pages vs. row directory
  bool check_view_consistency = true;  // (f) maintained views vs. recompute
};

/// Validates global consistency of a simulated-mode Database between
/// executor steps — the moments when no task is mid-flight and no
/// transaction is active, so every pin, lock, and directory entry has a
/// fully-determined owner:
///
///  (a) Record refcounts: every live record version's use_count equals the
///      pins the audit can enumerate (its table row, plus one per bound-
///      table tuple slot of every queued task). A mismatch is a leak
///      (pinned forever) or a double-release (freed while referenced).
///  (b) Lock-table residue: with no active transactions, every lock shard
///      must be empty — keys, holder entries, held-lists, waiters.
///  (c) Unique-manager directory: every directory entry is an un-started
///      task still sitting in an executor queue, and every queued
///      un-started unique task is reachable from the directory (§6.3's
///      hash table and the delay queue agree).
///
/// Invariant (d) — derived-table consistency against a shadow brute-force
/// recompute — needs workload knowledge, so CheckQuiescent takes it as a
/// callback (the chaos workload and the PTA harness each supply theirs).
///
///  (e) Page consistency: every table's slotted-page arena agrees with
///      itself (occupancy bitmaps vs. live counts vs. free list; live
///      slots hold records, tombstones pin nothing) and with the row-id
///      directory (every id resolves to a live slot carrying that id, and
///      the directory covers every live row).
///
///  (f) Maintained-view consistency: every materialized view kept up to
///      date by generated maintenance rules (ViewDef.maintained) must
///      equal a from-scratch evaluation of its maintenance query —
///      compared as unordered row multisets. Quiescence-only: while
///      delayed maintenance tasks are queued the view is legitimately
///      stale, so this runs from CheckQuiescent, not CheckStep.
class InvariantChecker {
 public:
  InvariantChecker(Database* db, InvariantOptions options)
      : db_(db), options_(options) {}

  /// All enabled step invariants; call between simulated steps only.
  Status CheckStep();

  /// CheckStep plus the workload's shadow recompute (invariant d); call at
  /// quiescence (both executor queues empty).
  Status CheckQuiescent(const std::function<Status(Database&)>& shadow);

  uint64_t steps_checked() const { return steps_checked_; }

 private:
  Status CheckRefcounts();
  Status CheckLockResidue();
  Status CheckUniqueDirectory();
  Status CheckPageConsistency();
  Status CheckViewConsistency();

  Database* db_;
  InvariantOptions options_;
  uint64_t steps_checked_ = 0;
};

}  // namespace strip

#endif  // STRIP_TESTING_INVARIANT_CHECKER_H_
