#include "strip/testing/invariant_checker.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/storage/record.h"
#include "strip/viewmaint/view_def.h"

namespace strip {

Status InvariantChecker::CheckStep() {
  if (db_->simulated() == nullptr) {
    return Status::FailedPrecondition(
        "invariant checks run against the simulated executor only");
  }
  ++steps_checked_;
  if (options_.check_lock_residue) {
    STRIP_RETURN_IF_ERROR(CheckLockResidue());
  }
  if (options_.check_unique_directory) {
    STRIP_RETURN_IF_ERROR(CheckUniqueDirectory());
  }
  // Page consistency before the refcount audit: (a) walks every live
  // slot, so page-level corruption must be diagnosed as itself, not as a
  // downstream refcount anomaly.
  if (options_.check_page_consistency) {
    STRIP_RETURN_IF_ERROR(CheckPageConsistency());
  }
  if (options_.check_refcounts) {
    STRIP_RETURN_IF_ERROR(CheckRefcounts());
  }
  return Status::OK();
}

Status InvariantChecker::CheckQuiescent(
    const std::function<Status(Database&)>& shadow) {
  SimulatedExecutor* sim = db_->simulated();
  if (sim != nullptr && (sim->num_delayed() != 0 || sim->num_ready() != 0)) {
    return Status::FailedPrecondition(StrFormat(
        "CheckQuiescent with %zu delayed / %zu ready tasks still queued",
        sim->num_delayed(), sim->num_ready()));
  }
  STRIP_RETURN_IF_ERROR(CheckStep());
  if (options_.check_view_consistency) {
    STRIP_RETURN_IF_ERROR(CheckViewConsistency());
  }
  if (shadow) {
    STRIP_RETURN_IF_ERROR(shadow(*db_));
  }
  return Status::OK();
}

Status InvariantChecker::CheckLockResidue() {
  // Between steps every transaction has committed or aborted; any state
  // left in any shard is residue from a finished transaction.
  size_t active = db_->NumActiveTxns();
  if (active != 0) {
    return Status::Internal(StrFormat(
        "invariant b: %zu transaction(s) still active between steps",
        active));
  }
  LockManager::Audit audit = db_->locks().AuditState();
  if (audit.locked_keys != 0 || audit.holder_entries != 0 ||
      audit.tracked_txns != 0 || audit.waiters != 0) {
    return Status::Internal(StrFormat(
        "invariant b: lock-table residue with no active txns: "
        "%zu locked keys, %zu holder entries, %zu tracked txns, %zu waiters",
        audit.locked_keys, audit.holder_entries, audit.tracked_txns,
        audit.waiters));
  }
  return Status::OK();
}

Status InvariantChecker::CheckUniqueDirectory() {
  // Queued (delayed or ready) task ids, and the subset that is un-started
  // unique work — which must agree exactly with the directory.
  std::unordered_set<uint64_t> queued_ids;
  std::unordered_set<uint64_t> queued_unique_ids;
  db_->simulated()->ForEachQueuedTask([&](const TaskPtr& t) {
    queued_ids.insert(t->id());
    if (t->is_unique && !t->started) queued_unique_ids.insert(t->id());
  });

  auto directory = db_->rules().unique_manager().SnapshotQueued();
  std::unordered_set<uint64_t> directory_ids;
  for (const auto& [function, task] : directory) {
    if (task->started) {
      return Status::Internal(StrFormat(
          "invariant c: directory entry for '%s' (task %llu) has already "
          "started — OnTaskStart failed to unhook it",
          function.c_str(), static_cast<unsigned long long>(task->id())));
    }
    if (queued_ids.count(task->id()) == 0) {
      return Status::Internal(StrFormat(
          "invariant c: directory entry for '%s' (task %llu) is in no "
          "executor queue — merges into it would be lost",
          function.c_str(), static_cast<unsigned long long>(task->id())));
    }
    directory_ids.insert(task->id());
  }
  for (uint64_t id : queued_unique_ids) {
    if (directory_ids.count(id) == 0) {
      return Status::Internal(StrFormat(
          "invariant c: queued un-started unique task %llu has no "
          "directory entry — later firings would duplicate its work",
          static_cast<unsigned long long>(id)));
    }
  }
  return Status::OK();
}

Status InvariantChecker::CheckRefcounts() {
  // Enumerate every pin the system should be holding: the live record of
  // each table row, plus each bound-table tuple slot of each queued task.
  // (Between steps there are no active transactions, so txn logs hold
  // nothing, and no statement is mid-execution.) One sample RecordRef per
  // record lets us read use_count; the sample itself accounts for +1.
  struct Pins {
    RecordRef sample;
    long expected = 0;
  };
  std::unordered_map<const Record*, Pins> pins;
  auto add = [&](const RecordRef& r) {
    Pins& p = pins[r.get()];
    if (p.sample == nullptr) p.sample = r;
    ++p.expected;
  };

  for (const std::string& name : db_->catalog().ListTables()) {
    Table* table = db_->catalog().FindTable(name);
    if (table != nullptr) table->ForEachRecord(add);
  }
  db_->simulated()->ForEachQueuedTask([&](const TaskPtr& t) {
    t->bound_tables.ForEachPinnedRecord(add);
  });

  for (const auto& [rec, p] : pins) {
    long actual = static_cast<long>(p.sample.use_count()) - 1;  // our sample
    if (actual != p.expected) {
      return Status::Internal(StrFormat(
          "invariant a: record %p has use_count %ld but the audit found "
          "%ld pin(s) — %s",
          static_cast<const void*>(rec), actual, p.expected,
          actual > p.expected ? "refcount leak (an unpin was lost)"
                              : "double release (freed while referenced)"));
    }
  }
  return Status::OK();
}

namespace {

/// Order-insensitive row fingerprints: each row printed column by column
/// (bit-identical values print identically), then sorted. The maintained
/// views this audits use exact-in-double arithmetic, so strict string
/// equality is the right comparison.
std::vector<std::string> SortedRowStrings(
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const std::vector<Value>& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '\t';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Status InvariantChecker::CheckViewConsistency() {
  for (const std::string& name : db_->views().ListViews()) {
    const ViewDef* def = db_->views().Find(name);
    if (def == nullptr || !def->maintained || !def->materialized) continue;

    Result<ResultSet> stored =
        db_->Execute(StrFormat("select * from %s", name.c_str()));
    STRIP_RETURN_IF_ERROR(stored.status());

    // Fresh from-scratch evaluation of the maintenance query (the defining
    // query plus the hidden `_count` column when the view tracks one).
    SelectStmt query = MaintenanceQuery(*def);
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    auto fresh = db_->Query(txn, query);
    if (!fresh.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return fresh.status();
    }
    STRIP_RETURN_IF_ERROR(db_->Commit(txn));
    ResultSet recomputed = fresh->Materialize();

    if (stored->num_rows() != recomputed.num_rows()) {
      return Status::Internal(StrFormat(
          "invariant f: view '%s' has %zu rows but a from-scratch recompute "
          "yields %zu",
          name.c_str(), stored->num_rows(), recomputed.num_rows()));
    }
    std::vector<std::string> got = SortedRowStrings(stored->rows);
    std::vector<std::string> want = SortedRowStrings(recomputed.rows);
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i] != want[i]) {
        return Status::Internal(StrFormat(
            "invariant f: view '%s' row [%s] diverges from recompute row "
            "[%s]",
            name.c_str(), got[i].c_str(), want[i].c_str()));
      }
    }
  }
  return Status::OK();
}

Status InvariantChecker::CheckPageConsistency() {
  // Each table audits its own arena (bitmaps, live counts, free list) and
  // its row-id directory; here we just aggregate with the invariant tag
  // the shrinker keys on.
  for (const std::string& name : db_->catalog().ListTables()) {
    Table* table = db_->catalog().FindTable(name);
    if (table == nullptr) continue;
    Status st = table->AuditPageConsistency();
    if (!st.ok()) {
      return Status::Internal(
          StrFormat("invariant e: %s", st.message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace strip
