#include "strip/testing/invariant_checker.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/storage/record.h"

namespace strip {

Status InvariantChecker::CheckStep() {
  if (db_->simulated() == nullptr) {
    return Status::FailedPrecondition(
        "invariant checks run against the simulated executor only");
  }
  ++steps_checked_;
  if (options_.check_lock_residue) {
    STRIP_RETURN_IF_ERROR(CheckLockResidue());
  }
  if (options_.check_unique_directory) {
    STRIP_RETURN_IF_ERROR(CheckUniqueDirectory());
  }
  // Page consistency before the refcount audit: (a) walks every live
  // slot, so page-level corruption must be diagnosed as itself, not as a
  // downstream refcount anomaly.
  if (options_.check_page_consistency) {
    STRIP_RETURN_IF_ERROR(CheckPageConsistency());
  }
  if (options_.check_refcounts) {
    STRIP_RETURN_IF_ERROR(CheckRefcounts());
  }
  return Status::OK();
}

Status InvariantChecker::CheckQuiescent(
    const std::function<Status(Database&)>& shadow) {
  SimulatedExecutor* sim = db_->simulated();
  if (sim != nullptr && (sim->num_delayed() != 0 || sim->num_ready() != 0)) {
    return Status::FailedPrecondition(StrFormat(
        "CheckQuiescent with %zu delayed / %zu ready tasks still queued",
        sim->num_delayed(), sim->num_ready()));
  }
  STRIP_RETURN_IF_ERROR(CheckStep());
  if (shadow) {
    STRIP_RETURN_IF_ERROR(shadow(*db_));
  }
  return Status::OK();
}

Status InvariantChecker::CheckLockResidue() {
  // Between steps every transaction has committed or aborted; any state
  // left in any shard is residue from a finished transaction.
  size_t active = db_->NumActiveTxns();
  if (active != 0) {
    return Status::Internal(StrFormat(
        "invariant b: %zu transaction(s) still active between steps",
        active));
  }
  LockManager::Audit audit = db_->locks().AuditState();
  if (audit.locked_keys != 0 || audit.holder_entries != 0 ||
      audit.tracked_txns != 0 || audit.waiters != 0) {
    return Status::Internal(StrFormat(
        "invariant b: lock-table residue with no active txns: "
        "%zu locked keys, %zu holder entries, %zu tracked txns, %zu waiters",
        audit.locked_keys, audit.holder_entries, audit.tracked_txns,
        audit.waiters));
  }
  return Status::OK();
}

Status InvariantChecker::CheckUniqueDirectory() {
  // Queued (delayed or ready) task ids, and the subset that is un-started
  // unique work — which must agree exactly with the directory.
  std::unordered_set<uint64_t> queued_ids;
  std::unordered_set<uint64_t> queued_unique_ids;
  db_->simulated()->ForEachQueuedTask([&](const TaskPtr& t) {
    queued_ids.insert(t->id());
    if (t->is_unique && !t->started) queued_unique_ids.insert(t->id());
  });

  auto directory = db_->rules().unique_manager().SnapshotQueued();
  std::unordered_set<uint64_t> directory_ids;
  for (const auto& [function, task] : directory) {
    if (task->started) {
      return Status::Internal(StrFormat(
          "invariant c: directory entry for '%s' (task %llu) has already "
          "started — OnTaskStart failed to unhook it",
          function.c_str(), static_cast<unsigned long long>(task->id())));
    }
    if (queued_ids.count(task->id()) == 0) {
      return Status::Internal(StrFormat(
          "invariant c: directory entry for '%s' (task %llu) is in no "
          "executor queue — merges into it would be lost",
          function.c_str(), static_cast<unsigned long long>(task->id())));
    }
    directory_ids.insert(task->id());
  }
  for (uint64_t id : queued_unique_ids) {
    if (directory_ids.count(id) == 0) {
      return Status::Internal(StrFormat(
          "invariant c: queued un-started unique task %llu has no "
          "directory entry — later firings would duplicate its work",
          static_cast<unsigned long long>(id)));
    }
  }
  return Status::OK();
}

Status InvariantChecker::CheckRefcounts() {
  // Enumerate every pin the system should be holding: the live record of
  // each table row, plus each bound-table tuple slot of each queued task.
  // (Between steps there are no active transactions, so txn logs hold
  // nothing, and no statement is mid-execution.) One sample RecordRef per
  // record lets us read use_count; the sample itself accounts for +1.
  struct Pins {
    RecordRef sample;
    long expected = 0;
  };
  std::unordered_map<const Record*, Pins> pins;
  auto add = [&](const RecordRef& r) {
    Pins& p = pins[r.get()];
    if (p.sample == nullptr) p.sample = r;
    ++p.expected;
  };

  for (const std::string& name : db_->catalog().ListTables()) {
    Table* table = db_->catalog().FindTable(name);
    if (table != nullptr) table->ForEachRecord(add);
  }
  db_->simulated()->ForEachQueuedTask([&](const TaskPtr& t) {
    t->bound_tables.ForEachPinnedRecord(add);
  });

  for (const auto& [rec, p] : pins) {
    long actual = static_cast<long>(p.sample.use_count()) - 1;  // our sample
    if (actual != p.expected) {
      return Status::Internal(StrFormat(
          "invariant a: record %p has use_count %ld but the audit found "
          "%ld pin(s) — %s",
          static_cast<const void*>(rec), actual, p.expected,
          actual > p.expected ? "refcount leak (an unpin was lost)"
                              : "double release (freed while referenced)"));
    }
  }
  return Status::OK();
}

Status InvariantChecker::CheckPageConsistency() {
  // Each table audits its own arena (bitmaps, live counts, free list) and
  // its row-id directory; here we just aggregate with the invariant tag
  // the shrinker keys on.
  for (const std::string& name : db_->catalog().ListTables()) {
    Table* table = db_->catalog().FindTable(name);
    if (table == nullptr) continue;
    Status st = table->AuditPageConsistency();
    if (!st.ok()) {
      return Status::Internal(
          StrFormat("invariant e: %s", st.message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace strip
