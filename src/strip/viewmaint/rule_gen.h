#ifndef STRIP_VIEWMAINT_RULE_GEN_H_
#define STRIP_VIEWMAINT_RULE_GEN_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"

namespace strip {

class Database;

/// Options for generated maintenance rules. The paper's §8 conjectures
/// that the [CW91] approach of deriving maintenance rules from view
/// definitions extends to deriving the unit of batching and the delay
/// window as well; this module implements that conjecture for the view
/// shapes the evaluation uses:
///
///  - aggregation views:  SELECT g, SUM(e)... [, COUNT(*)]
///                        FROM fact [, dims...] WHERE equi-joins GROUP BY g
///    maintained from the bound-table delta. Three derivation strategies,
///    picked automatically:
///      * direct     — no dimensions: deltas keyed by the group column;
///      * dim-probe  — one dimension, group key and weights on the
///        dimension side (the comp_prices shape): the condition query
///        projects only fact-local delta columns, and the action probes
///        the dimension through a prepared index lookup per net key — the
///        compute_comps3 pattern of §4.3, generated;
///      * join-in-condition — general fallback: the condition query joins
///        the dimensions at commit time and emits per-group deltas.
///    All strategies fold same-key deltas (rules/net_effect) before
///    applying, so a batched unique transaction applies one net delta per
///    group: maintenance cost O(|delta|), not O(|group|).
///
///  - projection views:   SELECT k, exprs... FROM fact [, dims...]
///                        WHERE equi-joins
///    maintained by recomputing affected rows (e.g. Black-Scholes option
///    prices), like do_options.
///
/// Known fallback limitation: with several dimensions (join-in-condition
/// strategy), an UPDATE that changes the fact-side join key matches the
/// old image against the new image's dimension rows. The dim-probe
/// strategy handles join-key updates exactly (old and new keys are probed
/// separately).
struct RuleGenOptions {
  /// Batch with a unique transaction. When true and `unique_columns` is
  /// empty, the generator picks the unit of batching itself: the delta
  /// key — the view's group column (direct / join strategies) or the fact
  /// join key (dim-probe) — "just large enough to take advantage of the
  /// redundancy in the recomputation but no larger" (§8).
  bool unique = true;
  std::vector<std::string> unique_columns;
  double delay_seconds = 1.0;
  /// Aggregation views only: also generate rules maintaining the view
  /// under INSERTs and DELETEs of fact rows (delta = +e for inserts,
  /// -e for deletes; a delta for a group not yet in the view inserts the
  /// row).
  bool handle_insert_delete = true;
  /// Aggregation views only (and only with handle_insert_delete): track
  /// membership in a hidden per-group `_count` column on the backing
  /// table, and delete a group's row once its count reaches zero — fixing
  /// the documented [CW91] limitation where a fully-deleted group left a
  /// zero-sum row behind. Row deletion is deferred to the first
  /// maintenance firing that sees no queued sibling tasks, so out-of-order
  /// batched firings can never erase a group that a pending delta will
  /// resurrect.
  bool track_group_count = true;
};

/// What the generator produced (for inspection / documentation).
struct GeneratedRule {
  std::string rule_name;       // the primary (update-event) rule
  std::string function_name;
  std::string rule_sql;        // display form of the primary rule
  /// Companion rules for insert/delete events (aggregation views with
  /// handle_insert_delete).
  std::vector<std::string> extra_rule_names;
  /// Which derivation the generator picked: "direct", "dim-probe",
  /// "join-in-condition", or "projection".
  std::string strategy;
};

/// Generates and installs the maintenance rule + action function for the
/// materialized view `view_name` with respect to updates of `fact_table`
/// (the table whose changes drive maintenance; other FROM tables are
/// treated as slowly changing dimensions, as the paper does for
/// comps_list / options_list, §3).
Result<GeneratedRule> GenerateMaintenanceRule(Database& db,
                                              const std::string& view_name,
                                              const std::string& fact_table,
                                              const RuleGenOptions& options);

}  // namespace strip

#endif  // STRIP_VIEWMAINT_RULE_GEN_H_
