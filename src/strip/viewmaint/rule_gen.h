#ifndef STRIP_VIEWMAINT_RULE_GEN_H_
#define STRIP_VIEWMAINT_RULE_GEN_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"

namespace strip {

class Database;

/// Options for generated maintenance rules. The paper's §8 conjectures
/// that the [CW91] approach of deriving maintenance rules from view
/// definitions extends to deriving the unit of batching and the delay
/// window as well; this module implements that conjecture for two view
/// shapes (exactly the two the evaluation uses):
///
///  - aggregation views:  SELECT g, SUM(e) FROM fact [, dims...]
///                        WHERE equi-joins GROUP BY g
///    maintained incrementally (delta = e(new) - e(old)), like do_comps3;
///
///  - projection views:   SELECT k, exprs... FROM fact [, dims...]
///                        WHERE equi-joins
///    maintained by recomputing affected rows (e.g. Black-Scholes option
///    prices), like do_options.
struct RuleGenOptions {
  /// Batch with a unique transaction. When true and `unique_columns` is
  /// empty, the generator picks the unit of batching itself: the view's
  /// group / key column — "just large enough to take advantage of the
  /// redundancy in the recomputation but no larger" (§8).
  bool unique = true;
  std::vector<std::string> unique_columns;
  double delay_seconds = 1.0;
  /// Aggregation views only: also generate rules maintaining the view
  /// under INSERTs and DELETEs of fact rows (delta = +e for inserts,
  /// -e for deletes; a delta for a group not yet in the view inserts the
  /// row). Limitation, documented from [CW91]: without a per-group
  /// count column, a group whose members are all deleted keeps a zero-sum
  /// row rather than disappearing.
  bool handle_insert_delete = true;
};

/// What the generator produced (for inspection / documentation).
struct GeneratedRule {
  std::string rule_name;       // the primary (update-event) rule
  std::string function_name;
  std::string rule_sql;        // display form of the primary rule
  /// Companion rules for insert/delete events (aggregation views with
  /// handle_insert_delete).
  std::vector<std::string> extra_rule_names;
};

/// Generates and installs the maintenance rule + action function for the
/// materialized view `view_name` with respect to updates of `fact_table`
/// (the table whose changes drive maintenance; other FROM tables are
/// treated as slowly changing dimensions, as the paper does for
/// comps_list / options_list, §3).
Result<GeneratedRule> GenerateMaintenanceRule(Database& db,
                                              const std::string& view_name,
                                              const std::string& fact_table,
                                              const RuleGenOptions& options);

}  // namespace strip

#endif  // STRIP_VIEWMAINT_RULE_GEN_H_
