#ifndef STRIP_VIEWMAINT_RULE_GEN_H_
#define STRIP_VIEWMAINT_RULE_GEN_H_

#include <functional>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/feed/feed.h"
#include "strip/sql/ast.h"

namespace strip {

class Database;

/// Options for generated maintenance rules. The paper's §8 conjectures
/// that the [CW91] approach of deriving maintenance rules from view
/// definitions extends to deriving the unit of batching and the delay
/// window as well; this module implements that conjecture for the view
/// shapes the evaluation uses:
///
///  - aggregation views:  SELECT g, SUM(e)... [, COUNT(*)]
///                        FROM fact [, dims...] WHERE equi-joins GROUP BY g
///    maintained from the bound-table delta. Three derivation strategies,
///    picked automatically:
///      * direct     — no dimensions: deltas keyed by the group column;
///      * dim-probe  — one dimension, group key and weights on the
///        dimension side (the comp_prices shape): the condition query
///        projects only fact-local delta columns, and the action probes
///        the dimension through a prepared index lookup per net key — the
///        compute_comps3 pattern of §4.3, generated;
///      * join-in-condition — general fallback: the condition query joins
///        the dimensions at commit time and emits per-group deltas.
///    All strategies fold same-key deltas (rules/net_effect) before
///    applying, so a batched unique transaction applies one net delta per
///    group: maintenance cost O(|delta|), not O(|group|).
///
///  - projection views:   SELECT k, exprs... FROM fact [, dims...]
///                        WHERE equi-joins
///    maintained by recomputing affected rows (e.g. Black-Scholes option
///    prices), like do_options.
///
/// Known fallback limitation: with several dimensions (join-in-condition
/// strategy), an UPDATE that changes the fact-side join key matches the
/// old image against the new image's dimension rows. The dim-probe
/// strategy handles join-key updates exactly (old and new keys are probed
/// separately).
struct RuleGenOptions {
  /// Batch with a unique transaction. When true and `unique_columns` is
  /// empty, the generator picks the unit of batching itself: the delta
  /// key — the view's group column (direct / join strategies) or the fact
  /// join key (dim-probe) — "just large enough to take advantage of the
  /// redundancy in the recomputation but no larger" (§8).
  bool unique = true;
  std::vector<std::string> unique_columns;
  double delay_seconds = 1.0;
  /// Aggregation views only: also generate rules maintaining the view
  /// under INSERTs and DELETEs of fact rows (delta = +e for inserts,
  /// -e for deletes; a delta for a group not yet in the view inserts the
  /// row).
  bool handle_insert_delete = true;
  /// Aggregation views only (and only with handle_insert_delete): track
  /// membership in a hidden per-group `_count` column on the backing
  /// table, and delete a group's row once its count reaches zero — fixing
  /// the documented [CW91] limitation where a fully-deleted group left a
  /// zero-sum row behind. Row deletion is deferred to the first
  /// maintenance firing that sees no queued sibling tasks, so out-of-order
  /// batched firings can never erase a group that a pending delta will
  /// resurrect.
  bool track_group_count = true;
  /// Generated delta rules maintain the view under FACT-table changes
  /// only; dimension tables are assumed slowly changing (§3). With this
  /// set, the generator also installs a rule on every dimension table
  /// whose action recomputes the view from scratch (RefreshView), bumps
  /// the `viewmaint.dim_fallback_recompute` counter, and logs a warning —
  /// so a dim change is correct but visibly expensive in `.metrics`,
  /// instead of silently leaving the view stale.
  bool dim_change_fallback = true;
};

/// What the generator produced (for inspection / documentation).
struct GeneratedRule {
  std::string rule_name;       // the primary (update-event) rule
  std::string function_name;
  std::string rule_sql;        // display form of the primary rule
  /// Companion rules for insert/delete events (aggregation views with
  /// handle_insert_delete).
  std::vector<std::string> extra_rule_names;
  /// Which derivation the generator picked: "direct", "dim-probe",
  /// "join-in-condition", or "projection".
  std::string strategy;
};

/// Generates and installs the maintenance rule + action function for the
/// materialized view `view_name` with respect to updates of `fact_table`
/// (the table whose changes drive maintenance; other FROM tables are
/// treated as slowly changing dimensions, as the paper does for
/// comps_list / options_list, §3).
Result<GeneratedRule> GenerateMaintenanceRule(Database& db,
                                              const std::string& view_name,
                                              const std::string& fact_table,
                                              const RuleGenOptions& options);

// ---------------------------------------------------------------------------
// Two-tier maintenance across the cluster's shard boundary (DESIGN.md §2.5)
// ---------------------------------------------------------------------------
// Tier 1 is the ordinary generated rule set above, keeping a PARTIAL
// SUM/`_count` aggregate view on each shard from that shard's slice of the
// fact table. Tier 2 watches the partial view itself: export rules fold
// each window's changes to net group deltas (rules/net_effect) and ship
// them — encoded as feed records in the EncodeGroupDeltaRow staging-row
// layout — to the merge engine, whose merge rule folds the staged deltas
// again and applies them to the top-level view. Both hops stay in delta
// form (DBSP-style composition): recomputed groups never cross the
// boundary.

/// Receives each folded group delta leaving the shard, as a feed record in
/// the staging-row layout. The cluster's sink wire-encodes the record,
/// crosses the shard boundary as bytes, and submits the decoded record to
/// the merge engine's staging importer.
using ShardDeltaSink = std::function<Status(const FeedRecord&)>;

struct ShardExportOptions {
  /// Stamped into the high bits of every `_seq` this shard emits, making
  /// staged rows unique across the cluster.
  int shard_id = 0;
  /// Export batching window: one shipment per window, folding everything
  /// the tier-1 rules did to the partial view meanwhile.
  double delay_seconds = 0.5;
};

struct ShardExportSpec {
  std::vector<std::string> rule_names;      // _upd / _ins / _del
  std::vector<std::string> function_names;
};

/// Installs the tier-2 export rules on a shard engine, watching the
/// backing table of `view_name` (a maintained SUM/COUNT aggregation view
/// with the hidden `_count` — AVG partials are rejected, quotients do not
/// ship as deltas). Call after GenerateMaintenanceRule.
Result<ShardExportSpec> GenerateShardDeltaExport(
    Database& db, const std::string& view_name,
    const ShardExportOptions& options, ShardDeltaSink sink);

struct MergeRuleOptions {
  /// Merge-side batching window: staged deltas accumulating within it are
  /// folded into one application pass over the top-level view.
  double delay_seconds = 0.5;
};

struct MergeRuleSpec {
  std::string staging_table;  // `<view>_deltas`, keyed + indexed on _seq
  std::string rule_name;
  std::string function_name;
};

/// Installs the tier-2 merge side on the merge engine: creates the staging
/// table for `view_table` (which must already exist there with the shard
/// partial views' column layout — group key first, SUM columns, `_count`
/// last) and the merge rule applying folded staged deltas to it. Groups
/// whose `_count` reaches zero are erased by the same deferred sweep the
/// tier-1 rules use.
Result<MergeRuleSpec> GenerateMergeRule(Database& db,
                                        const std::string& view_table,
                                        const MergeRuleOptions& options);

}  // namespace strip

#endif  // STRIP_VIEWMAINT_RULE_GEN_H_
