#include "strip/viewmaint/view_def.h"

#include <utility>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/storage/record.h"
#include "strip/storage/table.h"

namespace strip {

namespace {

/// Inserts every row of `data` into `table` within `txn`, logging changes.
Status InsertRows(Database& db, Transaction* txn, Table* table,
                  const TempTable& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    STRIP_ASSIGN_OR_RETURN(RowHandle it,
                           table->Insert(MakeRecord(data.MaterializeRow(i))));
    txn->log().Append(LogOp::kInsert, table, it->id, nullptr, it->rec);
  }
  (void)db;
  return Status::OK();
}

}  // namespace

SelectStmt MaintenanceQuery(const ViewDef& def) {
  SelectStmt q = def.query.Clone();
  if (def.hidden_count) {
    q.items.push_back(
        SelectItem{MakeAggregate("count", {}, /*star_arg=*/true), "_count"});
  }
  return q;
}

Status ViewManager::CreateView(CreateViewStmt stmt) {
  stmt.name = ToLower(stmt.name);
  if (views_.count(stmt.name) > 0) {
    return Status::AlreadyExists(
        StrFormat("view '%s' already exists", stmt.name.c_str()));
  }
  if (db_->catalog().FindTable(stmt.name) != nullptr) {
    return Status::AlreadyExists(StrFormat(
        "view name '%s' collides with a table", stmt.name.c_str()));
  }

  auto def = std::make_unique<ViewDef>();
  def->name = stmt.name;
  def->materialized = stmt.materialized;
  def->query = std::move(stmt.query);

  if (def->materialized) {
    // Evaluate once to get schema + initial contents; create the backing
    // table; populate it inside a transaction (strict 2PL, rules fire).
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    auto result = db_->Query(txn, def->query);
    if (!result.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return result.status();
    }
    auto table = db_->catalog().CreateTable(def->name,
                                            result->schema());
    if (!table.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return table.status();
    }
    Status st = InsertRows(*db_, txn, *table, *result);
    if (!st.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return st;
    }
    STRIP_RETURN_IF_ERROR(db_->Commit(txn));
  }
  views_.emplace(def->name, std::move(def));
  return Status::OK();
}

Status ViewManager::DropView(const std::string& name) {
  std::string key = ToLower(name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", key.c_str()));
  }
  if (it->second->materialized) {
    STRIP_RETURN_IF_ERROR(db_->catalog().DropTable(key));
  }
  views_.erase(it);
  return Status::OK();
}

Status ViewManager::RefreshView(const std::string& name) {
  std::string key = ToLower(name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", key.c_str()));
  }
  const ViewDef& def = *it->second;
  if (!def.materialized) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' is not materialized", key.c_str()));
  }
  STRIP_ASSIGN_OR_RETURN(Table * table, db_->catalog().GetTable(key));
  SelectStmt query = MaintenanceQuery(def);
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  auto run = [&]() -> Status {
    // Recompute BEFORE clearing so the query sees consistent base data and
    // cannot read the half-cleared view through a self-reference.
    STRIP_ASSIGN_OR_RETURN(TempTable data, db_->Query(txn, query));
    STRIP_RETURN_IF_ERROR(db_->locks().Acquire(
        txn, LockKey::WholeTable(table), LockMode::kExclusive));
    while (!table->rows().empty()) {
      RowHandle row = table->rows().FirstLive();
      txn->log().Append(LogOp::kDelete, table, row->id, row->rec, nullptr);
      table->Erase(row);
    }
    return InsertRows(*db_, txn, table, data);
  };
  Status st = run();
  if (!st.ok()) {
    Status ignored = db_->Abort(txn);
    (void)ignored;
    return st;
  }
  return db_->Commit(txn);
}

Status ViewManager::EnableHiddenCount(const std::string& name) {
  std::string key = ToLower(name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", key.c_str()));
  }
  ViewDef& def = *it->second;
  if (!def.materialized) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' is not materialized", key.c_str()));
  }
  if (def.hidden_count) return Status::OK();
  if (def.query.group_by.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' has no GROUP BY; a per-group count makes no sense",
        key.c_str()));
  }
  STRIP_ASSIGN_OR_RETURN(Table * old_table, db_->catalog().GetTable(key));

  // Evaluate the augmented query before touching the backing table.
  def.hidden_count = true;
  SelectStmt query = MaintenanceQuery(def);
  STRIP_ASSIGN_OR_RETURN(Transaction * read_txn, db_->Begin());
  auto data = db_->Query(read_txn, query);
  if (!data.ok()) {
    def.hidden_count = false;
    Status ignored = db_->Abort(read_txn);
    (void)ignored;
    return data.status();
  }
  STRIP_RETURN_IF_ERROR(db_->Commit(read_txn));

  // Remember the old table's indexes so the rebuilt table keeps them
  // (maintenance updates probe the view by its group column).
  std::vector<std::pair<std::string, IndexKind>> indexes;
  for (const auto& col : old_table->schema().columns()) {
    const Index* idx = old_table->FindIndex(col.name);
    if (idx != nullptr) indexes.emplace_back(col.name, idx->kind());
  }

  STRIP_RETURN_IF_ERROR(db_->catalog().DropTable(key));
  STRIP_ASSIGN_OR_RETURN(Table * table,
                         db_->catalog().CreateTable(key, data->schema()));
  for (const auto& [column, kind] : indexes) {
    STRIP_RETURN_IF_ERROR(table->CreateTableIndex(column, kind));
  }
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  Status st = InsertRows(*db_, txn, table, *data);
  if (!st.ok()) {
    Status ignored = db_->Abort(txn);
    (void)ignored;
    return st;
  }
  return db_->Commit(txn);
}

Status ViewManager::MarkMaintained(const std::string& name) {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", name.c_str()));
  }
  it->second->maintained = true;
  return Status::OK();
}

const ViewDef* ViewManager::Find(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ViewManager::ListViews() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, _] : views_) out.push_back(name);
  return out;
}

}  // namespace strip
