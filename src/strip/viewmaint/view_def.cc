#include "strip/viewmaint/view_def.h"

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/storage/record.h"

namespace strip {

namespace {

/// Inserts every row of `data` into `table` within `txn`, logging changes.
Status InsertRows(Database& db, Transaction* txn, Table* table,
                  const TempTable& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    STRIP_ASSIGN_OR_RETURN(RowHandle it,
                           table->Insert(MakeRecord(data.MaterializeRow(i))));
    txn->log().Append(LogOp::kInsert, table, it->id, nullptr, it->rec);
  }
  (void)db;
  return Status::OK();
}

}  // namespace

Status ViewManager::CreateView(CreateViewStmt stmt) {
  stmt.name = ToLower(stmt.name);
  if (views_.count(stmt.name) > 0) {
    return Status::AlreadyExists(
        StrFormat("view '%s' already exists", stmt.name.c_str()));
  }
  if (db_->catalog().FindTable(stmt.name) != nullptr) {
    return Status::AlreadyExists(StrFormat(
        "view name '%s' collides with a table", stmt.name.c_str()));
  }

  auto def = std::make_unique<ViewDef>();
  def->name = stmt.name;
  def->materialized = stmt.materialized;
  def->query = std::move(stmt.query);

  if (def->materialized) {
    // Evaluate once to get schema + initial contents; create the backing
    // table; populate it inside a transaction (strict 2PL, rules fire).
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    auto result = db_->Query(txn, def->query);
    if (!result.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return result.status();
    }
    auto table = db_->catalog().CreateTable(def->name,
                                            result->schema());
    if (!table.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return table.status();
    }
    Status st = InsertRows(*db_, txn, *table, *result);
    if (!st.ok()) {
      Status ignored = db_->Abort(txn);
      (void)ignored;
      return st;
    }
    STRIP_RETURN_IF_ERROR(db_->Commit(txn));
  }
  views_.emplace(def->name, std::move(def));
  return Status::OK();
}

Status ViewManager::DropView(const std::string& name) {
  std::string key = ToLower(name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", key.c_str()));
  }
  if (it->second->materialized) {
    STRIP_RETURN_IF_ERROR(db_->catalog().DropTable(key));
  }
  views_.erase(it);
  return Status::OK();
}

Status ViewManager::RefreshView(const std::string& name) {
  std::string key = ToLower(name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    return Status::NotFound(StrFormat("no view '%s'", key.c_str()));
  }
  const ViewDef& def = *it->second;
  if (!def.materialized) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' is not materialized", key.c_str()));
  }
  STRIP_ASSIGN_OR_RETURN(Table * table, db_->catalog().GetTable(key));
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  auto run = [&]() -> Status {
    // Recompute BEFORE clearing so the query sees consistent base data and
    // cannot read the half-cleared view through a self-reference.
    STRIP_ASSIGN_OR_RETURN(TempTable data, db_->Query(txn, def.query));
    STRIP_RETURN_IF_ERROR(db_->locks().Acquire(
        txn, LockKey::WholeTable(table), LockMode::kExclusive));
    while (!table->rows().empty()) {
      RowHandle row = table->rows().FirstLive();
      txn->log().Append(LogOp::kDelete, table, row->id, row->rec, nullptr);
      table->Erase(row);
    }
    return InsertRows(*db_, txn, table, data);
  };
  Status st = run();
  if (!st.ok()) {
    Status ignored = db_->Abort(txn);
    (void)ignored;
    return st;
  }
  return db_->Commit(txn);
}

const ViewDef* ViewManager::Find(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ViewManager::ListViews() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, _] : views_) out.push_back(name);
  return out;
}

}  // namespace strip
