#ifndef STRIP_VIEWMAINT_VIEW_DEF_H_
#define STRIP_VIEWMAINT_VIEW_DEF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"

namespace strip {

class Database;

/// A registered view definition.
struct ViewDef {
  std::string name;
  bool materialized = false;
  SelectStmt query;
  /// The backing table carries a hidden `_count` column (count(*) per
  /// group) appended after the defining query's columns. Maintenance
  /// rules use it to delete a group's row when its last member is
  /// deleted — the [CW91] zero-sum-row limitation fixed.
  bool hidden_count = false;
  /// A generated maintenance rule keeps this view incrementally up to
  /// date (set by GenerateMaintenanceRule). At quiescence such a view
  /// must equal a from-scratch recompute — chaos invariant (f).
  bool maintained = false;
};

/// The query whose result the backing table must equal: the defining
/// query, plus a trailing `count(*) as _count` item when the view tracks
/// the hidden per-group count.
SelectStmt MaintenanceQuery(const ViewDef& def);

/// Manages view definitions. Materialized views get a backing standard
/// table populated from the defining query; the paper's applications then
/// maintain them incrementally via rules (§3), and the rule generator
/// (rule_gen.h, the paper's §8 future work) can derive those rules
/// automatically for supported view shapes.
class ViewManager {
 public:
  explicit ViewManager(Database* db) : db_(db) {}

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// Registers the view; for a materialized view, creates the backing
  /// table and populates it from the defining query (in a transaction).
  Status CreateView(CreateViewStmt stmt);

  Status DropView(const std::string& name);

  /// Recomputes a materialized view from scratch: deletes every row of the
  /// backing table and re-inserts the query result, in one transaction.
  /// This is the non-incremental baseline maintenance strategy. Views
  /// with a hidden count recompute it too (count(*) per group).
  Status RefreshView(const std::string& name);

  /// Rebuilds the backing table with the hidden `_count` column appended
  /// (existing indexes are recreated). Idempotent. The rule generator
  /// calls this before installing count-tracking maintenance rules.
  Status EnableHiddenCount(const std::string& name);

  /// Marks the view as kept up to date by generated maintenance rules
  /// (consulted by chaos invariant f).
  Status MarkMaintained(const std::string& name);

  const ViewDef* Find(const std::string& name) const;
  std::vector<std::string> ListViews() const;

 private:
  Database* db_;
  std::map<std::string, std::unique_ptr<ViewDef>> views_;
};

}  // namespace strip

#endif  // STRIP_VIEWMAINT_VIEW_DEF_H_
