#ifndef STRIP_VIEWMAINT_VIEW_DEF_H_
#define STRIP_VIEWMAINT_VIEW_DEF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"

namespace strip {

class Database;

/// A registered view definition.
struct ViewDef {
  std::string name;
  bool materialized = false;
  SelectStmt query;
};

/// Manages view definitions. Materialized views get a backing standard
/// table populated from the defining query; the paper's applications then
/// maintain them incrementally via rules (§3), and the rule generator
/// (rule_gen.h, the paper's §8 future work) can derive those rules
/// automatically for supported view shapes.
class ViewManager {
 public:
  explicit ViewManager(Database* db) : db_(db) {}

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// Registers the view; for a materialized view, creates the backing
  /// table and populates it from the defining query (in a transaction).
  Status CreateView(CreateViewStmt stmt);

  Status DropView(const std::string& name);

  /// Recomputes a materialized view from scratch: deletes every row of the
  /// backing table and re-inserts the query result, in one transaction.
  /// This is the non-incremental baseline maintenance strategy.
  Status RefreshView(const std::string& name);

  const ViewDef* Find(const std::string& name) const;
  std::vector<std::string> ListViews() const;

 private:
  Database* db_;
  std::map<std::string, std::unique_ptr<ViewDef>> views_;
};

}  // namespace strip

#endif  // STRIP_VIEWMAINT_VIEW_DEF_H_
