#include "strip/viewmaint/rule_gen.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/engine/prepared_statement.h"
#include "strip/rules/net_effect.h"
#include "strip/viewmaint/view_def.h"

namespace strip {

namespace {

/// Rewrites every column reference that resolves to the fact table so it
/// reads from the transition table `target` ("new" / "old" / "inserted" /
/// "deleted") instead. A bare name is considered a fact reference iff the
/// fact schema has it and no dimension schema does.
Status RewriteFactRefs(Expr* expr, const std::string& fact,
                       const Schema& fact_schema,
                       const std::vector<const Schema*>& dim_schemas,
                       const std::string& target) {
  if (expr->kind == ExprKind::kColumnRef) {
    bool is_fact = false;
    if (expr->qualifier == fact) {
      is_fact = true;
    } else if (expr->qualifier.empty() &&
               fact_schema.FindColumn(expr->column) >= 0) {
      for (const Schema* d : dim_schemas) {
        if (d->FindColumn(expr->column) >= 0) {
          return Status::InvalidArgument(StrFormat(
              "ambiguous column '%s' (in both fact and dimension tables)",
              expr->column.c_str()));
        }
      }
      is_fact = true;
    }
    if (is_fact) expr->qualifier = target;
    return Status::OK();
  }
  for (auto& a : expr->args) {
    STRIP_RETURN_IF_ERROR(
        RewriteFactRefs(a.get(), fact, fact_schema, dim_schemas, target));
  }
  return Status::OK();
}

/// Deep-clones `e` and rewrites fact references to `target`.
Result<ExprPtr> CloneRewritten(const Expr& e, const std::string& fact,
                               const Schema& fact_schema,
                               const std::vector<const Schema*>& dim_schemas,
                               const std::string& target) {
  ExprPtr out = e.Clone();
  STRIP_RETURN_IF_ERROR(
      RewriteFactRefs(out.get(), fact, fact_schema, dim_schemas, target));
  return out;
}

/// Collects the fact-table columns referenced by `e` (for the `updated
/// [columns]` transition predicate).
void CollectFactColumns(const Expr& e, const std::string& fact,
                        const Schema& fact_schema,
                        std::vector<std::string>& out) {
  if (e.kind == ExprKind::kColumnRef) {
    bool is_fact = e.qualifier == fact ||
                   (e.qualifier.empty() &&
                    fact_schema.FindColumn(e.column) >= 0);
    if (is_fact) {
      for (const auto& c : out) {
        if (c == e.column) return;
      }
      out.push_back(e.column);
    }
    return;
  }
  for (const auto& a : e.args) CollectFactColumns(*a, fact, fact_schema, out);
}

/// Marks which side(s) of the fact/dimension split `e` reads from.
void ClassifyRefs(const Expr& e, const std::string& fact,
                  const Schema& fact_schema,
                  const std::vector<TableRef>& dims,
                  const std::vector<const Schema*>& dim_schemas,
                  bool* reads_fact, bool* reads_dim) {
  if (e.kind == ExprKind::kColumnRef) {
    if (e.qualifier.empty()) {
      if (fact_schema.FindColumn(e.column) >= 0) *reads_fact = true;
      for (const Schema* d : dim_schemas) {
        if (d->FindColumn(e.column) >= 0) *reads_dim = true;
      }
    } else if (e.qualifier == fact) {
      *reads_fact = true;
    } else {
      for (const TableRef& d : dims) {
        if (e.qualifier == d.EffectiveName() ||
            e.qualifier == ToLower(d.table)) {
          *reads_dim = true;
          break;
        }
      }
    }
    return;
  }
  for (const auto& a : e.args) {
    ClassifyRefs(*a, fact, fact_schema, dims, dim_schemas, reads_fact,
                 reads_dim);
  }
}

/// Splits `e` on the given associative operator ('and' / '*').
void Flatten(const Expr* e, BinaryOp op, std::vector<const Expr*>& out) {
  if (e->kind == ExprKind::kBinary && e->bin_op == op) {
    Flatten(e->args[0].get(), op, out);
    Flatten(e->args[1].get(), op, out);
    return;
  }
  out.push_back(e);
}

/// Chains clones into a product; an empty list is the neutral factor 1.
ExprPtr Product(std::vector<ExprPtr> factors) {
  if (factors.empty()) return MakeLiteral(Value::Double(1.0));
  ExprPtr out = std::move(factors[0]);
  for (size_t i = 1; i < factors.size(); ++i) {
    out = MakeBinary(BinaryOp::kMul, std::move(out), std::move(factors[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// View shape analysis
// ---------------------------------------------------------------------------

/// One aggregate of the view's select list: SUM(arg), AVG(arg), or
/// COUNT(*). AVG is maintained as SUM/`_count` without storing the sum:
/// the action recovers the group's running sum as avg * _count, folds the
/// delta in, and writes the new quotient back (satellite of ROADMAP item
/// 3; nearly free because both ingredients were already maintained).
struct AggItem {
  bool is_count = false;
  bool is_avg = false;
  const Expr* arg = nullptr;  // SUM/AVG argument; null for COUNT(*)
  std::string output;         // view column holding the aggregate
};

struct ViewShape {
  bool is_aggregation = false;
  // Aggregation: SELECT g, SUM(e)... [, COUNT(*)...] GROUP BY g.
  const Expr* group_expr = nullptr;
  std::string group_output;
  std::vector<AggItem> aggs;
  size_t num_sums = 0;  // aggs carrying a delta column (SUM and AVG)
  bool has_avg = false;
  // Projection: SELECT k AS kname, e1 AS c1, ... (first item = key).
  const Expr* key_expr = nullptr;
  std::string key_output;
  std::vector<const Expr*> value_exprs;
  std::vector<std::string> value_outputs;
};

Result<ViewShape> AnalyzeView(const ViewDef& view) {
  const SelectStmt& q = view.query;
  if (q.star) {
    return Status::Unimplemented(
        "rule generation does not support SELECT * views");
  }
  ViewShape shape;
  if (!q.group_by.empty()) {
    if (q.group_by.size() != 1) {
      return Status::Unimplemented(
          "rule generation supports a single GROUP BY column");
    }
    shape.is_aggregation = true;
    for (size_t i = 0; i < q.items.size(); ++i) {
      const Expr& e = *q.items[i].expr;
      std::string name = q.items[i].OutputName(static_cast<int>(i));
      if (e.kind == ExprKind::kAggregate) {
        if (e.func_name == "sum" && e.args.size() == 1) {
          shape.aggs.push_back(AggItem{false, false, e.args[0].get(), name});
          ++shape.num_sums;
        } else if (e.func_name == "avg" && e.args.size() == 1) {
          shape.aggs.push_back(AggItem{false, true, e.args[0].get(), name});
          ++shape.num_sums;
          shape.has_avg = true;
        } else if (e.func_name == "count" && e.star_arg) {
          shape.aggs.push_back(AggItem{true, false, nullptr, name});
        } else {
          return Status::Unimplemented(StrFormat(
              "aggregate '%s' cannot be maintained from deltas (only "
              "SUM(expr), AVG(expr), and COUNT(*): MIN/MAX need the "
              "group's rows under deletes)",
              e.func_name.c_str()));
        }
      } else if (!e.ContainsAggregate()) {
        if (shape.group_expr != nullptr) {
          return Status::Unimplemented(
              "aggregation views must select exactly one group key");
        }
        shape.group_expr = &e;
        shape.group_output = name;
      } else {
        return Status::Unimplemented(
            "aggregates nested in expressions are not supported");
      }
    }
    if (shape.group_expr == nullptr || shape.aggs.empty()) {
      return Status::Unimplemented(
          "aggregation views must select the group key and at least one "
          "SUM() or COUNT(*)");
    }
    return shape;
  }
  // Projection shape.
  for (const auto& item : q.items) {
    if (item.expr->ContainsAggregate()) {
      return Status::Unimplemented(
          "aggregates without GROUP BY are not supported for rule "
          "generation");
    }
  }
  if (q.items.size() < 2) {
    return Status::Unimplemented(
        "projection views need a key column plus at least one value column");
  }
  shape.key_expr = q.items[0].expr.get();
  shape.key_output = q.items[0].OutputName(0);
  for (size_t i = 1; i < q.items.size(); ++i) {
    shape.value_exprs.push_back(q.items[i].expr.get());
    shape.value_outputs.push_back(q.items[i].OutputName(static_cast<int>(i)));
  }
  return shape;
}

// ---------------------------------------------------------------------------
// Delta derivation strategy
// ---------------------------------------------------------------------------

enum class AggStrategy { kDirect, kDimProbe, kJoin };

/// The factored form behind the dim-probe strategy: every SUM argument
/// splits into (fact factor) x (dimension factor) across the single
/// fact = dim equi-join, and the group key lives on the dimension side.
/// The condition query then ships only fact-local values and the action
/// probes the dimension by join key — §4.3's compute_comps3 shape.
struct ProbeParts {
  const TableRef* dim = nullptr;
  ExprPtr fact_jk;                  // fact-side join key column
  ExprPtr dim_jk;                   // dimension-side join key column
  std::vector<ExprPtr> fact_parts;  // per SUM item (view order)
  std::vector<ExprPtr> dim_parts;   // per SUM item; literal 1 when absent
  std::vector<ExprPtr> dim_conjuncts;  // dimension-only predicates
};

AggStrategy ChooseStrategy(const ViewDef& view, const ViewShape& shape,
                           const std::string& fact, const Schema& fact_schema,
                           const std::vector<TableRef>& dims,
                           const std::vector<const Schema*>& dim_schemas,
                           ProbeParts& probe) {
  if (dims.empty()) return AggStrategy::kDirect;
  if (dims.size() != 1 || view.query.where == nullptr) {
    return AggStrategy::kJoin;
  }
  auto classify = [&](const Expr& e, bool* f, bool* d) {
    *f = *d = false;
    ClassifyRefs(e, fact, fact_schema, dims, dim_schemas, f, d);
  };
  bool gf = false, gd = false;
  classify(*shape.group_expr, &gf, &gd);
  if (gf || !gd) return AggStrategy::kJoin;  // group key must be dim-only

  std::vector<const Expr*> conjuncts;
  Flatten(view.query.where.get(), BinaryOp::kAnd, conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq &&
        c->args[0]->kind == ExprKind::kColumnRef &&
        c->args[1]->kind == ExprKind::kColumnRef) {
      bool lf = false, ld = false, rf = false, rd = false;
      classify(*c->args[0], &lf, &ld);
      classify(*c->args[1], &rf, &rd);
      const Expr* fact_side = nullptr;
      const Expr* dim_side = nullptr;
      if (lf && !ld && rd && !rf) {
        fact_side = c->args[0].get();
        dim_side = c->args[1].get();
      } else if (rf && !rd && ld && !lf) {
        fact_side = c->args[1].get();
        dim_side = c->args[0].get();
      }
      if (fact_side != nullptr) {
        if (probe.fact_jk != nullptr) return AggStrategy::kJoin;  // 2 joins
        probe.fact_jk = fact_side->Clone();
        probe.dim_jk = dim_side->Clone();
        continue;
      }
    }
    bool cf = false, cd = false;
    classify(*c, &cf, &cd);
    if (cf) return AggStrategy::kJoin;  // fact-side residual predicate
    probe.dim_conjuncts.push_back(c->Clone());
  }
  if (probe.fact_jk == nullptr) return AggStrategy::kJoin;

  for (const AggItem& item : shape.aggs) {
    if (item.is_count) continue;
    std::vector<const Expr*> factors;
    Flatten(item.arg, BinaryOp::kMul, factors);
    std::vector<ExprPtr> fact_factors, dim_factors;
    for (const Expr* f : factors) {
      bool ff = false, fd = false;
      classify(*f, &ff, &fd);
      if (ff && fd) return AggStrategy::kJoin;  // mixed factor
      if (fd) {
        dim_factors.push_back(f->Clone());
      } else {
        fact_factors.push_back(f->Clone());  // fact or constant
      }
    }
    probe.fact_parts.push_back(Product(std::move(fact_factors)));
    probe.dim_parts.push_back(Product(std::move(dim_factors)));
  }
  probe.dim = &dims[0];
  return AggStrategy::kDimProbe;
}

// ---------------------------------------------------------------------------
// Aggregation maintenance plan + action functions
// ---------------------------------------------------------------------------

/// Shared state of the (up to three) action functions maintaining one
/// aggregation view. All statements are prepared once at generation time;
/// firings execute frozen plans with parameter bindings only.
struct AggPlan {
  std::vector<bool> item_is_count;  // per view aggregate, select order
  std::vector<bool> item_is_avg;    // parallel to item_is_count
  bool has_avg = false;
  PreparedStatementPtr update;      // UPDATE view SET a += ?,... WHERE g = ?
  PreparedStatementPtr upsert;      // INSERT for groups absent from the view
  PreparedStatementPtr count_check;  // SELECT _count FROM view WHERE g = ?
  PreparedStatementPtr erase;    // DELETE ... WHERE g = ? AND _count <= 0
  PreparedStatementPtr probe;    // dim probe by join key (kDimProbe only)
  /// AVG views: SELECT _count, <avg columns> FROM view WHERE g = ? — the
  /// running state the quotient update is computed from.
  PreparedStatementPtr avg_read;
  bool track_count = false;
  /// Every function maintaining this view; the erase sweep runs only when
  /// none of them has queued work.
  std::vector<std::string> sibling_functions;

  /// Groups whose APPLIED count reached zero. Erasing eagerly would be
  /// wrong: unique-transaction merging can reorder deltas across tasks, so
  /// a group at applied-count zero may still have a queued insert delta
  /// about to resurrect it — and erasing would also destroy sum deltas
  /// already applied by other tasks. The sweep below defers the DELETE to
  /// a firing at which no maintenance task is queued; at that point
  /// applied count == true count and the erase is exact.
  std::mutex mu;
  std::unordered_set<Value, ValueHash> zero_set;
  std::vector<Value> zero_groups;  // first-seen order (determinism)
};

Status ApplyGroup(FunctionContext& ctx, AggPlan& plan, const Value& group,
                  const std::vector<double>& sums, int64_t cnt) {
  bool all_zero = cnt == 0;
  for (size_t i = 0; all_zero && i < sums.size(); ++i) {
    all_zero = sums[i] == 0.0;
  }
  if (all_zero) return Status::OK();
  // AVG columns store the quotient, not a delta, so the update needs the
  // group's current (count, avg) state: new avg = (avg * count +
  // delta_sum) / (count + delta_count). The read shares the action
  // transaction's locks, so the state cannot move under the update.
  int64_t cur_count = 0;
  std::vector<double> cur_avgs;  // per AVG item, select order
  if (plan.has_avg) {
    STRIP_ASSIGN_OR_RETURN(TempTable cur, ctx.Query(*plan.avg_read, {group}));
    if (cur.size() == 1) {
      cur_count = cur.Get(0, 0).as_int();
      for (int c = 1; c < cur.schema().num_columns(); ++c) {
        cur_avgs.push_back(cur.Get(0, c).as_double());
      }
    }
  }
  // Parameter order matches the generated texts: per-item deltas left to
  // right, then the hidden count delta, then the group key.
  std::vector<Value> upd_params;
  upd_params.reserve(plan.item_is_count.size() + 2);
  size_t s = 0;
  size_t a = 0;
  for (size_t i = 0; i < plan.item_is_count.size(); ++i) {
    if (plan.item_is_count[i]) {
      upd_params.push_back(Value::Int(cnt));
      continue;
    }
    double delta = sums[s++];
    if (plan.item_is_avg[i]) {
      // A missing row reads as (count 0, avg 0): the quotient below is
      // then delta/cnt, which is exactly the value the upsert must seed.
      double cur_avg = a < cur_avgs.size() ? cur_avgs[a] : 0.0;
      ++a;
      int64_t new_count = cur_count + cnt;
      double quotient = new_count > 0
          ? (cur_avg * static_cast<double>(cur_count) + delta) /
                static_cast<double>(new_count)
          : 0.0;  // emptied group; the zero-count sweep erases the row
      upd_params.push_back(Value::Double(quotient));
    } else {
      upd_params.push_back(Value::Double(delta));
    }
  }
  if (plan.track_count) upd_params.push_back(Value::Int(cnt));
  upd_params.push_back(group);
  STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*plan.update, upd_params));
  bool upserted = false;
  if (n == 0) {
    if (plan.upsert == nullptr) {
      return Status::Internal(StrFormat(
          "maintenance update for key '%s' matched no view row",
          group.ToString().c_str()));
    }
    // INSERT text lists the group column first.
    std::vector<Value> ins_params;
    ins_params.reserve(upd_params.size());
    ins_params.push_back(group);
    ins_params.insert(ins_params.end(), upd_params.begin(),
                      upd_params.end() - 1);
    STRIP_ASSIGN_OR_RETURN(n, ctx.Exec(*plan.upsert, ins_params));
    upserted = true;
  }
  if (n != 1) {
    return Status::Internal(StrFormat(
        "maintenance update for key '%s' touched %d rows",
        group.ToString().c_str(), n));
  }
  if (plan.track_count && (cnt < 0 || (upserted && cnt <= 0))) {
    STRIP_ASSIGN_OR_RETURN(TempTable r, ctx.Query(*plan.count_check, {group}));
    if (r.size() == 1 && r.Get(0, 0).as_int() <= 0) {
      std::lock_guard<std::mutex> lock(plan.mu);
      if (plan.zero_set.insert(group).second) {
        plan.zero_groups.push_back(group);
      }
    }
  }
  return Status::OK();
}

/// Deletes rows of emptied groups, but only when no sibling maintenance
/// task is queued (see AggPlan::zero_groups). The DELETE re-checks
/// `_count <= 0`, so a candidate resurrected between noting and sweeping
/// is left alone. Threaded executors can in principle start a new sibling
/// between the idle check and the DELETE; the predicate bounds the damage
/// to groups that are empty at that instant anyway.
Status SweepIfIdle(FunctionContext& ctx, AggPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(plan.mu);
    if (plan.zero_groups.empty()) return Status::OK();
  }
  UniqueTxnManager& uniq = ctx.db().rules().unique_manager();
  for (const std::string& fn : plan.sibling_functions) {
    if (uniq.NumQueued(fn) > 0) return Status::OK();
  }
  std::vector<Value> groups;
  {
    std::lock_guard<std::mutex> lock(plan.mu);
    groups.swap(plan.zero_groups);
    plan.zero_set.clear();
  }
  for (const Value& g : groups) {
    STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*plan.erase, {g}));
    (void)n;  // 0 if the group was resurrected meanwhile
  }
  return Status::OK();
}

/// The action function for an aggregation view. `positive` rows contribute
/// (+values, +1) keyed by `_key`; `negative` rows contribute (-values, -1)
/// keyed by `_old_key` (update layout) or `_key` (delete layout). The
/// contributions are folded to one net delta per key — a batched unique
/// transaction applies a whole delay window in O(|delta|) — then applied
/// directly (group key == delta key) or fanned out through the dimension
/// probe.
UserFunction MakeAggregateMaintainer(std::shared_ptr<AggPlan> plan,
                                     std::string bound_name, bool positive,
                                     bool negative) {
  return [plan, bound_name, positive,
          negative](FunctionContext& ctx) -> Status {
    const TempTable* deltas = ctx.BoundTable(bound_name);
    if (deltas == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    const Schema& ds = deltas->schema();
    int key_col = ds.FindColumn("_key");
    int old_key_col = ds.FindColumn("_old_key");
    size_t num_sums = 0;
    for (bool is_count : plan->item_is_count) {
      if (!is_count) ++num_sums;
    }
    std::vector<int> new_cols, old_cols;
    for (size_t i = 0; i < num_sums; ++i) {
      if (positive) new_cols.push_back(ds.FindColumn(StrFormat("_new%zu", i)));
      if (negative) old_cols.push_back(ds.FindColumn(StrFormat("_old%zu", i)));
    }
    bool missing = key_col < 0 || (positive && negative && old_key_col < 0);
    for (int c : new_cols) missing = missing || c < 0;
    for (int c : old_cols) missing = missing || c < 0;
    if (missing) {
      return Status::Internal("generated bound table misses columns");
    }

    // Every bound row is at least as old as the task's oldest batched
    // change (merges min-fold it); stamping that time onto each
    // contribution lets the fold carry it through netting.
    TaskControlBlock& tcb = ctx.task();
    const Timestamp change_time = tcb.oldest_change_time;
    std::vector<GroupDelta> contrib;
    contrib.reserve(deltas->size() * ((positive ? 1 : 0) + (negative ? 1 : 0)));
    for (size_t i = 0; i < deltas->size(); ++i) {
      if (positive) {
        GroupDelta d;
        d.key = deltas->Get(i, key_col);
        d.count = 1;
        d.change_time = change_time;
        d.sums.reserve(num_sums);
        for (int c : new_cols) d.sums.push_back(deltas->Get(i, c).as_double());
        contrib.push_back(std::move(d));
      }
      if (negative) {
        GroupDelta d;
        d.key = deltas->Get(i, old_key_col >= 0 ? old_key_col : key_col);
        d.count = -1;
        d.change_time = change_time;
        d.sums.reserve(num_sums);
        for (int c : old_cols) d.sums.push_back(-deltas->Get(i, c).as_double());
        contrib.push_back(std::move(d));
      }
    }
    const size_t contributions = contrib.size();
    std::vector<GroupDelta> folded = FoldGroupDeltas(std::move(contrib));
    // Cost attribution: contributions netted away by the fold, credited to
    // this rule's rules.cost.deltas_folded counter at task finish.
    tcb.deltas_folded += contributions - folded.size();
    // Staleness probe correctness under netting: the commit must be judged
    // against the oldest folded update, never a fresher survivor.
    for (const GroupDelta& fd : folded) {
      if (fd.change_time >= 0 && (tcb.oldest_change_time < 0 ||
                                  fd.change_time < tcb.oldest_change_time)) {
        tcb.oldest_change_time = fd.change_time;
      }
    }

    for (const GroupDelta& fd : folded) {
      bool all_zero = fd.count == 0;
      for (size_t i = 0; all_zero && i < fd.sums.size(); ++i) {
        all_zero = fd.sums[i] == 0.0;
      }
      if (all_zero) continue;  // e.g. an update that kept key and values
      if (plan->probe != nullptr) {
        STRIP_ASSIGN_OR_RETURN(TempTable rows,
                               ctx.Query(*plan->probe, {fd.key}));
        for (size_t r = 0; r < rows.size(); ++r) {
          const Value& group = rows.Get(r, 0);
          std::vector<double> scaled;
          scaled.reserve(num_sums);
          for (size_t s = 0; s < num_sums; ++s) {
            scaled.push_back(fd.sums[s] *
                             rows.Get(r, static_cast<int>(1 + s)).as_double());
          }
          STRIP_RETURN_IF_ERROR(ApplyGroup(ctx, *plan, group, scaled,
                                           fd.count));
        }
      } else {
        STRIP_RETURN_IF_ERROR(ApplyGroup(ctx, *plan, fd.key, fd.sums,
                                         fd.count));
      }
    }
    if (plan->track_count) return SweepIfIdle(ctx, *plan);
    return Status::OK();
  };
}

/// The action function for a projection view: recompute each affected key
/// once from its LAST bound row (rows arrive in commit order).
UserFunction MakeProjectionMaintainer(std::shared_ptr<const Statement> update,
                                      std::string bound_name,
                                      int num_values) {
  return [update, bound_name, num_values](FunctionContext& ctx) -> Status {
    const TempTable* recalc = ctx.BoundTable(bound_name);
    if (recalc == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    int key_col = recalc->schema().FindColumn("_key");
    if (key_col < 0 || recalc->schema().num_columns() != num_values + 1) {
      return Status::Internal("generated bound table misses columns");
    }
    std::unordered_map<Value, size_t, ValueHash> last_row;
    for (size_t i = 0; i < recalc->size(); ++i) {
      last_row[recalc->Get(i, key_col)] = i;
    }
    for (const auto& [key, i] : last_row) {
      (void)key;
      std::vector<Value> params;
      for (int v = 0; v < num_values; ++v) {
        // Value columns follow the key in the generated select list.
        params.push_back(recalc->Get(i, key_col + 1 + v));
      }
      params.push_back(recalc->Get(i, key_col));
      STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*update, params));
      if (n != 1) {
        return Status::Internal("maintenance update touched != 1 row");
      }
    }
    return Status::OK();
  };
}

// ---------------------------------------------------------------------------
// Statement text generation
// ---------------------------------------------------------------------------

/// `update <view> set a += ?, b += ?[, _count += ?] where g = ?`.
/// Parameters are positional '?' (the parser numbers them left to right),
/// so the texts below keep the order: item deltas, count delta, group key.
std::string UpdateText(const std::string& view, const ViewShape& shape,
                       bool track_count) {
  std::string sql = "update " + view + " set ";
  for (size_t i = 0; i < shape.aggs.size(); ++i) {
    if (i > 0) sql += ", ";
    // SUM/COUNT columns take a delta; AVG columns take the recomputed
    // quotient as an absolute value (see ApplyGroup).
    sql += shape.aggs[i].output + (shape.aggs[i].is_avg ? " = ?" : " += ?");
  }
  if (track_count) sql += ", _count += ?";
  sql += " where " + shape.group_output + " = ?";
  return sql;
}

/// `select _count, a1, ... from <view> where g = ?` (AVG columns only).
std::string AvgReadText(const std::string& view, const ViewShape& shape) {
  std::string sql = "select _count";
  for (const AggItem& item : shape.aggs) {
    if (item.is_avg) sql += ", " + item.output;
  }
  sql += " from " + view + " where " + shape.group_output + " = ?";
  return sql;
}

/// `insert into <view> (g, a, b[, _count]) values (?, ?, ?[, ?])`.
std::string UpsertText(const std::string& view, const ViewShape& shape,
                       bool track_count) {
  std::string cols = shape.group_output;
  std::string vals = "?";
  for (const AggItem& item : shape.aggs) {
    cols += ", " + item.output;
    vals += ", ?";
  }
  if (track_count) {
    cols += ", _count";
    vals += ", ?";
  }
  return "insert into " + view + " (" + cols + ") values (" + vals + ")";
}

/// `select <group>, <dim part>... from <dim> where <dim jk> = ? and ...`.
std::string ProbeText(const ViewShape& shape, const ProbeParts& probe) {
  std::string sql = "select " + shape.group_expr->ToString();
  for (const ExprPtr& part : probe.dim_parts) {
    sql += ", " + part->ToString();
  }
  sql += " from " + probe.dim->table;
  if (!probe.dim->alias.empty()) sql += " " + probe.dim->alias;
  sql += " where " + probe.dim_jk->ToString() + " = ?";
  for (const ExprPtr& c : probe.dim_conjuncts) {
    sql += " and " + c->ToString();
  }
  return sql;
}

// ---------------------------------------------------------------------------
// Dimension-change fallback
// ---------------------------------------------------------------------------

/// Installs one coarse rule per dimension table whose action falls back to
/// a from-scratch recompute of the view. The counter + warning make the
/// known dim-side gap of the delta rules observable instead of silent.
Status InstallDimFallback(Database& db, const std::string& view_name,
                          const std::vector<TableRef>& dims,
                          const RuleGenOptions& options, GeneratedRule& out) {
  if (!options.dim_change_fallback || dims.empty()) return Status::OK();
  std::string fn = "dim_refresh_" + view_name;
  // Every firing counts (the counter stays exact), but a dim-heavy
  // workload fires this once per delay window per dim table — the WARN is
  // throttled so steady-state fallback traffic cannot flood the log.
  auto warn_limit = std::make_shared<LogRateLimiter>();
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      fn, [view_name, warn_limit](FunctionContext& ctx) -> Status {
        ctx.db().metrics().counter("viewmaint.dim_fallback_recompute")->Add();
        uint64_t suppressed = 0;
        if (warn_limit->ShouldLog(&suppressed)) {
          STRIP_LOG(WARN,
                    "dimension change hit the recompute fallback for view "
                    "'%s' (generated delta rules cover fact-table changes "
                    "only; %llu similar warnings suppressed)",
                    view_name.c_str(),
                    static_cast<unsigned long long>(suppressed));
        }
        return ctx.db().views().RefreshView(view_name);
      }));
  for (const TableRef& dim : dims) {
    CreateRuleStmt rule;
    rule.rule_name = "dim_fallback_" + view_name + "_" + ToLower(dim.table);
    std::string rule_name = rule.rule_name;
    rule.table = ToLower(dim.table);
    rule.events = {RuleEvent{RuleEventKind::kInserted, {}},
                   RuleEvent{RuleEventKind::kDeleted, {}},
                   RuleEvent{RuleEventKind::kUpdated, {}}};
    rule.function_name = fn;
    // One recompute per delay window, however much dim churn it batches.
    rule.unique = true;
    rule.delay_seconds = options.delay_seconds;
    STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
    out.extra_rule_names.push_back(std::move(rule_name));
  }
  return Status::OK();
}

}  // namespace

Result<GeneratedRule> GenerateMaintenanceRule(Database& db,
                                              const std::string& view_name,
                                              const std::string& fact_table,
                                              const RuleGenOptions& options) {
  const ViewDef* view = db.views().Find(view_name);
  if (view == nullptr) {
    return Status::NotFound(StrFormat("no view '%s'", view_name.c_str()));
  }
  if (!view->materialized) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' is not materialized", view_name.c_str()));
  }
  std::string fact = ToLower(fact_table);
  STRIP_ASSIGN_OR_RETURN(Table * fact_tbl, db.catalog().GetTable(fact));
  const Schema& fact_schema = fact_tbl->schema();

  // Split the view's FROM into the fact table and the dimensions.
  bool fact_in_from = false;
  std::vector<TableRef> dims;
  std::vector<const Schema*> dim_schemas;
  for (const TableRef& ref : view->query.from) {
    if (ToLower(ref.table) == fact && ref.alias.empty()) {
      fact_in_from = true;
      continue;
    }
    STRIP_ASSIGN_OR_RETURN(Table * dim, db.catalog().GetTable(ref.table));
    dims.push_back(ref);
    dim_schemas.push_back(&dim->schema());
  }
  if (!fact_in_from) {
    return Status::InvalidArgument(StrFormat(
        "table '%s' does not appear (unaliased) in view '%s'", fact.c_str(),
        view_name.c_str()));
  }

  STRIP_ASSIGN_OR_RETURN(ViewShape shape, AnalyzeView(*view));

  std::string bound_name = view_name + "_changes";
  std::string function_name = "maintain_" + view_name;
  std::string rule_name = "do_maintain_" + view_name;

  GeneratedRule out;
  out.rule_name = rule_name;
  out.function_name = function_name;

  if (shape.is_aggregation) {
    ProbeParts probe;
    AggStrategy strategy = ChooseStrategy(*view, shape, fact, fact_schema,
                                          dims, dim_schemas, probe);
    out.strategy = strategy == AggStrategy::kDirect      ? "direct"
                   : strategy == AggStrategy::kDimProbe ? "dim-probe"
                                                        : "join-in-condition";

    // Hidden count: needed when deletes are maintained — and always by
    // AVG, whose quotient update divides by the group's membership.
    if (shape.has_avg && !options.track_group_count) {
      return Status::InvalidArgument(
          "AVG maintenance requires track_group_count (the quotient is "
          "recovered from the hidden per-group _count)");
    }
    bool track_count =
        options.track_group_count &&
        (options.handle_insert_delete || shape.has_avg);
    if (track_count) {
      for (const AggItem& item : shape.aggs) {
        if (item.output == "_count") {
          return Status::InvalidArgument(
              "view column '_count' collides with the hidden group count");
        }
      }
      STRIP_RETURN_IF_ERROR(db.views().EnableHiddenCount(view_name));
    }

    auto plan = std::make_shared<AggPlan>();
    plan->track_count = track_count;
    plan->has_avg = shape.has_avg;
    for (const AggItem& item : shape.aggs) {
      plan->item_is_count.push_back(item.is_count);
      plan->item_is_avg.push_back(item.is_avg);
    }
    STRIP_ASSIGN_OR_RETURN(
        plan->update, db.Prepare(UpdateText(view_name, shape, track_count)));
    if (shape.has_avg) {
      STRIP_ASSIGN_OR_RETURN(plan->avg_read,
                             db.Prepare(AvgReadText(view_name, shape)));
    }
    if (options.handle_insert_delete) {
      STRIP_ASSIGN_OR_RETURN(
          plan->upsert, db.Prepare(UpsertText(view_name, shape, track_count)));
    }
    if (track_count) {
      STRIP_ASSIGN_OR_RETURN(
          plan->count_check,
          db.Prepare(StrFormat("select _count from %s where %s = ?",
                               view_name.c_str(),
                               shape.group_output.c_str())));
      STRIP_ASSIGN_OR_RETURN(
          plan->erase,
          db.Prepare(StrFormat(
              "delete from %s where %s = ? and _count <= 0",
              view_name.c_str(), shape.group_output.c_str())));
    }
    if (strategy == AggStrategy::kDimProbe) {
      STRIP_ASSIGN_OR_RETURN(plan->probe,
                             db.Prepare(ProbeText(shape, probe)));
    }

    // The `updated [columns]` transition predicate: every fact column the
    // view reads — SUM arguments, the group key, and the WHERE clause
    // (join keys), so key-moving updates fire too.
    std::vector<std::string> updated_columns;
    for (const AggItem& item : shape.aggs) {
      if (item.arg != nullptr) {
        CollectFactColumns(*item.arg, fact, fact_schema, updated_columns);
      }
    }
    CollectFactColumns(*shape.group_expr, fact, fact_schema, updated_columns);
    if (view->query.where != nullptr) {
      CollectFactColumns(*view->query.where, fact, fact_schema,
                         updated_columns);
    }

    // Three companion rules: updates carry both delta halves, inserts the
    // positive half, deletes the negative half. Each needs its own
    // function — rules sharing a function must define their bound tables
    // identically (§2), and these condition queries differ.
    struct RuleSpec {
      const char* suffix;
      RuleEventKind event;
      bool positive;
      bool negative;
    };
    std::vector<RuleSpec> specs = {{"", RuleEventKind::kUpdated, true, true}};
    if (options.handle_insert_delete) {
      specs.push_back({"_ins", RuleEventKind::kInserted, true, false});
      specs.push_back({"_del", RuleEventKind::kDeleted, false, true});
    }
    for (const RuleSpec& spec : specs) {
      plan->sibling_functions.push_back(function_name + spec.suffix);
    }

    for (const RuleSpec& spec : specs) {
      const char* pos_src = spec.event == RuleEventKind::kInserted
                                ? "inserted"
                                : "new";
      const char* neg_src = spec.event == RuleEventKind::kDeleted
                                ? "deleted"
                                : "old";
      SelectStmt cond;
      ExprPtr where;
      auto clone_to = [&](const Expr& e,
                          const char* target) -> Result<ExprPtr> {
        // Dim-probe condition queries see no dimension tables, so pass an
        // empty dimension list: bare fact columns rewrite unconditionally
        // (strategy selection already excluded ambiguous references).
        static const std::vector<const Schema*> kNoDims;
        return CloneRewritten(
            e, fact, fact_schema,
            strategy == AggStrategy::kDimProbe ? kNoDims : dim_schemas,
            target);
      };
      if (strategy == AggStrategy::kDimProbe) {
        // Fact-local query: `_key` is the fact join key, the delta columns
        // the factored fact parts. Old and new keys ship separately, so
        // join-key updates maintain both groups exactly.
        const char* key_src = spec.positive ? pos_src : neg_src;
        cond.from.push_back(TableRef{key_src, ""});
        if (spec.positive && spec.negative) {
          cond.from.push_back(TableRef{neg_src, ""});
          where = MakeBinary(BinaryOp::kEq,
                             MakeColumnRef(pos_src, "execute_order"),
                             MakeColumnRef(neg_src, "execute_order"));
        }
        STRIP_ASSIGN_OR_RETURN(ExprPtr key,
                               clone_to(*probe.fact_jk, key_src));
        cond.items.push_back(SelectItem{std::move(key), "_key"});
        if (spec.positive && spec.negative) {
          STRIP_ASSIGN_OR_RETURN(ExprPtr old_key,
                                 clone_to(*probe.fact_jk, neg_src));
          cond.items.push_back(SelectItem{std::move(old_key), "_old_key"});
        }
        for (size_t i = 0; i < probe.fact_parts.size(); ++i) {
          if (spec.positive) {
            STRIP_ASSIGN_OR_RETURN(ExprPtr e,
                                   clone_to(*probe.fact_parts[i], pos_src));
            cond.items.push_back(
                SelectItem{std::move(e), StrFormat("_new%zu", i)});
          }
          if (spec.negative) {
            STRIP_ASSIGN_OR_RETURN(ExprPtr e,
                                   clone_to(*probe.fact_parts[i], neg_src));
            cond.items.push_back(
                SelectItem{std::move(e), StrFormat("_old%zu", i)});
          }
        }
      } else {
        // Direct / join-in-condition: the query computes the group key and
        // SUM arguments itself (joining the dimensions when present).
        // Known fallback limits: the WHERE and the dimension join see the
        // positive image, so with dimensions a join-key-changing update
        // mis-attributes the old half (use dim-probe shapes to avoid).
        cond.from = dims;
        const char* main_src = spec.positive ? pos_src : neg_src;
        cond.from.push_back(TableRef{main_src, ""});
        if (spec.positive && spec.negative) {
          cond.from.push_back(TableRef{neg_src, ""});
          where = MakeBinary(BinaryOp::kEq,
                             MakeColumnRef(pos_src, "execute_order"),
                             MakeColumnRef(neg_src, "execute_order"));
        }
        if (view->query.where != nullptr) {
          STRIP_ASSIGN_OR_RETURN(ExprPtr w,
                                 clone_to(*view->query.where, main_src));
          where = where == nullptr
                      ? std::move(w)
                      : MakeBinary(BinaryOp::kAnd, std::move(where),
                                   std::move(w));
        }
        STRIP_ASSIGN_OR_RETURN(ExprPtr key,
                               clone_to(*shape.group_expr, main_src));
        cond.items.push_back(SelectItem{std::move(key), "_key"});
        if (spec.positive && spec.negative) {
          STRIP_ASSIGN_OR_RETURN(ExprPtr old_key,
                                 clone_to(*shape.group_expr, neg_src));
          cond.items.push_back(SelectItem{std::move(old_key), "_old_key"});
        }
        size_t sum_idx = 0;
        for (const AggItem& item : shape.aggs) {
          if (item.is_count) continue;
          if (spec.positive) {
            STRIP_ASSIGN_OR_RETURN(ExprPtr e, clone_to(*item.arg, pos_src));
            cond.items.push_back(
                SelectItem{std::move(e), StrFormat("_new%zu", sum_idx)});
          }
          if (spec.negative) {
            STRIP_ASSIGN_OR_RETURN(ExprPtr e, clone_to(*item.arg, neg_src));
            cond.items.push_back(
                SelectItem{std::move(e), StrFormat("_old%zu", sum_idx)});
          }
          ++sum_idx;
        }
      }
      cond.where = std::move(where);

      std::string fn = function_name + spec.suffix;
      std::string bound = bound_name + spec.suffix;
      STRIP_RETURN_IF_ERROR(db.RegisterFunction(
          fn, MakeAggregateMaintainer(plan, bound, spec.positive,
                                      spec.negative)));

      CreateRuleStmt rule;
      rule.rule_name = rule_name + spec.suffix;
      rule.table = fact;
      RuleEvent ev;
      ev.kind = spec.event;
      if (spec.event == RuleEventKind::kUpdated) {
        ev.columns = updated_columns;
      }
      rule.events.push_back(std::move(ev));
      RuleQuery rq;
      rq.query = std::move(cond);
      rq.bind_as = bound;
      rule.condition.push_back(std::move(rq));
      rule.function_name = fn;
      rule.unique = options.unique;
      if (!options.unique_columns.empty()) {
        rule.unique_columns = options.unique_columns;
      } else if (options.unique) {
        // §8 rule of thumb: batch on the delta key — same-key deltas are
        // exactly the ones the fold collapses.
        rule.unique_columns = {"_key"};
      }
      rule.delay_seconds = options.delay_seconds;

      if (spec.suffix[0] == '\0') {
        out.rule_sql = StrFormat(
            "create rule %s on %s when updated %s if %s bind as %s then "
            "execute %s%s%s after %g seconds",
            rule.rule_name.c_str(), fact.c_str(),
            Join(rule.events[0].columns, ", ").c_str(),
            rule.condition[0].query.ToString().c_str(), bound.c_str(),
            fn.c_str(), rule.unique ? " unique" : "",
            rule.unique_columns.empty()
                ? ""
                : (" on " + Join(rule.unique_columns, ", ")).c_str(),
            options.delay_seconds);
      } else {
        out.extra_rule_names.push_back(rule.rule_name);
      }
      STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
    }
    STRIP_RETURN_IF_ERROR(
        InstallDimFallback(db, view_name, dims, options, out));
    STRIP_RETURN_IF_ERROR(db.views().MarkMaintained(view_name));
    return out;
  }

  // --- projection view ------------------------------------------------------
  out.strategy = "projection";
  SelectStmt cond;
  cond.from = dims;
  cond.from.push_back(TableRef{"new", ""});
  ExprPtr where;
  if (view->query.where != nullptr) {
    STRIP_ASSIGN_OR_RETURN(where, CloneRewritten(*view->query.where, fact,
                                                 fact_schema, dim_schemas,
                                                 "new"));
  }
  std::vector<std::string> updated_columns;
  STRIP_ASSIGN_OR_RETURN(
      ExprPtr key_new, CloneRewritten(*shape.key_expr, fact, fact_schema,
                                      dim_schemas, "new"));
  cond.items.push_back(SelectItem{std::move(key_new), "_key"});
  for (size_t i = 0; i < shape.value_exprs.size(); ++i) {
    STRIP_ASSIGN_OR_RETURN(
        ExprPtr val_new,
        CloneRewritten(*shape.value_exprs[i], fact, fact_schema,
                       dim_schemas, "new"));
    cond.items.push_back(
        SelectItem{std::move(val_new), StrFormat("_v%zu", i)});
    CollectFactColumns(*shape.value_exprs[i], fact, fact_schema,
                       updated_columns);
  }
  cond.where = std::move(where);

  // UPDATE view SET c1 = ?1, ..., cn = ?n WHERE key = ?n+1
  UpdateStmt upd;
  upd.table = view_name;
  for (size_t i = 0; i < shape.value_outputs.size(); ++i) {
    upd.sets.push_back(UpdateStmt::SetClause{
        shape.value_outputs[i], MakeParameter(static_cast<int>(i))});
  }
  upd.where = MakeBinary(
      BinaryOp::kEq, MakeColumnRef("", shape.key_output),
      MakeParameter(static_cast<int>(shape.value_outputs.size())));
  auto update = std::make_shared<Statement>(std::move(upd));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      function_name,
      MakeProjectionMaintainer(update, bound_name,
                               static_cast<int>(shape.value_exprs.size()))));

  CreateRuleStmt rule;
  rule.rule_name = rule_name;
  rule.table = fact;
  RuleEvent ev;
  ev.kind = RuleEventKind::kUpdated;
  ev.columns = updated_columns;
  rule.events.push_back(std::move(ev));
  RuleQuery rq;
  rq.query = std::move(cond);
  rq.bind_as = bound_name;
  rule.condition.push_back(std::move(rq));
  rule.function_name = function_name;
  rule.unique = options.unique;
  // Batching per view row would flood the system when the fact -> view
  // fan-out is high (§5.2); the generator defaults to coarse batching and
  // leaves per-fact-key batching to the caller via unique_columns.
  if (!options.unique_columns.empty()) {
    rule.unique_columns = options.unique_columns;
  }
  rule.delay_seconds = options.delay_seconds;

  out.rule_sql = StrFormat(
      "create rule %s on %s when updated %s if %s bind as %s then execute "
      "%s%s%s after %g seconds",
      rule_name.c_str(), fact.c_str(),
      Join(rule.events[0].columns, ", ").c_str(),
      rule.condition[0].query.ToString().c_str(), bound_name.c_str(),
      function_name.c_str(), rule.unique ? " unique" : "",
      rule.unique_columns.empty()
          ? ""
          : (" on " + Join(rule.unique_columns, ", ")).c_str(),
      options.delay_seconds);

  STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
  STRIP_RETURN_IF_ERROR(InstallDimFallback(db, view_name, dims, options, out));
  STRIP_RETURN_IF_ERROR(db.views().MarkMaintained(view_name));
  return out;
}

// ---------------------------------------------------------------------------
// Two-tier maintenance: shard delta export
// ---------------------------------------------------------------------------

namespace {

/// Shared state of the three export action functions of one partial view.
struct ExportPlan {
  ShardDeltaSink sink;
  uint64_t shard_bits = 0;  // shard id << 48, high bits of every _seq
  std::atomic<uint64_t> next_seq{1};
};

/// Parses a generated SELECT text into a rule condition query.
Result<SelectStmt> ParseSelectText(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  if (!std::holds_alternative<SelectStmt>(stmt)) {
    return Status::Internal("generated text is not a SELECT");
  }
  return std::get<SelectStmt>(std::move(stmt));
}

/// The export action: net the window's view-table changes to one delta
/// per group (the fold REQUIRED before anything crosses the shard
/// boundary), then hand each to the sink as a staging-layout feed record
/// tracing back to this firing.
UserFunction MakeDeltaExporter(std::shared_ptr<ExportPlan> plan,
                               std::string bound_name, size_t num_sums) {
  return [plan, bound_name, num_sums](FunctionContext& ctx) -> Status {
    const TempTable* rows = ctx.BoundTable(bound_name);
    if (rows == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    const Schema& s = rows->schema();
    int key_col = s.FindColumn("_key");
    int cnt_col = s.FindColumn("_dc");
    std::vector<int> sum_cols;
    for (size_t i = 0; i < num_sums; ++i) {
      sum_cols.push_back(s.FindColumn(StrFormat("_d%zu", i)));
    }
    bool missing = key_col < 0 || cnt_col < 0;
    for (int c : sum_cols) missing = missing || c < 0;
    if (missing) {
      return Status::Internal("generated export bound table misses columns");
    }

    TaskControlBlock& tcb = ctx.task();
    std::vector<GroupDelta> contrib;
    contrib.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      GroupDelta d;
      d.key = rows->Get(i, key_col);
      for (int c : sum_cols) d.sums.push_back(rows->Get(i, c).as_double());
      d.count = rows->Get(i, cnt_col).as_int();
      d.change_time = tcb.oldest_change_time;
      contrib.push_back(std::move(d));
    }
    const size_t contributions = contrib.size();
    std::vector<GroupDelta> folded = FoldGroupDeltas(std::move(contrib));
    tcb.deltas_folded += contributions - folded.size();

    for (const GroupDelta& d : folded) {
      bool all_zero = d.count == 0;
      for (size_t i = 0; all_zero && i < d.sums.size(); ++i) {
        all_zero = d.sums[i] == 0.0;
      }
      if (all_zero) continue;
      uint64_t seq =
          plan->shard_bits |
          plan->next_seq.fetch_add(1, std::memory_order_relaxed);
      FeedRecord rec;
      rec.at = 0;  // release immediately on the merge engine's clock
      rec.values = EncodeGroupDeltaRow(d, static_cast<int64_t>(seq));
      // The shipped record continues this firing's trace, so the merge
      // commit chains back through the shard firing to the router root.
      rec.trace = ChildOf(tcb.trace);
      STRIP_RETURN_IF_ERROR(plan->sink(rec));
    }
    return Status::OK();
  };
}

}  // namespace

Result<ShardExportSpec> GenerateShardDeltaExport(
    Database& db, const std::string& view_name,
    const ShardExportOptions& options, ShardDeltaSink sink) {
  const ViewDef* view = db.views().Find(view_name);
  if (view == nullptr) {
    return Status::NotFound(StrFormat("no view '%s'", view_name.c_str()));
  }
  if (!view->maintained || !view->hidden_count) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' must be maintained with the hidden _count before its "
        "deltas can be exported",
        view_name.c_str()));
  }
  STRIP_ASSIGN_OR_RETURN(ViewShape shape, AnalyzeView(*view));
  if (!shape.is_aggregation) {
    return Status::Unimplemented(
        "delta export covers aggregation views only");
  }
  for (const AggItem& item : shape.aggs) {
    if (item.is_avg || item.is_count) {
      return Status::Unimplemented(
          "partial views for two-tier maintenance must be pure SUM "
          "aggregates over the hidden _count (AVG quotients and COUNT "
          "columns do not ship as deltas; derive them on the merge side)");
    }
  }

  auto plan = std::make_shared<ExportPlan>();
  plan->sink = std::move(sink);
  plan->shard_bits = static_cast<uint64_t>(options.shard_id) << 48;

  // Delta columns of the partial view, in select order.
  std::vector<std::string> sum_cols;
  for (const AggItem& item : shape.aggs) sum_cols.push_back(item.output);
  const std::string& g = shape.group_output;

  // Per event kind, the netting query over the view table's transition
  // tables: _key, _d<i> (per SUM column), _dc (hidden count).
  struct ExportSpecRow {
    const char* suffix;
    RuleEventKind event;
    std::string query;
  };
  std::string upd = "select new." + g + " as _key";
  std::string ins = "select " + g + " as _key";
  std::string del = "select " + g + " as _key";
  for (size_t i = 0; i < sum_cols.size(); ++i) {
    upd += StrFormat(", new.%s - old.%s as _d%zu", sum_cols[i].c_str(),
                     sum_cols[i].c_str(), i);
    ins += StrFormat(", %s as _d%zu", sum_cols[i].c_str(), i);
    del += StrFormat(", 0 - %s as _d%zu", sum_cols[i].c_str(), i);
  }
  upd += ", new._count - old._count as _dc from new, old "
         "where new.execute_order = old.execute_order";
  ins += ", _count as _dc from inserted";
  del += ", 0 - _count as _dc from deleted";
  std::vector<ExportSpecRow> specs = {
      {"_upd", RuleEventKind::kUpdated, upd},
      {"_ins", RuleEventKind::kInserted, ins},
      {"_del", RuleEventKind::kDeleted, del},
  };

  ShardExportSpec out;
  for (const ExportSpecRow& spec : specs) {
    std::string fn = "export_" + view_name + spec.suffix;
    std::string bound = view_name + "_export" + spec.suffix;
    STRIP_RETURN_IF_ERROR(db.RegisterFunction(
        fn, MakeDeltaExporter(plan, bound, sum_cols.size())));

    CreateRuleStmt rule;
    rule.rule_name = "do_export_" + view_name + spec.suffix;
    rule.table = view_name;
    RuleEvent ev;
    ev.kind = spec.event;
    rule.events.push_back(std::move(ev));
    RuleQuery rq;
    STRIP_ASSIGN_OR_RETURN(rq.query, ParseSelectText(spec.query));
    rq.bind_as = bound;
    rule.condition.push_back(std::move(rq));
    rule.function_name = fn;
    rule.unique = true;  // one shipment per export window
    rule.delay_seconds = options.delay_seconds;
    out.rule_names.push_back(rule.rule_name);
    out.function_names.push_back(fn);
    STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Two-tier maintenance: merge rule
// ---------------------------------------------------------------------------

namespace {

/// Shared state of the merge action: frozen plans against the top-level
/// view plus the staging cleanup statement and the deferred zero-count
/// sweep (same contract as AggPlan's).
struct MergePlan {
  PreparedStatementPtr update;       // UPDATE view SET s += ?.. WHERE g = ?
  PreparedStatementPtr insert;       // INSERT INTO view VALUES (...)
  PreparedStatementPtr count_check;  // SELECT _count WHERE g = ?
  PreparedStatementPtr erase;  // DELETE WHERE g = ? AND _count <= 0 AND s = 0
  PreparedStatementPtr del_staging;  // DELETE FROM staging WHERE _seq = ?
  std::string function_name;
  size_t num_sums = 0;

  std::mutex mu;
  std::unordered_set<Value, ValueHash> zero_set;
  std::vector<Value> zero_groups;
};

UserFunction MakeMergeMaintainer(std::shared_ptr<MergePlan> plan,
                                 std::string bound_name) {
  return [plan, bound_name](FunctionContext& ctx) -> Status {
    const TempTable* rows = ctx.BoundTable(bound_name);
    if (rows == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    TaskControlBlock& tcb = ctx.task();
    std::vector<GroupDelta> staged;
    std::vector<Value> seqs;
    staged.reserve(rows->size());
    seqs.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      std::vector<Value> row = rows->MaterializeRow(i);
      seqs.push_back(row.empty() ? Value::Null() : row[0]);
      STRIP_ASSIGN_OR_RETURN(GroupDelta d, DecodeGroupDeltaRow(row));
      if (d.sums.size() != plan->num_sums) {
        return Status::Internal("staged delta arity mismatch");
      }
      // The shipped change time survives the hop: the merge commit is
      // judged against the oldest shard-side update it applies.
      if (d.change_time >= 0 && (tcb.oldest_change_time < 0 ||
                                 d.change_time < tcb.oldest_change_time)) {
        tcb.oldest_change_time = d.change_time;
      }
      staged.push_back(std::move(d));
    }
    const size_t contributions = staged.size();
    std::vector<GroupDelta> folded = FoldGroupDeltas(std::move(staged));
    tcb.deltas_folded += contributions - folded.size();

    for (const GroupDelta& d : folded) {
      bool all_zero = d.count == 0;
      for (size_t i = 0; all_zero && i < d.sums.size(); ++i) {
        all_zero = d.sums[i] == 0.0;
      }
      if (all_zero) continue;
      std::vector<Value> params;
      params.reserve(d.sums.size() + 2);
      for (double s : d.sums) params.push_back(Value::Double(s));
      params.push_back(Value::Int(d.count));
      params.push_back(d.key);
      STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*plan->update, params));
      bool inserted = false;
      if (n == 0) {
        std::vector<Value> ins;
        ins.reserve(params.size());
        ins.push_back(d.key);
        ins.insert(ins.end(), params.begin(), params.end() - 1);
        STRIP_ASSIGN_OR_RETURN(n, ctx.Exec(*plan->insert, ins));
        inserted = true;
      }
      if (n != 1) {
        return Status::Internal(StrFormat(
            "merge update for key '%s' touched %d rows",
            d.key.ToString().c_str(), n));
      }
      // Any delta that moved _count can leave the group at or below zero:
      // a genuine delete wave, but also an out-of-order interim — shard
      // export rules (_ins / _upd / _del) batch in independent windows, so
      // an update delta can reach the merge before the insert delta that
      // logically precedes it, landing a row at count 0 with nonzero sums.
      // Both get flagged; the sweep below tells them apart.
      if (inserted || d.count != 0) {
        STRIP_ASSIGN_OR_RETURN(TempTable r,
                               ctx.Query(*plan->count_check, {d.key}));
        if (r.size() == 1 && r.Get(0, 0).as_int() <= 0) {
          std::lock_guard<std::mutex> lock(plan->mu);
          if (plan->zero_set.insert(d.key).second) {
            plan->zero_groups.push_back(d.key);
          }
        }
      }
    }

    // Consumed staged rows are spent; remove them so the staging table
    // stays O(in-flight deltas), not O(history).
    for (const Value& seq : seqs) {
      STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*plan->del_staging, {seq}));
      (void)n;
    }

    // Deferred zero-count sweep, tier-1's contract: erase only at a firing
    // with no queued sibling merge work, re-checking the count. Unlike
    // tier-1, the erase also demands every SUM column be exactly zero:
    // NumQueued can only see shipments already staged HERE, not windows
    // still batching on a shard, so a count-0 row with nonzero sums is an
    // out-of-order interim (its insert delta is still in flight) and must
    // survive. A truly emptied group's shipments telescope — each is a
    // difference of stored backing values — so under exactly-representable
    // deltas (the generator's contract; see GenerateShardDeltaExport) a
    // dead group reaches exact zeros and the stricter predicate never
    // strands it.
    {
      std::lock_guard<std::mutex> lock(plan->mu);
      if (plan->zero_groups.empty()) return Status::OK();
    }
    if (ctx.db().rules().unique_manager().NumQueued(plan->function_name) >
        0) {
      return Status::OK();
    }
    std::vector<Value> groups;
    {
      std::lock_guard<std::mutex> lock(plan->mu);
      groups.swap(plan->zero_groups);
      plan->zero_set.clear();
    }
    for (const Value& g : groups) {
      STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*plan->erase, {g}));
      (void)n;  // 0 if the group was resurrected meanwhile
    }
    return Status::OK();
  };
}

}  // namespace

Result<MergeRuleSpec> GenerateMergeRule(Database& db,
                                        const std::string& view_table,
                                        const MergeRuleOptions& options) {
  STRIP_ASSIGN_OR_RETURN(Table * table, db.catalog().GetTable(view_table));
  const Schema& schema = table->schema();
  int count_col = schema.FindColumn("_count");
  if (schema.num_columns() < 2 ||
      count_col != schema.num_columns() - 1) {
    return Status::InvalidArgument(StrFormat(
        "merge view table '%s' must end in a _count column (group key "
        "first, SUM columns between)",
        view_table.c_str()));
  }
  const std::string g = schema.column(0).name;
  std::vector<std::string> sum_cols;
  for (int c = 1; c < count_col; ++c) sum_cols.push_back(schema.column(c).name);

  MergeRuleSpec out;
  out.staging_table = view_table + "_deltas";
  out.function_name = "merge_" + view_table;
  out.rule_name = "do_merge_" + view_table;

  // Staging table in the EncodeGroupDeltaRow layout, keyed + indexed on
  // _seq so the cluster's staging FeedImporter can ingest shipped records.
  std::string ddl = "create table " + out.staging_table + " (_seq int, _g " +
                    ValueTypeName(schema.column(0).type);
  for (size_t i = 0; i < sum_cols.size(); ++i) {
    ddl += StrFormat(", _s%zu double", i);
  }
  ddl += ", _cnt int, _ct int); create index on " + out.staging_table +
         " (_seq);";
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(ddl));

  auto plan = std::make_shared<MergePlan>();
  plan->function_name = out.function_name;
  plan->num_sums = sum_cols.size();
  std::string upd = "update " + view_table + " set ";
  for (const std::string& s : sum_cols) upd += s + " += ?, ";
  upd += "_count += ? where " + g + " = ?";
  STRIP_ASSIGN_OR_RETURN(plan->update, db.Prepare(upd));
  std::string ins = "insert into " + view_table + " values (?";
  for (size_t i = 0; i < sum_cols.size() + 1; ++i) ins += ", ?";
  ins += ")";
  STRIP_ASSIGN_OR_RETURN(plan->insert, db.Prepare(ins));
  STRIP_ASSIGN_OR_RETURN(
      plan->count_check,
      db.Prepare("select _count from " + view_table + " where " + g + " = ?"));
  std::string erase_sql =
      "delete from " + view_table + " where " + g + " = ? and _count <= 0";
  for (const std::string& s : sum_cols) erase_sql += " and " + s + " = 0.0";
  STRIP_ASSIGN_OR_RETURN(plan->erase, db.Prepare(erase_sql));
  STRIP_ASSIGN_OR_RETURN(
      plan->del_staging,
      db.Prepare("delete from " + out.staging_table + " where _seq = ?"));

  std::string bound = "_merge_" + view_table;
  STRIP_RETURN_IF_ERROR(
      db.RegisterFunction(out.function_name,
                          MakeMergeMaintainer(plan, bound)));

  // Explicit column list (not SELECT *): the bound rows must match the
  // DecodeGroupDeltaRow layout exactly, without the transition table's
  // trailing execute_order.
  std::string cond = "select _seq, _g";
  for (size_t i = 0; i < sum_cols.size(); ++i) cond += StrFormat(", _s%zu", i);
  cond += ", _cnt, _ct from inserted";

  CreateRuleStmt rule;
  rule.rule_name = out.rule_name;
  rule.table = out.staging_table;
  RuleEvent ev;
  ev.kind = RuleEventKind::kInserted;
  rule.events.push_back(std::move(ev));
  RuleQuery rq;
  STRIP_ASSIGN_OR_RETURN(rq.query, ParseSelectText(cond));
  rq.bind_as = bound;
  rule.condition.push_back(std::move(rq));
  rule.function_name = out.function_name;
  rule.unique = true;  // fold a whole merge window into one pass
  rule.delay_seconds = options.delay_seconds;
  STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
  return out;
}

}  // namespace strip
