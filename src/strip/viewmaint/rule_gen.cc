#include "strip/viewmaint/rule_gen.h"

#include <memory>
#include <unordered_map>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/viewmaint/view_def.h"

namespace strip {

namespace {

/// Rewrites every column reference that resolves to the fact table so it
/// reads from the transition table `target` ("new" / "old") instead.
/// A bare name is considered a fact reference iff the fact schema has it
/// and no dimension schema does.
Status RewriteFactRefs(Expr* expr, const std::string& fact,
                       const Schema& fact_schema,
                       const std::vector<const Schema*>& dim_schemas,
                       const std::string& target) {
  if (expr->kind == ExprKind::kColumnRef) {
    bool is_fact = false;
    if (expr->qualifier == fact) {
      is_fact = true;
    } else if (expr->qualifier.empty() &&
               fact_schema.FindColumn(expr->column) >= 0) {
      for (const Schema* d : dim_schemas) {
        if (d->FindColumn(expr->column) >= 0) {
          return Status::InvalidArgument(StrFormat(
              "ambiguous column '%s' (in both fact and dimension tables)",
              expr->column.c_str()));
        }
      }
      is_fact = true;
    }
    if (is_fact) expr->qualifier = target;
    return Status::OK();
  }
  for (auto& a : expr->args) {
    STRIP_RETURN_IF_ERROR(
        RewriteFactRefs(a.get(), fact, fact_schema, dim_schemas, target));
  }
  return Status::OK();
}

/// Deep-clones `e` and rewrites fact references to `target`.
Result<ExprPtr> CloneRewritten(const Expr& e, const std::string& fact,
                               const Schema& fact_schema,
                               const std::vector<const Schema*>& dim_schemas,
                               const std::string& target) {
  ExprPtr out = e.Clone();
  STRIP_RETURN_IF_ERROR(
      RewriteFactRefs(out.get(), fact, fact_schema, dim_schemas, target));
  return out;
}

/// Collects the fact-table columns referenced by `e` (for the `updated
/// [columns]` transition predicate).
void CollectFactColumns(const Expr& e, const std::string& fact,
                        const Schema& fact_schema,
                        std::vector<std::string>& out) {
  if (e.kind == ExprKind::kColumnRef) {
    bool is_fact = e.qualifier == fact ||
                   (e.qualifier.empty() &&
                    fact_schema.FindColumn(e.column) >= 0);
    if (is_fact) {
      for (const auto& c : out) {
        if (c == e.column) return;
      }
      out.push_back(e.column);
    }
    return;
  }
  for (const auto& a : e.args) CollectFactColumns(*a, fact, fact_schema, out);
}

struct ViewShape {
  bool is_aggregation = false;
  // Aggregation shape: SELECT g AS gname, SUM(e) AS vname ... GROUP BY g.
  const Expr* group_expr = nullptr;
  std::string group_output;   // view column holding the group key
  const Expr* sum_arg = nullptr;
  std::string sum_output;     // view column holding the sum
  // Projection shape: SELECT k AS kname, e1 AS c1, ... (first item = key).
  const Expr* key_expr = nullptr;
  std::string key_output;
  std::vector<const Expr*> value_exprs;
  std::vector<std::string> value_outputs;
};

Result<ViewShape> AnalyzeView(const ViewDef& view) {
  const SelectStmt& q = view.query;
  if (q.star) {
    return Status::Unimplemented(
        "rule generation does not support SELECT * views");
  }
  ViewShape shape;
  if (!q.group_by.empty()) {
    if (q.group_by.size() != 1 || q.items.size() != 2) {
      return Status::Unimplemented(
          "rule generation supports exactly `SELECT g, SUM(e) ... GROUP BY "
          "g` aggregation views");
    }
    shape.is_aggregation = true;
    for (size_t i = 0; i < q.items.size(); ++i) {
      const Expr& e = *q.items[i].expr;
      std::string name = q.items[i].OutputName(static_cast<int>(i));
      if (e.kind == ExprKind::kAggregate && e.func_name == "sum" &&
          e.args.size() == 1) {
        shape.sum_arg = e.args[0].get();
        shape.sum_output = name;
      } else if (!e.ContainsAggregate()) {
        shape.group_expr = &e;
        shape.group_output = name;
      }
    }
    if (shape.sum_arg == nullptr || shape.group_expr == nullptr) {
      return Status::Unimplemented(
          "aggregation views must select the group key and one SUM()");
    }
    return shape;
  }
  // Projection shape.
  for (const auto& item : q.items) {
    if (item.expr->ContainsAggregate()) {
      return Status::Unimplemented(
          "aggregates without GROUP BY are not supported for rule "
          "generation");
    }
  }
  if (q.items.size() < 2) {
    return Status::Unimplemented(
        "projection views need a key column plus at least one value column");
  }
  shape.key_expr = q.items[0].expr.get();
  shape.key_output = q.items[0].OutputName(0);
  for (size_t i = 1; i < q.items.size(); ++i) {
    shape.value_exprs.push_back(q.items[i].expr.get());
    shape.value_outputs.push_back(q.items[i].OutputName(static_cast<int>(i)));
  }
  return shape;
}

/// The action function for an aggregation view: group the deltas by key in
/// application code (as compute_comps2 does, §4.3) and apply one
/// `UPDATE view SET col += ? WHERE key = ?` per touched group. When
/// `upsert` is non-null, a delta for a group missing from the view inserts
/// the row instead (new groups created by fact INSERTs).
UserFunction MakeAggregateMaintainer(std::shared_ptr<const Statement> update,
                                     std::shared_ptr<const Statement> upsert,
                                     std::string bound_name) {
  return [update, upsert, bound_name](FunctionContext& ctx) -> Status {
    const TempTable* deltas = ctx.BoundTable(bound_name);
    if (deltas == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    int key_col = deltas->schema().FindColumn("_group");
    int new_col = deltas->schema().FindColumn("_new_val");
    int old_col = deltas->schema().FindColumn("_old_val");
    if (key_col < 0 || new_col < 0 || old_col < 0) {
      return Status::Internal("generated bound table misses columns");
    }
    std::unordered_map<std::string, double> diff;
    std::unordered_map<std::string, Value> keys;
    for (size_t i = 0; i < deltas->size(); ++i) {
      const Value& k = deltas->Get(i, key_col);
      diff[k.ToString()] += deltas->Get(i, new_col).as_double() -
                            deltas->Get(i, old_col).as_double();
      keys.emplace(k.ToString(), k);
    }
    for (const auto& [ks, change] : diff) {
      STRIP_ASSIGN_OR_RETURN(
          int n,
          ctx.Exec(*update, {Value::Double(change), keys.at(ks)}));
      if (n == 0 && upsert != nullptr) {
        STRIP_ASSIGN_OR_RETURN(
            n, ctx.Exec(*upsert, {Value::Double(change), keys.at(ks)}));
      }
      if (n != 1) {
        return Status::Internal(StrFormat(
            "maintenance update for key '%s' touched %d rows", ks.c_str(),
            n));
      }
    }
    return Status::OK();
  };
}

/// The action function for a projection view: recompute each affected key
/// once from its LAST bound row (rows arrive in commit order).
UserFunction MakeProjectionMaintainer(std::shared_ptr<const Statement> update,
                                      std::string bound_name,
                                      int num_values) {
  return [update, bound_name, num_values](FunctionContext& ctx) -> Status {
    const TempTable* recalc = ctx.BoundTable(bound_name);
    if (recalc == nullptr) {
      return Status::NotFound(
          StrFormat("bound table '%s' missing", bound_name.c_str()));
    }
    int key_col = recalc->schema().FindColumn("_key");
    if (key_col < 0 || recalc->schema().num_columns() != num_values + 1) {
      return Status::Internal("generated bound table misses columns");
    }
    std::unordered_map<std::string, size_t> last_row;
    for (size_t i = 0; i < recalc->size(); ++i) {
      last_row[recalc->Get(i, key_col).ToString()] = i;
    }
    for (const auto& [ks, i] : last_row) {
      (void)ks;
      std::vector<Value> params;
      for (int v = 0; v < num_values; ++v) {
        // Value columns follow the key in the generated select list.
        params.push_back(recalc->Get(i, key_col + 1 + v));
      }
      params.push_back(recalc->Get(i, key_col));
      STRIP_ASSIGN_OR_RETURN(int n, ctx.Exec(*update, params));
      if (n != 1) {
        return Status::Internal("maintenance update touched != 1 row");
      }
    }
    return Status::OK();
  };
}

}  // namespace

Result<GeneratedRule> GenerateMaintenanceRule(Database& db,
                                              const std::string& view_name,
                                              const std::string& fact_table,
                                              const RuleGenOptions& options) {
  const ViewDef* view = db.views().Find(view_name);
  if (view == nullptr) {
    return Status::NotFound(StrFormat("no view '%s'", view_name.c_str()));
  }
  if (!view->materialized) {
    return Status::FailedPrecondition(StrFormat(
        "view '%s' is not materialized", view_name.c_str()));
  }
  std::string fact = ToLower(fact_table);
  STRIP_ASSIGN_OR_RETURN(Table * fact_tbl, db.catalog().GetTable(fact));
  const Schema& fact_schema = fact_tbl->schema();

  // Split the view's FROM into the fact table and the dimensions.
  bool fact_in_from = false;
  std::vector<TableRef> dims;
  std::vector<const Schema*> dim_schemas;
  for (const TableRef& ref : view->query.from) {
    if (ToLower(ref.table) == fact && ref.alias.empty()) {
      fact_in_from = true;
      continue;
    }
    STRIP_ASSIGN_OR_RETURN(Table * dim, db.catalog().GetTable(ref.table));
    dims.push_back(ref);
    dim_schemas.push_back(&dim->schema());
  }
  if (!fact_in_from) {
    return Status::InvalidArgument(StrFormat(
        "table '%s' does not appear (unaliased) in view '%s'", fact.c_str(),
        view_name.c_str()));
  }

  STRIP_ASSIGN_OR_RETURN(ViewShape shape, AnalyzeView(*view));

  std::string bound_name = view_name + "_changes";
  std::string function_name = "maintain_" + view_name;
  std::string rule_name = "do_maintain_" + view_name;

  // --- build the condition query ------------------------------------------
  SelectStmt cond;
  cond.from = dims;
  cond.from.push_back(TableRef{"new", ""});
  ExprPtr where;
  if (view->query.where != nullptr) {
    STRIP_ASSIGN_OR_RETURN(where, CloneRewritten(*view->query.where, fact,
                                                 fact_schema, dim_schemas,
                                                 "new"));
  }

  std::vector<std::string> updated_columns;
  std::vector<std::string> extra_rule_names;
  CreateRuleStmt rule;

  if (shape.is_aggregation) {
    cond.from.push_back(TableRef{"old", ""});
    // Pair old/new images of the same change (§3, Figure 3).
    ExprPtr pair = MakeBinary(BinaryOp::kEq,
                              MakeColumnRef("new", "execute_order"),
                              MakeColumnRef("old", "execute_order"));
    where = where == nullptr
                ? std::move(pair)
                : MakeBinary(BinaryOp::kAnd, std::move(where),
                             std::move(pair));
    STRIP_ASSIGN_OR_RETURN(
        ExprPtr group_new,
        CloneRewritten(*shape.group_expr, fact, fact_schema, dim_schemas,
                       "new"));
    STRIP_ASSIGN_OR_RETURN(
        ExprPtr sum_new, CloneRewritten(*shape.sum_arg, fact, fact_schema,
                                        dim_schemas, "new"));
    STRIP_ASSIGN_OR_RETURN(
        ExprPtr sum_old, CloneRewritten(*shape.sum_arg, fact, fact_schema,
                                        dim_schemas, "old"));
    cond.items.push_back(SelectItem{std::move(group_new), "_group"});
    cond.items.push_back(SelectItem{std::move(sum_new), "_new_val"});
    cond.items.push_back(SelectItem{std::move(sum_old), "_old_val"});
    CollectFactColumns(*shape.sum_arg, fact, fact_schema, updated_columns);

    // UPDATE view SET <sum_col> += ?1 WHERE <group_col> = ?2
    UpdateStmt upd;
    upd.table = view_name;
    upd.sets.push_back(UpdateStmt::SetClause{
        shape.sum_output,
        MakeBinary(BinaryOp::kAdd, MakeColumnRef("", shape.sum_output),
                   MakeParameter(0))});
    upd.where = MakeBinary(BinaryOp::kEq,
                           MakeColumnRef("", shape.group_output),
                           MakeParameter(1));
    auto update = std::make_shared<Statement>(std::move(upd));
    // Upsert for groups not yet in the view (fact INSERTs):
    //   INSERT INTO view (<group_col>, <sum_col>) VALUES (?2, ?1)
    std::shared_ptr<Statement> upsert;
    if (options.handle_insert_delete) {
      InsertStmt ins;
      ins.table = view_name;
      ins.columns = {shape.group_output, shape.sum_output};
      std::vector<ExprPtr> row;
      row.push_back(MakeParameter(1));  // key
      row.push_back(MakeParameter(0));  // delta
      ins.rows.push_back(std::move(row));
      upsert = std::make_shared<Statement>(std::move(ins));
    }
    STRIP_RETURN_IF_ERROR(db.RegisterFunction(
        function_name,
        MakeAggregateMaintainer(update, upsert, bound_name)));

    if (options.unique && options.unique_columns.empty()) {
      // §8 rule of thumb: batch on the view's own key.
      rule.unique_columns = {"_group"};
    }

    // Companion rules for fact INSERTs (+e) and DELETEs (-e). Each needs
    // its own function: rules sharing a function must define their bound
    // tables identically (§2), and these condition queries differ.
    if (options.handle_insert_delete) {
      struct Companion {
        const char* suffix;
        const char* source;  // transition table providing the fact rows
        RuleEventKind event;
        bool positive;       // +e (insert) or -e (delete)
      };
      const Companion kCompanions[] = {
          {"_ins", "inserted", RuleEventKind::kInserted, true},
          {"_del", "deleted", RuleEventKind::kDeleted, false},
      };
      for (const Companion& c : kCompanions) {
        SelectStmt q;
        q.from = dims;
        q.from.push_back(TableRef{c.source, ""});
        if (view->query.where != nullptr) {
          STRIP_ASSIGN_OR_RETURN(
              q.where, CloneRewritten(*view->query.where, fact, fact_schema,
                                      dim_schemas, c.source));
        }
        STRIP_ASSIGN_OR_RETURN(
            ExprPtr g, CloneRewritten(*shape.group_expr, fact, fact_schema,
                                      dim_schemas, c.source));
        STRIP_ASSIGN_OR_RETURN(
            ExprPtr e, CloneRewritten(*shape.sum_arg, fact, fact_schema,
                                      dim_schemas, c.source));
        q.items.push_back(SelectItem{std::move(g), "_group"});
        if (c.positive) {
          q.items.push_back(SelectItem{std::move(e), "_new_val"});
          q.items.push_back(
              SelectItem{MakeLiteral(Value::Double(0)), "_old_val"});
        } else {
          q.items.push_back(
              SelectItem{MakeLiteral(Value::Double(0)), "_new_val"});
          q.items.push_back(SelectItem{std::move(e), "_old_val"});
        }
        std::string companion_fn = function_name + c.suffix;
        std::string companion_bound = bound_name + c.suffix;
        STRIP_RETURN_IF_ERROR(db.RegisterFunction(
            companion_fn,
            MakeAggregateMaintainer(update, upsert, companion_bound)));
        CreateRuleStmt companion;
        companion.rule_name = rule_name + c.suffix;
        companion.table = fact;
        companion.events.push_back(RuleEvent{c.event, {}});
        RuleQuery crq;
        crq.query = std::move(q);
        crq.bind_as = companion_bound;
        companion.condition.push_back(std::move(crq));
        companion.function_name = companion_fn;
        companion.unique = options.unique;
        companion.unique_columns =
            options.unique_columns.empty() && options.unique
                ? std::vector<std::string>{"_group"}
                : options.unique_columns;
        companion.delay_seconds = options.delay_seconds;
        STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(companion)));
        extra_rule_names.push_back(rule_name + c.suffix);
      }
    }
  } else {
    STRIP_ASSIGN_OR_RETURN(
        ExprPtr key_new, CloneRewritten(*shape.key_expr, fact, fact_schema,
                                        dim_schemas, "new"));
    cond.items.push_back(SelectItem{std::move(key_new), "_key"});
    for (size_t i = 0; i < shape.value_exprs.size(); ++i) {
      STRIP_ASSIGN_OR_RETURN(
          ExprPtr val_new,
          CloneRewritten(*shape.value_exprs[i], fact, fact_schema,
                         dim_schemas, "new"));
      cond.items.push_back(
          SelectItem{std::move(val_new), StrFormat("_v%zu", i)});
      CollectFactColumns(*shape.value_exprs[i], fact, fact_schema,
                         updated_columns);
    }

    // UPDATE view SET c1 = ?1, ..., cn = ?n WHERE key = ?n+1
    UpdateStmt upd;
    upd.table = view_name;
    for (size_t i = 0; i < shape.value_outputs.size(); ++i) {
      upd.sets.push_back(UpdateStmt::SetClause{
          shape.value_outputs[i], MakeParameter(static_cast<int>(i))});
    }
    upd.where = MakeBinary(
        BinaryOp::kEq, MakeColumnRef("", shape.key_output),
        MakeParameter(static_cast<int>(shape.value_outputs.size())));
    auto update = std::make_shared<Statement>(std::move(upd));
    STRIP_RETURN_IF_ERROR(db.RegisterFunction(
        function_name,
        MakeProjectionMaintainer(update, bound_name,
                                 static_cast<int>(shape.value_exprs.size()))));

    if (options.unique && options.unique_columns.empty()) {
      // Batching per view row would flood the system when the fact ->
      // view fan-out is high (§5.2); batch per fact key instead is left
      // to the caller — the generator defaults to coarse batching here.
      rule.unique_columns = {};
    }
  }
  cond.where = std::move(where);

  // --- assemble and install the rule ---------------------------------------
  rule.rule_name = rule_name;
  rule.table = fact;
  RuleEvent ev;
  ev.kind = RuleEventKind::kUpdated;
  ev.columns = updated_columns;
  rule.events.push_back(std::move(ev));
  RuleQuery rq;
  rq.query = std::move(cond);
  rq.bind_as = bound_name;
  rule.condition.push_back(std::move(rq));
  rule.function_name = function_name;
  rule.unique = options.unique;
  if (!options.unique_columns.empty()) {
    rule.unique_columns = options.unique_columns;
  }
  rule.delay_seconds = options.delay_seconds;

  GeneratedRule out;
  out.rule_name = rule_name;
  out.function_name = function_name;
  out.extra_rule_names = std::move(extra_rule_names);
  out.rule_sql = StrFormat(
      "create rule %s on %s when updated %s if %s bind as %s then execute "
      "%s%s%s after %g seconds",
      rule_name.c_str(), fact.c_str(),
      Join(rule.events[0].columns, ", ").c_str(),
      rule.condition[0].query.ToString().c_str(), bound_name.c_str(),
      function_name.c_str(), rule.unique ? " unique" : "",
      rule.unique_columns.empty()
          ? ""
          : (" on " + Join(rule.unique_columns, ", ")).c_str(),
      options.delay_seconds);

  STRIP_RETURN_IF_ERROR(db.rules().CreateRule(std::move(rule)));
  return out;
}

}  // namespace strip
