#ifndef STRIP_ENGINE_CURSOR_H_
#define STRIP_ENGINE_CURSOR_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/table.h"
#include "strip/txn/transaction.h"

namespace strip {

/// Low-level cursor over a standard table, mirroring STRIP's cursor API
/// whose per-operation costs Table 1 reports (open / fetch / update /
/// close). Supports a full scan or an index-equality scan.
///
/// Locking is the caller's responsibility (the paper's op sequence takes
/// the lock before opening the cursor); updates/deletes are logged into
/// the supplied transaction.
class Cursor {
 public:
  /// Full-scan cursor.
  Cursor(Table* table, Transaction* txn);

  /// Index-equality cursor over `column == key`; the column must be
  /// indexed.
  static Result<Cursor> OpenIndexed(Table* table, Transaction* txn,
                                    const std::string& column,
                                    const Value& key);

  /// Advances to the next row. Returns false at end of scan.
  bool Fetch();

  /// The current row's record (valid after a successful Fetch()).
  const Record& Current() const { return *current_->rec; }
  uint64_t CurrentRowId() const { return current_->id; }

  /// Replaces the current row with a new record version (§6.1
  /// copy-on-write) and logs the update.
  Status UpdateCurrent(std::vector<Value> values);

  /// Erases the current row and logs the delete. The cursor stays valid;
  /// the next Fetch() continues after the erased row.
  Status DeleteCurrent();

  /// Releases the cursor (no-op placeholder mirroring the paper's API).
  void Close() { done_ = true; }

 private:
  Cursor(Table* table, Transaction* txn, std::vector<RowHandle> index_rows);

  Table* table_;
  Transaction* txn_;
  bool indexed_;
  // Full scan state: the cursor drains one ScanBatch at a time from the
  // table's page arena. Slots never shift on erase, so (page, slot)
  // positions and already-gathered handles stay valid across
  // DeleteCurrent — no resume special-casing needed.
  PageManager::ScanPos scan_pos_;
  ScanBatch batch_;
  size_t batch_pos_ = 0;
  // Index scan state.
  std::vector<RowHandle> index_rows_;
  size_t index_pos_ = 0;

  RowHandle current_;
  bool has_current_ = false;
  bool done_ = false;
};

}  // namespace strip

#endif  // STRIP_ENGINE_CURSOR_H_
