#include "strip/engine/cursor.h"

#include "strip/common/string_util.h"

namespace strip {

Cursor::Cursor(Table* table, Transaction* txn)
    : table_(table), txn_(txn), indexed_(false) {}

Cursor::Cursor(Table* table, Transaction* txn, std::vector<RowHandle> rows)
    : table_(table), txn_(txn), indexed_(true),
      index_rows_(std::move(rows)) {}

Result<Cursor> Cursor::OpenIndexed(Table* table, Transaction* txn,
                                   const std::string& column,
                                   const Value& key) {
  int pos = table->schema().FindColumn(column);
  if (pos < 0) {
    return Status::NotFound(StrFormat("no column '%s' in table '%s'",
                                      column.c_str(),
                                      table->name().c_str()));
  }
  if (table->FindIndexByPosition(pos) == nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "column '%s' of table '%s' is not indexed", column.c_str(),
        table->name().c_str()));
  }
  return Cursor(table, txn, table->IndexLookup(pos, key));
}

bool Cursor::Fetch() {
  if (done_) return false;
  if (indexed_) {
    if (index_pos_ >= index_rows_.size()) {
      has_current_ = false;
      return false;
    }
    current_ = index_rows_[index_pos_++];
    has_current_ = true;
    return true;
  }
  while (true) {
    if (batch_pos_ < batch_.count) {
      current_ = batch_.rows[batch_pos_++];
      // A row gathered into the batch may have been deleted through this
      // cursor since the batch was filled; its slot is tombstoned in
      // place, so skip it here instead of surfacing a dead row.
      if (!current_.page()->IsLive(current_.slot())) continue;
      has_current_ = true;
      return true;
    }
    batch_pos_ = 0;
    if (!table_->NextBatch(scan_pos_, batch_)) {
      has_current_ = false;
      return false;
    }
  }
}

Status Cursor::UpdateCurrent(std::vector<Value> values) {
  if (!has_current_) {
    return Status::FailedPrecondition("cursor has no current row");
  }
  RecordRef old_rec = current_->rec;
  STRIP_RETURN_IF_ERROR(table_->Update(current_, MakeRecord(std::move(values))));
  if (txn_ != nullptr) {
    txn_->log().Append(LogOp::kUpdate, table_, current_->id, old_rec,
                       current_->rec);
  }
  return Status::OK();
}

Status Cursor::DeleteCurrent() {
  if (!has_current_) {
    return Status::FailedPrecondition("cursor has no current row");
  }
  if (txn_ != nullptr) {
    txn_->log().Append(LogOp::kDelete, table_, current_->id, current_->rec,
                       nullptr);
  }
  // Slots never move on erase, so the scan position and any rows still
  // queued in the current batch remain valid; Fetch() skips the tombstone.
  table_->Erase(current_);
  has_current_ = false;
  return Status::OK();
}

}  // namespace strip
