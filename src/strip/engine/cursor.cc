#include "strip/engine/cursor.h"

#include "strip/common/string_util.h"

namespace strip {

Cursor::Cursor(Table* table, Transaction* txn)
    : table_(table), txn_(txn), indexed_(false) {}

Cursor::Cursor(Table* table, Transaction* txn, std::vector<RowIter> rows)
    : table_(table), txn_(txn), indexed_(true),
      index_rows_(std::move(rows)) {}

Result<Cursor> Cursor::OpenIndexed(Table* table, Transaction* txn,
                                   const std::string& column,
                                   const Value& key) {
  int pos = table->schema().FindColumn(column);
  if (pos < 0) {
    return Status::NotFound(StrFormat("no column '%s' in table '%s'",
                                      column.c_str(),
                                      table->name().c_str()));
  }
  if (table->FindIndexByPosition(pos) == nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "column '%s' of table '%s' is not indexed", column.c_str(),
        table->name().c_str()));
  }
  return Cursor(table, txn, table->IndexLookup(pos, key));
}

bool Cursor::Fetch() {
  if (done_) return false;
  if (indexed_) {
    if (index_pos_ >= index_rows_.size()) {
      has_current_ = false;
      return false;
    }
    current_ = index_rows_[index_pos_++];
    has_current_ = true;
    return true;
  }
  if (!scan_started_) {
    scan_it_ = table_->rows().begin();
    scan_started_ = true;
  } else if (fetch_no_advance_) {
    fetch_no_advance_ = false;
  } else if (has_current_) {
    ++scan_it_;
  }
  if (scan_it_ == table_->rows().end()) {
    has_current_ = false;
    return false;
  }
  current_ = scan_it_;
  has_current_ = true;
  return true;
}

Status Cursor::UpdateCurrent(std::vector<Value> values) {
  if (!has_current_) {
    return Status::FailedPrecondition("cursor has no current row");
  }
  RecordRef old_rec = current_->rec;
  STRIP_RETURN_IF_ERROR(table_->Update(current_, MakeRecord(std::move(values))));
  if (txn_ != nullptr) {
    txn_->log().Append(LogOp::kUpdate, table_, current_->id, old_rec,
                       current_->rec);
  }
  return Status::OK();
}

Status Cursor::DeleteCurrent() {
  if (!has_current_) {
    return Status::FailedPrecondition("cursor has no current row");
  }
  if (txn_ != nullptr) {
    txn_->log().Append(LogOp::kDelete, table_, current_->id, current_->rec,
                       nullptr);
  }
  if (!indexed_) {
    RowIter next = std::next(current_);
    table_->Erase(current_);
    scan_it_ = next;
    has_current_ = false;
    scan_started_ = true;
    fetch_no_advance_ = true;  // next Fetch() examines `next` directly
    return Status::OK();
  }
  table_->Erase(current_);
  has_current_ = false;
  return Status::OK();
}

}  // namespace strip
