#include "strip/engine/database.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "strip/common/string_util.h"
#include "strip/viewmaint/view_def.h"

namespace strip {

Database::Database() : Database(Options{}) {}

Database::Database(Options options)
    : options_(options),
      trace_ring_(options_.enable_metrics ? options_.trace_capacity : 0),
      scalar_funcs_(ScalarFuncRegistry::WithBuiltins()) {
  if (options_.mode == ExecutorMode::kSimulated) {
    sim_ = std::make_unique<SimulatedExecutor>(
        options_.policy, options_.advance_clock_by_cost);
    executor_ = sim_.get();
  } else {
    threaded_ = std::make_unique<ThreadedExecutor>(options_.num_workers,
                                                   options_.policy);
    executor_ = threaded_.get();
  }
  RuleEngineDeps deps;
  deps.catalog = &catalog_;
  deps.locks = &locks_;
  deps.scalar_funcs = &scalar_funcs_;
  deps.task_ids = &next_task_id_;
  deps.disable_compiled_exprs = !options_.enable_compiled_exprs;
  deps.trace = trace_ring_.enabled() ? &trace_ring_ : nullptr;
  deps.action_runner = [this](TaskControlBlock& task) {
    return RunActionTask(task);
  };
  rules_ = std::make_unique<RuleEngine>(std::move(deps));
  views_ = std::make_unique<ViewManager>(this);
  RegisterBuiltinMetrics();
}

void Database::RegisterBuiltinMetrics() {
  // Hot-path counter handles (always on: one relaxed increment each).
  plan_hits_ = metrics_.counter("db.plan_cache.hits");
  plan_misses_ = metrics_.counter("db.plan_cache.misses");
  txn_begins_ = metrics_.counter("txn.begins");
  txn_commits_ = metrics_.counter("txn.commits");
  txn_aborts_ = metrics_.counter("txn.aborts");
  action_restarts_ = metrics_.counter("rules.action_restarts");

  if (options_.enable_metrics) {
    batch_factor_hist_ = metrics_.histogram(
        "rules.batch_factor", Histogram::DefaultCountBounds());
    rule_cost_ = std::make_unique<RuleCostTracker>(&metrics_);
    // The executors feed the lifecycle ring and latency histograms; hooks
    // must be installed before the first Submit (see ExecutorObs).
    ExecutorObs eobs;
    eobs.trace = &trace_ring_;
    eobs.queue_wait_us = metrics_.histogram("task.queue_wait_us");
    eobs.run_us = metrics_.histogram("task.run_us");
    eobs.rule_cost = rule_cost_.get();
    executor_->set_obs(eobs);
  }

  // Existing subsystem stats structs stay the source of truth on their
  // hot paths; the registry pulls them at snapshot time.
  auto load = [](const std::atomic<uint64_t>& v) {
    return static_cast<double>(v.load(std::memory_order_relaxed));
  };
  const ExecutorStats& es = executor_->stats();
  metrics_.RegisterCallback("executor.tasks_run",
                            [&es, load] { return load(es.tasks_run); });
  metrics_.RegisterCallback("executor.tasks_failed",
                            [&es, load] { return load(es.tasks_failed); });
  metrics_.RegisterCallback("executor.busy_micros", [&es] {
    return static_cast<double>(
        es.busy_micros.load(std::memory_order_relaxed));
  });
  const RuleStats& rs = rules_->stats();
  metrics_.RegisterCallback("rules.commits_checked",
                            [&rs, load] { return load(rs.commits_checked); });
  metrics_.RegisterCallback("rules.rules_triggered",
                            [&rs, load] { return load(rs.rules_triggered); });
  metrics_.RegisterCallback("rules.conditions_true",
                            [&rs, load] { return load(rs.conditions_true); });
  metrics_.RegisterCallback("rules.tasks_created",
                            [&rs, load] { return load(rs.tasks_created); });
  metrics_.RegisterCallback("rules.firings_merged",
                            [&rs, load] { return load(rs.firings_merged); });
  // Batching factor (§7): average firings consumed per created task.
  metrics_.RegisterCallback("rules.batching_factor", [&rs] {
    double created = static_cast<double>(
        rs.tasks_created.load(std::memory_order_relaxed));
    double merged = static_cast<double>(
        rs.firings_merged.load(std::memory_order_relaxed));
    return created == 0 ? 0.0 : (created + merged) / created;
  });
  const LockManagerStats& ls = locks_.stats();
  metrics_.RegisterCallback("locks.acquires",
                            [&ls, load] { return load(ls.acquires); });
  metrics_.RegisterCallback("locks.waits",
                            [&ls, load] { return load(ls.waits); });
  metrics_.RegisterCallback("locks.wait_die_aborts",
                            [&ls, load] { return load(ls.wait_die_aborts); });
  metrics_.RegisterCallback("locks.wait_micros",
                            [&ls, load] { return load(ls.wait_micros); });
  UniqueTxnManager& um = rules_->unique_manager();
  metrics_.RegisterCallback("unique.merges", [&um] {
    return static_cast<double>(um.merge_count());
  });
  metrics_.RegisterCallback("db.plan_cache.entries", [this] {
    std::lock_guard<std::mutex> lk(plan_mu_);
    return static_cast<double>(plan_cache_.size());
  });
  metrics_.RegisterCallback("trace.events_recorded", [this] {
    return static_cast<double>(trace_ring_.total_recorded());
  });
  metrics_.RegisterCallback("trace.dropped_events", [this] {
    return static_cast<double>(trace_ring_.total_dropped());
  });
}

void Database::RecordActionCommit(TaskControlBlock& task) {
  if (task.oldest_change_time < 0) return;
  Timestamp staleness = Now() - task.oldest_change_time;
  if (staleness < 0) staleness = 0;
  task.commit_staleness_micros = staleness;
  if (!options_.enable_metrics) return;
  // Per-rule (per user function) staleness distribution: the age of the
  // oldest batched change each firing consumed — the paper's batching-vs-
  // staleness tradeoff, measurable per delay window.
  metrics_.histogram("rules.staleness_us." + task.function_name)
      ->Observe(staleness);
  batch_factor_hist_->Observe(task.batched_firings);
}

Database::~Database() {
  if (threaded_ != nullptr) threaded_->Shutdown();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Result<Transaction*> Database::Begin(uint64_t priority) {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, Now(), priority);
  Transaction* ptr = txn.get();
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.emplace(id, std::move(txn));
  }
  txn_begins_->Add();
  return ptr;
}

Status Database::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::FailedPrecondition("commit of a non-active transaction");
  }
  // Rule condition / evaluate queries below read the catalog; statement
  // work in this commit must be atomic w.r.t. metadata DDL.
  DdlLatch::SharedGuard ddl(ddl_latch_);
  // Event checking occurs at the end of the transaction prior to commit
  // (§2); conditions run inside the triggering transaction.
  Timestamp commit_time = Now();
  auto tasks = rules_->ProcessCommit(txn, commit_time);
  if (!tasks.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return tasks.status();
  }
  txn->MarkCommitted(commit_time);
  locks_.ReleaseAll(txn);
  txn_commits_->Add();
  trace_ring_.Record(TraceEventKind::kCommit, txn->id(), commit_time, "",
                     txn->trace().trace_id);
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.erase(txn->id());
  }
  // Action tasks are released as soon as the triggering transaction
  // commits, or after their delay window (§2).
  for (TaskPtr& t : *tasks) {
    executor_->Submit(std::move(t));
  }
  return Status::OK();
}

Status Database::Abort(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::FailedPrecondition("abort of a non-active transaction");
  }
  DdlLatch::SharedGuard ddl(ddl_latch_);  // Undo rewrites table rows
  Status undo = txn->log().Undo();
  txn->MarkAborted();
  locks_.ReleaseAll(txn);
  txn_aborts_->Add();
  trace_ring_.Record(TraceEventKind::kAbort, txn->id(), Now(), "",
                     txn->trace().trace_id);
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.erase(txn->id());
  }
  return undo;
}

// ---------------------------------------------------------------------------
// Functions and tasks
// ---------------------------------------------------------------------------

Status Database::RegisterFunction(const std::string& name, UserFunction fn) {
  return functions_.Register(name, std::move(fn));
}

Status Database::RegisterScalarFunction(const std::string& name,
                                        ScalarFunc fn) {
  return scalar_funcs_.Register(name, std::move(fn));
}

TaskPtr Database::NewTask() {
  return std::make_shared<TaskControlBlock>(
      next_task_id_.fetch_add(1, std::memory_order_relaxed));
}

void Database::Submit(TaskPtr task) { executor_->Submit(std::move(task)); }

Status Database::SchedulePeriodic(const std::string& name,
                                  double period_seconds,
                                  const std::string& function_name) {
  if (period_seconds <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (functions_.Find(function_name) == nullptr) {
    return Status::NotFound(
        StrFormat("no user function '%s'", function_name.c_str()));
  }
  std::shared_ptr<std::atomic<bool>> cancelled;
  {
    std::lock_guard<std::mutex> lk(periodic_mu_);
    if (periodic_.count(name) > 0) {
      return Status::AlreadyExists(
          StrFormat("periodic job '%s' already scheduled", name.c_str()));
    }
    cancelled = std::make_shared<std::atomic<bool>>(false);
    periodic_.emplace(name, cancelled);
  }
  SubmitPeriodicTick(function_name, SecondsToMicros(period_seconds),
                     std::move(cancelled));
  return Status::OK();
}

Status Database::CancelPeriodic(const std::string& name) {
  std::lock_guard<std::mutex> lk(periodic_mu_);
  auto it = periodic_.find(name);
  if (it == periodic_.end()) {
    return Status::NotFound(
        StrFormat("no periodic job '%s'", name.c_str()));
  }
  it->second->store(true);
  periodic_.erase(it);
  return Status::OK();
}

void Database::SubmitPeriodicTick(
    const std::string& function_name, Timestamp period,
    std::shared_ptr<std::atomic<bool>> cancelled) {
  TaskPtr task = NewTask();
  task->release_time = Now() + period;
  task->function_name = function_name;
  // Each tick is its own causal root (nothing upstream caused it).
  task->trace = NewTraceContext();
  task->work = [this, function_name, period,
                cancelled](TaskControlBlock& tcb) -> Status {
    if (cancelled->load()) return Status::OK();
    const UserFunction* fn = functions_.Find(function_name);
    if (fn == nullptr) {
      return Status::NotFound(
          StrFormat("no user function '%s'", function_name.c_str()));
    }
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
    txn->set_trace(ChildOf(tcb.trace));
    txn->set_lock_wait_sink(&tcb.lock_wait_micros);
    FunctionContext ctx(*this, *txn, tcb);
    Status st = (*fn)(ctx);
    if (st.ok()) {
      st = Commit(txn);
    } else {
      Status ignored = Abort(txn);
      (void)ignored;
    }
    // Re-arm regardless of this tick's outcome (transient aborts must not
    // kill the job), unless cancelled meanwhile.
    if (!cancelled->load()) {
      SubmitPeriodicTick(function_name, period, cancelled);
    }
    return st;
  };
  Submit(std::move(task));
}

Status Database::RunActionTask(TaskControlBlock& task) {
  // Once running, the task's bound tables are fixed; remove its unique
  // hash-table entry so later firings start a new transaction (§6.3).
  rules_->unique_manager().OnTaskStart(task);

  const UserFunction* fn = functions_.Find(task.function_name);
  if (fn == nullptr) {
    return Status::NotFound(StrFormat("no user function '%s'",
                                      task.function_name.c_str()));
  }
  Status last;
  uint64_t priority = 0;  // first attempt's id, kept across retries
  for (int attempt = 0; attempt <= options_.action_retry_limit; ++attempt) {
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin(priority));
    if (priority == 0) priority = txn->priority();
    // The action transaction is a child span of the task: retries mint
    // fresh spans but stay inside the same trace, so the exported timeline
    // shows every attempt hanging off the firing that caused it.
    txn->set_trace(ChildOf(task.trace));
    // Mirror lock waits into the task (the txn dies inside Commit/Abort,
    // taking its own accumulator with it); the task outlives the commit.
    txn->set_lock_wait_sink(&task.lock_wait_micros);
    FunctionContext ctx(*this, *txn, task);
    Status st = (*fn)(ctx);
    if (st.ok()) {
      st = Commit(txn);
      if (st.ok()) {
        RecordActionCommit(task);
        return Status::OK();
      }
    } else {
      Status ignored = Abort(txn);
      (void)ignored;
    }
    if (st.code() != StatusCode::kAborted) return st;  // real failure
    last = st;  // wait-die victim: restart with the ORIGINAL priority
    ++task.lock_restarts;
    action_restarts_->Add();
    trace_ring_.Record(TraceEventKind::kRestart, task.id(), Now(),
                       task.function_name.c_str(), task.trace.trace_id);
    if (threaded_ != nullptr) {
      // Back off so the conflicting older transaction can finish; the
      // simulated executor is single-threaded and never needs this.
      auto delay = std::chrono::milliseconds(
          std::min(1 << std::min(attempt, 5), 32));
      std::this_thread::sleep_for(delay);
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// SQL execution
// ---------------------------------------------------------------------------

namespace {

ResultSet RowsAffected(int n) {
  ResultSet rs;
  rs.schema.AddColumn("rows_affected", ValueType::kInt);
  rs.rows.push_back({Value::Int(n)});
  return rs;
}

bool IsDdl(const Statement& stmt) {
  return std::holds_alternative<CreateTableStmt>(stmt) ||
         std::holds_alternative<DropTableStmt>(stmt) ||
         std::holds_alternative<CreateIndexStmt>(stmt) ||
         std::holds_alternative<CreateViewStmt>(stmt) ||
         std::holds_alternative<CreateRuleStmt>(stmt) ||
         std::holds_alternative<DropRuleStmt>(stmt);
}

}  // namespace

Result<ResultSet> Database::ExecuteDdl(const Statement& stmt) {
  // View creation runs real transactions (the population query acquires
  // data locks), so it cannot hold the exclusive DDL latch — a shared
  // holder blocked in the lock manager would deadlock it. Views are
  // setup-time DDL; the latch guards the metadata DDL below, which is what
  // invalidates (or frees) structures frozen into cached plans.
  if (const auto* s = std::get_if<CreateViewStmt>(&stmt)) {
    CreateViewStmt copy;
    copy.name = s->name;
    copy.materialized = s->materialized;
    copy.query = s->query.Clone();
    STRIP_RETURN_IF_ERROR(views_->CreateView(std::move(copy)));
    catalog_.BumpGeneration();
    return ResultSet{};
  }

  // Metadata DDL: atomic with respect to every latched statement
  // execution, closing the plan-cache check-then-execute race (a plan
  // validated against the current generation cannot have its Table* freed
  // by a concurrent DROP TABLE mid-execution).
  DdlLatch::ExclusiveGuard ddl(ddl_latch_);
  if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(Table * t,
                           catalog_.CreateTable(s->name, s->schema));
    (void)t;
    return ResultSet{};
  }
  if (const auto* s = std::get_if<DropTableStmt>(&stmt)) {
    STRIP_RETURN_IF_ERROR(catalog_.DropTable(s->name));
    return ResultSet{};
  }
  if (const auto* s = std::get_if<CreateIndexStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(s->table));
    STRIP_RETURN_IF_ERROR(t->CreateTableIndex(s->column, s->kind));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  if (const auto* s = std::get_if<CreateRuleStmt>(&stmt)) {
    CreateRuleStmt copy;
    copy.rule_name = s->rule_name;
    copy.table = s->table;
    copy.events = s->events;
    for (const auto& rq : s->condition) copy.condition.push_back(rq.Clone());
    for (const auto& rq : s->evaluate) copy.evaluate.push_back(rq.Clone());
    copy.function_name = s->function_name;
    copy.unique = s->unique;
    copy.unique_columns = s->unique_columns;
    copy.delay_seconds = s->delay_seconds;
    STRIP_RETURN_IF_ERROR(rules_->CreateRule(std::move(copy)));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  if (const auto* s = std::get_if<DropRuleStmt>(&stmt)) {
    STRIP_RETURN_IF_ERROR(rules_->DropRule(s->name));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  return Status::Internal("unhandled DDL statement");
}

Result<ResultSet> Database::ExecuteStatement(Transaction* txn,
                                             const Statement& stmt,
                                             TaskControlBlock* task,
                                             const std::vector<Value>* params) {
  if (IsDdl(stmt)) {
    return Status::InvalidArgument(
        "DDL cannot run inside a transaction; use Execute()");
  }
  DdlLatch::SharedGuard ddl(ddl_latch_);
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.rows_scanned = task != nullptr ? &task->rows_scanned : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);

  if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(TempTable t, executor.ExecuteSelect(*s));
    return t.Materialize();
  }
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteInsert(*s));
    return RowsAffected(n);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteUpdate(*s));
    return RowsAffected(n);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteDelete(*s));
    return RowsAffected(n);
  }
  return Status::Internal("unhandled statement kind");
}

Result<TempTable> Database::Query(Transaction* txn, const SelectStmt& stmt,
                                  TaskControlBlock* task,
                                  const std::vector<Value>* params) {
  DdlLatch::SharedGuard ddl(ddl_latch_);
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.rows_scanned = task != nullptr ? &task->rows_scanned : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  return executor.ExecuteSelect(stmt);
}

Result<int> Database::ExecuteDml(Transaction* txn, const Statement& stmt,
                                 const std::vector<Value>& params,
                                 TaskControlBlock* task) {
  DdlLatch::SharedGuard ddl(ddl_latch_);
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.rows_scanned = task != nullptr ? &task->rows_scanned : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = &params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    return executor.ExecuteInsert(*s);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    return executor.ExecuteUpdate(*s);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    return executor.ExecuteDelete(*s);
  }
  return Status::InvalidArgument("ExecuteDml takes INSERT/UPDATE/DELETE");
}

Result<PreparedStatementPtr> Database::Prepare(const std::string& sql) {
  std::string key = NormalizeSql(sql);
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lk(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.first);
      plan_hits_->Add();
      return it->second.second;
    }
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  PreparedStatementPtr handle(
      new PreparedStatement(this, sql, std::move(stmt)));
  // DDL runs once and mutates the catalog; caching its handle would only
  // pin a dead plan.
  if (!options_.enable_plan_cache || handle->is_ddl()) return handle;
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_misses_->Add();
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {  // another thread prepared it meanwhile
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.first);
    return it->second.second;
  }
  plan_lru_.push_front(key);
  plan_cache_.emplace(key, std::make_pair(plan_lru_.begin(), handle));
  while (plan_cache_.size() > options_.plan_cache_capacity &&
         !plan_lru_.empty()) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
  }
  return handle;
}

Database::PlanCacheStats Database::plan_cache_stats() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  PlanCacheStats stats;
  stats.hits = plan_hits_->Get();
  stats.misses = plan_misses_->Get();
  stats.entries = plan_cache_.size();
  stats.capacity = options_.plan_cache_capacity;
  return stats;
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  if (options_.enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, Prepare(sql));
    return ps->Execute();
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  return Execute(stmt);
}

Result<ResultSet> Database::Execute(const Statement& stmt) {
  if (IsDdl(stmt)) return ExecuteDdl(stmt);
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  auto result = ExecuteStatement(txn, stmt);
  if (!result.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return result.status();
  }
  STRIP_RETURN_IF_ERROR(Commit(txn));
  return result;
}

Status Database::ExecuteScript(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(std::vector<Statement> stmts,
                         Parser::ParseScript(sql));
  for (const Statement& stmt : stmts) {
    if (IsDdl(stmt)) {
      STRIP_RETURN_IF_ERROR(ExecuteDdl(stmt).status());
      continue;
    }
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
    auto result = ExecuteStatement(txn, stmt);
    if (!result.ok()) {
      Status ignored = Abort(txn);
      (void)ignored;
      return result.status();
    }
    STRIP_RETURN_IF_ERROR(Commit(txn));
  }
  return Status::OK();
}

Result<std::vector<std::string>> Database::Explain(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  const auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Explain() takes a SELECT statement");
  }
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  std::vector<std::string> trace;
  DdlLatch::SharedGuard ddl(ddl_latch_);
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.funcs = &scalar_funcs_;
  ctx.plan_trace = &trace;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  auto result = executor.ExecuteSelect(*select);
  if (!result.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return result.status();
  }
  STRIP_RETURN_IF_ERROR(Commit(txn));
  trace.push_back(StrFormat("-> %zu row(s)", result->size()));
  return trace;
}

Result<ResultSet> Database::ExecuteInTxn(Transaction* txn,
                                         const std::string& sql,
                                         TaskControlBlock* task) {
  if (options_.enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, Prepare(sql));
    return ps->ExecuteInTxn(txn, {}, task);
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  return ExecuteStatement(txn, stmt, task);
}

}  // namespace strip
