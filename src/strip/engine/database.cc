#include "strip/engine/database.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "strip/common/string_util.h"
#include "strip/viewmaint/view_def.h"

namespace strip {

Database::Database() : Database(Options{}) {}

Database::Database(Options options)
    : options_(options),
      scalar_funcs_(ScalarFuncRegistry::WithBuiltins()) {
  if (options_.mode == ExecutorMode::kSimulated) {
    sim_ = std::make_unique<SimulatedExecutor>(
        options_.policy, options_.advance_clock_by_cost);
    executor_ = sim_.get();
  } else {
    threaded_ = std::make_unique<ThreadedExecutor>(options_.num_workers,
                                                   options_.policy);
    executor_ = threaded_.get();
  }
  RuleEngineDeps deps;
  deps.catalog = &catalog_;
  deps.locks = &locks_;
  deps.scalar_funcs = &scalar_funcs_;
  deps.task_ids = &next_task_id_;
  deps.disable_compiled_exprs = !options_.enable_compiled_exprs;
  deps.action_runner = [this](TaskControlBlock& task) {
    return RunActionTask(task);
  };
  rules_ = std::make_unique<RuleEngine>(std::move(deps));
  views_ = std::make_unique<ViewManager>(this);
}

Database::~Database() {
  if (threaded_ != nullptr) threaded_->Shutdown();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Result<Transaction*> Database::Begin(uint64_t priority) {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, Now(), priority);
  Transaction* ptr = txn.get();
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.emplace(id, std::move(txn));
  }
  return ptr;
}

Status Database::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::FailedPrecondition("commit of a non-active transaction");
  }
  // Event checking occurs at the end of the transaction prior to commit
  // (§2); conditions run inside the triggering transaction.
  Timestamp commit_time = Now();
  auto tasks = rules_->ProcessCommit(txn, commit_time);
  if (!tasks.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return tasks.status();
  }
  txn->MarkCommitted(commit_time);
  locks_.ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.erase(txn->id());
  }
  // Action tasks are released as soon as the triggering transaction
  // commits, or after their delay window (§2).
  for (TaskPtr& t : *tasks) {
    executor_->Submit(std::move(t));
  }
  return Status::OK();
}

Status Database::Abort(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::FailedPrecondition("abort of a non-active transaction");
  }
  Status undo = txn->log().Undo();
  txn->MarkAborted();
  locks_.ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> lk(txns_mu_);
    txns_.erase(txn->id());
  }
  return undo;
}

// ---------------------------------------------------------------------------
// Functions and tasks
// ---------------------------------------------------------------------------

Status Database::RegisterFunction(const std::string& name, UserFunction fn) {
  return functions_.Register(name, std::move(fn));
}

Status Database::RegisterScalarFunction(const std::string& name,
                                        ScalarFunc fn) {
  return scalar_funcs_.Register(name, std::move(fn));
}

TaskPtr Database::NewTask() {
  return std::make_shared<TaskControlBlock>(
      next_task_id_.fetch_add(1, std::memory_order_relaxed));
}

void Database::Submit(TaskPtr task) { executor_->Submit(std::move(task)); }

Status Database::SchedulePeriodic(const std::string& name,
                                  double period_seconds,
                                  const std::string& function_name) {
  if (period_seconds <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (functions_.Find(function_name) == nullptr) {
    return Status::NotFound(
        StrFormat("no user function '%s'", function_name.c_str()));
  }
  std::shared_ptr<std::atomic<bool>> cancelled;
  {
    std::lock_guard<std::mutex> lk(periodic_mu_);
    if (periodic_.count(name) > 0) {
      return Status::AlreadyExists(
          StrFormat("periodic job '%s' already scheduled", name.c_str()));
    }
    cancelled = std::make_shared<std::atomic<bool>>(false);
    periodic_.emplace(name, cancelled);
  }
  SubmitPeriodicTick(function_name, SecondsToMicros(period_seconds),
                     std::move(cancelled));
  return Status::OK();
}

Status Database::CancelPeriodic(const std::string& name) {
  std::lock_guard<std::mutex> lk(periodic_mu_);
  auto it = periodic_.find(name);
  if (it == periodic_.end()) {
    return Status::NotFound(
        StrFormat("no periodic job '%s'", name.c_str()));
  }
  it->second->store(true);
  periodic_.erase(it);
  return Status::OK();
}

void Database::SubmitPeriodicTick(
    const std::string& function_name, Timestamp period,
    std::shared_ptr<std::atomic<bool>> cancelled) {
  TaskPtr task = NewTask();
  task->release_time = Now() + period;
  task->function_name = function_name;
  task->work = [this, function_name, period,
                cancelled](TaskControlBlock& tcb) -> Status {
    if (cancelled->load()) return Status::OK();
    const UserFunction* fn = functions_.Find(function_name);
    if (fn == nullptr) {
      return Status::NotFound(
          StrFormat("no user function '%s'", function_name.c_str()));
    }
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
    FunctionContext ctx(*this, *txn, tcb);
    Status st = (*fn)(ctx);
    if (st.ok()) {
      st = Commit(txn);
    } else {
      Status ignored = Abort(txn);
      (void)ignored;
    }
    // Re-arm regardless of this tick's outcome (transient aborts must not
    // kill the job), unless cancelled meanwhile.
    if (!cancelled->load()) {
      SubmitPeriodicTick(function_name, period, cancelled);
    }
    return st;
  };
  Submit(std::move(task));
}

Status Database::RunActionTask(TaskControlBlock& task) {
  // Once running, the task's bound tables are fixed; remove its unique
  // hash-table entry so later firings start a new transaction (§6.3).
  rules_->unique_manager().OnTaskStart(task);

  const UserFunction* fn = functions_.Find(task.function_name);
  if (fn == nullptr) {
    return Status::NotFound(StrFormat("no user function '%s'",
                                      task.function_name.c_str()));
  }
  Status last;
  uint64_t priority = 0;  // first attempt's id, kept across retries
  for (int attempt = 0; attempt <= options_.action_retry_limit; ++attempt) {
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin(priority));
    if (priority == 0) priority = txn->priority();
    FunctionContext ctx(*this, *txn, task);
    Status st = (*fn)(ctx);
    if (st.ok()) {
      st = Commit(txn);
      if (st.ok()) return Status::OK();
    } else {
      Status ignored = Abort(txn);
      (void)ignored;
    }
    if (st.code() != StatusCode::kAborted) return st;  // real failure
    last = st;  // wait-die victim: restart with the ORIGINAL priority
    if (threaded_ != nullptr) {
      // Back off so the conflicting older transaction can finish; the
      // simulated executor is single-threaded and never needs this.
      auto delay = std::chrono::milliseconds(
          std::min(1 << std::min(attempt, 5), 32));
      std::this_thread::sleep_for(delay);
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// SQL execution
// ---------------------------------------------------------------------------

namespace {

ResultSet RowsAffected(int n) {
  ResultSet rs;
  rs.schema.AddColumn("rows_affected", ValueType::kInt);
  rs.rows.push_back({Value::Int(n)});
  return rs;
}

bool IsDdl(const Statement& stmt) {
  return std::holds_alternative<CreateTableStmt>(stmt) ||
         std::holds_alternative<DropTableStmt>(stmt) ||
         std::holds_alternative<CreateIndexStmt>(stmt) ||
         std::holds_alternative<CreateViewStmt>(stmt) ||
         std::holds_alternative<CreateRuleStmt>(stmt) ||
         std::holds_alternative<DropRuleStmt>(stmt);
}

}  // namespace

Result<ResultSet> Database::ExecuteDdl(const Statement& stmt) {
  if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(Table * t,
                           catalog_.CreateTable(s->name, s->schema));
    (void)t;
    return ResultSet{};
  }
  if (const auto* s = std::get_if<DropTableStmt>(&stmt)) {
    STRIP_RETURN_IF_ERROR(catalog_.DropTable(s->name));
    return ResultSet{};
  }
  if (const auto* s = std::get_if<CreateIndexStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(s->table));
    STRIP_RETURN_IF_ERROR(t->CreateTableIndex(s->column, s->kind));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  if (const auto* s = std::get_if<CreateViewStmt>(&stmt)) {
    CreateViewStmt copy;
    copy.name = s->name;
    copy.materialized = s->materialized;
    copy.query = s->query.Clone();
    STRIP_RETURN_IF_ERROR(views_->CreateView(std::move(copy)));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  if (const auto* s = std::get_if<CreateRuleStmt>(&stmt)) {
    CreateRuleStmt copy;
    copy.rule_name = s->rule_name;
    copy.table = s->table;
    copy.events = s->events;
    for (const auto& rq : s->condition) copy.condition.push_back(rq.Clone());
    for (const auto& rq : s->evaluate) copy.evaluate.push_back(rq.Clone());
    copy.function_name = s->function_name;
    copy.unique = s->unique;
    copy.unique_columns = s->unique_columns;
    copy.delay_seconds = s->delay_seconds;
    STRIP_RETURN_IF_ERROR(rules_->CreateRule(std::move(copy)));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  if (const auto* s = std::get_if<DropRuleStmt>(&stmt)) {
    STRIP_RETURN_IF_ERROR(rules_->DropRule(s->name));
    catalog_.BumpGeneration();
    return ResultSet{};
  }
  return Status::Internal("unhandled DDL statement");
}

Result<ResultSet> Database::ExecuteStatement(Transaction* txn,
                                             const Statement& stmt,
                                             TaskControlBlock* task,
                                             const std::vector<Value>* params) {
  if (IsDdl(stmt)) {
    return Status::InvalidArgument(
        "DDL cannot run inside a transaction; use Execute()");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);

  if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(TempTable t, executor.ExecuteSelect(*s));
    return t.Materialize();
  }
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteInsert(*s));
    return RowsAffected(n);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteUpdate(*s));
    return RowsAffected(n);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    STRIP_ASSIGN_OR_RETURN(int n, executor.ExecuteDelete(*s));
    return RowsAffected(n);
  }
  return Status::Internal("unhandled statement kind");
}

Result<TempTable> Database::Query(Transaction* txn, const SelectStmt& stmt,
                                  TaskControlBlock* task,
                                  const std::vector<Value>* params) {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  return executor.ExecuteSelect(stmt);
}

Result<int> Database::ExecuteDml(Transaction* txn, const Statement& stmt,
                                 const std::vector<Value>& params,
                                 TaskControlBlock* task) {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.funcs = &scalar_funcs_;
  ctx.params = &params;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    return executor.ExecuteInsert(*s);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    return executor.ExecuteUpdate(*s);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    return executor.ExecuteDelete(*s);
  }
  return Status::InvalidArgument("ExecuteDml takes INSERT/UPDATE/DELETE");
}

Result<PreparedStatementPtr> Database::Prepare(const std::string& sql) {
  std::string key = NormalizeSql(sql);
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lk(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.first);
      ++plan_hits_;
      return it->second.second;
    }
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  PreparedStatementPtr handle(
      new PreparedStatement(this, sql, std::move(stmt)));
  // DDL runs once and mutates the catalog; caching its handle would only
  // pin a dead plan.
  if (!options_.enable_plan_cache || handle->is_ddl()) return handle;
  std::lock_guard<std::mutex> lk(plan_mu_);
  ++plan_misses_;
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {  // another thread prepared it meanwhile
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.first);
    return it->second.second;
  }
  plan_lru_.push_front(key);
  plan_cache_.emplace(key, std::make_pair(plan_lru_.begin(), handle));
  while (plan_cache_.size() > options_.plan_cache_capacity &&
         !plan_lru_.empty()) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
  }
  return handle;
}

Database::PlanCacheStats Database::plan_cache_stats() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  PlanCacheStats stats;
  stats.hits = plan_hits_;
  stats.misses = plan_misses_;
  stats.entries = plan_cache_.size();
  stats.capacity = options_.plan_cache_capacity;
  return stats;
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  if (options_.enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, Prepare(sql));
    return ps->Execute();
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  return Execute(stmt);
}

Result<ResultSet> Database::Execute(const Statement& stmt) {
  if (IsDdl(stmt)) return ExecuteDdl(stmt);
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  auto result = ExecuteStatement(txn, stmt);
  if (!result.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return result.status();
  }
  STRIP_RETURN_IF_ERROR(Commit(txn));
  return result;
}

Status Database::ExecuteScript(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(std::vector<Statement> stmts,
                         Parser::ParseScript(sql));
  for (const Statement& stmt : stmts) {
    if (IsDdl(stmt)) {
      STRIP_RETURN_IF_ERROR(ExecuteDdl(stmt).status());
      continue;
    }
    STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
    auto result = ExecuteStatement(txn, stmt);
    if (!result.ok()) {
      Status ignored = Abort(txn);
      (void)ignored;
      return result.status();
    }
    STRIP_RETURN_IF_ERROR(Commit(txn));
  }
  return Status::OK();
}

Result<std::vector<std::string>> Database::Explain(const std::string& sql) {
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  const auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Explain() takes a SELECT statement");
  }
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  std::vector<std::string> trace;
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.locks = &locks_;
  ctx.txn = txn;
  ctx.funcs = &scalar_funcs_;
  ctx.plan_trace = &trace;
  ctx.disable_compiled_exprs = !options_.enable_compiled_exprs;
  SqlExecutor executor(ctx);
  auto result = executor.ExecuteSelect(*select);
  if (!result.ok()) {
    Status ignored = Abort(txn);
    (void)ignored;
    return result.status();
  }
  STRIP_RETURN_IF_ERROR(Commit(txn));
  trace.push_back(StrFormat("-> %zu row(s)", result->size()));
  return trace;
}

Result<ResultSet> Database::ExecuteInTxn(Transaction* txn,
                                         const std::string& sql,
                                         TaskControlBlock* task) {
  if (options_.enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, Prepare(sql));
    return ps->ExecuteInTxn(txn, {}, task);
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  return ExecuteStatement(txn, stmt, task);
}

}  // namespace strip
