#include "strip/engine/function_registry.h"

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/sql/parser.h"

namespace strip {

namespace {

int AffectedRowsOf(const ResultSet& rs) {
  if (rs.num_rows() == 1 && rs.schema.num_columns() == 1 &&
      rs.schema.column(0).name == "rows_affected") {
    return static_cast<int>(rs.rows[0][0].as_int());
  }
  return static_cast<int>(rs.num_rows());
}

}  // namespace

Result<TempTable> FunctionContext::Query(const std::string& sql) {
  if (db_.options().enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, db_.Prepare(sql));
    return ps->Query(&txn_, {}, &task_);
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  const auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Query() takes a SELECT statement");
  }
  return db_.Query(&txn_, *select, &task_);
}

Result<TempTable> FunctionContext::Query(const SelectStmt& stmt,
                                         const std::vector<Value>* params) {
  return db_.Query(&txn_, stmt, &task_, params);
}

Result<TempTable> FunctionContext::Query(PreparedStatement& stmt,
                                         const std::vector<Value>& params) {
  return stmt.Query(&txn_, params, &task_);
}

Result<int> FunctionContext::Exec(const std::string& sql) {
  if (db_.options().enable_plan_cache) {
    STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr ps, db_.Prepare(sql));
    STRIP_ASSIGN_OR_RETURN(ResultSet rs, ps->ExecuteInTxn(&txn_, {}, &task_));
    return AffectedRowsOf(rs);
  }
  STRIP_ASSIGN_OR_RETURN(Statement stmt, Parser::ParseStatement(sql));
  return Exec(stmt);
}

Result<int> FunctionContext::Exec(const Statement& stmt,
                                  const std::vector<Value>& params) {
  return db_.ExecuteDml(&txn_, stmt, params, &task_);
}

Result<int> FunctionContext::Exec(const Statement& stmt) {
  STRIP_ASSIGN_OR_RETURN(ResultSet rs,
                         db_.ExecuteStatement(&txn_, stmt, &task_));
  return AffectedRowsOf(rs);
}

Result<int> FunctionContext::Exec(PreparedStatement& stmt,
                                  const std::vector<Value>& params) {
  return stmt.ExecuteDml(&txn_, params, &task_);
}

Status FunctionRegistry::Register(const std::string& name, UserFunction fn) {
  std::string key = ToLower(name);
  if (funcs_.count(key) > 0) {
    return Status::AlreadyExists(
        StrFormat("user function '%s' already registered", key.c_str()));
  }
  funcs_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

const UserFunction* FunctionRegistry::Find(const std::string& name) const {
  auto it = funcs_.find(ToLower(name));
  return it == funcs_.end() ? nullptr : &it->second;
}

}  // namespace strip
