#include "strip/engine/prepared_statement.h"

#include <optional>
#include <utility>
#include <variant>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/sql/compiled_expr.h"
#include "strip/sql/plan.h"
#include "strip/storage/record.h"

namespace strip {

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// Everything resolved at prepare time, valid for one catalog generation.
/// Conjunct / precompiled-map pointers borrow Expr nodes from the handle's
/// own `stmt_`, so a plan never outlives its statement.
struct PreparedStatement::Plan {
  uint64_t generation = 0;
  std::vector<std::string> notes;

  // --- SELECT fast path: frozen FROM resolution + classified WHERE ------
  bool select_bound = false;
  InputSet inputs;
  std::vector<Conjunct> conjuncts;
  /// Lowered FROM table names; if a task's bound tables shadow any of them
  /// at execution time, the frozen resolution would be wrong — fall back.
  std::vector<std::string> from_names;
  std::unordered_map<const Expr*, CompiledExpr> precompiled;
  bool select_index_probe = false;

  // --- single-table DML fast path ----------------------------------------
  enum class Dml { kNone, kInsert, kUpdate, kDelete };
  Dml dml = Dml::kNone;
  Table* table = nullptr;
  std::vector<int> set_cols;               // UPDATE
  std::vector<CompiledExpr> set_exprs;     // UPDATE, parallel to set_cols
  std::optional<CompiledExpr> where;       // UPDATE / DELETE; nullopt = all
  Index* index = nullptr;                  // indexed `col = const` probe
  std::optional<CompiledExpr> index_key;   // constant program for the key
  std::vector<int> insert_mapping;         // INSERT: value pos -> column
  std::vector<std::vector<CompiledExpr>> insert_rows;
};

namespace {

using Plan = PreparedStatement::Plan;

ResultSet RowsAffected(int n) {
  ResultSet rs;
  rs.schema.AddColumn("rows_affected", ValueType::kInt);
  rs.rows.push_back({Value::Int(n)});
  return rs;
}

bool IsDdlStatement(const Statement& stmt) {
  return std::holds_alternative<CreateTableStmt>(stmt) ||
         std::holds_alternative<DropTableStmt>(stmt) ||
         std::holds_alternative<CreateIndexStmt>(stmt) ||
         std::holds_alternative<CreateViewStmt>(stmt) ||
         std::holds_alternative<CreateRuleStmt>(stmt) ||
         std::holds_alternative<DropRuleStmt>(stmt);
}

/// Finds the first structurally-constant indexed `col = const` conjunct of
/// `where` (mirroring the interpreted CollectMatchingRows probe) and
/// compiles the key. Leaves plan.index null when there is none.
void PlanDmlProbe(Plan& plan, const Expr* where,
                  const ScalarFuncRegistry* funcs) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, conjuncts);
  const Schema& schema = plan.table->schema();
  for (const Expr* f : conjuncts) {
    if (f->kind != ExprKind::kBinary || f->bin_op != BinaryOp::kEq) continue;
    for (int side = 0; side < 2; ++side) {
      const Expr& col_side = *f->args[static_cast<size_t>(side)];
      const Expr& const_side = *f->args[static_cast<size_t>(1 - side)];
      if (col_side.kind != ExprKind::kColumnRef) continue;
      if (!col_side.qualifier.empty() &&
          col_side.qualifier != plan.table->name()) {
        continue;
      }
      int c = schema.FindColumn(col_side.column);
      if (c < 0) continue;
      Index* idx = plan.table->FindIndexByPosition(c);
      if (idx == nullptr) continue;
      auto key = CompiledExpr::CompileConstant(const_side, funcs);
      if (!key.ok()) continue;  // references a column: not a constant probe
      plan.index = idx;
      plan.index_key = std::move(*key);
      plan.notes.push_back(StrFormat(
          "dml: index probe on %s.%s", plan.table->name().c_str(),
          schema.column(c).name.c_str()));
      return;
    }
  }
  plan.notes.push_back(
      StrFormat("dml: full scan of %s", plan.table->name().c_str()));
}

/// True when `expr` has no column references (so the executor's ScanInput
/// would treat it as a constant probe side).
bool IsColumnFree(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) return false;
  for (const auto& a : expr.args) {
    if (!IsColumnFree(*a)) return false;
  }
  return true;
}

/// Mirrors ScanInput's probe detection for introspection: would any frozen
/// input be scanned through an index given these conjuncts?
bool SelectWouldProbeIndex(const InputSet& inputs,
                           const std::vector<Conjunct>& conjuncts) {
  for (const Conjunct& c : conjuncts) {
    if (c.referenced.size() > 1) continue;
    const Expr* f = c.expr;
    if (f->kind != ExprKind::kBinary || f->bin_op != BinaryOp::kEq) continue;
    for (int side = 0; side < 2; ++side) {
      const Expr& col_side = *f->args[static_cast<size_t>(side)];
      const Expr& const_side = *f->args[static_cast<size_t>(1 - side)];
      if (col_side.kind != ExprKind::kColumnRef) continue;
      auto acc = inputs.Resolve(col_side.qualifier, col_side.column);
      if (!acc.ok()) continue;
      const BoundInput& in = inputs.inputs()[static_cast<size_t>(acc->input)];
      if (in.table == nullptr) continue;
      if (in.table->FindIndexByPosition(acc->column) == nullptr) continue;
      if (!IsColumnFree(const_side)) continue;
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / plan building
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(Database* db, std::string sql,
                                     Statement stmt)
    : db_(db), sql_(std::move(sql)), stmt_(std::move(stmt)) {}

PreparedStatement::~PreparedStatement() = default;

bool PreparedStatement::is_select() const {
  return std::holds_alternative<SelectStmt>(stmt_);
}

bool PreparedStatement::is_ddl() const { return IsDdlStatement(stmt_); }

std::shared_ptr<const Plan> PreparedStatement::CurrentPlan() {
  // Read the generation before resolving: a concurrent DDL then at worst
  // makes this plan look stale and triggers a rebuild on the next use.
  uint64_t gen = db_->catalog_.generation();
  std::lock_guard<std::mutex> lk(mu_);
  if (plan_ == nullptr || plan_->generation != gen) {
    plan_ = BuildPlan();
  }
  return plan_;
}

std::shared_ptr<const Plan> PreparedStatement::BuildPlan() {
  auto plan = std::make_shared<Plan>();
  plan->generation = db_->catalog_.generation();
  const ScalarFuncRegistry* funcs = &db_->scalar_funcs_;

  if (!db_->options_.enable_compiled_exprs) {
    plan->notes.push_back("fallback: compiled expressions disabled");
    return plan;
  }

  auto fallback = [&](const char* what, const Status& why) {
    plan->notes.push_back(StrFormat("fallback: %s (%s)", what,
                                    why.message().c_str()));
    return plan;
  };

  if (const auto* s = std::get_if<SelectStmt>(&stmt_)) {
    // Freeze FROM against the catalog only; transition / bound tables are
    // per-execution, so any name they could supply forces the generic path.
    if (s->from.empty()) {
      return fallback("select", Status::InvalidArgument("empty FROM"));
    }
    for (const TableRef& ref : s->from) {
      std::string name = ToLower(ref.table);
      Table* table = db_->catalog_.FindTable(name);
      if (table == nullptr) {
        return fallback("select",
                        Status::NotFound(StrFormat("no table '%s'",
                                                   name.c_str())));
      }
      plan->from_names.push_back(std::move(name));
      plan->inputs.Add(ref.EffectiveName(), table, nullptr);
    }
    auto conjuncts = ClassifyConjuncts(s->where.get(), plan->inputs, nullptr);
    if (!conjuncts.ok()) return fallback("select", conjuncts.status());
    plan->conjuncts = std::move(*conjuncts);
    plan->select_bound = true;
    plan->select_index_probe =
        SelectWouldProbeIndex(plan->inputs, plan->conjuncts);

    // Pre-compile every expression the executor evaluates against join
    // rows; nodes that do not compile (aggregates, lazy errors) are simply
    // left out and handled by the executor's own per-call path.
    auto precompile = [&](const Expr* e) {
      if (e == nullptr || plan->precompiled.count(e) > 0) return;
      auto c = CompiledExpr::Compile(*e, plan->inputs, nullptr, funcs);
      if (c.ok()) plan->precompiled.emplace(e, std::move(*c));
    };
    for (const Conjunct& c : plan->conjuncts) {
      precompile(c.expr);
      precompile(c.lhs);
      precompile(c.rhs);
    }
    for (const SelectItem& item : s->items) precompile(item.expr.get());
    for (const ExprPtr& e : s->group_by) precompile(e.get());
    for (const OrderByItem& o : s->order_by) precompile(o.expr.get());
    plan->notes.push_back(StrFormat(
        "select: frozen input set (%zu inputs), %zu compiled programs, %s",
        plan->inputs.inputs().size(), plan->precompiled.size(),
        plan->select_index_probe ? "index probe" : "scan"));
    return plan;
  }

  if (const auto* s = std::get_if<UpdateStmt>(&stmt_)) {
    Table* table = db_->catalog_.FindTable(ToLower(s->table));
    if (table == nullptr) {
      return fallback("update", Status::NotFound("table not found"));
    }
    plan->table = table;
    const Schema& schema = table->schema();
    for (const auto& sc : s->sets) {
      int c = schema.FindColumn(sc.column);
      if (c < 0) return fallback("update", Status::NotFound(sc.column));
      auto prog = CompiledExpr::CompileSingleTable(
          *sc.expr, table->name(), schema, nullptr, funcs);
      if (!prog.ok()) return fallback("update set", prog.status());
      plan->set_cols.push_back(c);
      plan->set_exprs.push_back(std::move(*prog));
    }
    if (s->where != nullptr) {
      auto prog = CompiledExpr::CompileSingleTable(
          *s->where, table->name(), schema, nullptr, funcs);
      if (!prog.ok()) return fallback("update where", prog.status());
      plan->where = std::move(*prog);
    }
    plan->dml = Plan::Dml::kUpdate;
    PlanDmlProbe(*plan, s->where.get(), funcs);
    return plan;
  }

  if (const auto* s = std::get_if<DeleteStmt>(&stmt_)) {
    Table* table = db_->catalog_.FindTable(ToLower(s->table));
    if (table == nullptr) {
      return fallback("delete", Status::NotFound("table not found"));
    }
    plan->table = table;
    if (s->where != nullptr) {
      auto prog = CompiledExpr::CompileSingleTable(
          *s->where, table->name(), table->schema(), nullptr, funcs);
      if (!prog.ok()) return fallback("delete where", prog.status());
      plan->where = std::move(*prog);
    }
    plan->dml = Plan::Dml::kDelete;
    PlanDmlProbe(*plan, s->where.get(), funcs);
    return plan;
  }

  if (const auto* s = std::get_if<InsertStmt>(&stmt_)) {
    Table* table = db_->catalog_.FindTable(ToLower(s->table));
    if (table == nullptr) {
      return fallback("insert", Status::NotFound("table not found"));
    }
    plan->table = table;
    const Schema& schema = table->schema();
    if (s->columns.empty()) {
      for (int i = 0; i < schema.num_columns(); ++i) {
        plan->insert_mapping.push_back(i);
      }
    } else {
      for (const std::string& col : s->columns) {
        int c = schema.FindColumn(col);
        if (c < 0) return fallback("insert", Status::NotFound(col));
        plan->insert_mapping.push_back(c);
      }
    }
    for (const auto& row_exprs : s->rows) {
      if (row_exprs.size() != plan->insert_mapping.size()) {
        return fallback("insert",
                        Status::InvalidArgument("arity mismatch"));
      }
      std::vector<CompiledExpr> row;
      for (const ExprPtr& e : row_exprs) {
        auto prog = CompiledExpr::CompileConstant(*e, funcs);
        if (!prog.ok()) return fallback("insert values", prog.status());
        row.push_back(std::move(*prog));
      }
      plan->insert_rows.push_back(std::move(row));
    }
    plan->dml = Plan::Dml::kInsert;
    plan->notes.push_back(StrFormat("dml: insert %zu row(s) into %s",
                                    plan->insert_rows.size(),
                                    table->name().c_str()));
    return plan;
  }

  plan->notes.push_back("fallback: statement kind has no fast path");
  return plan;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

/// The frozen FROM resolution assumed catalog tables; a task bound table
/// with the same name would have taken precedence in BindFrom.
bool ShadowedByTask(const Plan& plan, TaskControlBlock* task) {
  if (task == nullptr) return false;
  for (const std::string& name : plan.from_names) {
    if (task->bound_tables.Find(name) != nullptr) return true;
  }
  return false;
}

}  // namespace

Result<ResultSet> PreparedStatement::Execute(
    const std::vector<Value>& params) {
  if (is_ddl()) return db_->ExecuteDdl(stmt_);
  // Hold the DDL latch across the whole transaction: the generation check
  // in CurrentPlan and the execution against the frozen Table* must be one
  // atomic unit w.r.t. metadata DDL (ddl_latch.h).
  DdlLatch::SharedGuard ddl(db_->ddl_latch_);
  STRIP_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
  auto result = ExecuteInTxn(txn, params);
  if (!result.ok()) {
    Status ignored = db_->Abort(txn);
    (void)ignored;
    return result.status();
  }
  STRIP_RETURN_IF_ERROR(db_->Commit(txn));
  return result;
}

Result<ResultSet> PreparedStatement::ExecuteInTxn(
    Transaction* txn, const std::vector<Value>& params,
    TaskControlBlock* task) {
  if (is_ddl()) {
    return Status::InvalidArgument(
        "DDL cannot run inside a transaction; use Execute()");
  }
  if (is_select()) {
    STRIP_ASSIGN_OR_RETURN(TempTable t, Query(txn, params, task));
    return t.Materialize();
  }
  STRIP_ASSIGN_OR_RETURN(int n, ExecuteDml(txn, params, task));
  return RowsAffected(n);
}

Result<TempTable> PreparedStatement::Query(Transaction* txn,
                                           const std::vector<Value>& params,
                                           TaskControlBlock* task) {
  const auto* s = std::get_if<SelectStmt>(&stmt_);
  if (s == nullptr) {
    return Status::InvalidArgument("Query() takes a SELECT statement");
  }
  DdlLatch::SharedGuard ddl(db_->ddl_latch_);
  std::shared_ptr<const Plan> plan = CurrentPlan();
  if (plan->select_bound && !ShadowedByTask(*plan, task)) {
    ExecContext ctx;
    ctx.catalog = &db_->catalog_;
    ctx.locks = &db_->locks_;
    ctx.txn = txn;
    ctx.bound = task != nullptr ? &task->bound_tables : nullptr;
  ctx.rows_scanned = task != nullptr ? &task->rows_scanned : nullptr;
    ctx.funcs = &db_->scalar_funcs_;
    ctx.params = &params;
    ctx.precompiled = &plan->precompiled;
    SqlExecutor executor(ctx);
    return executor.ExecuteSelectBound(*s, plan->inputs, plan->conjuncts,
                                       "_result");
  }
  return db_->Query(txn, *s, task, &params);
}

Result<int> PreparedStatement::ExecuteDml(Transaction* txn,
                                          const std::vector<Value>& params,
                                          TaskControlBlock* task) {
  DdlLatch::SharedGuard ddl(db_->ddl_latch_);
  std::shared_ptr<const Plan> plan = CurrentPlan();
  if (plan->dml != Plan::Dml::kNone) {
    return RunDmlFast(*plan, txn, params);
  }
  return db_->ExecuteDml(txn, stmt_, params, task);
}

Result<int> PreparedStatement::RunDmlFast(const Plan& plan, Transaction* txn,
                                          const std::vector<Value>& params) {
  if (txn == nullptr) {
    return Status::FailedPrecondition("DML requires a transaction");
  }
  Table* table = plan.table;
  STRIP_RETURN_IF_ERROR(db_->locks_.Acquire(
      txn, LockKey::WholeTable(table), LockMode::kExclusive));

  EvalFrame frame;
  frame.params = &params;

  if (plan.dml == Plan::Dml::kInsert) {
    const Schema& schema = table->schema();
    int inserted = 0;
    for (const auto& row_progs : plan.insert_rows) {
      std::vector<Value> values(static_cast<size_t>(schema.num_columns()));
      for (size_t i = 0; i < row_progs.size(); ++i) {
        STRIP_ASSIGN_OR_RETURN(Value v, row_progs[i].Eval(frame));
        values[static_cast<size_t>(plan.insert_mapping[i])] = std::move(v);
      }
      STRIP_ASSIGN_OR_RETURN(RowHandle it,
                             table->Insert(MakeRecord(std::move(values))));
      txn->log().Append(LogOp::kInsert, table, it->id, nullptr, it->rec);
      ++inserted;
    }
    return inserted;
  }

  // UPDATE / DELETE: collect matching rows (index probe when the key
  // evaluates; the full WHERE is re-checked on every candidate), then
  // apply — the same collect-then-apply order as the interpreted path.
  auto matches = [&](const RecordRef& rec) -> Result<bool> {
    if (!plan.where.has_value()) return true;
    frame.rec = rec.get();
    STRIP_ASSIGN_OR_RETURN(Value v, plan.where->Eval(frame));
    return v.IsTruthy();
  };

  std::vector<RowHandle> targets;
  bool collected = false;
  if (plan.index != nullptr) {
    auto key = plan.index_key->Eval(frame);
    if (key.ok()) {
      std::vector<RowHandle> candidates;
      plan.index->Lookup(*key, candidates);
      for (RowHandle r : candidates) {
        STRIP_ASSIGN_OR_RETURN(bool ok, matches(r->rec));
        if (ok) targets.push_back(r);
      }
      collected = true;
    }
    // Key evaluation failed: fall through to the scan — the full WHERE
    // subsumes the probe conjunct, so results (and errors) are identical.
  }
  if (!collected) {
    PageManager::ScanPos pos;
    ScanBatch batch;
    while (table->NextBatch(pos, batch)) {
      for (size_t i = 0; i < batch.count; ++i) {
        STRIP_ASSIGN_OR_RETURN(bool ok, matches(batch.rows[i]->rec));
        if (ok) targets.push_back(batch.rows[i]);
      }
    }
  }

  if (plan.dml == Plan::Dml::kDelete) {
    for (RowHandle it : targets) {
      txn->log().Append(LogOp::kDelete, table, it->id, it->rec, nullptr);
      table->Erase(it);
    }
    return static_cast<int>(targets.size());
  }

  for (RowHandle it : targets) {
    RecordRef old_rec = it->rec;
    frame.rec = old_rec.get();
    std::vector<Value> values = old_rec->values;
    for (size_t i = 0; i < plan.set_exprs.size(); ++i) {
      STRIP_ASSIGN_OR_RETURN(Value v, plan.set_exprs[i].Eval(frame));
      values[static_cast<size_t>(plan.set_cols[i])] = std::move(v);
    }
    STRIP_RETURN_IF_ERROR(table->Update(it, MakeRecord(std::move(values))));
    txn->log().Append(LogOp::kUpdate, table, it->id, old_rec, it->rec);
  }
  return static_cast<int>(targets.size());
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<std::vector<std::string>> PreparedStatement::PlanNotes() {
  DdlLatch::SharedGuard ddl(db_->ddl_latch_);
  return CurrentPlan()->notes;
}

Result<bool> PreparedStatement::UsesIndexProbe() {
  DdlLatch::SharedGuard ddl(db_->ddl_latch_);
  std::shared_ptr<const Plan> plan = CurrentPlan();
  return plan->index != nullptr || plan->select_index_probe;
}

}  // namespace strip
