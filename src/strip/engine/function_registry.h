#ifndef STRIP_ENGINE_FUNCTION_REGISTRY_H_
#define STRIP_ENGINE_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/storage/temp_table.h"
#include "strip/txn/task.h"
#include "strip/txn/transaction.h"

namespace strip {

class Database;
class PreparedStatement;

/// Execution context handed to a user (rule action) function. The function
/// runs inside a fresh transaction and can read its bound tables by name
/// (resolved before the catalog, §6.3) as well as issue SQL against the
/// database within that transaction.
class FunctionContext {
 public:
  FunctionContext(Database& db, Transaction& txn, TaskControlBlock& task)
      : db_(db), txn_(txn), task_(task) {}

  Database& db() { return db_; }
  Transaction& txn() { return txn_; }
  TaskControlBlock& task() { return task_; }

  /// The bound table named `name` (read-only), or nullptr.
  const TempTable* BoundTable(const std::string& name) const {
    return task_.bound_tables.Find(name);
  }

  /// Runs a SELECT within the action transaction; bound tables are visible
  /// as FROM sources. `params` binds '?' placeholders. The textual form
  /// goes through the database's plan cache; the PreparedStatement form
  /// reuses the handle's frozen plan directly and is the fast path for
  /// rule-action queries.
  Result<TempTable> Query(const std::string& sql);
  Result<TempTable> Query(const SelectStmt& stmt,
                          const std::vector<Value>* params = nullptr);
  Result<TempTable> Query(PreparedStatement& stmt,
                          const std::vector<Value>& params = {});

  /// Runs INSERT / UPDATE / DELETE within the action transaction; returns
  /// affected rows. The PreparedStatement form with `params` is the fast
  /// path for per-tuple maintenance updates.
  Result<int> Exec(const std::string& sql);
  Result<int> Exec(const Statement& stmt);
  Result<int> Exec(const Statement& stmt, const std::vector<Value>& params);
  Result<int> Exec(PreparedStatement& stmt,
                   const std::vector<Value>& params = {});

 private:
  Database& db_;
  Transaction& txn_;
  TaskControlBlock& task_;
};

/// A user-provided rule action: a black-box function linked into the
/// database (§2).
using UserFunction = std::function<Status(FunctionContext&)>;

/// Name -> user function registry.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;
  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  /// Registers `fn` under `name` (case-insensitive); duplicates fail.
  Status Register(const std::string& name, UserFunction fn);

  /// The function, or nullptr.
  const UserFunction* Find(const std::string& name) const;

 private:
  std::map<std::string, UserFunction> funcs_;
};

}  // namespace strip

#endif  // STRIP_ENGINE_FUNCTION_REGISTRY_H_
