#ifndef STRIP_ENGINE_PREPARED_STATEMENT_H_
#define STRIP_ENGINE_PREPARED_STATEMENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/storage/temp_table.h"
#include "strip/txn/task.h"
#include "strip/txn/transaction.h"

namespace strip {

class Database;

/// A statement parsed, resolved, and planned once, executed many times with
/// '?' parameter bindings — the engine's parse-plan-once execution model
/// (the paper's rule actions fire the same few statements per maintained
/// tuple; compiling them once is what makes unique-transaction batching pay
/// for itself).
///
/// What prepare freezes, per statement kind:
///   - single-table DML: the Table*, the index probe (indexed `col = const`
///     conjunct), and slot-compiled SET / WHERE / VALUES programs;
///   - SELECT whose FROM names all resolve in the catalog: the frozen
///     InputSet, the classified conjuncts, and slot-compiled programs for
///     every expression, fed to the executor's generic join machinery.
/// Anything that does not fit falls back to the interpreted path with
/// identical semantics (including errors), decided per execution.
///
/// DDL invalidation: every execution compares the plan's catalog generation
/// stamp against the live counter and transparently re-resolves after any
/// DDL — a cached SELECT sees an index created later; execution against a
/// dropped table fails cleanly with NotFound.
///
/// Lifetime and threading: a handle borrows its Database and must not
/// outlive it. Handles are shareable across threads; the plan snapshot is
/// swapped under a mutex and all per-execution state is local. Locks are
/// acquired per execution in the executing transaction, never at prepare.
class PreparedStatement {
 public:
  /// The frozen per-generation plan; defined in the .cc (implementation
  /// detail — public only so file-local helpers there can name it).
  struct Plan;

  ~PreparedStatement();
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  /// Semantics of Database::Execute: DML / SELECT run in a fresh
  /// transaction (committed on success — firing rules); DDL is immediate.
  Result<ResultSet> Execute(const std::vector<Value>& params = {});

  /// Runs inside the caller's transaction (DML / SELECT only). `task`
  /// makes that task's bound tables visible, exactly like
  /// Database::ExecuteStatement.
  Result<ResultSet> ExecuteInTxn(Transaction* txn,
                                 const std::vector<Value>& params = {},
                                 TaskControlBlock* task = nullptr);

  /// DML fast path: affected rows without materializing a ResultSet. This
  /// is the per-maintained-tuple call of the rule-action functions.
  Result<int> ExecuteDml(Transaction* txn,
                         const std::vector<Value>& params = {},
                         TaskControlBlock* task = nullptr);

  /// SELECT fast path: the pointer-backed temp table.
  Result<TempTable> Query(Transaction* txn,
                          const std::vector<Value>& params = {},
                          TaskControlBlock* task = nullptr);

  const std::string& sql() const { return sql_; }
  const Statement& statement() const { return stmt_; }
  bool is_select() const;
  bool is_ddl() const;

  /// One line per prepare-time plan decision (fast path taken, index vs.
  /// scan, compiled program counts) — introspection for tests and tooling.
  /// Re-plans first if DDL has run since the last execution.
  Result<std::vector<std::string>> PlanNotes();

  /// True when the current plan reaches matching rows through an index
  /// probe (re-plans first, so this reflects indexes created after
  /// prepare).
  Result<bool> UsesIndexProbe();

 private:
  friend class Database;

  PreparedStatement(Database* db, std::string sql, Statement stmt);

  /// The plan for the current catalog generation, rebuilding if stale.
  std::shared_ptr<const Plan> CurrentPlan();

  /// Re-resolves and re-compiles against the current catalog. Never fails:
  /// statements that do not fit a fast path get a fallback plan that
  /// delegates to the interpreted executor (preserving its exact errors).
  std::shared_ptr<const Plan> BuildPlan();

  Result<int> RunDmlFast(const Plan& plan, Transaction* txn,
                         const std::vector<Value>& params);

  Database* db_;
  std::string sql_;
  Statement stmt_;

  std::mutex mu_;
  std::shared_ptr<const Plan> plan_;  // null until first use
};

using PreparedStatementPtr = std::shared_ptr<PreparedStatement>;

}  // namespace strip

#endif  // STRIP_ENGINE_PREPARED_STATEMENT_H_
