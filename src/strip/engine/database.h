#ifndef STRIP_ENGINE_DATABASE_H_
#define STRIP_ENGINE_DATABASE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "strip/common/status.h"
#include "strip/engine/ddl_latch.h"
#include "strip/engine/function_registry.h"
#include "strip/engine/prepared_statement.h"
#include "strip/obs/metrics.h"
#include "strip/obs/rule_cost.h"
#include "strip/obs/trace_ring.h"
#include "strip/rules/rule_engine.h"
#include "strip/sql/executor.h"
#include "strip/sql/parser.h"
#include "strip/storage/catalog.h"
#include "strip/txn/simulated_executor.h"
#include "strip/txn/threaded_executor.h"

namespace strip {

class ViewManager;

/// How tasks are executed (DESIGN.md §4).
enum class ExecutorMode {
  /// Discrete-event simulation on a virtual clock; deterministic,
  /// single-server. Drive time with simulated()->RunUntil(...).
  kSimulated,
  /// Real worker threads on the wall clock.
  kThreaded,
};

/// The STRIP database engine: a main-memory DBMS with the rule system of
/// §2/§6 on top. This is the library's primary entry point.
///
///   strip::Database db;
///   db.ExecuteScript("create table stocks (symbol string, price double);");
///   db.RegisterFunction("recompute", ...);
///   db.Execute("create rule r on stocks when updated price then "
///              "execute recompute unique after 1.0 seconds");
class Database {
 public:
  struct Options {
    ExecutorMode mode = ExecutorMode::kSimulated;
    SchedulingPolicy policy = SchedulingPolicy::kFifo;
    /// Threaded mode: size of the process (worker) pool.
    int num_workers = 2;
    /// Simulated mode: advance virtual time by each task's measured cost
    /// (single-CPU model). Disable for pure logical-time tests.
    bool advance_clock_by_cost = true;
    /// Rule-action transactions aborted by wait-die are retried this many
    /// times before the task fails.
    int action_retry_limit = 10;
    /// Route textual Execute / ExecuteInTxn through the LRU cache of
    /// prepared statements (keyed by normalized SQL), so repeated
    /// statements skip the parser and reuse frozen plans.
    bool enable_plan_cache = true;
    size_t plan_cache_capacity = 256;
    /// Evaluate expressions through slot-compiled postfix programs instead
    /// of the tree-walking interpreter. Also gates the prepared fast
    /// paths; disable to force fully interpreted execution (the
    /// compiled-vs-interpreted equivalence tests and benchmarks toggle
    /// this on one binary).
    bool enable_compiled_exprs = true;
    /// Hot-path observability (src/strip/obs/): the lifecycle trace ring,
    /// task latency histograms, and per-rule staleness probes. Counters
    /// (always on) are single relaxed atomic increments; disabling this
    /// removes the rest for overhead A/B measurements.
    bool enable_metrics = true;
    /// Lifecycle events retained by the trace ring (~5 events per task, so
    /// the default keeps the last ~1600 transactions). 0 disables tracing.
    size_t trace_capacity = 8192;
  };

  Database();
  explicit Database(Options options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- SQL entry points --------------------------------------------------
  /// Parses and executes one statement. DML / SELECT run in their own
  /// transaction (committed on success — firing rules); DDL is immediate.
  Result<ResultSet> Execute(const std::string& sql);

  /// Executes one pre-parsed statement with the same semantics.
  Result<ResultSet> Execute(const Statement& stmt);

  /// Executes a ';'-separated script, stopping at the first error.
  Status ExecuteScript(const std::string& sql);

  /// Parses `sql` once and returns a reusable handle that freezes FROM
  /// resolution, plan choice (index probe vs. scan), and slot-compiled
  /// expression programs; execute it repeatedly with '?' bindings. Handles
  /// for the same normalized SQL text are shared through an LRU cache
  /// (when Options::enable_plan_cache is set); plans self-invalidate on
  /// any DDL via the catalog generation counter. DDL statements get fresh
  /// uncached handles.
  Result<PreparedStatementPtr> Prepare(const std::string& sql);

  /// Plan-cache observability (hits / misses are cumulative).
  struct PlanCacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  PlanCacheStats plan_cache_stats() const;

  /// Executes a SELECT and returns the plan decisions the executor made
  /// (scan methods, join order and algorithms, aggregation, sorting) —
  /// EXPLAIN-ANALYZE-style: the query really runs, in its own transaction.
  Result<std::vector<std::string>> Explain(const std::string& sql);

  /// Executes one statement inside the caller's transaction (DML / SELECT
  /// only). `task` (optional) makes that task's bound tables visible.
  Result<ResultSet> ExecuteInTxn(Transaction* txn, const std::string& sql,
                                 TaskControlBlock* task = nullptr);

  /// Executes a pre-parsed statement inside a transaction. Parsing once
  /// and re-executing with '?' placeholder bindings in `params` is the
  /// engine's prepared-statement path; rule action functions use it to
  /// avoid per-invocation parse cost.
  Result<ResultSet> ExecuteStatement(Transaction* txn, const Statement& stmt,
                                     TaskControlBlock* task = nullptr,
                                     const std::vector<Value>* params = nullptr);

  /// Convenience: runs a SELECT inside a transaction returning the temp
  /// table (pointer-backed; cheaper than materializing a ResultSet).
  Result<TempTable> Query(Transaction* txn, const SelectStmt& stmt,
                          TaskControlBlock* task = nullptr,
                          const std::vector<Value>* params = nullptr);

  /// Prepared-DML fast path: executes an UPDATE / INSERT / DELETE with
  /// bound parameters, returning affected rows without building a
  /// ResultSet. This is what rule-action functions call per maintained
  /// tuple (the paper's user functions issue such updates, Figures 3-8).
  Result<int> ExecuteDml(Transaction* txn, const Statement& stmt,
                         const std::vector<Value>& params,
                         TaskControlBlock* task = nullptr);

  // --- transactions ------------------------------------------------------
  /// Starts a transaction. The pointer stays valid until Commit / Abort.
  /// `priority` (0 = the new id) sets the wait-die age; a retried
  /// transaction passes its predecessor's priority so it cannot starve.
  Result<Transaction*> Begin(uint64_t priority = 0);

  /// Commits: event-checks the log against the rules (§6.3), stamps the
  /// commit time, releases locks, then enqueues triggered action tasks.
  Status Commit(Transaction* txn);

  /// Rolls back every logged change and releases locks.
  Status Abort(Transaction* txn);

  // --- rule actions / functions -------------------------------------------
  /// Registers a user (rule action) function.
  Status RegisterFunction(const std::string& name, UserFunction fn);

  /// Registers a scalar SQL function (e.g. the Black-Scholes pricer).
  Status RegisterScalarFunction(const std::string& name, ScalarFunc fn);

  // --- tasks ---------------------------------------------------------------
  /// Creates an application task (caller fills in work / release time).
  TaskPtr NewTask();

  /// Enqueues a task with the executor.
  void Submit(TaskPtr task);

  // --- periodic recomputation -----------------------------------------------
  /// Runs the registered user function `function_name` every `period`
  /// seconds (first run one period from now), each run in its own
  /// transaction with no bound tables. This is STRIP's periodic
  /// recomputation facility — e.g. refreshing stock_stdev outside trading
  /// hours (§3). Fails if the name is taken or the function is unknown.
  Status SchedulePeriodic(const std::string& name, double period_seconds,
                          const std::string& function_name);

  /// Stops the named periodic job (takes effect at its next release).
  Status CancelPeriodic(const std::string& name);

  // --- components ----------------------------------------------------------
  const Options& options() const { return options_; }
  /// The unified metrics registry: every subsystem's counters (lock
  /// manager, executors, rule engine, unique manager, plan cache) plus the
  /// latency / staleness histograms. SnapshotJson() is the export surface.
  MetricsRegistry& metrics() { return metrics_; }
  /// Per-transaction lifecycle trace of the most recent tasks
  /// (submit/delay/ready/start/commit/...); ToChromeJson() loads in
  /// chrome://tracing. Disabled (capacity 0) when !options.enable_metrics.
  TraceRing& trace_ring() { return trace_ring_; }
  Catalog& catalog() { return catalog_; }
  LockManager& locks() { return locks_; }
  RuleEngine& rules() { return *rules_; }
  FunctionRegistry& functions() { return functions_; }
  const ScalarFuncRegistry& scalar_funcs() const { return scalar_funcs_; }
  ViewManager& views() { return *views_; }
  Executor& executor() { return *executor_; }
  /// Non-null iff mode == kSimulated / kThreaded respectively.
  SimulatedExecutor* simulated() { return sim_.get(); }
  ThreadedExecutor* threaded() { return threaded_.get(); }
  Timestamp Now() const { return executor_->Now(); }

  /// Transactions begun but not yet committed / aborted — zero whenever the
  /// system is between simulated steps (chaos invariant b precondition).
  size_t NumActiveTxns() const {
    std::lock_guard<std::mutex> lk(txns_mu_);
    return txns_.size();
  }

 private:
  /// PreparedStatement executes against the engine's internals (catalog,
  /// locks, options, immediate DDL) on behalf of its owning database.
  friend class PreparedStatement;

  /// The action runner installed into rule tasks: unhooks the task from
  /// the unique hash table, then runs the user function in a fresh
  /// transaction, retrying wait-die aborts.
  Status RunActionTask(TaskControlBlock& task);

  /// Immediate (non-transactional) DDL execution.
  Result<ResultSet> ExecuteDdl(const Statement& stmt);

  /// Wires every subsystem stats struct into the registry as callback
  /// gauges and resolves the hot-path counter / histogram handles.
  void RegisterBuiltinMetrics();

  /// Stamps commit staleness into the task and feeds the per-rule
  /// staleness histogram + batching-factor histogram (the paper's §7
  /// metric). Called after a rule-action transaction commits.
  void RecordActionCommit(TaskControlBlock& task);

  Options options_;
  MetricsRegistry metrics_;
  TraceRing trace_ring_;
  /// Statement execution shared / metadata DDL exclusive (see ddl_latch.h):
  /// makes the plan-cache generation check-and-execute atomic w.r.t.
  /// catalog mutation.
  DdlLatch ddl_latch_;
  Catalog catalog_;
  LockManager locks_;
  ScalarFuncRegistry scalar_funcs_;
  FunctionRegistry functions_;
  std::unique_ptr<SimulatedExecutor> sim_;
  std::unique_ptr<ThreadedExecutor> threaded_;
  Executor* executor_ = nullptr;
  std::unique_ptr<RuleEngine> rules_;
  std::unique_ptr<ViewManager> views_;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> next_task_id_{1};

  /// One tick of a periodic job: run the function, reschedule.
  void SubmitPeriodicTick(const std::string& function_name,
                          Timestamp period,
                          std::shared_ptr<std::atomic<bool>> cancelled);

  mutable std::mutex txns_mu_;
  std::map<uint64_t, std::unique_ptr<Transaction>> txns_;

  std::mutex periodic_mu_;
  std::map<std::string, std::shared_ptr<std::atomic<bool>>> periodic_;

  /// LRU cache of prepared statements keyed by normalized SQL. The list
  /// orders keys most-recently-used first; the map holds each key's list
  /// position and handle.
  mutable std::mutex plan_mu_;
  std::list<std::string> plan_lru_;
  std::unordered_map<std::string,
                     std::pair<std::list<std::string>::iterator,
                               PreparedStatementPtr>>
      plan_cache_;

  // Registry-owned atomic counters (hot paths increment through the cached
  // pointers). The plan-cache pair used to be plain size_t — racy once
  // Execute() ran from multiple ThreadedExecutor workers.
  Counter* plan_hits_ = nullptr;
  Counter* plan_misses_ = nullptr;
  Counter* txn_begins_ = nullptr;
  Counter* txn_commits_ = nullptr;
  Counter* txn_aborts_ = nullptr;
  Counter* action_restarts_ = nullptr;
  /// Null when !options_.enable_metrics: batching-factor histogram
  /// (firings consumed per executed rule task).
  Histogram* batch_factor_hist_ = nullptr;
  /// Null when !options_.enable_metrics: per-rule latency breakdown and
  /// cost counters, fed by the executors at task finish (ExecutorObs).
  std::unique_ptr<RuleCostTracker> rule_cost_;
};

}  // namespace strip

#endif  // STRIP_ENGINE_DATABASE_H_
