#ifndef STRIP_ENGINE_DDL_LATCH_H_
#define STRIP_ENGINE_DDL_LATCH_H_

#include <condition_variable>
#include <mutex>
#include <thread>

namespace strip {

/// Serializes catalog-structure DDL against plan-cache execution.
///
/// The race this closes: a PreparedStatement's plan freezes raw Table* /
/// Index* pointers, revalidated against the catalog generation counter at
/// execution time. Without a latch the check and the execution are two
/// separate steps, so a concurrent DROP TABLE can free the table between
/// them — a use-after-free, not just a stale read. Statement execution
/// takes the latch shared; table/index/rule DDL takes it exclusive, making
/// the generation check-and-execute atomic with respect to catalog
/// mutation.
///
/// Reader preference, deliberately: a shared holder can block inside the
/// lock manager waiting for a row lock whose owner still has statements to
/// run. Those statements also acquire the latch shared; if a merely
/// *waiting* writer could block them (classic writer-preference), the
/// owner could never finish and the system would deadlock through the lock
/// manager. Readers therefore only wait while a writer is ACTIVE — and
/// exclusive sections never touch the lock manager (pure metadata DDL), so
/// an active writer always finishes. DDL can starve under a saturating
/// read load; that is the correct trade for a workload that runs DDL at
/// setup time.
///
/// Re-entrant: DDL statements execute helper work on their own thread
/// (rule validation, view registration) that may re-enter shared or
/// exclusive; both nest. Shared sections nest trivially (a counter).
class DdlLatch {
 public:
  DdlLatch() = default;
  DdlLatch(const DdlLatch&) = delete;
  DdlLatch& operator=(const DdlLatch&) = delete;

  void LockShared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ && writer_thread_ == std::this_thread::get_id()) {
      ++writer_nested_shared_;  // re-entry under our own exclusive
      return;
    }
    cv_.wait(lk, [&] { return !writer_active_; });
    ++readers_;
  }

  void UnlockShared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ && writer_thread_ == std::this_thread::get_id()) {
      --writer_nested_shared_;
      return;
    }
    if (--readers_ == 0) cv_.notify_all();
  }

  void LockExclusive() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ && writer_thread_ == std::this_thread::get_id()) {
      ++writer_depth_;  // nested DDL (e.g. a view creating its table)
      return;
    }
    cv_.wait(lk, [&] { return !writer_active_ && readers_ == 0; });
    writer_active_ = true;
    writer_thread_ = std::this_thread::get_id();
    writer_depth_ = 1;
  }

  void UnlockExclusive() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--writer_depth_ > 0) return;
    writer_active_ = false;
    cv_.notify_all();
  }

  class SharedGuard {
   public:
    explicit SharedGuard(DdlLatch& latch) : latch_(latch) {
      latch_.LockShared();
    }
    ~SharedGuard() { latch_.UnlockShared(); }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    DdlLatch& latch_;
  };

  class ExclusiveGuard {
   public:
    explicit ExclusiveGuard(DdlLatch& latch) : latch_(latch) {
      latch_.LockExclusive();
    }
    ~ExclusiveGuard() { latch_.UnlockExclusive(); }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    DdlLatch& latch_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  bool writer_active_ = false;
  int writer_depth_ = 0;
  int writer_nested_shared_ = 0;
  std::thread::id writer_thread_{};
};

}  // namespace strip

#endif  // STRIP_ENGINE_DDL_LATCH_H_
