#include "strip/txn/threaded_executor.h"

#include <chrono>

namespace strip {

ThreadedExecutor::ThreadedExecutor(int num_workers, SchedulingPolicy policy)
    : ready_(policy) {
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadedExecutor::~ThreadedExecutor() { Shutdown(); }

void ThreadedExecutor::Submit(TaskPtr task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    task->enqueue_time = clock_.Now();
    if (task->release_time > clock_.Now()) {
      delay_.Push(std::move(task));
    } else {
      ready_.Push(std::move(task));
    }
  }
  work_cv_.notify_all();
}

void ThreadedExecutor::set_task_observer(TaskObserver observer) {
  std::lock_guard<std::mutex> lk(mu_);
  observer_ = std::move(observer);
}

void ThreadedExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Release due tasks into the ready queue.
    for (TaskPtr& t : delay_.PopReleased(clock_.Now())) {
      ready_.Push(std::move(t));
    }
    if (!ready_.empty()) {
      TaskPtr task = ready_.Pop();
      if (!task->TryStart()) continue;
      ++active_workers_;
      TaskObserver observer = observer_;
      lk.unlock();
      ExecuteTaskBodyThreaded(task, observer);
      lk.lock();
      --active_workers_;
      drain_cv_.notify_all();
      continue;
    }
    if (shutdown_) return;
    if (delay_.empty()) {
      drain_cv_.notify_all();
      work_cv_.wait(lk);
    } else {
      Timestamp next = delay_.NextRelease();
      Timestamp now = clock_.Now();
      if (next > now) {
        work_cv_.wait_for(lk, std::chrono::microseconds(next - now));
      }
    }
  }
}

void ThreadedExecutor::ExecuteTaskBodyThreaded(const TaskPtr& task,
                                               const TaskObserver& observer) {
  // Stats are written under the lock afterwards via a local copy to avoid
  // holding mu_ while running user code.
  ExecutorStats local;
  Timestamp cost = ExecuteTaskBody(*task, clock_.Now(), local);
  (void)cost;
  task->finish_time = clock_.Now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.tasks_run += local.tasks_run;
    stats_.tasks_failed += local.tasks_failed;
    stats_.busy_micros += local.busy_micros;
  }
  if (observer) observer(*task);
}

void ThreadedExecutor::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [this] {
    return delay_.empty() && ready_.empty() && active_workers_ == 0;
  });
}

void ThreadedExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace strip
