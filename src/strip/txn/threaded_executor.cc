#include "strip/txn/threaded_executor.h"

#include <algorithm>
#include <chrono>

#include "strip/obs/trace_ring.h"

namespace strip {

ThreadedExecutor::ThreadedExecutor(int num_workers, SchedulingPolicy policy,
                                   int dequeue_batch)
    : dequeue_batch_(static_cast<size_t>(std::max(1, dequeue_batch))) {
  int n = std::max(1, num_workers);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<ReadyShard>(policy));
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  timer_ = std::thread([this] { TimerLoop(); });
}

ThreadedExecutor::~ThreadedExecutor() { Shutdown(); }

void ThreadedExecutor::Submit(TaskPtr task) {
  task->enqueue_time = clock_.Now();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.trace != nullptr) {
    obs_.trace->Record(TraceEventKind::kSubmit, task->id(), clock_.Now(),
                       task->function_name.c_str(), task->trace.trace_id);
  }
  if (task->release_time > clock_.Now()) {
    if (obs_.trace != nullptr) {
      obs_.trace->Record(TraceEventKind::kDelayed, task->id(),
                         task->release_time, "", task->trace.trace_id);
    }
    {
      std::lock_guard<std::mutex> lk(delay_mu_);
      delay_.Push(std::move(task));
    }
    delay_cv_.notify_all();
  } else {
    PushReady(std::move(task));
  }
}

void ThreadedExecutor::set_task_observer(TaskObserver observer) {
  std::lock_guard<std::mutex> lk(observer_mu_);
  observer_ = std::move(observer);
}

void ThreadedExecutor::PushReady(TaskPtr task) {
  if (obs_.trace != nullptr) {
    obs_.trace->Record(TraceEventKind::kReady, task->id(), clock_.Now(), "",
                       task->trace.trace_id);
  }
  size_t idx = next_shard_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size();
  {
    std::lock_guard<std::mutex> lk(shards_[idx]->mu);
    shards_[idx]->queue.Push(std::move(task));
  }
  // seq_cst so the count increment is ordered against the idle check below
  // and against a sleeping worker's predicate read (see WorkerLoop).
  ready_count_.fetch_add(1);
  if (num_idle_.load() > 0) {
    // Lock/unlock pairs this notify with the waiter's predicate check,
    // closing the window between "worker saw an empty queue" and "worker
    // started waiting".
    std::lock_guard<std::mutex> lk(idle_mu_);
    work_cv_.notify_all();
  }
}

size_t ThreadedExecutor::PopBatch(size_t home, std::vector<TaskPtr>& out) {
  if (ready_count_.load(std::memory_order_relaxed) == 0) return 0;
  size_t taken = 0;
  const size_t n = shards_.size();
  for (size_t i = 0; i < n && taken == 0; ++i) {
    ReadyShard& shard = *shards_[(home + i) % n];
    std::lock_guard<std::mutex> lk(shard.mu);
    taken = shard.queue.PopBatch(dequeue_batch_, out);
  }
  if (taken > 0) {
    ready_count_.fetch_sub(static_cast<int64_t>(taken));
  }
  return taken;
}

void ThreadedExecutor::TaskDone() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Pair with Drain()'s predicate check under drain_mu_.
    std::lock_guard<std::mutex> lk(drain_mu_);
    drain_cv_.notify_all();
  }
}

void ThreadedExecutor::WorkerLoop(size_t worker_index) {
  std::vector<TaskPtr> batch;
  batch.reserve(dequeue_batch_);
  for (;;) {
    batch.clear();
    if (PopBatch(worker_index, batch) == 0) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      std::unique_lock<std::mutex> lk(idle_mu_);
      num_idle_.fetch_add(1);
      // The timeout is a belt-and-braces backstop (and a steal
      // opportunity); the num_idle_/ready_count_ handshake with PushReady
      // makes lost wakeups impossible in the first place.
      work_cv_.wait_for(lk, std::chrono::milliseconds(10), [this] {
        return ready_count_.load() > 0 ||
               shutdown_.load(std::memory_order_acquire);
      });
      num_idle_.fetch_sub(1);
      continue;
    }
    TaskObserver observer;
    {
      std::lock_guard<std::mutex> lk(observer_mu_);
      observer = observer_;
    }
    for (TaskPtr& task : batch) {
      if (task->TryStart()) {
        ExecuteTaskBody(*task, clock_.Now(), stats_, obs_);
        task->finish_time = clock_.Now();
        if (obs_.trace != nullptr) {
          obs_.trace->Record(TraceEventKind::kFinish, task->id(),
                             task->finish_time,
                             task->function_name.c_str(),
                             task->trace.trace_id);
        }
        if (observer) observer(*task);
      }
      TaskDone();
    }
  }
}

void ThreadedExecutor::TimerLoop() {
  std::unique_lock<std::mutex> lk(delay_mu_);
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    Timestamp next = delay_.NextRelease();
    if (next == kNoDeadline) {
      delay_cv_.wait(lk);
      continue;
    }
    Timestamp now = clock_.Now();
    if (next > now) {
      // Woken early by an earlier-releasing Submit or by Shutdown; loop to
      // re-evaluate either way.
      delay_cv_.wait_for(lk, std::chrono::microseconds(next - now));
      continue;
    }
    std::vector<TaskPtr> due = delay_.PopReleased(now);
    lk.unlock();
    for (TaskPtr& t : due) {
      PushReady(std::move(t));
    }
    lk.lock();
  }
}

void ThreadedExecutor::Drain() {
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadedExecutor::Shutdown() {
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (!shutdown_.exchange(true, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> g(idle_mu_);
    }
    work_cv_.notify_all();
    {
      std::lock_guard<std::mutex> g(delay_mu_);
    }
    delay_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (timer_.joinable()) timer_.join();
}

}  // namespace strip
