#ifndef STRIP_TXN_THREADED_EXECUTOR_H_
#define STRIP_TXN_THREADED_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "strip/common/clock.h"
#include "strip/txn/executor.h"
#include "strip/txn/task_queues.h"

namespace strip {

/// Real-time executor: a pool of worker threads servicing the ready queue,
/// with a delay queue for future-released tasks (§6.2 Figure 15). This is
/// the process-pool analogue of STRIP's task service and the system's
/// primary execution mode; the benchmarks and examples run on it.
///
/// Contention design (one lock per concern, never one lock for all):
///   - The ready queue is sharded one shard per worker, each with its own
///     mutex; Submit round-robins across shards and a worker drains its own
///     shard first, stealing from siblings only when it is empty. Workers
///     dequeue in batches (up to dequeue_batch tasks per lock acquisition).
///   - A dedicated timer thread owns the delay queue and promotes due
///     tasks into the ready shards, so workers never touch the delay heap.
///   - ExecutorStats are relaxed atomics folded in by the executing worker.
///   - Drain() watches a single atomic in-flight counter (submitted tasks
///     not yet finished, wherever they sit), not the queue structures.
///
/// Scheduling-policy ordering is preserved per shard; across shards it is
/// approximate (as in any multi-queue scheduler). With one worker there is
/// one shard and ordering is exact.
class ThreadedExecutor final : public Executor {
 public:
  static constexpr int kDefaultDequeueBatch = 8;

  explicit ThreadedExecutor(int num_workers,
                            SchedulingPolicy policy = SchedulingPolicy::kFifo,
                            int dequeue_batch = kDefaultDequeueBatch);
  ~ThreadedExecutor() override;

  void Submit(TaskPtr task) override;
  Timestamp Now() const override { return clock_.Now(); }
  const ExecutorStats& stats() const override { return stats_; }
  void set_task_observer(TaskObserver observer) override;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Blocks until every submitted task (including tasks they spawn) has
  /// finished and the queues are empty.
  void Drain();

  /// Stops accepting work and joins workers. Ready tasks still queued are
  /// run to completion; tasks still in the delay queue are dropped.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  /// One ready-queue partition, cache-line padded so shard mutexes don't
  /// false-share.
  struct alignas(64) ReadyShard {
    explicit ReadyShard(SchedulingPolicy policy) : queue(policy) {}
    std::mutex mu;
    ReadyQueue queue;
  };

  void WorkerLoop(size_t worker_index);
  void TimerLoop();

  /// Routes a due task to a ready shard and wakes a worker if any sleep.
  void PushReady(TaskPtr task);

  /// Fills `out` with up to dequeue_batch_ tasks, draining the worker's
  /// home shard first and stealing from siblings otherwise. Returns the
  /// number taken.
  size_t PopBatch(size_t home, std::vector<TaskPtr>& out);

  /// Marks one submitted task as finished (run, dropped, or merged-dead)
  /// and wakes Drain() when the in-flight count reaches zero.
  void TaskDone();

  RealClock clock_;
  const size_t dequeue_batch_;

  std::vector<std::unique_ptr<ReadyShard>> shards_;
  std::atomic<uint64_t> next_shard_{0};   // round-robin enqueue cursor
  std::atomic<int64_t> ready_count_{0};   // tasks sitting in ready shards
  std::atomic<int64_t> in_flight_{0};     // submitted, not yet finished
  std::atomic<bool> shutdown_{false};

  std::mutex delay_mu_;
  std::condition_variable delay_cv_;      // timer thread waits here
  DelayQueue delay_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;       // idle workers wait here
  std::atomic<int> num_idle_{0};

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;      // Drain() waits here

  std::mutex observer_mu_;
  TaskObserver observer_;

  ExecutorStats stats_;
  std::vector<std::thread> workers_;
  std::thread timer_;
  std::mutex shutdown_mu_;                // serializes Shutdown() calls
};

}  // namespace strip

#endif  // STRIP_TXN_THREADED_EXECUTOR_H_
