#ifndef STRIP_TXN_THREADED_EXECUTOR_H_
#define STRIP_TXN_THREADED_EXECUTOR_H_

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "strip/common/clock.h"
#include "strip/txn/executor.h"
#include "strip/txn/task_queues.h"

namespace strip {

/// Real-time executor: a pool of worker threads servicing the ready queue,
/// with a delay queue for future-released tasks (§6.2 Figure 15). This is
/// the process-pool analogue of STRIP's task service; examples and the
/// threaded integration tests run on it.
class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(int num_workers,
                            SchedulingPolicy policy = SchedulingPolicy::kFifo);
  ~ThreadedExecutor() override;

  void Submit(TaskPtr task) override;
  Timestamp Now() const override { return clock_.Now(); }
  const ExecutorStats& stats() const override { return stats_; }
  void set_task_observer(TaskObserver observer) override;

  /// Blocks until every submitted task (including tasks they spawn) has
  /// finished and the queues are empty.
  void Drain();

  /// Stops accepting work and joins workers. Idempotent; called by the
  /// destructor.
  void Shutdown();

 private:
  void WorkerLoop();

  /// Runs the task outside mu_ and folds its cost into stats_.
  void ExecuteTaskBodyThreaded(const TaskPtr& task,
                               const TaskObserver& observer);

  RealClock clock_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here
  std::condition_variable drain_cv_;  // Drain() waits here
  DelayQueue delay_;
  ReadyQueue ready_;
  int active_workers_ = 0;
  bool shutdown_ = false;
  ExecutorStats stats_;
  TaskObserver observer_;
  std::vector<std::thread> workers_;
};

}  // namespace strip

#endif  // STRIP_TXN_THREADED_EXECUTOR_H_
