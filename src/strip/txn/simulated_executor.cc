#include "strip/txn/simulated_executor.h"

#include <algorithm>

#include "strip/obs/metrics.h"
#include "strip/obs/rule_cost.h"
#include "strip/obs/trace_ring.h"
#include "strip/testing/fault_injector.h"

namespace strip {

Timestamp ExecuteTaskBody(TaskControlBlock& task, Timestamp now,
                          ExecutorStats& stats, const ExecutorObs& obs) {
  task.start_time = now;
  if (obs.trace != nullptr) {
    obs.trace->Record(TraceEventKind::kStart, task.id(), now,
                      task.function_name.c_str(), task.trace.trace_id);
  }
  Timestamp queue_wait = std::max<Timestamp>(
      0, now - std::max(task.enqueue_time, task.release_time));
  if (obs.queue_wait_us != nullptr) obs.queue_wait_us->Observe(queue_wait);
  StopWatch watch;
  Status st = task.work ? task.work(task) : Status::OK();
  int64_t nanos = watch.ElapsedNanos();
  Timestamp cost = task.fixed_cost_micros >= 0 ? task.fixed_cost_micros
                                               : (nanos + 500) / 1000;
  task.cpu_nanos = task.fixed_cost_micros >= 0
                       ? task.fixed_cost_micros * 1000
                       : nanos;
  task.cpu_micros = cost;
  task.result = st;
  stats.tasks_run.fetch_add(1, std::memory_order_relaxed);
  if (!st.ok()) stats.tasks_failed.fetch_add(1, std::memory_order_relaxed);
  stats.busy_micros.fetch_add(cost, std::memory_order_relaxed);
  if (obs.run_us != nullptr) obs.run_us->Observe(cost);
  // Per-rule breakdown: where did this firing's latency go, and what did
  // it cost? Read after `work` returned, so the plain cost fields the body
  // accumulated (lock waits, scanned rows, folded deltas) are complete.
  if (obs.rule_cost != nullptr && !task.function_name.empty()) {
    const RuleCostHandles* h = obs.rule_cost->Handles(task.function_name);
    h->queue_wait_us->Observe(queue_wait);
    h->lock_wait_us->Observe(task.lock_wait_micros);
    h->exec_us->Observe(cost);
    h->cpu_micros->Add(static_cast<uint64_t>(cost));
    if (task.rows_scanned > 0) h->rows_scanned->Add(task.rows_scanned);
    if (task.deltas_folded > 0) h->deltas_folded->Add(task.deltas_folded);
    if (task.lock_restarts > 0) h->lock_aborts->Add(task.lock_restarts);
  }
  return cost;
}

void SimulatedExecutor::Submit(TaskPtr task) {
  task->enqueue_time = clock_.Now();
  if (obs_.trace != nullptr) {
    obs_.trace->Record(TraceEventKind::kSubmit, task->id(), clock_.Now(),
                       task->function_name.c_str(), task->trace.trace_id);
  }
  if (injector_ != nullptr) {
    // Deterministic cost: measured wall-nanos would make virtual time (and
    // so the whole schedule) nondeterministic under a chaos seed.
    if (task->fixed_cost_micros < 0) {
      task->fixed_cost_micros = injector_->AssignCost(task->id());
    }
    // Late timer promotion: the task is released behind schedule.
    if (task->release_time > clock_.Now()) {
      task->release_time += injector_->ExtraReleaseDelay(task->id());
    }
  }
  if (task->release_time > clock_.Now()) {
    if (obs_.trace != nullptr) {
      obs_.trace->Record(TraceEventKind::kDelayed, task->id(),
                         task->release_time, "", task->trace.trace_id);
    }
    delay_.Push(std::move(task));
  } else {
    if (obs_.trace != nullptr) {
      obs_.trace->Record(TraceEventKind::kReady, task->id(), clock_.Now(),
                         "", task->trace.trace_id);
    }
    ready_.Push(std::move(task));
  }
}

bool SimulatedExecutor::StepOnce() {
  // Release everything due at the current virtual time.
  for (TaskPtr& t : delay_.PopReleased(clock_.Now())) {
    if (obs_.trace != nullptr) {
      obs_.trace->Record(TraceEventKind::kReady, t->id(), clock_.Now(), "",
                         t->trace.trace_id);
    }
    ready_.Push(std::move(t));
  }
  if (ready_.empty()) return false;
  TaskPtr task = ready_.Pop();
  if (!task->TryStart()) return true;  // defensive: already ran
  if (injector_ != nullptr) {
    // Worker stall: burn virtual time before the task body, shifting the
    // start (and everything scheduled behind it) later.
    clock_.Advance(injector_->StallBeforeRun(task->id()));
  }
  Timestamp cost = ExecuteTaskBody(*task, clock_.Now(), stats_, obs_);
  if (advance_clock_by_cost_) clock_.Advance(cost);
  task->finish_time = clock_.Now();
  if (obs_.trace != nullptr) {
    obs_.trace->Record(TraceEventKind::kFinish, task->id(), clock_.Now(),
                       task->function_name.c_str(), task->trace.trace_id);
  }
  if (observer_) observer_(*task);
  return true;
}

void SimulatedExecutor::Drain(Timestamp horizon) {
  for (;;) {
    if (StepOnce()) continue;
    // Idle: jump to the next release if it is within the horizon.
    Timestamp next = delay_.NextRelease();
    if (next == kNoDeadline || next > horizon) return;
    clock_.AdvanceTo(next);
  }
}

bool SimulatedExecutor::RunOneStep() {
  if (StepOnce()) return true;
  Timestamp next = delay_.NextRelease();
  if (next == kNoDeadline) return false;
  clock_.AdvanceTo(next);
  return StepOnce();
}

void SimulatedExecutor::RunUntil(Timestamp t) {
  Drain(t);
  clock_.AdvanceTo(t);
  // Tasks released exactly at t by the final advance.
  Drain(t);
}

void SimulatedExecutor::RunUntilQuiescent() {
  Drain(kNoDeadline);
}

}  // namespace strip
