#ifndef STRIP_TXN_TRANSACTION_H_
#define STRIP_TXN_TRANSACTION_H_

#include <cstdint>

#include "strip/common/clock.h"
#include "strip/obs/trace_context.h"
#include "strip/txn/txn_log.h"

namespace strip {

enum class TxnState {
  kActive,
  kCommitted,
  kAborted,
};

const char* TxnStateName(TxnState s);

/// A transaction: a unit of atomicity and isolation. Every transaction is
/// contained within exactly one task (§4.4); a task may run several
/// transactions in sequence.
///
/// `priority` is the age used by wait-die deadlock avoidance (smaller =
/// older = higher priority). It defaults to the id; a transaction
/// RESTARTED after dying keeps its original priority, the classic wait-die
/// ingredient that guarantees progress.
class Transaction {
 public:
  explicit Transaction(uint64_t id, Timestamp start_time,
                       uint64_t priority = 0)
      : id_(id), priority_(priority == 0 ? id : priority),
        start_time_(start_time) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  uint64_t priority() const { return priority_; }
  TxnState state() const { return state_; }
  Timestamp start_time() const { return start_time_; }

  /// Valid only after commit; the time used to stamp `commit_time` columns
  /// of bound tables (§2).
  Timestamp commit_time() const { return commit_time_; }

  /// When the data this transaction applies entered the system (feed
  /// arrival). Defaults to start_time; feed handlers and trace replays set
  /// it to the record's source timestamp. The staleness probes measure
  /// rule-firing commits against this.
  Timestamp arrival_time() const {
    return arrival_time_ >= 0 ? arrival_time_ : start_time_;
  }
  void set_arrival_time(Timestamp t) { arrival_time_ = t; }

  TxnLog& log() { return log_; }
  const TxnLog& log() const { return log_; }

  bool active() const { return state_ == TxnState::kActive; }

  /// State transitions are driven by the Database engine.
  void MarkCommitted(Timestamp commit_time) {
    state_ = TxnState::kCommitted;
    commit_time_ = commit_time;
  }
  void MarkAborted() { state_ = TxnState::kAborted; }

  // --- lock-manager bookkeeping ----------------------------------------
  // Bitmask of lock-table shards this transaction holds locks in, so
  // ReleaseAll visits only those shards. Maintained by LockManager on the
  // transaction's own thread (a transaction never acquires from two
  // threads at once), so plain fields suffice.
  uint32_t lock_shard_mask() const { return lock_shard_mask_; }
  void AddLockShard(size_t shard) {
    lock_shard_mask_ |= (1u << shard);
  }
  void ClearLockShards() { lock_shard_mask_ = 0; }

  /// Ordinal of the next lock Acquire this transaction issues. The chaos
  /// fault injector keys injected wait-die deaths on (txn id, this), so a
  /// transaction's fate at each acquire point is a pure function of the
  /// seed. Same threading contract as the shard mask above.
  uint64_t NextAcquireSeq() { return next_acquire_seq_++; }

  // --- causal tracing / cost attribution --------------------------------
  // Same single-thread contract as the shard mask: written by the code
  // running the transaction on its own thread, so plain fields suffice.
  /// Trace context of the work this transaction performs (zero trace id =
  /// untraced, e.g. ad-hoc SQL).
  const TraceContext& trace() const { return trace_; }
  void set_trace(const TraceContext& t) { trace_ = t; }

  /// Micros this transaction spent blocked inside LockManager::Acquire
  /// (accumulated across acquires; survives into the post-abort autopsy).
  Timestamp lock_wait_micros() const { return lock_wait_micros_; }
  void AddLockWaitMicros(Timestamp us) {
    lock_wait_micros_ += us;
    if (lock_wait_sink_ != nullptr) *lock_wait_sink_ += us;
  }

  /// Optional sink mirroring lock waits into a longer-lived accumulator
  /// (the owning task's lock_wait_micros). The transaction is destroyed
  /// inside Commit/Abort, so waits incurred by commit-time event checking
  /// would otherwise be unattributable; the sink must outlive the commit.
  void set_lock_wait_sink(Timestamp* sink) { lock_wait_sink_ = sink; }

 private:
  uint64_t id_;
  uint64_t priority_;
  TxnState state_ = TxnState::kActive;
  Timestamp start_time_;
  Timestamp commit_time_ = 0;
  Timestamp arrival_time_ = -1;  // -1: defaults to start_time_
  uint32_t lock_shard_mask_ = 0;
  uint64_t next_acquire_seq_ = 0;
  TraceContext trace_;
  Timestamp lock_wait_micros_ = 0;
  Timestamp* lock_wait_sink_ = nullptr;
  TxnLog log_;
};

inline const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive: return "active";
    case TxnState::kCommitted: return "committed";
    case TxnState::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace strip

#endif  // STRIP_TXN_TRANSACTION_H_
