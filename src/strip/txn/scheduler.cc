#include "strip/txn/scheduler.h"

namespace strip {

const char* SchedulingPolicyName(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFifo: return "fifo";
    case SchedulingPolicy::kEarliestDeadlineFirst: return "edf";
    case SchedulingPolicy::kValueDensityFirst: return "value-density";
  }
  return "?";
}

bool ScheduledBefore(SchedulingPolicy policy, const TaskControlBlock& a,
                     uint64_t a_seq, const TaskControlBlock& b,
                     uint64_t b_seq) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return a_seq < b_seq;
    case SchedulingPolicy::kEarliestDeadlineFirst:
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a_seq < b_seq;
    case SchedulingPolicy::kValueDensityFirst:
      if (a.value != b.value) return a.value > b.value;
      return a_seq < b_seq;
  }
  return a_seq < b_seq;
}

}  // namespace strip
