#ifndef STRIP_TXN_SCHEDULER_H_
#define STRIP_TXN_SCHEDULER_H_

#include <string>

#include "strip/txn/task.h"

namespace strip {

/// Ready-queue ordering policies. STRIP provides standard real-time
/// scheduling algorithms such as earliest-deadline and value-density first
/// (§6.2, [Ade96]).
enum class SchedulingPolicy {
  /// First-come first-served in release order.
  kFifo,
  /// Earliest deadline first; ties broken by arrival.
  kEarliestDeadlineFirst,
  /// Highest value density first. Without per-task cost estimates the
  /// density denominator is 1, i.e. highest value first; ties by arrival.
  kValueDensityFirst,
};

const char* SchedulingPolicyName(SchedulingPolicy p);

/// True iff `a` should run before `b` under `policy`. `a_seq` / `b_seq` are
/// arrival sequence numbers used for FIFO order and tie-breaking.
bool ScheduledBefore(SchedulingPolicy policy, const TaskControlBlock& a,
                     uint64_t a_seq, const TaskControlBlock& b,
                     uint64_t b_seq);

}  // namespace strip

#endif  // STRIP_TXN_SCHEDULER_H_
