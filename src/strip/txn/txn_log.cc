#include "strip/txn/txn_log.h"

#include "strip/storage/table.h"

namespace strip {

Status TxnLog::Undo() {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const LogEntry& e = *it;
    switch (e.op) {
      case LogOp::kInsert: {
        if (RowHandle row = e.table->FindRow(e.row_id)) {
          e.table->Erase(row);
        }
        break;
      }
      case LogOp::kDelete: {
        auto res = e.table->ResurrectRow(e.row_id, e.old_rec);
        if (!res.ok()) return res.status();
        break;
      }
      case LogOp::kUpdate: {
        RowHandle row = e.table->FindRow(e.row_id);
        if (!row) {
          return Status::Internal("undo: updated row vanished");
        }
        STRIP_RETURN_IF_ERROR(e.table->Update(row, e.old_rec));
        break;
      }
    }
  }
  entries_.clear();
  return Status::OK();
}

}  // namespace strip
