#include "strip/txn/task_queues.h"

#include <algorithm>

namespace strip {

void DelayQueue::Push(TaskPtr task) { heap_.push(std::move(task)); }

Timestamp DelayQueue::NextRelease() const {
  return heap_.empty() ? kNoDeadline : heap_.top()->release_time;
}

std::vector<TaskPtr> DelayQueue::PopReleased(Timestamp now) {
  std::vector<TaskPtr> out;
  while (!heap_.empty() && heap_.top()->release_time <= now) {
    out.push_back(heap_.top());
    heap_.pop();
  }
  return out;
}

namespace {

struct EntryBefore {
  SchedulingPolicy policy;
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    // std::push_heap keeps the *largest* element first, so invert.
    return ScheduledBefore(policy, *b.task, b.seq, *a.task, a.seq);
  }
};

}  // namespace

void ReadyQueue::Push(TaskPtr task) {
  entries_.push_back(Entry{std::move(task), next_seq_++});
  std::push_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
}

TaskPtr ReadyQueue::Pop() {
  if (entries_.empty()) return nullptr;
  std::pop_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
  TaskPtr t = std::move(entries_.back().task);
  entries_.pop_back();
  return t;
}

size_t ReadyQueue::PopBatch(size_t max, std::vector<TaskPtr>& out) {
  size_t taken = 0;
  while (taken < max && !entries_.empty()) {
    std::pop_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
    out.push_back(std::move(entries_.back().task));
    entries_.pop_back();
    ++taken;
  }
  return taken;
}

}  // namespace strip
