#include "strip/txn/task_queues.h"

#include <algorithm>

namespace strip {

namespace {

struct ReleaseLater {
  bool operator()(const TaskPtr& a, const TaskPtr& b) const {
    // std::push_heap keeps the *largest* element first, so invert.
    return a->release_time > b->release_time;
  }
};

}  // namespace

void DelayQueue::Push(TaskPtr task) {
  heap_.push_back(std::move(task));
  std::push_heap(heap_.begin(), heap_.end(), ReleaseLater{});
}

Timestamp DelayQueue::NextRelease() const {
  return heap_.empty() ? kNoDeadline : heap_.front()->release_time;
}

std::vector<TaskPtr> DelayQueue::PopReleased(Timestamp now) {
  std::vector<TaskPtr> out;
  while (!heap_.empty() && heap_.front()->release_time <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), ReleaseLater{});
    out.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  return out;
}

void DelayQueue::ForEach(
    const std::function<void(const TaskPtr&)>& fn) const {
  for (const TaskPtr& t : heap_) fn(t);
}

namespace {

struct EntryBefore {
  SchedulingPolicy policy;
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    // std::push_heap keeps the *largest* element first, so invert.
    return ScheduledBefore(policy, *b.task, b.seq, *a.task, a.seq);
  }
};

}  // namespace

void ReadyQueue::Push(TaskPtr task) {
  entries_.push_back(Entry{std::move(task), next_seq_++});
  std::push_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
}

TaskPtr ReadyQueue::Pop() {
  if (entries_.empty()) return nullptr;
  std::pop_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
  TaskPtr t = std::move(entries_.back().task);
  entries_.pop_back();
  return t;
}

size_t ReadyQueue::PopBatch(size_t max, std::vector<TaskPtr>& out) {
  size_t taken = 0;
  while (taken < max && !entries_.empty()) {
    std::pop_heap(entries_.begin(), entries_.end(), EntryBefore{policy_});
    out.push_back(std::move(entries_.back().task));
    entries_.pop_back();
    ++taken;
  }
  return taken;
}

void ReadyQueue::ForEach(
    const std::function<void(const TaskPtr&)>& fn) const {
  for (const Entry& e : entries_) fn(e.task);
}

}  // namespace strip
