#ifndef STRIP_TXN_TXN_LOG_H_
#define STRIP_TXN_TXN_LOG_H_

#include <cstdint>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/record.h"

namespace strip {

class Table;

/// Kind of logged data operation.
enum class LogOp {
  kInsert,
  kDelete,
  kUpdate,
};

/// One logged change. The log serves two purposes: transaction rollback,
/// and end-of-transaction rule event detection / transition-table
/// construction (§6.3). STRIP does not reduce the log to net effect — an
/// insert followed by a delete of the same tuple yields two entries (§2).
struct LogEntry {
  LogOp op;
  Table* table;
  uint64_t row_id;
  RecordRef old_rec;   // delete / update: the superseded version
  RecordRef new_rec;   // insert / update: the installed version
  int execute_order;   // 1-based sequence of the change within its txn (§2)
};

/// Ordered list of a transaction's changes.
class TxnLog {
 public:
  void Append(LogOp op, Table* table, uint64_t row_id, RecordRef old_rec,
              RecordRef new_rec) {
    entries_.push_back(LogEntry{op, table, row_id, std::move(old_rec),
                                std::move(new_rec),
                                static_cast<int>(entries_.size()) + 1});
  }

  const std::vector<LogEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  /// Reverses every logged change against its table, newest first.
  /// The tables must not have been touched by other transactions in between
  /// (guaranteed by two-phase locking).
  Status Undo();

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace strip

#endif  // STRIP_TXN_TXN_LOG_H_
