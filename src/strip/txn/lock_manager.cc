#include "strip/txn/lock_manager.h"

#include <algorithm>

#include "strip/common/clock.h"
#include "strip/common/string_util.h"
#include "strip/testing/fault_injector.h"
#include "strip/txn/transaction.h"

namespace strip {

bool LockManager::Compatible(const LockState& ls, const Transaction* txn,
                             LockMode mode) {
  for (const Holder& h : ls.holders) {
    if (h.txn == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(Transaction* txn, const LockKey& key,
                            LockMode mode) {
  // Chaos hook: an injected wait-die death, before any lock-table state is
  // touched — the victim txn holds exactly what it held, and the caller's
  // abort path must release it all (the residue invariant checks that).
  if (injector_ != nullptr &&
      injector_->ShouldAbortLockAcquire(txn->id(), txn->NextAcquireSeq())) {
    stats_.wait_die_aborts.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted(StrFormat(
        "wait-die (injected): txn %llu dies acquiring a lock",
        static_cast<unsigned long long>(txn->id())));
  }
  const size_t shard_index = ShardOf(key);
  Shard& shard = shards_[shard_index];
  std::unique_lock<std::mutex> lk(shard.mu);
  LockState* ls = &shard.locks.try_emplace(key).first->second;

  // Re-entrancy / upgrade bookkeeping: find our existing holder entry.
  auto self = std::find_if(ls->holders.begin(), ls->holders.end(),
                           [&](const Holder& h) { return h.txn == txn; });
  if (self != ls->holders.end()) {
    if (self->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      stats_.acquires.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();  // already strong enough
    }
    // Upgrade request: wait until we are the only holder.
  }

  bool waited = false;
  StopWatch blocked;
  while (!Compatible(*ls, txn, mode)) {
    // Wait-die: wait only if older than every conflicting holder. Age is
    // the (priority, id) pair; restarted transactions keep their original
    // priority so they eventually win (see Transaction::priority()).
    for (const Holder& h : ls->holders) {
      if (h.txn == txn) continue;
      bool conflicts =
          mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
      bool holder_older =
          h.txn->priority() < txn->priority() ||
          (h.txn->priority() == txn->priority() && h.txn->id() < txn->id());
      if (conflicts && holder_older) {
        stats_.wait_die_aborts.fetch_add(1, std::memory_order_relaxed);
        if (waited) {
          Timestamp us = static_cast<Timestamp>(blocked.ElapsedMicros());
          stats_.wait_micros.fetch_add(static_cast<uint64_t>(us),
                                       std::memory_order_relaxed);
          txn->AddLockWaitMicros(us);
        }
        if (ls->holders.empty() && ls->waiters == 0) {
          // Erase by key: the insertion iterator may have been invalidated
          // by a rehash while this thread was blocked on the condvar
          // (pointers to mapped values are stable; iterators are not).
          shard.locks.erase(key);
        }
        return Status::Aborted(StrFormat(
            "wait-die: txn %llu dies waiting for older txn %llu",
            static_cast<unsigned long long>(txn->id()),
            static_cast<unsigned long long>(h.txn->id())));
      }
    }
    if (!waited) {
      waited = true;
      blocked.Restart();
      stats_.waits.fetch_add(1, std::memory_order_relaxed);
    }
    ++ls->waiters;
    shard.cv.wait(lk);
    --ls->waiters;
    // LockState reference stays valid: entries are only erased when both
    // holders and waiters are gone.
  }
  if (waited) {
    Timestamp us = static_cast<Timestamp>(blocked.ElapsedMicros());
    stats_.wait_micros.fetch_add(static_cast<uint64_t>(us),
                                 std::memory_order_relaxed);
    txn->AddLockWaitMicros(us);
  }

  // Granted.
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  self = std::find_if(ls->holders.begin(), ls->holders.end(),
                      [&](const Holder& h) { return h.txn == txn; });
  if (self != ls->holders.end()) {
    self->mode = LockMode::kExclusive;  // successful upgrade
  } else {
    ls->holders.push_back(Holder{txn, mode});
    shard.held[txn].push_back(key);
    txn->AddLockShard(shard_index);
  }
  return Status::OK();
}

void LockManager::ReleaseAll(Transaction* txn) {
  uint32_t mask = txn->lock_shard_mask();
  if (mask == 0) return;
  for (size_t s = 0; s < kNumShards; ++s) {
    if ((mask & (1u << s)) == 0) continue;
    Shard& shard = shards_[s];
    bool wake = false;
    {
      std::lock_guard<std::mutex> lk(shard.mu);
      auto it = shard.held.find(txn);
      if (it == shard.held.end()) continue;
      for (const LockKey& key : it->second) {
        auto ls_it = shard.locks.find(key);
        if (ls_it == shard.locks.end()) continue;
        LockState& ls = ls_it->second;
        ls.holders.erase(
            std::remove_if(ls.holders.begin(), ls.holders.end(),
                           [&](const Holder& h) { return h.txn == txn; }),
            ls.holders.end());
        if (ls.waiters > 0) wake = true;
        if (ls.holders.empty() && ls.waiters == 0) {
          shard.locks.erase(ls_it);
        }
      }
      shard.held.erase(it);
    }
    if (wake) shard.cv.notify_all();
  }
  txn->ClearLockShards();
}

size_t LockManager::NumLockedKeys() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [key, ls] : shard.locks) {
      if (!ls.holders.empty()) ++n;
    }
  }
  return n;
}

LockManager::Audit LockManager::AuditState() const {
  Audit a;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [key, ls] : shard.locks) {
      if (!ls.holders.empty()) ++a.locked_keys;
      a.holder_entries += ls.holders.size();
      a.waiters += static_cast<size_t>(ls.waiters);
    }
    a.tracked_txns += shard.held.size();
  }
  return a;
}

size_t LockManager::NumHeld(const Transaction* txn) const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.held.find(txn);
    if (it != shard.held.end()) n += it->second.size();
  }
  return n;
}

}  // namespace strip
