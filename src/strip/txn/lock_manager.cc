#include "strip/txn/lock_manager.h"

#include <algorithm>

#include "strip/common/string_util.h"
#include "strip/txn/transaction.h"

namespace strip {

bool LockManager::Compatible(const LockState& ls, const Transaction* txn,
                             LockMode mode) {
  for (const Holder& h : ls.holders) {
    if (h.txn == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(Transaction* txn, const LockKey& key,
                            LockMode mode) {
  std::unique_lock<std::mutex> lk(mu_);
  LockState& ls = locks_[key];

  // Re-entrancy / upgrade bookkeeping: find our existing holder entry.
  auto self = std::find_if(ls.holders.begin(), ls.holders.end(),
                           [&](const Holder& h) { return h.txn == txn; });
  if (self != ls.holders.end()) {
    if (self->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already strong enough
    }
    // Upgrade request: wait until we are the only holder.
  }

  while (!Compatible(ls, txn, mode)) {
    // Wait-die: wait only if older than every conflicting holder. Age is
    // the (priority, id) pair; restarted transactions keep their original
    // priority so they eventually win (see Transaction::priority()).
    for (const Holder& h : ls.holders) {
      if (h.txn == txn) continue;
      bool conflicts =
          mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
      bool holder_older =
          h.txn->priority() < txn->priority() ||
          (h.txn->priority() == txn->priority() && h.txn->id() < txn->id());
      if (conflicts && holder_older) {
        return Status::Aborted(StrFormat(
            "wait-die: txn %llu dies waiting for older txn %llu",
            static_cast<unsigned long long>(txn->id()),
            static_cast<unsigned long long>(h.txn->id())));
      }
    }
    ++ls.waiters;
    cv_.wait(lk);
    --ls.waiters;
    // LockState reference stays valid: entries are only erased when both
    // holders and waiters are gone.
  }

  // Granted.
  self = std::find_if(ls.holders.begin(), ls.holders.end(),
                      [&](const Holder& h) { return h.txn == txn; });
  if (self != ls.holders.end()) {
    self->mode = LockMode::kExclusive;  // successful upgrade
  } else {
    ls.holders.push_back(Holder{txn, mode});
    held_[txn].push_back(key);
  }
  return Status::OK();
}

void LockManager::ReleaseAll(Transaction* txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const LockKey& key : it->second) {
    auto ls_it = locks_.find(key);
    if (ls_it == locks_.end()) continue;
    LockState& ls = ls_it->second;
    ls.holders.erase(
        std::remove_if(ls.holders.begin(), ls.holders.end(),
                       [&](const Holder& h) { return h.txn == txn; }),
        ls.holders.end());
    if (ls.holders.empty() && ls.waiters == 0) {
      locks_.erase(ls_it);
    }
  }
  held_.erase(it);
  cv_.notify_all();
}

size_t LockManager::NumLockedKeys() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [key, ls] : locks_) {
    if (!ls.holders.empty()) ++n;
  }
  return n;
}

size_t LockManager::NumHeld(const Transaction* txn) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace strip
