#ifndef STRIP_TXN_TASK_QUEUES_H_
#define STRIP_TXN_TASK_QUEUES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "strip/common/clock.h"
#include "strip/txn/scheduler.h"
#include "strip/txn/task.h"

namespace strip {

/// Holds tasks whose release time is in the future (§6.2 Figure 15); tasks
/// created by rules with `after` delays sit here until released. Not
/// internally synchronized — the owning executor serializes access.
///
/// Kept as an explicit binary heap (std::push_heap / pop_heap over a
/// vector) rather than std::priority_queue so the invariant checker can
/// walk the queued tasks in place (ForEach) — priority_queue hides its
/// container.
class DelayQueue {
 public:
  void Push(TaskPtr task);

  /// Earliest release time among queued tasks; kNoDeadline when empty.
  Timestamp NextRelease() const;

  /// Removes and returns every task with release_time <= now, in release
  /// order.
  std::vector<TaskPtr> PopReleased(Timestamp now);

  /// Visits every queued task in unspecified (heap) order — audit API for
  /// the chaos invariant checker.
  void ForEach(const std::function<void(const TaskPtr&)>& fn) const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  // Kept as a min-heap on release_time via std::*_heap.
  std::vector<TaskPtr> heap_;
};

/// Tasks eligible to run now, ordered by the scheduling policy. Not
/// internally synchronized.
class ReadyQueue {
 public:
  explicit ReadyQueue(SchedulingPolicy policy) : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }

  void Push(TaskPtr task);

  /// Removes and returns the highest-priority task; nullptr when empty.
  TaskPtr Pop();

  /// Pops up to `max` tasks in policy order into `out` (appending);
  /// returns how many were taken. Lets threaded workers amortize one
  /// queue-lock acquisition over a whole dequeue batch.
  size_t PopBatch(size_t max, std::vector<TaskPtr>& out);

  /// Visits every queued task in unspecified (heap) order — audit API for
  /// the chaos invariant checker.
  void ForEach(const std::function<void(const TaskPtr&)>& fn) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    TaskPtr task;
    uint64_t seq;
  };

  SchedulingPolicy policy_;
  uint64_t next_seq_ = 0;
  // Kept as a heap via ScheduledBefore.
  std::vector<Entry> entries_;
};

}  // namespace strip

#endif  // STRIP_TXN_TASK_QUEUES_H_
