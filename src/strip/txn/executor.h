#ifndef STRIP_TXN_EXECUTOR_H_
#define STRIP_TXN_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "strip/common/clock.h"
#include "strip/txn/task.h"

namespace strip {

class Histogram;
class RuleCostTracker;
class TraceRing;

/// Aggregate execution counters. Atomics so threaded-executor workers can
/// fold task costs in without serializing on a shared mutex; the simulated
/// executor (single-threaded) pays nothing extra for them.
struct ExecutorStats {
  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> tasks_failed{0};   // task body returned non-OK
  std::atomic<Timestamp> busy_micros{0};   // sum of task execution costs
};

/// Optional observability hooks shared by both executors: a lifecycle
/// trace ring and latency histograms (see src/strip/obs/). All pointers
/// may be null (hooks off); the hot paths pay one branch each. Install
/// via Executor::set_obs BEFORE the first Submit — the executors read the
/// struct without further synchronization.
struct ExecutorObs {
  TraceRing* trace = nullptr;
  Histogram* queue_wait_us = nullptr;  // max(enqueue, release) -> start
  Histogram* run_us = nullptr;         // task body execution cost
  /// Per-rule latency breakdown + cost counters, fed at task finish for
  /// tasks that carry a function name (see src/strip/obs/rule_cost.h).
  RuleCostTracker* rule_cost = nullptr;
};

/// Called after each task finishes (stats collection in benchmarks).
using TaskObserver = std::function<void(const TaskControlBlock&)>;

/// Abstract task execution service (§6.2 Figure 15): accepts tasks, parks
/// future-released ones in a delay queue, orders eligible ones in a ready
/// queue, runs them. Two implementations:
///   - SimulatedExecutor: deterministic discrete-event simulation on a
///     virtual clock (benchmarks; see DESIGN.md §4),
///   - ThreadedExecutor: a real process/thread pool on the wall clock.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueues a task. Tasks with release_time > Now() wait in the delay
  /// queue; the rest become ready immediately.
  virtual void Submit(TaskPtr task) = 0;

  /// Current time on this executor's clock.
  virtual Timestamp Now() const = 0;

  virtual const ExecutorStats& stats() const = 0;

  /// Installs a per-task completion hook (may be empty).
  virtual void set_task_observer(TaskObserver observer) = 0;

  /// Installs the observability hooks. Call before the first Submit (the
  /// executors read the struct from worker threads without locking).
  void set_obs(const ExecutorObs& obs) { obs_ = obs; }
  const ExecutorObs& obs() const { return obs_; }

 protected:
  ExecutorObs obs_;
};

/// Runs a task body, records timing into the TCB, updates `stats`, and
/// feeds the obs hooks (start trace event, queue-wait and run-time
/// histograms). Shared by both executors. `now` is the executor-clock
/// start time. Returns the execution cost in micros (fixed cost if the
/// task set one). The caller records the finish event after stamping
/// finish_time.
Timestamp ExecuteTaskBody(TaskControlBlock& task, Timestamp now,
                          ExecutorStats& stats, const ExecutorObs& obs);

}  // namespace strip

#endif  // STRIP_TXN_EXECUTOR_H_
