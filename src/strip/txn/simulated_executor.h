#ifndef STRIP_TXN_SIMULATED_EXECUTOR_H_
#define STRIP_TXN_SIMULATED_EXECUTOR_H_

#include <functional>

#include "strip/common/clock.h"
#include "strip/txn/executor.h"
#include "strip/txn/task_queues.h"

namespace strip {

class FaultInjector;

/// Discrete-event, single-server executor on a virtual clock.
///
/// The paper replays a 30-minute market trace in real time; we instead
/// drive the identical computation under simulated time so runs are
/// deterministic and laptop-scale (DESIGN.md §4). Task bodies are really
/// executed and their wall-clock cost measured; by default the virtual
/// clock advances by each task's measured (or fixed) cost, modeling a
/// single CPU — so queueing, delay windows, and utilization behave like the
/// real system's.
class SimulatedExecutor final : public Executor {
 public:
  explicit SimulatedExecutor(SchedulingPolicy policy = SchedulingPolicy::kFifo,
                             bool advance_clock_by_cost = true)
      : ready_(policy), advance_clock_by_cost_(advance_clock_by_cost) {}

  void Submit(TaskPtr task) override;
  Timestamp Now() const override { return clock_.Now(); }
  const ExecutorStats& stats() const override { return stats_; }
  void set_task_observer(TaskObserver observer) override {
    observer_ = std::move(observer);
  }

  VirtualClock& clock() { return clock_; }

  /// Runs every task that becomes eligible at or before virtual time `t`,
  /// including tasks those tasks spawn, then advances the clock to `t`.
  void RunUntil(Timestamp t);

  /// Runs until both queues are empty (tasks may spawn tasks; all delays
  /// are honored by advancing the clock).
  void RunUntilQuiescent();

  /// Runs exactly one task (advancing the clock to its release first if
  /// the ready queue was empty); returns false — running nothing — once
  /// both queues are empty. The chaos harness drives the executor with
  /// this so it can run the invariant checker between steps, when no task
  /// is mid-flight.
  bool RunOneStep();

  /// Installs a chaos fault injector (testing/): Submit may assign
  /// deterministic task costs and late timer promotions, and each step may
  /// stall in virtual time before running its task. Install before the
  /// first Submit; pass nullptr to remove.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Visits every queued (delayed or ready, not started) task — audit API
  /// for the chaos invariant checker. Call only between steps.
  void ForEachQueuedTask(const std::function<void(const TaskPtr&)>& fn) const {
    delay_.ForEach(fn);
    ready_.ForEach(fn);
  }

  size_t num_delayed() const { return delay_.size(); }
  size_t num_ready() const { return ready_.size(); }

 private:
  /// Runs ready tasks and releases delayed ones while anything is eligible
  /// at a virtual time <= `horizon`.
  void Drain(Timestamp horizon);

  /// Moves due delayed tasks to the ready queue, then runs the best ready
  /// task if there is one. Shared step body of Drain and RunOneStep.
  bool StepOnce();

  VirtualClock clock_;
  DelayQueue delay_;
  ReadyQueue ready_;
  bool advance_clock_by_cost_;
  ExecutorStats stats_;
  TaskObserver observer_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace strip

#endif  // STRIP_TXN_SIMULATED_EXECUTOR_H_
