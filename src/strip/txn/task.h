#ifndef STRIP_TXN_TASK_H_
#define STRIP_TXN_TASK_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/spin_lock.h"
#include "strip/common/status.h"
#include "strip/obs/trace_context.h"
#include "strip/storage/bound_table_set.h"
#include "strip/storage/value.h"

namespace strip {

class TaskControlBlock;

/// The body of a task. Receives its own TCB so rule-action functions can
/// read their bound tables.
using TaskFn = std::function<Status(TaskControlBlock&)>;

constexpr Timestamp kNoDeadline = std::numeric_limits<Timestamp>::max();

/// Task control block (§6.2-6.3): the unit of scheduling in STRIP. Tasks
/// flow through the delay queue (future release time), ready queue, and a
/// process pool. Rule-triggered tasks additionally carry bound tables, the
/// user function name, and — for unique transactions — the unique key the
/// rule system hashes on.
class TaskControlBlock {
 public:
  explicit TaskControlBlock(uint64_t id) : id_(id) {}

  TaskControlBlock(const TaskControlBlock&) = delete;
  TaskControlBlock& operator=(const TaskControlBlock&) = delete;

  uint64_t id() const { return id_; }

  // --- scheduling parameters -------------------------------------------
  Timestamp release_time = 0;      // earliest start (delay window, §2)
  Timestamp deadline = kNoDeadline;  // for earliest-deadline-first
  double value = 1.0;                // for value-density-first

  // --- rule-task payload ------------------------------------------------
  /// User function this task runs ("" for plain application tasks).
  std::string function_name;
  /// Bound tables visible to the task (§6.3); may be empty.
  BoundTableSet bound_tables;
  /// Values of the unique columns for `unique on` tasks (empty vector for
  /// coarse `unique`); meaningless when `is_unique` is false.
  std::vector<Value> unique_key;
  bool is_unique = false;

  /// Work to perform; set by the engine (runs the user function inside a
  /// fresh transaction) or directly by application code.
  TaskFn work;

  // --- execution bookkeeping --------------------------------------------
  /// Guards the started flag + bound-table merges: once a unique task has
  /// started, its bound tables are fixed and merges must fail (§2).
  SpinLock merge_lock;
  bool started = false;

  /// If >= 0, the simulated executor advances virtual time by this many
  /// micros instead of the measured execution time (deterministic tests).
  Timestamp fixed_cost_micros = -1;

  // --- staleness probe (rule-action tasks; see src/strip/obs/) ----------
  /// Feed-arrival times of the oldest / newest base-table change batched
  /// into this task (-1 until the creating firing stamps them). Merges of
  /// later firings update them under merge_lock, so at commit the task
  /// knows the age of the oldest change it consumed — the paper's
  /// staleness cost of batching (§7).
  Timestamp oldest_change_time = -1;
  Timestamp newest_change_time = -1;
  /// Rule firings folded into this task: 1 at creation, +1 per merge.
  /// Guarded by merge_lock, like the bound tables it counts.
  uint32_t batched_firings = 1;
  /// Stamped by the engine when the action transaction commits: age of the
  /// oldest batched change at commit time (-1 = never committed / not a
  /// rule action).
  Timestamp commit_staleness_micros = -1;

  // --- causal tracing (see src/strip/obs/trace_context.h) ---------------
  /// Trace context this task runs under: the feed importer stamps a root
  /// context per record, rule firings mint children of the triggering
  /// transaction's context, and action transactions mint children of this.
  /// Written once before Submit; read-only afterwards.
  TraceContext trace;
  /// Trace ids of firings merged into this queued unique task after
  /// creation (§6.3): the causal links that would otherwise vanish when
  /// MergeOrCreate folds a firing away. Guarded by merge_lock.
  std::vector<uint64_t> merged_parent_traces;

  // --- per-rule cost attribution ----------------------------------------
  // Plain fields: each is written only by the single thread currently
  // executing the task (executors hand a task to exactly one worker) and
  // read after finish, same contract as start_time/cpu_micros below.
  /// Micros the task's transactions spent blocked in lock acquisition.
  Timestamp lock_wait_micros = 0;
  /// Wait-die restarts the task's action transactions suffered.
  uint64_t lock_restarts = 0;
  /// Rows visited by batched table scans on behalf of this task.
  uint64_t rows_scanned = 0;
  /// Group deltas netted away by FoldGroupDeltas (input minus output
  /// deltas), credited by the view-maintenance functions.
  uint64_t deltas_folded = 0;

  // Filled in by the executor.
  Timestamp enqueue_time = 0;
  Timestamp start_time = 0;    // when execution began (executor clock)
  Timestamp finish_time = 0;
  Timestamp cpu_micros = 0;    // measured (or fixed) execution cost
  int64_t cpu_nanos = 0;       // measured cost at full clock resolution
  Status result;

  /// Marks the task started; returns false if it had already started.
  /// Called by executors under merge_lock before running `work`.
  bool TryStart() {
    SpinLockGuard g(merge_lock);
    if (started) return false;
    started = true;
    return true;
  }

 private:
  uint64_t id_;
};

using TaskPtr = std::shared_ptr<TaskControlBlock>;

}  // namespace strip

#endif  // STRIP_TXN_TASK_H_
