#ifndef STRIP_TXN_LOCK_MANAGER_H_
#define STRIP_TXN_LOCK_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "strip/common/status.h"

namespace strip {

class FaultInjector;
class Table;
class Transaction;

enum class LockMode {
  kShared,
  kExclusive,
};

/// What a lock covers: a whole table or one row.
///
/// The whole-table key uses a reserved sentinel row id rather than
/// aliasing a real id: table row ids are assigned sequentially from 1
/// and can never reach ~0, so WholeTable(t) collides with no ForRow(t, n)
/// — including ForRow(t, 0), which once aliased it (a footgun the lock
/// manager tests used to have to tiptoe around).
struct LockKey {
  /// Sentinel row id naming the whole table. Unreachable by real rows
  /// (ids count up from 1).
  static constexpr uint64_t kWholeTableRowId = ~0ull;

  const Table* table = nullptr;
  uint64_t row_id = 0;

  static LockKey WholeTable(const Table* t) {
    return LockKey{t, kWholeTableRowId};
  }
  static LockKey ForRow(const Table* t, uint64_t row) {
    return LockKey{t, row};
  }

  friend bool operator==(const LockKey& a, const LockKey& b) = default;
};

/// splitmix64 finalizer: a full-avalanche 64-bit mix. Sequential row ids
/// (the common case: a burst of updates walking a table) land in distinct
/// shards and hash buckets instead of clustering.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    return static_cast<size_t>(
        Mix64(reinterpret_cast<uintptr_t>(k.table) ^ Mix64(k.row_id)));
  }
};

/// Aggregate lock-manager counters (all relaxed atomics; written on the
/// acquire/release hot paths, read by benchmarks and diagnostics).
struct LockManagerStats {
  std::atomic<uint64_t> acquires{0};        // granted requests (incl. re-entrant)
  std::atomic<uint64_t> waits{0};           // requests that blocked at least once
  std::atomic<uint64_t> wait_die_aborts{0}; // younger requesters killed
  std::atomic<uint64_t> wait_micros{0};     // total time spent blocked
};

/// Strict two-phase locking with wait-die deadlock avoidance: a requester
/// OLDER (smaller txn id) than every conflicting holder waits; a younger
/// requester is killed immediately (Status::Aborted) and should be retried
/// by its task with the same id or a fresh one.
///
/// Lock upgrades (S held, X requested by the sole holder) are granted in
/// place. Locks are held until ReleaseAll at commit/abort (strict 2PL) —
/// notably, locks are NOT held across the triggering transaction and its
/// rule-action transaction (§6.1), which is why bound tables pin record
/// versions instead.
///
/// The lock table is partitioned into kNumShards independent shards (hash
/// of LockKey), each with its own mutex, condition variable, lock map, and
/// per-transaction held-key lists. Wait-die only ever examines the holders
/// of a single key, so per-shard synchronization preserves its semantics
/// exactly; transactions record which shards they touched (a bitmask on the
/// Transaction) so ReleaseAll visits only those.
class LockManager {
 public:
  /// Power of two; a bit in Transaction's 32-bit shard mask per shard.
  static constexpr size_t kNumShards = 16;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Shard a key belongs to (exposed for the distribution sanity tests).
  static size_t ShardOf(const LockKey& key) {
    return LockKeyHash{}(key) & (kNumShards - 1);
  }

  /// Acquires (possibly blocking) the lock for `txn`. Re-entrant: already
  /// holding an equal-or-stronger lock on the key is a no-op.
  Status Acquire(Transaction* txn, const LockKey& key, LockMode mode);

  /// Releases every lock `txn` holds and wakes waiters on the shards it
  /// touched.
  void ReleaseAll(Transaction* txn);

  /// Number of keys with at least one holder (diagnostics / tests).
  size_t NumLockedKeys() const;

  /// Number of locks held by `txn`.
  size_t NumHeld(const Transaction* txn) const;

  /// Full-table audit for the invariant checker: at any point where no
  /// transaction is active, every field must be zero — any residue means a
  /// completed transaction leaked lock state.
  struct Audit {
    size_t locked_keys = 0;     // keys with >= 1 holder
    size_t holder_entries = 0;  // total (txn, key) holder pairs
    size_t tracked_txns = 0;    // txns present in any shard's held map
    size_t waiters = 0;         // requests blocked on a condvar
  };
  Audit AuditState() const;

  /// Installs a chaos fault injector (testing/): Acquire consults it and
  /// may die with an injected wait-die abort before touching the lock
  /// table. Pass nullptr to remove. Not synchronized — install before
  /// concurrent use, exactly like Executor::set_obs.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  const LockManagerStats& stats() const { return stats_; }

 private:
  struct Holder {
    Transaction* txn;
    LockMode mode;
  };
  struct LockState {
    std::vector<Holder> holders;
    int waiters = 0;
  };
  /// One lock-table partition. Padded to its own cache lines so shard
  /// mutexes don't false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LockKey, LockState, LockKeyHash> locks;
    std::unordered_map<const Transaction*, std::vector<LockKey>> held;
  };

  /// True iff `txn` can be granted `mode` given current holders.
  static bool Compatible(const LockState& ls, const Transaction* txn,
                         LockMode mode);

  std::array<Shard, kNumShards> shards_;
  LockManagerStats stats_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace strip

#endif  // STRIP_TXN_LOCK_MANAGER_H_
