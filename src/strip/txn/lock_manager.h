#ifndef STRIP_TXN_LOCK_MANAGER_H_
#define STRIP_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "strip/common/status.h"

namespace strip {

class Table;
class Transaction;

enum class LockMode {
  kShared,
  kExclusive,
};

/// What a lock covers: a whole table (row_id == 0) or one row.
struct LockKey {
  const Table* table = nullptr;
  uint64_t row_id = 0;

  static LockKey WholeTable(const Table* t) { return LockKey{t, 0}; }
  static LockKey ForRow(const Table* t, uint64_t row) {
    return LockKey{t, row};
  }

  friend bool operator==(const LockKey& a, const LockKey& b) = default;
};

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    return std::hash<const void*>()(k.table) * 1315423911u ^
           std::hash<uint64_t>()(k.row_id);
  }
};

/// Strict two-phase locking with wait-die deadlock avoidance: a requester
/// OLDER (smaller txn id) than every conflicting holder waits; a younger
/// requester is killed immediately (Status::Aborted) and should be retried
/// by its task with the same id or a fresh one.
///
/// Lock upgrades (S held, X requested by the sole holder) are granted in
/// place. Locks are held until ReleaseAll at commit/abort (strict 2PL) —
/// notably, locks are NOT held across the triggering transaction and its
/// rule-action transaction (§6.1), which is why bound tables pin record
/// versions instead.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (possibly blocking) the lock for `txn`. Re-entrant: already
  /// holding an equal-or-stronger lock on the key is a no-op.
  Status Acquire(Transaction* txn, const LockKey& key, LockMode mode);

  /// Releases every lock `txn` holds and wakes waiters.
  void ReleaseAll(Transaction* txn);

  /// Number of keys with at least one holder (diagnostics / tests).
  size_t NumLockedKeys() const;

  /// Number of locks held by `txn`.
  size_t NumHeld(const Transaction* txn) const;

 private:
  struct Holder {
    Transaction* txn;
    LockMode mode;
  };
  struct LockState {
    std::vector<Holder> holders;
    int waiters = 0;
  };

  /// True iff `txn` can be granted `mode` given current holders.
  static bool Compatible(const LockState& ls, const Transaction* txn,
                         LockMode mode);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockKey, LockState, LockKeyHash> locks_;
  std::unordered_map<const Transaction*, std::vector<LockKey>> held_;
};

}  // namespace strip

#endif  // STRIP_TXN_LOCK_MANAGER_H_
