#include "strip/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "strip/common/string_util.h"

namespace strip {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string h = host.empty() ? "0.0.0.0" : host;
  if (h == "localhost") h = "127.0.0.1";
  if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrFormat(
        "'%s' is not an IPv4 address (strip_server resolves no names)",
        host.c_str()));
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port,
                              int backlog, uint16_t* bound_port) {
  STRIP_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) return Errno("socket");
  int one = 1;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen");
  STRIP_RETURN_IF_ERROR(s.SetNonBlocking(true));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return s;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  STRIP_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) return Errno("socket");
  for (;;) {
    if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return Errno("connect");
  }
  STRIP_RETURN_IF_ERROR(SetNoDelay(s.fd()));
  return s;
}

Result<Socket> Socket::Accept() {
  for (;;) {
    int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd >= 0) {
      Socket s(fd);
      STRIP_RETURN_IF_ERROR(SetNoDelay(fd));
      return s;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket();  // nothing pending
    }
    return Errno("accept");
  }
}

Status Socket::SetNonBlocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::WriteAll(std::string_view data) {
  const char* p = data.data();
  size_t n = data.size();
  while (n > 0) {
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Socket::ReadFully(char* buf, size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd_, buf, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      return Status::FailedPrecondition(
          "peer closed the connection mid-message");
    }
    buf += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace strip
