#ifndef STRIP_NET_PROTOCOL_H_
#define STRIP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/feed/feed.h"
#include "strip/feed/framing.h"

namespace strip {

/// Payload encodings for each FrameType (DESIGN.md §2.6): the typed
/// request/response messages of the strip_server session protocol, built
/// on the tagged value encoding of wire v1 and the byteio primitives.
///
/// Every decoder is strict: it validates lengths against the remaining
/// bytes before allocating, rejects unknown enumerators, and requires the
/// payload to be fully consumed — a frame that passed its CRC can still be
/// nonsense (a buggy or hostile client), and nonsense must fail cleanly,
/// never crash or over-allocate.

/// Connection priority, declared at Hello. Under overload the server sheds
/// kLow sessions first (refusing new work, then the connection) while
/// kHigh keeps flowing — the scheduler's value-density idea applied at the
/// process boundary.
enum class SessionPriority : uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

const char* SessionPriorityName(SessionPriority p);

struct HelloRequest {
  uint8_t protocol_version = kFrameVersion;
  SessionPriority priority = SessionPriority::kNormal;
  std::string client_name;  // for logs / metrics; may be empty
};

struct HelloResponse {
  uint64_t session_id = 0;
};

struct PrepareRequest {
  std::string sql;
};

struct PrepareResponse {
  uint64_t handle = 0;
  uint32_t num_params = 0;  // '?' placeholders the statement expects
};

struct ExecRequest {
  uint64_t handle = 0;
  std::vector<Value> params;
};

struct ExecResponse {
  std::vector<std::string> columns;        // empty for DML
  std::vector<std::vector<Value>> rows;    // SELECT results
  int64_t affected = 0;                    // DML row count
};

struct FeedAppendRequest {
  std::string table;
  std::vector<FeedRecord> records;  // wire-v1 encoded on the wire
};

struct FeedAppendResponse {
  uint64_t lsn = 0;        // WAL sequence the batch is durable through
  uint32_t accepted = 0;   // records admitted (== records sent on success)
};

enum class AdminOp : uint8_t {
  kDrain = 1,       // block until the engine is quiescent
  kCheckpoint = 2,  // drain + snapshot + truncate the WAL
  kMetrics = 3,     // registry snapshot JSON in `body`
  kHealth = 4,      // watchdog verdict JSON in `body`
  kShutdown = 5,    // graceful stop (checkpoint + exit)
};

struct AdminRequest {
  AdminOp op = AdminOp::kMetrics;
};

struct AdminResponse {
  uint64_t lsn = 0;   // checkpoint/drain: WAL position at completion
  std::string body;   // metrics/health: JSON document
};

struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

std::string Encode(const HelloRequest& m);
std::string Encode(const HelloResponse& m);
std::string Encode(const PrepareRequest& m);
std::string Encode(const PrepareResponse& m);
std::string Encode(const ExecRequest& m);
std::string Encode(const ExecResponse& m);
std::string Encode(const FeedAppendRequest& m);
std::string Encode(const FeedAppendResponse& m);
std::string Encode(const AdminRequest& m);
std::string Encode(const AdminResponse& m);
std::string Encode(const ErrorResponse& m);

Result<HelloRequest> DecodeHelloRequest(std::string_view payload);
Result<HelloResponse> DecodeHelloResponse(std::string_view payload);
Result<PrepareRequest> DecodePrepareRequest(std::string_view payload);
Result<PrepareResponse> DecodePrepareResponse(std::string_view payload);
Result<ExecRequest> DecodeExecRequest(std::string_view payload);
Result<ExecResponse> DecodeExecResponse(std::string_view payload);
Result<FeedAppendRequest> DecodeFeedAppendRequest(std::string_view payload);
Result<FeedAppendResponse> DecodeFeedAppendResponse(std::string_view payload);
Result<AdminRequest> DecodeAdminRequest(std::string_view payload);
Result<AdminResponse> DecodeAdminResponse(std::string_view payload);
Result<ErrorResponse> DecodeErrorResponse(std::string_view payload);

/// Reconstitutes an ErrorResponse as the Status it carries.
Status ToStatus(const ErrorResponse& e);

}  // namespace strip

#endif  // STRIP_NET_PROTOCOL_H_
