#include "strip/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

/// Backpressure water marks on a connection's unflushed output. Above the
/// high mark the server stops decoding the connection's requests and drops
/// EPOLLIN interest; below the low mark it resumes. A single reply can be
/// up to the 16 MiB frame cap — the marks bound how much MORE work gets
/// dispatched on top of it, not the size of one reply.
constexpr size_t kOutbufHighWater = 4u << 20;
constexpr size_t kOutbufLowWater = 1u << 20;

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// '?' placeholders outside single-quoted string literals — what Exec must
/// bind. The parser owns real validation; this only feeds PrepareResponse.
uint32_t CountParams(const std::string& sql) {
  uint32_t n = 0;
  bool in_string = false;
  for (char c : sql) {
    if (c == '\'') in_string = !in_string;
    else if (c == '?' && !in_string) ++n;
  }
  return n;
}

Frame ErrorFrame(uint64_t seq, const Status& status) {
  Frame f;
  f.type = FrameType::kError;
  f.seq = seq;
  ErrorResponse err;
  err.code = status.code();
  err.message = status.message();
  f.payload = Encode(err);
  return f;
}

Frame Reply(FrameType type, uint64_t seq, std::string payload) {
  Frame f;
  f.type = type;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  STRIP_RETURN_IF_ERROR(server->Init());
  return server;
}

Status Server::Init() {
  // A network server lives on the wall clock; the simulated executor's
  // virtual time has nobody to drive it.
  options_.engine.mode = ExecutorMode::kThreaded;
  db_ = std::make_unique<Database>(options_.engine);

  if (!options_.schema_sql.empty()) {
    STRIP_RETURN_IF_ERROR(db_->ExecuteScript(options_.schema_sql));
  }
  if (options_.bootstrap) {
    STRIP_RETURN_IF_ERROR(options_.bootstrap(*db_));
  }
  for (const std::string& table : options_.feed_tables) {
    STRIP_ASSIGN_OR_RETURN(auto importer,
                           FeedImporter::Create(db_.get(), table));
    importers_.emplace(table, std::move(importer));
  }

  if (!options_.data_dir.empty()) {
    durable_ = std::make_unique<DurableLog>(DurableLog::Options{
        options_.data_dir, options_.sync});
    STRIP_ASSIGN_OR_RETURN(
        recovery_stats_,
        durable_->Recover(*db_, [this](const std::string& table) {
          return FindImporter(table);
        }));
    // Serve only after replay has fully applied: a client that was acked
    // before the crash must read its own writes immediately on reconnect.
    db_->threaded()->Drain();
  }

  MetricsRegistry& m = db_->metrics();
  accepted_ = m.counter("server.accepted");
  closed_ = m.counter("server.closed");
  requests_ = m.counter("server.requests");
  errors_ = m.counter("server.errors");
  corrupt_frames_ = m.counter("server.corrupt_frames");
  shed_sessions_ = m.counter("server.shed_sessions");
  shed_requests_ = m.counter("server.shed_requests");
  feed_records_ = m.counter("server.feed_records");
  checkpoints_ = m.counter("server.checkpoints");
  backpressure_pauses_ = m.counter("server.backpressure_pauses");
  wal_rollbacks_ = m.counter("server.wal_rollbacks");
  bytes_in_ = m.counter("server.bytes_in");
  bytes_out_ = m.counter("server.bytes_out");
  request_us_ = m.histogram("server.request_us");
  m.RegisterCallback("server.connections",
                     [this] { return static_cast<double>(conns_.size()); });
  m.RegisterCallback("server.wal_bytes", [this] {
    return durable_ == nullptr ? 0.0
                               : static_cast<double>(durable_->wal_bytes());
  });
  m.RegisterCallback("server.admission_state", [this] {
    return static_cast<double>(admission_state());
  });

  bool watchdog_enabled =
      options_.watchdog_period_seconds > 0 &&
      (options_.slo.staleness_p99_us > 0 ||
       options_.slo.queue_wait_p99_us > 0 ||
       options_.slo.max_lock_abort_rate > 0);
  if (watchdog_enabled) {
    watchdog_ = std::make_unique<Watchdog>(&db_->metrics(), options_.slo);
    watchdog_->set_on_shed([](const WatchdogVerdict& v) {
      STRIP_LOG(WARN, "admission control tripped to shed: %s",
                v.ToJson().c_str());
    });
  }

  STRIP_ASSIGN_OR_RETURN(
      listener_,
      Socket::Listen(options_.host, options_.port, options_.backlog, &port_));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(StrFormat("epoll_create1: %s",
                                      std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::Internal(StrFormat("eventfd: %s", std::strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Status::Internal(StrFormat("epoll_ctl(listener): %s",
                                      std::strerror(errno)));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(StrFormat("epoll_ctl(wakefd): %s",
                                      std::strerror(errno)));
  }

  running_.store(true, std::memory_order_relaxed);
  epoll_thread_ = std::thread([this] { EpollLoop(); });
  housekeeping_thread_ = std::thread([this] { HousekeepingLoop(); });
  STRIP_LOG(INFO, "strip_server listening on %s:%u (%s)",
            options_.host.c_str(), static_cast<unsigned>(port_),
            durable_ == nullptr ? "ephemeral" : options_.data_dir.c_str());
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  std::call_once(stop_once_, [this] {
    running_.store(false, std::memory_order_relaxed);
    WakeEpoll();
    {
      std::lock_guard<std::mutex> lk(stop_mu_);
      stop_cv_.notify_all();
    }
    if (epoll_thread_.joinable()) epoll_thread_.join();
    if (housekeeping_thread_.joinable()) housekeeping_thread_.join();
    conns_.clear();
    listener_.Close();
    if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
    if (wake_fd_ >= 0) ::close(std::exchange(wake_fd_, -1));
    db_->threaded()->Drain();
    if (durable_ != nullptr) {
      auto lsn = Checkpoint();
      if (!lsn.ok()) {
        STRIP_LOG(WARN, "final checkpoint failed: %s",
                  lsn.status().message().c_str());
      }
    }
    STRIP_LOG(INFO, "strip_server stopped");
  });
}

void Server::Wait() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait(lk, [this] {
    return !running_.load(std::memory_order_relaxed);
  });
}

Result<uint64_t> Server::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition(
        "server has no data_dir: nothing to checkpoint");
  }
  // Holding dispatch_mu_ stops new requests from starting; Drain then
  // retires every queued rule task and delayed unique transaction, which is
  // the quiescence CaptureSnapshot requires.
  std::lock_guard<std::mutex> lk(dispatch_mu_);
  db_->threaded()->Drain();
  STRIP_ASSIGN_OR_RETURN(uint64_t lsn, durable_->Checkpoint(*db_));
  checkpoints_->Add();
  return lsn;
}

void Server::WakeEpoll() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;
  }
}

void Server::EpollLoop() {
  epoll_event events[64];
  while (running_.load(std::memory_order_relaxed)) {
    int n = ::epoll_wait(epoll_fd_, events, 64, 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      STRIP_LOG(ERROR, "epoll_wait: %s", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listener_.fd()) {
        AcceptPending();
      } else if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else {
        HandleConnEvent(fd, events[i].events);
      }
      if (!running_.load(std::memory_order_relaxed)) break;
    }
  }
}

void Server::HousekeepingLoop() {
  const auto period = std::chrono::duration<double>(
      options_.watchdog_period_seconds > 0 ? options_.watchdog_period_seconds
                                           : 0.5);
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (running_.load(std::memory_order_relaxed)) {
    stop_cv_.wait_for(lk, period, [this] {
      return !running_.load(std::memory_order_relaxed);
    });
    if (!running_.load(std::memory_order_relaxed)) break;
    lk.unlock();
    if (watchdog_ != nullptr) {
      WatchdogVerdict verdict = watchdog_->Evaluate(db_->Now());
      admission_state_.store(verdict.state, std::memory_order_relaxed);
    }
    if (durable_ != nullptr && options_.checkpoint_wal_bytes > 0 &&
        durable_->wal_bytes() >= options_.checkpoint_wal_bytes) {
      auto lsn = Checkpoint();
      if (!lsn.ok()) {
        STRIP_LOG(WARN, "auto-checkpoint failed: %s",
                  lsn.status().message().c_str());
      }
    }
    lk.lock();
  }
}

void Server::AcceptPending() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      STRIP_LOG(WARN, "accept: %s", accepted.status().message().c_str());
      return;
    }
    if (!accepted->valid()) return;  // nothing more pending
    int fd = accepted->fd();
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Refuse with a frame the client can decode, then close. seq 0: the
      // refusal precedes any request.
      Frame f = ErrorFrame(
          0, Status::Aborted(StrFormat(
                 "server at max_connections (%d) — retry later",
                 options_.max_connections)));
      std::string wire = EncodeFrame(f);
      (void)accepted->WriteAll(wire);
      shed_sessions_->Add();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(*accepted);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      STRIP_LOG(ERROR, "epoll_ctl(add conn): %s", std::strerror(errno));
      continue;  // conn destructor closes the socket
    }
    accepted_->Add();
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::CloseConn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(fd);  // Socket destructor closes fd
  closed_->Add();
}

void Server::HandleConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(fd);
    return;
  }
  if ((events & EPOLLIN) != 0 && !conn->closing && !conn->paused) {
    char buf[kReadChunk];
    for (;;) {
      ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(r));
        bytes_in_->Add(static_cast<uint64_t>(r));
        continue;
      }
      if (r == 0) {  // peer closed
        CloseConn(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return;
    }
  }
  // Decode/dispatch and flush alternate until a fixed point: a flush that
  // brings a paused connection under the low water mark resumes decoding
  // of the requests that were deferred while paused.
  for (;;) {
    if (!conn->closing && !conn->paused) {
      if (!DrainInbuf(conn)) {
        CloseConn(fd);
        return;
      }
    }
    if (!FlushOut(fd, conn)) {
      CloseConn(fd);
      return;
    }
    if (conn->paused &&
        conn->outbuf.size() - conn->outpos <= kOutbufLowWater) {
      conn->paused = false;
      continue;  // drain deferred frames; FlushOut re-arms EPOLLIN
    }
    break;
  }
  if (conn->closing && conn->outpos == conn->outbuf.size()) {
    CloseConn(fd);
  }
}

bool Server::DrainInbuf(Connection* conn) {
  size_t pos = 0;
  for (;;) {
    if (conn->outbuf.size() - conn->outpos >= kOutbufHighWater) {
      // Backpressure: the peer has not read what it already asked for.
      // Stop decoding (the remaining inbuf keeps, and EPOLLIN interest is
      // dropped by the next FlushOut) until a flush reaches the low mark.
      conn->paused = true;
      backpressure_pauses_->Add();
      break;
    }
    Frame frame;
    std::string error;
    FrameDecode d = TryDecodeFrame(conn->inbuf, &pos, &frame, &error);
    if (d == FrameDecode::kNeedMore) break;
    if (d == FrameDecode::kCorrupt) {
      // Framing lost = the byte stream can never be trusted again; there
      // is no resync point, so the connection dies (ISSUE: corrupt frame
      // drops the connection, never crashes the server).
      corrupt_frames_->Add();
      STRIP_LOG(WARN, "session %llu: corrupt frame: %s",
                static_cast<unsigned long long>(conn->session_id),
                error.c_str());
      return false;
    }
    HandleFrame(conn, frame);
    if (conn->closing) break;
  }
  conn->inbuf.erase(0, pos);
  return true;
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  int64_t start = SteadyMicros();
  requests_->Add();
  Result<Frame> reply = [&]() -> Result<Frame> {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    return Dispatch(conn, frame);
  }();
  Frame out = reply.ok() ? std::move(*reply)
                         : ErrorFrame(frame.seq, reply.status());
  if (!reply.ok()) errors_->Add();
  Status append = AppendFrame(out, &conn->outbuf);
  if (!append.ok()) {
    // Response exceeds the frame cap (a SELECT returning >16 MiB).
    // AppendFrame rejected before writing anything, so the seq contract
    // still holds: send an error frame instead.
    Status too_big = Status::FailedPrecondition(
        "response exceeds the 16 MiB frame cap — narrow the query");
    STRIP_CHECK(AppendFrame(ErrorFrame(frame.seq, too_big), &conn->outbuf)
                    .ok());
    errors_->Add();
  }
  request_us_->Observe(SteadyMicros() - start);
}

Result<Frame> Server::Dispatch(Connection* conn, const Frame& frame) {
  if (!conn->hello_done && frame.type != FrameType::kHello) {
    return Status::FailedPrecondition("first frame must be Hello");
  }
  switch (frame.type) {
    case FrameType::kHello:
      return HandleHello(conn, frame);
    case FrameType::kPrepare:
      return HandlePrepare(conn, frame);
    case FrameType::kExec:
      return HandleExec(conn, frame);
    case FrameType::kFeedAppend:
      return HandleFeedAppend(conn, frame);
    case FrameType::kPing:
      return Reply(FrameType::kPong, frame.seq, frame.payload);
    case FrameType::kAdmin:
      return HandleAdmin(conn, frame);
    default:
      return Status::InvalidArgument(StrFormat(
          "frame type %u is not a request", static_cast<unsigned>(
              frame.type)));
  }
}

bool Server::ShouldShed(const Connection& conn) const {
  return admission_state() == WatchdogState::kShed &&
         conn.priority == SessionPriority::kLow;
}

Result<Frame> Server::HandleHello(Connection* conn, const Frame& frame) {
  STRIP_ASSIGN_OR_RETURN(HelloRequest req,
                         DecodeHelloRequest(frame.payload));
  if (req.protocol_version != kFrameVersion) {
    return Status::InvalidArgument(StrFormat(
        "client speaks protocol v%u, server speaks v%u",
        static_cast<unsigned>(req.protocol_version),
        static_cast<unsigned>(kFrameVersion)));
  }
  if (conn->hello_done) {
    return Status::FailedPrecondition("session already established");
  }
  if (admission_state() == WatchdogState::kShed &&
      req.priority == SessionPriority::kLow) {
    // Shedding: refuse the session outright and hang up once the error
    // frame is flushed — new low-priority load is what overload must not
    // admit (§7: staleness grows without bound once the rule system
    // cannot keep up).
    shed_sessions_->Add();
    conn->closing = true;
    return Status::Aborted(
        "server is shedding low-priority sessions — retry with backoff");
  }
  conn->hello_done = true;
  conn->priority = req.priority;
  conn->client_name = req.client_name;
  conn->session_id = next_session_id_++;
  HelloResponse resp;
  resp.session_id = conn->session_id;
  return Reply(FrameType::kHelloOk, frame.seq, Encode(resp));
}

Result<Frame> Server::HandlePrepare(Connection* conn, const Frame& frame) {
  STRIP_ASSIGN_OR_RETURN(PrepareRequest req,
                         DecodePrepareRequest(frame.payload));
  STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr stmt, db_->Prepare(req.sql));
  PrepareResponse resp;
  resp.handle = conn->next_handle++;
  resp.num_params = CountParams(req.sql);
  conn->stmts.emplace(resp.handle, std::move(stmt));
  return Reply(FrameType::kPrepared, frame.seq, Encode(resp));
}

Result<Frame> Server::HandleExec(Connection* conn, const Frame& frame) {
  STRIP_ASSIGN_OR_RETURN(ExecRequest req, DecodeExecRequest(frame.payload));
  if (ShouldShed(*conn)) {
    shed_requests_->Add();
    return Status::Aborted(
        "server is shedding low-priority work — retry with backoff");
  }
  auto it = conn->stmts.find(req.handle);
  if (it == conn->stmts.end()) {
    return Status::NotFound(StrFormat(
        "unknown statement handle %llu",
        static_cast<unsigned long long>(req.handle)));
  }
  STRIP_ASSIGN_OR_RETURN(ResultSet rs, it->second->Execute(req.params));
  ExecResponse resp;
  resp.columns.reserve(static_cast<size_t>(rs.schema.num_columns()));
  for (int c = 0; c < rs.schema.num_columns(); ++c) {
    resp.columns.push_back(rs.schema.column(c).name);
  }
  resp.affected = static_cast<int64_t>(rs.rows.size());
  resp.rows = std::move(rs.rows);
  return Reply(FrameType::kRows, frame.seq, Encode(resp));
}

Result<Frame> Server::HandleFeedAppend(Connection* conn,
                                       const Frame& frame) {
  STRIP_ASSIGN_OR_RETURN(FeedAppendRequest req,
                         DecodeFeedAppendRequest(frame.payload));
  if (ShouldShed(*conn)) {
    shed_requests_->Add();
    return Status::Aborted(
        "server is shedding low-priority feed batches — retry with backoff");
  }
  if (durable_failed_.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "durable feed log is in a failed state — restart the server to "
        "recover from the WAL");
  }
  STRIP_ASSIGN_OR_RETURN(FeedImporter * importer, FindImporter(req.table));

  // The WHOLE batch is validated against the table schema before the
  // first WAL append. A record that can never apply must be refused at
  // the wire: once durably logged, every future recovery would replay the
  // same failure — one bad client record turning into a server that can
  // never boot again.
  // Arrival stamping: clients send at == 0 ("stamp on arrival") because
  // release times live on the server's executor clock, which the client
  // cannot see. Staleness is then measured from ingestion, per the paper.
  std::vector<FeedRecord> batch = std::move(req.records);
  for (FeedRecord& rec : batch) {
    STRIP_RETURN_IF_ERROR(importer->Validate(rec));
    if (rec.at == 0) rec.at = db_->Now();
  }
  // Group commit: every record of the batch is appended, ONE fdatasync
  // makes them all durable, and only then does the ack (carrying the last
  // LSN) go out. A crash before the sync loses only unacked records; a
  // crash after replays them — idempotent keyed upserts.
  uint64_t last_lsn = 0;
  if (durable_ != nullptr) {
    const uint64_t pre_bytes = durable_->wal_bytes();
    const uint64_t pre_lsn = durable_->next_lsn();
    Status logged = [&]() -> Status {
      for (const FeedRecord& rec : batch) {
        STRIP_ASSIGN_OR_RETURN(last_lsn, durable_->Append(req.table, rec));
      }
      return durable_->Sync();
    }();
    if (!logged.ok()) {
      // Nothing applied yet: cut the batch's entries back out of the WAL
      // so the log holds exactly what was acknowledged. If even the
      // rollback fails the file's tail is unknowable — refuse all further
      // feed writes; recovery's torn-tail handling sorts it out on
      // restart.
      Status rb = durable_->RollbackTo(pre_bytes, pre_lsn);
      if (rb.ok()) {
        wal_rollbacks_->Add();
      } else {
        durable_failed_.store(true, std::memory_order_relaxed);
        STRIP_LOG(ERROR,
                  "feed append failed (%s) and WAL rollback failed (%s): "
                  "refusing further feed writes until restart",
                  logged.message().c_str(), rb.message().c_str());
      }
      return logged;
    }
  }
  // Apply synchronously (not via Submit): dispatch_mu_ serializes every
  // request, so per-key apply order equals WAL order — which is what lets
  // replay reproduce the exact pre-crash state. Rule actions triggered by
  // these commits still run asynchronously on the worker pool.
  for (const FeedRecord& rec : batch) {
    Status applied = importer->ApplyNow(rec);
    if (!applied.ok()) {
      if (durable_ != nullptr) {
        // The batch is already durable but only partially applied — live
        // state and WAL now disagree, and a committed upsert cannot be
        // un-applied. Refuse further feed writes; a restart replays the
        // WAL (the source of truth) onto the consistent state.
        durable_failed_.store(true, std::memory_order_relaxed);
        STRIP_LOG(ERROR,
                  "feed apply failed mid-batch after the WAL sync (%s): "
                  "refusing further feed writes until restart",
                  applied.message().c_str());
      }
      return applied;
    }
  }
  feed_records_->Add(batch.size());
  FeedAppendResponse resp;
  resp.lsn = last_lsn;
  resp.accepted = static_cast<uint32_t>(batch.size());
  return Reply(FrameType::kAppended, frame.seq, Encode(resp));
}

Result<Frame> Server::HandleAdmin(Connection* conn, const Frame& frame) {
  STRIP_ASSIGN_OR_RETURN(AdminRequest req,
                         DecodeAdminRequest(frame.payload));
  AdminResponse resp;
  switch (req.op) {
    case AdminOp::kDrain:
      db_->threaded()->Drain();
      resp.lsn = durable_ == nullptr ? 0 : durable_->next_lsn() - 1;
      break;
    case AdminOp::kCheckpoint: {
      if (durable_ == nullptr) {
        return Status::FailedPrecondition(
            "server has no data_dir: nothing to checkpoint");
      }
      // Dispatch already holds dispatch_mu_ (do NOT call Checkpoint() —
      // it would self-deadlock); drain + checkpoint inline.
      db_->threaded()->Drain();
      STRIP_ASSIGN_OR_RETURN(resp.lsn, durable_->Checkpoint(*db_));
      checkpoints_->Add();
      break;
    }
    case AdminOp::kMetrics:
      resp.body = db_->metrics().SnapshotJson();
      break;
    case AdminOp::kHealth:
      // Only the atomic state is safe to read from this thread — the full
      // verdict struct belongs to the housekeeping thread.
      resp.body = StrFormat(
          "{\"state\": \"%s\", \"watchdog\": %s, \"feed_writable\": %s}",
          WatchdogStateName(admission_state()),
          watchdog_ == nullptr ? "false" : "true",
          durable_failed_.load(std::memory_order_relaxed) ? "false"
                                                          : "true");
      break;
    case AdminOp::kShutdown:
      conn->closing = true;
      resp.lsn = durable_ == nullptr ? 0 : durable_->next_lsn() - 1;
      // Flip running_ so EpollLoop exits after flushing this reply; the
      // full Stop() (drain + final checkpoint) runs on the waiting
      // thread via Wait()/~Server, not on the epoll thread itself.
      running_.store(false, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(stop_mu_);
        stop_cv_.notify_all();
      }
      break;
  }
  return Reply(FrameType::kAdminOk, frame.seq, Encode(resp));
}

bool Server::FlushOut(int fd, Connection* conn) {
  while (conn->outpos < conn->outbuf.size()) {
    ssize_t w = ::send(fd, conn->outbuf.data() + conn->outpos,
                       conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
    if (w > 0) {
      conn->outpos += static_cast<size_t>(w);
      bytes_out_->Add(static_cast<uint64_t>(w));
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer gone
  }
  if (conn->outpos == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outpos = 0;
  } else if (conn->outpos > kReadChunk) {
    conn->outbuf.erase(0, conn->outpos);
    conn->outpos = 0;
  }
  UpdateEpollInterest(fd, conn);
  return true;
}

void Server::UpdateEpollInterest(int fd, Connection* conn) {
  bool want_write = conn->outpos < conn->outbuf.size();
  bool want_read = !conn->paused;
  if (want_write == conn->want_write && want_read == conn->want_read) {
    return;
  }
  conn->want_write = want_write;
  conn->want_read = want_read;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    STRIP_LOG(WARN, "epoll_ctl(mod): %s", std::strerror(errno));
  }
}

Result<FeedImporter*> Server::FindImporter(const std::string& table) {
  auto it = importers_.find(table);
  if (it == importers_.end()) {
    return Status::NotFound(StrFormat(
        "'%s' is not a registered feed table", table.c_str()));
  }
  return it->second.get();
}

}  // namespace strip
