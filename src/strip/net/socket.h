#ifndef STRIP_NET_SOCKET_H_
#define STRIP_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "strip/common/status.h"

namespace strip {

/// RAII file descriptor + the few TCP operations the server and client
/// need. IPv4 loopback/any only — strip_server fronts an engine, not the
/// open internet; TLS and v6 belong to a proxy in front of it.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Releases ownership of the descriptor to the caller.
  int Release() { return std::exchange(fd_, -1); }

  /// Listening socket bound to `host:port` (port 0 = kernel-assigned;
  /// bound_port reports the actual one). SO_REUSEADDR, nonblocking.
  static Result<Socket> Listen(const std::string& host, uint16_t port,
                               int backlog, uint16_t* bound_port);

  /// Blocking connect to `host:port` with TCP_NODELAY (the protocol is
  /// request/response; Nagle would serialize small frames).
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Accepts one pending connection (nonblocking listener): the accepted
  /// socket (nonblocking, TCP_NODELAY), an invalid Socket when no
  /// connection is pending, or an error.
  Result<Socket> Accept();

  Status SetNonBlocking(bool nonblocking);

  /// Blocking exact-count I/O for the client side. ReadFully fails with
  /// FailedPrecondition on a clean peer close mid-message.
  Status WriteAll(std::string_view data);
  Status ReadFully(char* buf, size_t n);

 private:
  int fd_ = -1;
};

}  // namespace strip

#endif  // STRIP_NET_SOCKET_H_
