#include "strip/net/client.h"

#include <cstring>
#include <utility>

#include "strip/common/byteio.h"
#include "strip/common/string_util.h"

namespace strip {

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, SessionPriority priority,
    const std::string& client_name) {
  STRIP_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));

  HelloRequest hello;
  hello.protocol_version = kFrameVersion;
  hello.priority = priority;
  hello.client_name = client_name;
  Frame req;
  req.type = FrameType::kHello;
  req.seq = 1;
  req.payload = Encode(hello);
  STRIP_RETURN_IF_ERROR(sock.WriteAll(EncodeFrame(req)));

  STRIP_ASSIGN_OR_RETURN(Frame resp, ReadFrame(sock));
  if (resp.type == FrameType::kError) {
    STRIP_ASSIGN_OR_RETURN(ErrorResponse err,
                           DecodeErrorResponse(resp.payload));
    return ToStatus(err);
  }
  if (resp.type != FrameType::kHelloOk || resp.seq != req.seq) {
    return Status::Internal(StrFormat(
        "handshake: expected HelloOk seq 1, got type %u seq %llu",
        static_cast<unsigned>(resp.type),
        static_cast<unsigned long long>(resp.seq)));
  }
  STRIP_ASSIGN_OR_RETURN(HelloResponse ok, DecodeHelloResponse(resp.payload));
  std::unique_ptr<Client> client(
      new Client(std::move(sock), ok.session_id));
  client->next_seq_ = 2;
  return client;
}

Result<Frame> Client::ReadFrame(Socket& sock) {
  char header[kFrameHeaderSize];
  STRIP_RETURN_IF_ERROR(sock.ReadFully(header, sizeof(header)));
  // payload_len lives at byte 12 (magic, version, type, flags, u64 seq).
  uint32_t payload_len;
  std::memcpy(&payload_len, header + 12, sizeof(payload_len));
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(StrFormat(
        "server announced a %u-byte payload (cap %u) — stream corrupt",
        payload_len, kMaxFramePayload));
  }
  std::string buf(header, sizeof(header));
  if (payload_len > 0) {
    size_t off = buf.size();
    buf.resize(off + payload_len);
    STRIP_RETURN_IF_ERROR(sock.ReadFully(&buf[off], payload_len));
  }
  Frame frame;
  size_t pos = 0;
  std::string error;
  switch (TryDecodeFrame(buf, &pos, &frame, &error)) {
    case FrameDecode::kFrame:
      return frame;
    case FrameDecode::kNeedMore:
      return Status::Internal("frame decoder wants more than the header "
                              "promised");
    case FrameDecode::kCorrupt:
    default:
      return Status::InvalidArgument(StrFormat(
          "corrupt frame from server: %s", error.c_str()));
  }
}

Result<Frame> Client::RoundTrip(FrameType type, std::string payload,
                                FrameType expect) {
  Frame req;
  req.type = type;
  req.seq = next_seq_++;
  req.payload = std::move(payload);
  std::string wire;
  STRIP_RETURN_IF_ERROR(AppendFrame(req, &wire));
  STRIP_RETURN_IF_ERROR(sock_.WriteAll(wire));

  STRIP_ASSIGN_OR_RETURN(Frame resp, ReadFrame(sock_));
  if (resp.seq != req.seq) {
    return Status::Internal(StrFormat(
        "response seq %llu does not match request seq %llu",
        static_cast<unsigned long long>(resp.seq),
        static_cast<unsigned long long>(req.seq)));
  }
  if (resp.type == FrameType::kError) {
    STRIP_ASSIGN_OR_RETURN(ErrorResponse err,
                           DecodeErrorResponse(resp.payload));
    return ToStatus(err);
  }
  if (resp.type != expect) {
    return Status::Internal(StrFormat(
        "expected frame type %u, got %u", static_cast<unsigned>(expect),
        static_cast<unsigned>(resp.type)));
  }
  return resp;
}

Result<PrepareResponse> Client::Prepare(const std::string& sql) {
  PrepareRequest req;
  req.sql = sql;
  STRIP_ASSIGN_OR_RETURN(
      Frame resp,
      RoundTrip(FrameType::kPrepare, Encode(req), FrameType::kPrepared));
  return DecodePrepareResponse(resp.payload);
}

Result<ExecResponse> Client::Exec(uint64_t handle,
                                  const std::vector<Value>& params) {
  ExecRequest req;
  req.handle = handle;
  req.params = params;
  STRIP_ASSIGN_OR_RETURN(
      Frame resp,
      RoundTrip(FrameType::kExec, Encode(req), FrameType::kRows));
  return DecodeExecResponse(resp.payload);
}

Result<FeedAppendResponse> Client::FeedAppend(
    const std::string& table, const std::vector<FeedRecord>& records) {
  FeedAppendRequest req;
  req.table = table;
  req.records = records;
  STRIP_ASSIGN_OR_RETURN(
      Frame resp,
      RoundTrip(FrameType::kFeedAppend, Encode(req),
                FrameType::kAppended));
  return DecodeFeedAppendResponse(resp.payload);
}

Result<AdminResponse> Client::Admin(AdminOp op) {
  AdminRequest req;
  req.op = op;
  STRIP_ASSIGN_OR_RETURN(
      Frame resp,
      RoundTrip(FrameType::kAdmin, Encode(req), FrameType::kAdminOk));
  return DecodeAdminResponse(resp.payload);
}

Status Client::Ping(const std::string& token) {
  STRIP_ASSIGN_OR_RETURN(
      Frame resp, RoundTrip(FrameType::kPing, token, FrameType::kPong));
  if (resp.payload != token) {
    return Status::Internal("pong payload does not echo the ping token");
  }
  return Status::OK();
}

}  // namespace strip
