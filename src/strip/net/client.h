#ifndef STRIP_NET_CLIENT_H_
#define STRIP_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "strip/feed/feed.h"
#include "strip/net/protocol.h"
#include "strip/net/socket.h"

namespace strip {

/// Blocking strip_server client: one TCP connection, strict
/// request/response (one frame out, one frame back, matching seq). Not
/// thread-safe — one Client per thread; the swarm driver does exactly
/// that.
class Client {
 public:
  /// Connects and completes the Hello handshake.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      SessionPriority priority = SessionPriority::kNormal,
      const std::string& client_name = "");

  uint64_t session_id() const { return session_id_; }

  /// Prepares `sql` server-side; returns the statement handle.
  Result<PrepareResponse> Prepare(const std::string& sql);

  /// Executes a prepared handle with '?' bindings.
  Result<ExecResponse> Exec(uint64_t handle,
                            const std::vector<Value>& params = {});

  /// Appends a feed batch; on success the returned LSN is durable
  /// (fdatasync'd) server-side before the ack was sent.
  Result<FeedAppendResponse> FeedAppend(
      const std::string& table, const std::vector<FeedRecord>& records);

  Result<AdminResponse> Admin(AdminOp op);

  /// Round-trip liveness check; echoes `token`.
  Status Ping(const std::string& token = "");

 private:
  Client(Socket sock, uint64_t session_id)
      : sock_(std::move(sock)), session_id_(session_id) {}

  /// Sends one frame and reads the matching response. A kError response
  /// is decoded and returned as its carried Status; a mismatched seq or
  /// unexpected type is a protocol error.
  Result<Frame> RoundTrip(FrameType type, std::string payload,
                          FrameType expect);

  static Result<Frame> ReadFrame(Socket& sock);

  Socket sock_;
  uint64_t session_id_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace strip

#endif  // STRIP_NET_CLIENT_H_
