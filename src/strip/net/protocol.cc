#include "strip/net/protocol.h"

#include <algorithm>

#include "strip/common/byteio.h"
#include "strip/feed/wire.h"

namespace strip {

namespace {

/// Finishing check every strict decoder ends with: trailing bytes after a
/// fully parsed message mean the peer and we disagree about the encoding —
/// reject rather than guess.
Status ExpectExhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    return Status::InvalidArgument(StrFormat(
        "%s payload has %zu trailing bytes", what, r.remaining()));
  }
  return Status::OK();
}

void PutValues(const std::vector<Value>& vs, std::string* out) {
  PutU32(static_cast<uint32_t>(vs.size()), out);
  for (const Value& v : vs) AppendValue(v, out);
}

Result<std::vector<Value>> ReadValues(ByteReader& r, std::string_view buf) {
  STRIP_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  std::vector<Value> vs;
  // One byte minimum per value bounds a hostile count (cf. the wire-v1
  // reserve clamp).
  vs.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    size_t offset = r.pos();
    STRIP_ASSIGN_OR_RETURN(Value v, DecodeValue(buf, &offset));
    STRIP_RETURN_IF_ERROR(r.Skip(offset - r.pos()));
    vs.push_back(std::move(v));
  }
  return vs;
}

}  // namespace

const char* SessionPriorityName(SessionPriority p) {
  switch (p) {
    case SessionPriority::kLow: return "low";
    case SessionPriority::kNormal: return "normal";
    case SessionPriority::kHigh: return "high";
  }
  return "unknown";
}

// --- Hello -------------------------------------------------------------------

std::string Encode(const HelloRequest& m) {
  std::string out;
  PutU8(m.protocol_version, &out);
  PutU8(static_cast<uint8_t>(m.priority), &out);
  PutLengthPrefixed(m.client_name, &out);
  return out;
}

Result<HelloRequest> DecodeHelloRequest(std::string_view payload) {
  ByteReader r(payload);
  HelloRequest m;
  STRIP_ASSIGN_OR_RETURN(m.protocol_version, r.U8());
  STRIP_ASSIGN_OR_RETURN(uint8_t prio, r.U8());
  if (prio > static_cast<uint8_t>(SessionPriority::kHigh)) {
    return Status::InvalidArgument(
        StrFormat("bad session priority %u", prio));
  }
  m.priority = static_cast<SessionPriority>(prio);
  STRIP_ASSIGN_OR_RETURN(m.client_name, r.LengthPrefixed());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "hello"));
  return m;
}

std::string Encode(const HelloResponse& m) {
  std::string out;
  PutU64(m.session_id, &out);
  return out;
}

Result<HelloResponse> DecodeHelloResponse(std::string_view payload) {
  ByteReader r(payload);
  HelloResponse m;
  STRIP_ASSIGN_OR_RETURN(m.session_id, r.U64());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "hello_ok"));
  return m;
}

// --- Prepare -----------------------------------------------------------------

std::string Encode(const PrepareRequest& m) {
  std::string out;
  PutLengthPrefixed(m.sql, &out);
  return out;
}

Result<PrepareRequest> DecodePrepareRequest(std::string_view payload) {
  ByteReader r(payload);
  PrepareRequest m;
  STRIP_ASSIGN_OR_RETURN(m.sql, r.LengthPrefixed());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "prepare"));
  return m;
}

std::string Encode(const PrepareResponse& m) {
  std::string out;
  PutU64(m.handle, &out);
  PutU32(m.num_params, &out);
  return out;
}

Result<PrepareResponse> DecodePrepareResponse(std::string_view payload) {
  ByteReader r(payload);
  PrepareResponse m;
  STRIP_ASSIGN_OR_RETURN(m.handle, r.U64());
  STRIP_ASSIGN_OR_RETURN(m.num_params, r.U32());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "prepared"));
  return m;
}

// --- Exec --------------------------------------------------------------------

std::string Encode(const ExecRequest& m) {
  std::string out;
  PutU64(m.handle, &out);
  PutValues(m.params, &out);
  return out;
}

Result<ExecRequest> DecodeExecRequest(std::string_view payload) {
  ByteReader r(payload);
  ExecRequest m;
  STRIP_ASSIGN_OR_RETURN(m.handle, r.U64());
  STRIP_ASSIGN_OR_RETURN(m.params, ReadValues(r, payload));
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "exec"));
  return m;
}

std::string Encode(const ExecResponse& m) {
  std::string out;
  PutU32(static_cast<uint32_t>(m.columns.size()), &out);
  for (const std::string& c : m.columns) PutLengthPrefixed(c, &out);
  PutU32(static_cast<uint32_t>(m.rows.size()), &out);
  for (const std::vector<Value>& row : m.rows) PutValues(row, &out);
  PutU64(static_cast<uint64_t>(m.affected), &out);
  return out;
}

Result<ExecResponse> DecodeExecResponse(std::string_view payload) {
  ByteReader r(payload);
  ExecResponse m;
  STRIP_ASSIGN_OR_RETURN(uint32_t ncols, r.U32());
  m.columns.reserve(std::min<size_t>(ncols, r.remaining()));
  for (uint32_t i = 0; i < ncols; ++i) {
    STRIP_ASSIGN_OR_RETURN(std::string c, r.LengthPrefixed());
    m.columns.push_back(std::move(c));
  }
  STRIP_ASSIGN_OR_RETURN(uint32_t nrows, r.U32());
  m.rows.reserve(std::min<size_t>(nrows, r.remaining()));
  for (uint32_t i = 0; i < nrows; ++i) {
    STRIP_ASSIGN_OR_RETURN(std::vector<Value> row, ReadValues(r, payload));
    m.rows.push_back(std::move(row));
  }
  STRIP_ASSIGN_OR_RETURN(uint64_t affected, r.U64());
  m.affected = static_cast<int64_t>(affected);
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "rows"));
  return m;
}

// --- FeedAppend --------------------------------------------------------------

std::string Encode(const FeedAppendRequest& m) {
  std::string out;
  PutLengthPrefixed(m.table, &out);
  PutU32(static_cast<uint32_t>(m.records.size()), &out);
  for (const FeedRecord& rec : m.records) AppendFeedRecord(rec, &out);
  return out;
}

Result<FeedAppendRequest> DecodeFeedAppendRequest(std::string_view payload) {
  ByteReader r(payload);
  FeedAppendRequest m;
  STRIP_ASSIGN_OR_RETURN(m.table, r.LengthPrefixed());
  STRIP_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  m.records.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    size_t offset = r.pos();
    STRIP_ASSIGN_OR_RETURN(FeedRecord rec, DecodeFeedRecord(payload, &offset));
    STRIP_RETURN_IF_ERROR(r.Skip(offset - r.pos()));
    m.records.push_back(std::move(rec));
  }
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "feed_append"));
  return m;
}

std::string Encode(const FeedAppendResponse& m) {
  std::string out;
  PutU64(m.lsn, &out);
  PutU32(m.accepted, &out);
  return out;
}

Result<FeedAppendResponse> DecodeFeedAppendResponse(
    std::string_view payload) {
  ByteReader r(payload);
  FeedAppendResponse m;
  STRIP_ASSIGN_OR_RETURN(m.lsn, r.U64());
  STRIP_ASSIGN_OR_RETURN(m.accepted, r.U32());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "appended"));
  return m;
}

// --- Admin -------------------------------------------------------------------

std::string Encode(const AdminRequest& m) {
  std::string out;
  PutU8(static_cast<uint8_t>(m.op), &out);
  return out;
}

Result<AdminRequest> DecodeAdminRequest(std::string_view payload) {
  ByteReader r(payload);
  AdminRequest m;
  STRIP_ASSIGN_OR_RETURN(uint8_t op, r.U8());
  if (op < static_cast<uint8_t>(AdminOp::kDrain) ||
      op > static_cast<uint8_t>(AdminOp::kShutdown)) {
    return Status::InvalidArgument(StrFormat("bad admin op %u", op));
  }
  m.op = static_cast<AdminOp>(op);
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "admin"));
  return m;
}

std::string Encode(const AdminResponse& m) {
  std::string out;
  PutU64(m.lsn, &out);
  PutLengthPrefixed(m.body, &out);
  return out;
}

Result<AdminResponse> DecodeAdminResponse(std::string_view payload) {
  ByteReader r(payload);
  AdminResponse m;
  STRIP_ASSIGN_OR_RETURN(m.lsn, r.U64());
  STRIP_ASSIGN_OR_RETURN(m.body, r.LengthPrefixed());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "admin_ok"));
  return m;
}

// --- Error -------------------------------------------------------------------

std::string Encode(const ErrorResponse& m) {
  std::string out;
  PutU8(static_cast<uint8_t>(m.code), &out);
  PutLengthPrefixed(m.message, &out);
  return out;
}

Result<ErrorResponse> DecodeErrorResponse(std::string_view payload) {
  ByteReader r(payload);
  ErrorResponse m;
  STRIP_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  if (code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
    return Status::InvalidArgument(StrFormat("bad status code %u", code));
  }
  m.code = static_cast<StatusCode>(code);
  STRIP_ASSIGN_OR_RETURN(m.message, r.LengthPrefixed());
  STRIP_RETURN_IF_ERROR(ExpectExhausted(r, "error"));
  return m;
}

Status ToStatus(const ErrorResponse& e) {
  if (e.code == StatusCode::kOk) {
    return Status::Internal("error frame carried StatusCode::kOk");
  }
  return Status(e.code, e.message);
}

}  // namespace strip
