#ifndef STRIP_NET_SERVER_H_
#define STRIP_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "strip/durability/durable_log.h"
#include "strip/engine/database.h"
#include "strip/feed/feed.h"
#include "strip/net/protocol.h"
#include "strip/net/socket.h"
#include "strip/obs/watchdog.h"

namespace strip {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  int backlog = 128;
  int max_connections = 256;

  /// DDL script (tables, views, rules, functions registered by the caller
  /// beforehand) run at startup — schema is code, not data, so recovery
  /// re-runs it before the snapshot restores rows (DESIGN.md §2.6).
  std::string schema_sql;
  /// Runs after schema_sql, before recovery: register functions, generate
  /// view-maintenance rules — anything schema-like that needs C++ access.
  /// Recovery replay then fires these rules exactly like live traffic.
  std::function<Status(Database&)> bootstrap;
  /// Tables clients may FeedAppend into; an importer is created per table.
  std::vector<std::string> feed_tables;

  /// Durability directory (must exist). Empty disables the WAL + snapshot:
  /// the server becomes a pure cache, fast and forgetful.
  std::string data_dir;
  WalSyncPolicy sync = WalSyncPolicy::kManual;
  /// Auto-checkpoint once the WAL exceeds this many bytes (0 = only on
  /// explicit Admin kCheckpoint).
  uint64_t checkpoint_wal_bytes = 0;

  /// Engine options; mode is forced to kThreaded (a network server cannot
  /// run on a virtual clock).
  Database::Options engine;

  /// Admission control: the watchdog judges these SLOs every
  /// `watchdog_period_seconds` and the server sheds kLow-priority work
  /// while the verdict is kShed. All-zero SLOs or a non-positive period
  /// disable the watchdog (admission state stays kOk).
  WatchdogSlo slo;
  double watchdog_period_seconds = 0.25;
};

/// The strip_server core: one epoll thread owning every connection, a
/// housekeeping thread running the overload watchdog and auto-checkpoints,
/// and the engine's own worker pool executing rule transactions.
///
/// Threading model (DESIGN.md §2.6): all frame decode + dispatch happens on
/// the epoll thread under dispatch_mu_, so request handling is serialized
/// with checkpoints; the expensive work (rule cascades, view maintenance)
/// runs on the Database's ThreadedExecutor workers. FeedAppend is the
/// group-commit point — the batch's records are WAL-appended, one fdatasync
/// covers them all, and only then is the ack frame (carrying the LSN) sent.
class Server {
 public:
  /// Builds the engine, runs the schema script, recovers from data_dir,
  /// binds the listener, and starts serving. On return the server is
  /// accepting connections on port().
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful stop: stop accepting, close connections, drain the engine,
  /// final checkpoint (when durable). Idempotent; also run by ~Server.
  void Stop();

  /// Blocks until Stop() is called (by Admin kShutdown or another thread).
  void Wait();

  uint16_t port() const { return port_; }
  Database& db() { return *db_; }
  DurableLog* durable() { return durable_.get(); }
  const DurableLog::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  WatchdogState admission_state() const {
    return admission_state_.load(std::memory_order_relaxed);
  }
  bool stopped() const { return !running_.load(std::memory_order_relaxed); }

  /// Drains the engine and checkpoints (snapshot + WAL truncate). Safe to
  /// call from any thread; requests are held off while it runs.
  Result<uint64_t> Checkpoint();

 private:
  struct Connection {
    Socket sock;
    std::string inbuf;
    std::string outbuf;
    size_t outpos = 0;
    bool want_write = false;  // EPOLLOUT currently armed
    bool want_read = true;    // EPOLLIN currently armed
    bool closing = false;     // flush outbuf, then close
    /// Backpressure: set once unflushed output crosses the high water
    /// mark. While paused the server neither reads this socket nor
    /// decodes its buffered requests, so a client that pipelines big
    /// SELECTs without reading gets TCP backpressure instead of growing
    /// outbuf without bound. Cleared when a flush reaches the low water
    /// mark.
    bool paused = false;
    bool hello_done = false;
    SessionPriority priority = SessionPriority::kNormal;
    uint64_t session_id = 0;
    std::string client_name;
    uint64_t next_handle = 1;
    std::unordered_map<uint64_t, PreparedStatementPtr> stmts;
  };

  explicit Server(ServerOptions options);

  Status Init();
  void EpollLoop();
  void HousekeepingLoop();

  void AcceptPending();
  void HandleConnEvent(int fd, uint32_t events);
  void CloseConn(int fd);
  /// Parses every complete frame in conn->inbuf; false = close the
  /// connection (corrupt stream).
  bool DrainInbuf(Connection* conn);
  /// Appends the response frame(s) for one request to conn->outbuf.
  void HandleFrame(Connection* conn, const Frame& frame);
  Result<Frame> Dispatch(Connection* conn, const Frame& frame);
  Result<Frame> HandleHello(Connection* conn, const Frame& frame);
  Result<Frame> HandlePrepare(Connection* conn, const Frame& frame);
  Result<Frame> HandleExec(Connection* conn, const Frame& frame);
  Result<Frame> HandleFeedAppend(Connection* conn, const Frame& frame);
  Result<Frame> HandleAdmin(Connection* conn, const Frame& frame);
  /// Flushes as much of outbuf as the socket accepts; arms/disarms
  /// EPOLLOUT; false = connection is dead.
  bool FlushOut(int fd, Connection* conn);
  void UpdateEpollInterest(int fd, Connection* conn);
  void WakeEpoll();

  Result<FeedImporter*> FindImporter(const std::string& table);
  /// True when the watchdog says shed and this session is sacrificial.
  bool ShouldShed(const Connection& conn) const;

  ServerOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<DurableLog> durable_;
  DurableLog::RecoveryStats recovery_stats_;
  std::unordered_map<std::string, std::unique_ptr<FeedImporter>> importers_;

  Socket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  uint64_t next_session_id_ = 1;

  /// Serializes request dispatch (epoll thread) against checkpoints
  /// (housekeeping thread / Checkpoint() callers).
  std::mutex dispatch_mu_;

  std::unique_ptr<Watchdog> watchdog_;  // housekeeping thread only
  std::atomic<WatchdogState> admission_state_{WatchdogState::kOk};

  /// Set when the WAL and live tables can no longer be reconciled (a
  /// mid-batch apply failure after the sync, or a failed WAL rollback):
  /// every further FeedAppend is refused. Only a restart — whose recovery
  /// replays the WAL as the single source of truth — clears the state.
  std::atomic<bool> durable_failed_{false};

  std::atomic<bool> running_{false};
  std::thread epoll_thread_;
  std::thread housekeeping_thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::once_flag stop_once_;

  // Hot-path instruments, resolved once from db_->metrics().
  Counter* accepted_ = nullptr;
  Counter* closed_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* corrupt_frames_ = nullptr;
  Counter* shed_sessions_ = nullptr;
  Counter* shed_requests_ = nullptr;
  Counter* feed_records_ = nullptr;
  Counter* checkpoints_ = nullptr;
  Counter* backpressure_pauses_ = nullptr;
  Counter* wal_rollbacks_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Histogram* request_us_ = nullptr;
};

}  // namespace strip

#endif  // STRIP_NET_SERVER_H_
