#ifndef STRIP_RULES_NET_EFFECT_H_
#define STRIP_RULES_NET_EFFECT_H_

#include <utility>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/status.h"
#include "strip/storage/bound_table_set.h"
#include "strip/storage/record.h"
#include "strip/storage/value.h"

namespace strip {

/// The collapsed ("net") effect of a transaction's changes to one table.
///
/// STRIP deliberately does NOT reduce transition or bound tables to net
/// effect — the full audit trail is exposed and "it is always possible for
/// the application to calculate net effect on its own using the transition
/// tables as provided" (§2). This utility is that calculation, offered as
/// a library helper for action functions that want collapsed semantics.
struct NetEffect {
  /// Rows that exist after the transaction but did not before.
  std::vector<RecordRef> inserted;
  /// Rows that existed before but not after (their pre-transaction image).
  std::vector<RecordRef> deleted;
  /// Rows changed in place: (pre-transaction image, final image).
  /// Chains that end at a value identical to where they started (e.g.
  /// a -> b -> a) collapse to nothing and are omitted.
  std::vector<std::pair<RecordRef, RecordRef>> updated;
};

/// Computes the net effect from the four transition tables (`inserted`,
/// `deleted`, `old`, `new`), as built by BuildTransitionTables. Change
/// chains are reconstructed through record identity: an update's old image
/// is the record installed by the previous event of the same row.
Result<NetEffect> ComputeNetEffect(const BoundTableSet& transition);

/// One per-group (or per-key) contribution of a delta row to an
/// aggregation view: a signed value per SUM column plus a membership
/// count. A fact INSERT contributes (+values, +1), a DELETE contributes
/// (-values, -1), and an UPDATE contributes both halves (which cancel to
/// (new - old, 0) when the row stays in its group).
struct GroupDelta {
  Value key;
  std::vector<double> sums;
  int64_t count = 0;
  /// Feed-arrival / change time of the base update this delta came from
  /// (-1 = unknown). FoldGroupDeltas keeps the MINIMUM across folded
  /// contributions: netting must not make a view commit look fresher than
  /// the oldest update it actually applied (the §7 staleness probe).
  Timestamp change_time = -1;
};

/// Folds a contribution stream into one net delta per distinct key,
/// preserving first-seen key order so downstream application is
/// deterministic. This is how batching and incrementality compose: a
/// unique transaction's merged bound tables may hold a whole delay
/// window's worth of same-key deltas, and the fold collapses them so one
/// maintenance update per group applies the window's net effect. Keys
/// hash and compare as Values directly — no string round trip per row.
std::vector<GroupDelta> FoldGroupDeltas(std::vector<GroupDelta> rows);

/// Row layout of a group delta crossing the shard boundary (the cluster's
/// two-tier maintenance, DESIGN.md §2.5): deltas are ALWAYS folded with
/// FoldGroupDeltas before encoding — the shard ships one net delta per
/// group per export window, never raw contributions — then travel as feed
/// records into the merge shard's staging table:
///
///   [_seq int, key, sum0 double, ..., sumK double, _cnt int, _ct int]
///
/// `seq` is a cluster-unique sequence number (shard id in the high bits)
/// making every staged row a fresh insert; `_ct` carries the delta's
/// change_time so commit staleness survives the hop (-1 = unknown).
std::vector<Value> EncodeGroupDeltaRow(const GroupDelta& delta, int64_t seq);

/// Inverse of EncodeGroupDeltaRow (the sum count is derived from the row
/// arity). Fails on rows too short or with non-numeric slots.
Result<GroupDelta> DecodeGroupDeltaRow(const std::vector<Value>& row);

}  // namespace strip

#endif  // STRIP_RULES_NET_EFFECT_H_
