#ifndef STRIP_RULES_NET_EFFECT_H_
#define STRIP_RULES_NET_EFFECT_H_

#include <utility>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/bound_table_set.h"
#include "strip/storage/record.h"

namespace strip {

/// The collapsed ("net") effect of a transaction's changes to one table.
///
/// STRIP deliberately does NOT reduce transition or bound tables to net
/// effect — the full audit trail is exposed and "it is always possible for
/// the application to calculate net effect on its own using the transition
/// tables as provided" (§2). This utility is that calculation, offered as
/// a library helper for action functions that want collapsed semantics.
struct NetEffect {
  /// Rows that exist after the transaction but did not before.
  std::vector<RecordRef> inserted;
  /// Rows that existed before but not after (their pre-transaction image).
  std::vector<RecordRef> deleted;
  /// Rows changed in place: (pre-transaction image, final image).
  /// Chains that end at a value identical to where they started (e.g.
  /// a -> b -> a) collapse to nothing and are omitted.
  std::vector<std::pair<RecordRef, RecordRef>> updated;
};

/// Computes the net effect from the four transition tables (`inserted`,
/// `deleted`, `old`, `new`), as built by BuildTransitionTables. Change
/// chains are reconstructed through record identity: an update's old image
/// is the record installed by the previous event of the same row.
Result<NetEffect> ComputeNetEffect(const BoundTableSet& transition);

}  // namespace strip

#endif  // STRIP_RULES_NET_EFFECT_H_
