#ifndef STRIP_RULES_RULE_ENGINE_H_
#define STRIP_RULES_RULE_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/status.h"
#include "strip/rules/rule_def.h"
#include "strip/rules/unique_manager.h"
#include "strip/sql/expr_eval.h"
#include "strip/storage/catalog.h"
#include "strip/txn/lock_manager.h"
#include "strip/txn/task.h"
#include "strip/txn/transaction.h"

namespace strip {

class TraceRing;

/// Wiring the rule engine needs from the database engine.
struct RuleEngineDeps {
  Catalog* catalog = nullptr;
  LockManager* locks = nullptr;
  const ScalarFuncRegistry* scalar_funcs = nullptr;
  /// Lifecycle trace ring (may be null): merge events are recorded here so
  /// a transaction timeline shows firings batched into queued tasks.
  TraceRing* trace = nullptr;
  /// Runs a rule task: looks up the user function, opens the action
  /// transaction, executes, commits. Installed into every created task.
  std::function<Status(TaskControlBlock&)> action_runner;
  /// Shared task-id allocator.
  std::atomic<uint64_t>* task_ids = nullptr;
  /// Mirrors Database::Options::enable_compiled_exprs into the condition /
  /// evaluate query executions.
  bool disable_compiled_exprs = false;
};

/// Rule-processing statistics (feed the paper's metrics). Atomic because
/// in threaded mode multiple committing transactions (and action tasks
/// that themselves commit) update them concurrently.
struct RuleStats {
  std::atomic<uint64_t> commits_checked{0};  // transactions event-checked
  std::atomic<uint64_t> rules_triggered{0};  // event matched
  std::atomic<uint64_t> conditions_true{0};
  std::atomic<uint64_t> tasks_created{0};    // new action tasks enqueued
  std::atomic<uint64_t> firings_merged{0};   // batched into a queued task
};

/// The STRIP rule system (§2, §6.3). Holds rule definitions; at the end of
/// each transaction (prior to commit) scans its log for triggering events,
/// evaluates conditions, binds tables, and creates / merges action tasks.
class RuleEngine {
 public:
  explicit RuleEngine(RuleEngineDeps deps) : deps_(std::move(deps)) {}

  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  /// Validates and registers a rule. Rules sharing a user function must
  /// define their bound tables identically (§2); this is checked here.
  Status CreateRule(CreateRuleStmt stmt);

  Status DropRule(const std::string& name);

  /// Rule de/re-activation (§7 discusses emulating uniqueness with it).
  Status SetRuleEnabled(const std::string& name, bool enabled);

  const RuleDef* FindRule(const std::string& name) const;
  std::vector<std::string> ListRules() const;

  /// Event checking + condition evaluation + action-task creation for a
  /// committing transaction (§6.3). `commit_time` is the timestamp the
  /// engine will commit the transaction with; it stamps `commit_time`
  /// pseudo-columns and anchors delay windows. Returns the new tasks the
  /// caller must submit to the executor once the commit is durable;
  /// firings merged into already-queued unique tasks return no task.
  Result<std::vector<TaskPtr>> ProcessCommit(Transaction* txn,
                                             Timestamp commit_time);

  UniqueTxnManager& unique_manager() { return unique_; }
  const RuleStats& stats() const { return stats_; }

 private:
  /// Runs one rule against a committing transaction; appends any created
  /// tasks to `out`.
  Status FireRule(const RuleDef& rule, Transaction* txn,
                  Timestamp commit_time, const BoundTableSet& transition,
                  std::vector<TaskPtr>& out);

  /// `change_time` is the triggering transaction's data arrival time; it
  /// seeds the task's staleness stamps. The task runs as a child span of
  /// `parent_trace` (a fresh root if the triggering txn was untraced).
  TaskPtr NewActionTask(const RuleDef& rule, Timestamp commit_time,
                        Timestamp change_time,
                        const TraceContext& parent_trace,
                        BoundTableSet&& tables);

  RuleEngineDeps deps_;
  // Definition order matters for deterministic processing; the paper notes
  // rule consideration order is semantically unimportant (§2).
  std::vector<std::unique_ptr<RuleDef>> rules_;
  UniqueTxnManager unique_;
  RuleStats stats_;
};

}  // namespace strip

#endif  // STRIP_RULES_RULE_ENGINE_H_
