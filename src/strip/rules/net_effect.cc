#include "strip/rules/net_effect.h"

#include <algorithm>
#include <unordered_map>

#include "strip/rules/transition_tables.h"

namespace strip {

namespace {

enum class EventKind { kInsert, kDelete, kUpdate };

struct Event {
  int seq = 0;
  EventKind kind = EventKind::kInsert;
  RecordRef old_rec;  // update / delete
  RecordRef new_rec;  // update / insert
};

/// A row's life within the transaction.
struct Chain {
  bool born_here = false;  // started with an insert in this transaction
  RecordRef first_old;     // pre-transaction image (when !born_here)
  RecordRef current;       // latest image
};

Status ExtractEvents(const BoundTableSet& transition,
                     std::vector<Event>& out) {
  const TempTable* inserted = transition.Find("inserted");
  const TempTable* deleted = transition.Find("deleted");
  const TempTable* old_t = transition.Find("old");
  const TempTable* new_t = transition.Find("new");
  if (inserted == nullptr || deleted == nullptr || old_t == nullptr ||
      new_t == nullptr) {
    return Status::InvalidArgument(
        "net effect needs the four transition tables "
        "(inserted/deleted/old/new)");
  }
  int seq_col = inserted->schema().FindColumn(kExecuteOrderColumn);
  if (seq_col < 0) {
    return Status::InvalidArgument("transition tables lack execute_order");
  }
  auto rec_of = [](const TempTuple& t) { return t.slots.at(0); };
  for (const TempTuple& t : inserted->tuples()) {
    out.push_back(Event{
        static_cast<int>(inserted->Get(t, seq_col).as_int()),
        EventKind::kInsert, nullptr, rec_of(t)});
  }
  for (const TempTuple& t : deleted->tuples()) {
    out.push_back(Event{
        static_cast<int>(deleted->Get(t, seq_col).as_int()),
        EventKind::kDelete, rec_of(t), nullptr});
  }
  // Updates: pair old and new rows through their shared execute_order.
  std::unordered_map<int, RecordRef> old_by_seq;
  for (const TempTuple& t : old_t->tuples()) {
    old_by_seq[static_cast<int>(old_t->Get(t, seq_col).as_int())] = rec_of(t);
  }
  for (const TempTuple& t : new_t->tuples()) {
    int seq = static_cast<int>(new_t->Get(t, seq_col).as_int());
    auto it = old_by_seq.find(seq);
    if (it == old_by_seq.end()) {
      return Status::InvalidArgument(
          "old/new transition tables do not pair up by execute_order");
    }
    out.push_back(Event{seq, EventKind::kUpdate, it->second, rec_of(t)});
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return Status::OK();
}

}  // namespace

Result<NetEffect> ComputeNetEffect(const BoundTableSet& transition) {
  std::vector<Event> events;
  STRIP_RETURN_IF_ERROR(ExtractEvents(transition, events));

  // Chains keyed by the identity of the row's CURRENT record.
  std::unordered_map<const Record*, Chain> chains;
  NetEffect net;

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kInsert: {
        chains[e.new_rec.get()] = Chain{true, nullptr, e.new_rec};
        break;
      }
      case EventKind::kUpdate: {
        auto it = chains.find(e.old_rec.get());
        if (it == chains.end()) {
          // First touch of a pre-existing row.
          chains[e.new_rec.get()] = Chain{false, e.old_rec, e.new_rec};
        } else {
          Chain chain = it->second;
          chains.erase(it);
          chain.current = e.new_rec;
          chains[e.new_rec.get()] = std::move(chain);
        }
        break;
      }
      case EventKind::kDelete: {
        auto it = chains.find(e.old_rec.get());
        if (it == chains.end()) {
          net.deleted.push_back(e.old_rec);  // untouched row deleted
        } else {
          Chain chain = it->second;
          chains.erase(it);
          if (!chain.born_here) {
            net.deleted.push_back(chain.first_old);
          }
          // Inserted-then-deleted rows collapse to nothing (§2's
          // audit-trail example).
        }
        break;
      }
    }
  }

  // Flush surviving chains in the order of their finalizing event (the
  // one that installed the chain's current record), so output order is
  // deterministic and follows the transaction.
  for (const Event& e : events) {
    if (e.new_rec == nullptr) continue;
    auto it = chains.find(e.new_rec.get());
    if (it == chains.end() || it->second.current.get() != e.new_rec.get()) {
      continue;  // superseded image, not a chain end
    }
    Chain& chain = it->second;
    if (chain.born_here) {
      net.inserted.push_back(chain.current);
    } else if (chain.first_old->values != chain.current->values) {
      net.updated.emplace_back(chain.first_old, chain.current);
    }
    // A chain ending exactly where it started (a -> b -> a) is a no-op.
    chains.erase(it);
  }
  return net;
}

std::vector<GroupDelta> FoldGroupDeltas(std::vector<GroupDelta> rows) {
  std::vector<GroupDelta> out;
  std::unordered_map<Value, size_t, ValueHash> index;
  out.reserve(rows.size());
  for (GroupDelta& row : rows) {
    auto [it, inserted] = index.try_emplace(row.key, out.size());
    if (inserted) {
      out.push_back(std::move(row));
      continue;
    }
    GroupDelta& acc = out[it->second];
    if (row.sums.size() > acc.sums.size()) {
      acc.sums.resize(row.sums.size(), 0.0);
    }
    for (size_t i = 0; i < row.sums.size(); ++i) acc.sums[i] += row.sums[i];
    acc.count += row.count;
    // Min-fold the change time (ignoring unknowns): the folded delta is as
    // old as the oldest contribution it nets over.
    if (row.change_time >= 0 &&
        (acc.change_time < 0 || row.change_time < acc.change_time)) {
      acc.change_time = row.change_time;
    }
  }
  return out;
}

std::vector<Value> EncodeGroupDeltaRow(const GroupDelta& delta, int64_t seq) {
  std::vector<Value> row;
  row.reserve(delta.sums.size() + 4);
  row.push_back(Value::Int(seq));
  row.push_back(delta.key);
  for (double s : delta.sums) row.push_back(Value::Double(s));
  row.push_back(Value::Int(delta.count));
  row.push_back(Value::Int(delta.change_time));
  return row;
}

Result<GroupDelta> DecodeGroupDeltaRow(const std::vector<Value>& row) {
  if (row.size() < 4) {
    return Status::InvalidArgument("group-delta row too short");
  }
  GroupDelta d;
  d.key = row[1];
  d.sums.reserve(row.size() - 4);
  for (size_t i = 2; i + 2 < row.size(); ++i) {
    if (!row[i].is_numeric()) {
      return Status::InvalidArgument("group-delta sum slot is not numeric");
    }
    d.sums.push_back(row[i].as_double());
  }
  const Value& cnt = row[row.size() - 2];
  const Value& ct = row[row.size() - 1];
  if (cnt.type() != ValueType::kInt || ct.type() != ValueType::kInt) {
    return Status::InvalidArgument(
        "group-delta count / change-time slots must be integers");
  }
  d.count = cnt.as_int();
  d.change_time = ct.as_int();
  return d;
}

}  // namespace strip
