#ifndef STRIP_RULES_RULE_DEF_H_
#define STRIP_RULES_RULE_DEF_H_

#include <string>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/status.h"
#include "strip/sql/ast.h"
#include "strip/storage/catalog.h"
#include "strip/txn/txn_log.h"

namespace strip {

/// A validated rule (Figure 2 semantics). Built from a parsed
/// CreateRuleStmt; owns deep copies of the condition / evaluate queries.
class RuleDef {
 public:
  /// Validates `stmt` against the catalog:
  ///  - the target table exists,
  ///  - `updated` column lists name real columns,
  ///  - bind-as names do not collide with catalog tables or the transition
  ///    table names,
  ///  - `unique on` columns appear in the output of at least one bound
  ///    query,
  ///  - `unique on` without any bound query is rejected.
  static Result<RuleDef> Create(CreateRuleStmt stmt, const Catalog& catalog);

  RuleDef(RuleDef&&) = default;
  RuleDef& operator=(RuleDef&&) = default;

  const std::string& name() const { return stmt_.rule_name; }
  const std::string& table() const { return stmt_.table; }
  const std::vector<RuleEvent>& events() const { return stmt_.events; }
  const std::vector<RuleQuery>& condition() const { return stmt_.condition; }
  const std::vector<RuleQuery>& evaluate() const { return stmt_.evaluate; }
  const std::string& function_name() const { return stmt_.function_name; }
  bool unique() const { return stmt_.unique; }
  const std::vector<std::string>& unique_columns() const {
    return stmt_.unique_columns;
  }
  Timestamp delay_micros() const {
    return SecondsToMicros(stmt_.delay_seconds);
  }
  double delay_seconds() const { return stmt_.delay_seconds; }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Names of the tables bound by this rule's condition + evaluate
  /// queries, in definition order.
  std::vector<std::string> BoundTableNames() const;

 private:
  explicit RuleDef(CreateRuleStmt stmt) : stmt_(std::move(stmt)) {}

  CreateRuleStmt stmt_;
  bool enabled_ = true;
};

/// True iff a log operation satisfies one of the rule's events.
/// For `updated [cols]`, the update must change at least one named column.
bool EventMatches(const RuleEvent& event, LogOp op, const Schema& schema,
                  const RecordRef& old_rec, const RecordRef& new_rec);

}  // namespace strip

#endif  // STRIP_RULES_RULE_DEF_H_
