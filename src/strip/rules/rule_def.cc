#include "strip/rules/rule_def.h"

#include "strip/common/string_util.h"

namespace strip {

namespace {

bool IsTransitionName(const std::string& name) {
  return name == "inserted" || name == "deleted" || name == "old" ||
         name == "new";
}

}  // namespace

Result<RuleDef> RuleDef::Create(CreateRuleStmt stmt, const Catalog& catalog) {
  stmt.rule_name = ToLower(stmt.rule_name);
  stmt.table = ToLower(stmt.table);
  stmt.function_name = ToLower(stmt.function_name);
  for (auto& c : stmt.unique_columns) c = ToLower(c);

  STRIP_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(stmt.table));
  if (stmt.events.empty()) {
    return Status::InvalidArgument(
        StrFormat("rule '%s' has no transition predicate",
                  stmt.rule_name.c_str()));
  }
  for (auto& ev : stmt.events) {
    for (auto& col : ev.columns) {
      col = ToLower(col);
      if (table->schema().FindColumn(col) < 0) {
        return Status::NotFound(StrFormat(
            "rule '%s': no column '%s' in table '%s'",
            stmt.rule_name.c_str(), col.c_str(), stmt.table.c_str()));
      }
    }
  }
  if (stmt.function_name.empty()) {
    return Status::InvalidArgument(
        StrFormat("rule '%s' names no function", stmt.rule_name.c_str()));
  }

  // Validate bind-as names and collect the bound output columns.
  std::vector<std::string> bound_columns;
  auto check_queries = [&](std::vector<RuleQuery>& queries) -> Status {
    for (auto& rq : queries) {
      if (rq.bind_as.empty()) continue;
      rq.bind_as = ToLower(rq.bind_as);
      if (IsTransitionName(rq.bind_as)) {
        return Status::InvalidArgument(StrFormat(
            "rule '%s': bound table name '%s' is reserved",
            stmt.rule_name.c_str(), rq.bind_as.c_str()));
      }
      if (catalog.FindTable(rq.bind_as) != nullptr) {
        return Status::AlreadyExists(StrFormat(
            "rule '%s': bound table name '%s' collides with a table (names "
            "chosen for bound tables should not be used elsewhere, §2)",
            stmt.rule_name.c_str(), rq.bind_as.c_str()));
      }
      if (rq.query.star) {
        // `select *` output columns depend on the FROM tables; unique
        // column validation is deferred to run time for these.
        continue;
      }
      for (size_t i = 0; i < rq.query.items.size(); ++i) {
        bound_columns.push_back(
            rq.query.items[i].OutputName(static_cast<int>(i)));
      }
    }
    return Status::OK();
  };
  STRIP_RETURN_IF_ERROR(check_queries(stmt.condition));
  STRIP_RETURN_IF_ERROR(check_queries(stmt.evaluate));

  bool any_bound = false;
  bool any_star_bound = false;
  for (const auto& rq : stmt.condition) {
    if (!rq.bind_as.empty()) {
      any_bound = true;
      any_star_bound |= rq.query.star;
    }
  }
  for (const auto& rq : stmt.evaluate) {
    if (!rq.bind_as.empty()) {
      any_bound = true;
      any_star_bound |= rq.query.star;
    }
  }
  if (!stmt.unique_columns.empty()) {
    if (!stmt.unique) {
      return Status::InvalidArgument(
          StrFormat("rule '%s': unique columns without UNIQUE",
                    stmt.rule_name.c_str()));
    }
    if (!any_bound) {
      return Status::InvalidArgument(StrFormat(
          "rule '%s': UNIQUE ON requires at least one bound table",
          stmt.rule_name.c_str()));
    }
    if (!any_star_bound) {
      for (const std::string& col : stmt.unique_columns) {
        bool found = false;
        for (const std::string& bc : bound_columns) {
          if (bc == col) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::NotFound(StrFormat(
              "rule '%s': unique column '%s' is not produced by any bound "
              "query",
              stmt.rule_name.c_str(), col.c_str()));
        }
      }
    }
  }
  return RuleDef(std::move(stmt));
}

std::vector<std::string> RuleDef::BoundTableNames() const {
  std::vector<std::string> out;
  for (const auto& rq : stmt_.condition) {
    if (!rq.bind_as.empty()) out.push_back(rq.bind_as);
  }
  for (const auto& rq : stmt_.evaluate) {
    if (!rq.bind_as.empty()) out.push_back(rq.bind_as);
  }
  return out;
}

bool EventMatches(const RuleEvent& event, LogOp op, const Schema& schema,
                  const RecordRef& old_rec, const RecordRef& new_rec) {
  switch (event.kind) {
    case RuleEventKind::kInserted:
      return op == LogOp::kInsert;
    case RuleEventKind::kDeleted:
      return op == LogOp::kDelete;
    case RuleEventKind::kUpdated: {
      if (op != LogOp::kUpdate) return false;
      if (event.columns.empty()) return true;
      for (const std::string& col : event.columns) {
        int c = schema.FindColumn(col);
        if (c < 0) continue;
        if (old_rec->values[static_cast<size_t>(c)] !=
            new_rec->values[static_cast<size_t>(c)]) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace strip
