#ifndef STRIP_RULES_TRANSITION_TABLES_H_
#define STRIP_RULES_TRANSITION_TABLES_H_

#include "strip/storage/bound_table_set.h"
#include "strip/storage/table.h"
#include "strip/txn/txn_log.h"

namespace strip {

/// Name of the sequence column the system appends to transition tables (§2).
inline constexpr char kExecuteOrderColumn[] = "execute_order";

/// Builds the four transition tables — `inserted`, `deleted`, `old`, `new`
/// — for `table` from a transaction's log (§2, §6.3).
///
/// Each transition table has the base table's columns (pointer-backed, one
/// slot per tuple) plus the materialized `execute_order` column sequencing
/// the changes within the transaction; the old/new pair of an update shares
/// its execute_order value. The log is NOT reduced to net effect: a tuple
/// inserted then deleted appears in both `inserted` and `deleted`.
BoundTableSet BuildTransitionTables(const Table& table, const TxnLog& log);

/// Schema of a transition table for `table` (columns + execute_order).
Schema TransitionSchema(const Table& table);

}  // namespace strip

#endif  // STRIP_RULES_TRANSITION_TABLES_H_
