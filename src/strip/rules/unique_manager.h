#ifndef STRIP_RULES_UNIQUE_MANAGER_H_
#define STRIP_RULES_UNIQUE_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "strip/common/spin_lock.h"
#include "strip/common/status.h"
#include "strip/storage/bound_table_set.h"
#include "strip/txn/task.h"

namespace strip {

/// Splits a rule firing's bound tables into per-unique-key partitions
/// (Appendix A). Tables containing unique columns are partitioned by the
/// distinct combinations of their unique-column values; tables containing
/// none are passed whole (cloned) to every partition. With no unique
/// columns, the result is a single partition with an empty key (coarse
/// `unique`). Fails if a unique column appears in no table or in several.
Result<std::vector<std::pair<std::vector<Value>, BoundTableSet>>>
PartitionByUniqueColumns(BoundTableSet&& tables,
                         const std::vector<std::string>& unique_columns);

/// Implements unique transactions (§6.3): one hash table per user function
/// mapping unique-column values to the queued (not yet started) task. A new
/// firing either merges its bound tables into the queued task or registers
/// a fresh one. All hash-table accesses are spinlock-guarded, as in STRIP.
///
/// The function-name -> hash-table directory is itself striped (hash of
/// the function name) so concurrent commits and task starts for different
/// functions never touch the same directory spinlock; within a stripe the
/// lock is held only for the pointer lookup, and the per-function table
/// has its own spinlock for the queued-task map.
class UniqueTxnManager {
 public:
  UniqueTxnManager() = default;
  UniqueTxnManager(const UniqueTxnManager&) = delete;
  UniqueTxnManager& operator=(const UniqueTxnManager&) = delete;

  /// Builds (if needed) the per-function hash table; the paper creates it
  /// when the first rule executing the function is defined.
  void EnsureFunction(const std::string& function_name);

  /// Factory for a fresh task; receives the unique key and the partition's
  /// bound tables.
  using TaskFactory = std::function<TaskPtr(const std::vector<Value>& key,
                                            BoundTableSet&& tables)>;

  /// Either appends `tables` to the queued task for (function, key) —
  /// returning nullptr — or creates, registers, and returns a new task the
  /// caller must submit to the executor. A queued task that has already
  /// started no longer accepts merges (§2): a fresh task replaces it.
  /// `change_time` is the feed-arrival time of the triggering change; the
  /// queued task's staleness stamps (oldest/newest change, batched firing
  /// count) are folded under its merge lock. `parent_trace_id` is the
  /// triggering transaction's trace (0 = untraced); a merged firing
  /// appends it to the queued task's merged_parent_traces so the causal
  /// link survives the fold.
  Result<TaskPtr> MergeOrCreate(const std::string& function_name,
                                const std::vector<Value>& key,
                                BoundTableSet&& tables,
                                Timestamp change_time,
                                uint64_t parent_trace_id,
                                const TaskFactory& factory);

  /// Untraced convenience overload (tests / benches without a trace).
  Result<TaskPtr> MergeOrCreate(const std::string& function_name,
                                const std::vector<Value>& key,
                                BoundTableSet&& tables,
                                Timestamp change_time,
                                const TaskFactory& factory) {
    return MergeOrCreate(function_name, key, std::move(tables), change_time,
                         /*parent_trace_id=*/0, factory);
  }

  /// Removes the task's hash entry; called when the task begins to run
  /// (§6.3). Idempotent.
  void OnTaskStart(const TaskControlBlock& task);

  /// Number of queued unique tasks for a function (diagnostics / tests).
  size_t NumQueued(const std::string& function_name) const;

  /// Audit API for the chaos invariant checker (invariant c): every
  /// directory entry as (function name, queued task). The snapshot is
  /// internally consistent per stripe; call between simulated steps (no
  /// concurrent merges / starts) for a fully consistent view.
  std::vector<std::pair<std::string, TaskPtr>> SnapshotQueued() const;

  /// Total bound-table merges performed (batched firings).
  uint64_t merge_count() const { return merge_count_; }

 private:
  static constexpr size_t kNumStripes = 16;

  struct FuncTable {
    mutable SpinLock lock;
    std::unordered_map<std::vector<Value>, TaskPtr, ValueVectorHash,
                       ValueVectorEq>
        queued;
  };
  /// One directory partition; padded so stripe spinlocks don't false-share.
  struct alignas(64) Stripe {
    mutable SpinLock lock;
    // FuncTable values are stable under rehash (unordered_map never moves
    // mapped objects), so pointers handed out survive later inserts.
    std::unordered_map<std::string, FuncTable> tables;
  };

  static size_t StripeOf(const std::string& function_name);

  FuncTable* GetOrCreate(const std::string& function_name);
  FuncTable* Find(const std::string& function_name);
  const FuncTable* Find(const std::string& function_name) const;

  std::array<Stripe, kNumStripes> stripes_;
  std::atomic<uint64_t> merge_count_{0};
};

}  // namespace strip

#endif  // STRIP_RULES_UNIQUE_MANAGER_H_
