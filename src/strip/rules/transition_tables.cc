#include "strip/rules/transition_tables.h"

#include "strip/common/logging.h"

namespace strip {

Schema TransitionSchema(const Table& table) {
  Schema s = table.schema();
  s.AddColumn(kExecuteOrderColumn, ValueType::kInt);
  return s;
}

namespace {

/// A transition table layout: base columns pointer-backed through slot 0,
/// execute_order materialized.
TempTable MakeTransitionTable(const std::string& name, const Table& table) {
  Schema schema = TransitionSchema(table);
  std::vector<TempColumnMap> map;
  map.reserve(static_cast<size_t>(schema.num_columns()));
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    map.push_back(TempColumnMap{0, c});
  }
  map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, 0});
  return TempTable(name, std::move(schema), std::move(map), /*num_slots=*/1,
                   /*num_extra=*/1);
}

void AppendTransitionRow(TempTable& t, const RecordRef& rec,
                         int execute_order) {
  TempTuple tuple;
  tuple.slots.push_back(rec);
  tuple.extra.push_back(Value::Int(execute_order));
  t.Append(std::move(tuple));
}

}  // namespace

BoundTableSet BuildTransitionTables(const Table& table, const TxnLog& log) {
  TempTable inserted = MakeTransitionTable("inserted", table);
  TempTable deleted = MakeTransitionTable("deleted", table);
  TempTable old_t = MakeTransitionTable("old", table);
  TempTable new_t = MakeTransitionTable("new", table);

  // Size the tables up front: big batched transactions (a delay window's
  // worth of merged changes) would otherwise regrow each vector log(n)
  // times.
  size_t n_ins = 0, n_del = 0, n_upd = 0;
  for (const LogEntry& e : log.entries()) {
    if (e.table != &table) continue;
    switch (e.op) {
      case LogOp::kInsert: ++n_ins; break;
      case LogOp::kDelete: ++n_del; break;
      case LogOp::kUpdate: ++n_upd; break;
    }
  }
  inserted.Reserve(n_ins);
  deleted.Reserve(n_del);
  old_t.Reserve(n_upd);
  new_t.Reserve(n_upd);

  for (const LogEntry& e : log.entries()) {
    if (e.table != &table) continue;
    switch (e.op) {
      case LogOp::kInsert:
        AppendTransitionRow(inserted, e.new_rec, e.execute_order);
        break;
      case LogOp::kDelete:
        AppendTransitionRow(deleted, e.old_rec, e.execute_order);
        break;
      case LogOp::kUpdate:
        // Old and new images of one update share their execute_order (§2).
        AppendTransitionRow(old_t, e.old_rec, e.execute_order);
        AppendTransitionRow(new_t, e.new_rec, e.execute_order);
        break;
    }
  }

  BoundTableSet out;
  Status st = out.Add(std::move(inserted));
  STRIP_CHECK(st.ok());
  st = out.Add(std::move(deleted));
  STRIP_CHECK(st.ok());
  st = out.Add(std::move(old_t));
  STRIP_CHECK(st.ok());
  st = out.Add(std::move(new_t));
  STRIP_CHECK(st.ok());
  return out;
}

}  // namespace strip
