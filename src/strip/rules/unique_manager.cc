#include "strip/rules/unique_manager.h"

#include <algorithm>

#include "strip/common/string_util.h"

namespace strip {

Result<std::vector<std::pair<std::vector<Value>, BoundTableSet>>>
PartitionByUniqueColumns(BoundTableSet&& tables,
                         const std::vector<std::string>& unique_columns) {
  std::vector<std::pair<std::vector<Value>, BoundTableSet>> out;
  if (unique_columns.empty()) {
    out.emplace_back(std::vector<Value>{}, std::move(tables));
    return out;
  }

  // Locate each unique column: (table index, column index). Appendix A
  // assumes column names are unique across the rule's bound tables.
  struct ColumnHome {
    int table = -1;
    int column = -1;
  };
  std::vector<ColumnHome> homes(unique_columns.size());
  for (size_t u = 0; u < unique_columns.size(); ++u) {
    for (size_t t = 0; t < tables.tables().size(); ++t) {
      int c = tables.tables()[t].schema().FindColumn(unique_columns[u]);
      if (c < 0) continue;
      if (homes[u].table >= 0) {
        return Status::InvalidArgument(StrFormat(
            "unique column '%s' appears in more than one bound table",
            unique_columns[u].c_str()));
      }
      homes[u] = ColumnHome{static_cast<int>(t), c};
    }
    if (homes[u].table < 0) {
      return Status::NotFound(StrFormat(
          "unique column '%s' appears in no bound table",
          unique_columns[u].c_str()));
    }
  }

  // T^u = tables holding at least one unique column.
  std::vector<bool> is_unique_table(tables.tables().size(), false);
  for (const ColumnHome& h : homes) {
    is_unique_table[static_cast<size_t>(h.table)] = true;
  }

  // Partition each T^u table by its own unique columns; the global key is
  // the concatenation in unique_columns order, and the key set is the
  // cross product of the per-table key sets (equivalent to projecting the
  // product relation B of Appendix A).
  struct TablePartitions {
    // distinct per-table keys, each with the tuple indexes carrying it
    std::vector<std::vector<Value>> keys;
    std::vector<std::vector<size_t>> tuple_indexes;
  };
  std::vector<TablePartitions> parts(tables.tables().size());
  for (size_t t = 0; t < tables.tables().size(); ++t) {
    if (!is_unique_table[t]) continue;
    const TempTable& table = tables.tables()[t];
    std::unordered_map<std::vector<Value>, size_t, ValueVectorHash,
                       ValueVectorEq>
        index_of;
    for (size_t row = 0; row < table.size(); ++row) {
      std::vector<Value> key;
      for (size_t u = 0; u < homes.size(); ++u) {
        if (homes[u].table != static_cast<int>(t)) continue;
        key.push_back(table.Get(row, homes[u].column));
      }
      auto [it, inserted] = index_of.try_emplace(key, parts[t].keys.size());
      if (inserted) {
        parts[t].keys.push_back(key);
        parts[t].tuple_indexes.emplace_back();
      }
      parts[t].tuple_indexes[it->second].push_back(row);
    }
  }

  // Enumerate the cross product of per-table key sets.
  std::vector<size_t> unique_tables;
  for (size_t t = 0; t < tables.tables().size(); ++t) {
    if (is_unique_table[t]) unique_tables.push_back(t);
  }
  // If any T^u table is empty there are no key combinations, hence no
  // triggered transactions.
  for (size_t t : unique_tables) {
    if (parts[t].keys.empty()) return out;
  }

  std::vector<size_t> choice(unique_tables.size(), 0);
  for (;;) {
    // Assemble the global key in unique_columns order.
    std::vector<Value> key(homes.size());
    for (size_t u = 0; u < homes.size(); ++u) {
      size_t t = static_cast<size_t>(homes[u].table);
      size_t which = 0;
      for (size_t i = 0; i < unique_tables.size(); ++i) {
        if (unique_tables[i] == t) which = i;
      }
      // Position of column u within table t's per-table key vector:
      // per-table keys were built in unique_columns order restricted to t.
      size_t pos = 0;
      for (size_t v = 0; v < u; ++v) {
        if (homes[v].table == homes[u].table) ++pos;
      }
      key[u] = parts[t].keys[choice[which]][pos];
    }

    // Build this partition's bound tables.
    BoundTableSet partition;
    for (size_t t = 0; t < tables.tables().size(); ++t) {
      const TempTable& src = tables.tables()[t];
      TempTable dst(src.name(), src.schema(), src.column_map(),
                    src.num_slots(), src.num_extra());
      if (is_unique_table[t]) {
        size_t which = 0;
        for (size_t i = 0; i < unique_tables.size(); ++i) {
          if (unique_tables[i] == t) which = i;
        }
        for (size_t row : parts[t].tuple_indexes[choice[which]]) {
          dst.Append(src.tuples()[row]);
        }
      } else {
        // Tables without unique columns are passed whole (Appendix A).
        for (const TempTuple& tup : src.tuples()) dst.Append(tup);
      }
      STRIP_RETURN_IF_ERROR(partition.Add(std::move(dst)));
    }
    out.emplace_back(std::move(key), std::move(partition));

    // Advance the cross-product counter.
    size_t i = 0;
    for (; i < unique_tables.size(); ++i) {
      if (++choice[i] < parts[unique_tables[i]].keys.size()) break;
      choice[i] = 0;
    }
    if (i == unique_tables.size()) break;
  }
  return out;
}

size_t UniqueTxnManager::StripeOf(const std::string& function_name) {
  return std::hash<std::string>()(function_name) % kNumStripes;
}

UniqueTxnManager::FuncTable* UniqueTxnManager::GetOrCreate(
    const std::string& function_name) {
  Stripe& stripe = stripes_[StripeOf(function_name)];
  SpinLockGuard g(stripe.lock);
  return &stripe.tables.try_emplace(function_name).first->second;
}

UniqueTxnManager::FuncTable* UniqueTxnManager::Find(
    const std::string& function_name) {
  return const_cast<FuncTable*>(
      static_cast<const UniqueTxnManager*>(this)->Find(function_name));
}

const UniqueTxnManager::FuncTable* UniqueTxnManager::Find(
    const std::string& function_name) const {
  const Stripe& stripe = stripes_[StripeOf(function_name)];
  SpinLockGuard g(stripe.lock);
  auto it = stripe.tables.find(function_name);
  return it == stripe.tables.end() ? nullptr : &it->second;
}

void UniqueTxnManager::EnsureFunction(const std::string& function_name) {
  GetOrCreate(ToLower(function_name));
}

Result<TaskPtr> UniqueTxnManager::MergeOrCreate(
    const std::string& function_name, const std::vector<Value>& key,
    BoundTableSet&& tables, Timestamp change_time,
    uint64_t parent_trace_id, const TaskFactory& factory) {
  FuncTable* ft = GetOrCreate(function_name);
  SpinLockGuard g(ft->lock);
  auto it = ft->queued.find(key);
  if (it != ft->queued.end()) {
    TaskPtr queued = it->second;
    SpinLockGuard tg(queued->merge_lock);
    if (!queued->started) {
      STRIP_RETURN_IF_ERROR(
          queued->bound_tables.MergeFrom(std::move(tables)));
      if (queued->oldest_change_time < 0 ||
          change_time < queued->oldest_change_time) {
        queued->oldest_change_time = change_time;
      }
      if (change_time > queued->newest_change_time) {
        queued->newest_change_time = change_time;
      }
      ++queued->batched_firings;
      if (parent_trace_id != 0) {
        queued->merged_parent_traces.push_back(parent_trace_id);
      }
      merge_count_.fetch_add(1, std::memory_order_relaxed);
      return TaskPtr(nullptr);  // merged; nothing to submit
    }
    // The queued task began running: its bound tables are fixed (§2).
    // Fall through to replace the entry with a fresh task.
  }
  TaskPtr fresh = factory(key, std::move(tables));
  fresh->is_unique = true;
  fresh->unique_key = key;
  ft->queued[key] = fresh;
  return fresh;
}

void UniqueTxnManager::OnTaskStart(const TaskControlBlock& task) {
  if (!task.is_unique) return;
  // A unique task always has its function table (created by MergeOrCreate
  // or EnsureFunction); look it up without mutating the directory so the
  // task-start release path stays read-only on the stripe.
  FuncTable* ft = Find(task.function_name);
  if (ft == nullptr) return;
  SpinLockGuard g(ft->lock);
  auto it = ft->queued.find(task.unique_key);
  if (it != ft->queued.end() && it->second.get() == &task) {
    ft->queued.erase(it);
  }
}

size_t UniqueTxnManager::NumQueued(const std::string& function_name) const {
  const FuncTable* ft = Find(ToLower(function_name));
  if (ft == nullptr) return 0;
  SpinLockGuard g(ft->lock);
  return ft->queued.size();
}

std::vector<std::pair<std::string, TaskPtr>>
UniqueTxnManager::SnapshotQueued() const {
  std::vector<std::pair<std::string, TaskPtr>> out;
  for (const Stripe& stripe : stripes_) {
    SpinLockGuard sg(stripe.lock);
    for (const auto& [name, ft] : stripe.tables) {
      // Stripe lock -> FuncTable lock is safe: no path takes them in the
      // reverse order (MergeOrCreate releases the stripe before locking
      // the function table, but never re-enters the stripe under it).
      SpinLockGuard fg(ft.lock);
      for (const auto& [key, task] : ft.queued) {
        out.emplace_back(name, task);
      }
    }
  }
  return out;
}

}  // namespace strip
