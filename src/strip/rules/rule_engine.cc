#include "strip/rules/rule_engine.h"

#include "strip/common/string_util.h"
#include "strip/obs/trace_ring.h"
#include "strip/rules/transition_tables.h"
#include "strip/sql/executor.h"

namespace strip {

Status RuleEngine::CreateRule(CreateRuleStmt stmt) {
  STRIP_ASSIGN_OR_RETURN(RuleDef rule,
                         RuleDef::Create(std::move(stmt), *deps_.catalog));
  if (FindRule(rule.name()) != nullptr) {
    return Status::AlreadyExists(
        StrFormat("rule '%s' already exists", rule.name().c_str()));
  }

  // Rules executing the same user function must define their bound tables
  // identically (§2): same names, same defining queries.
  auto bindings_of = [](const RuleDef& r) {
    std::map<std::string, std::string> out;
    for (const auto& rq : r.condition()) {
      if (!rq.bind_as.empty()) out[rq.bind_as] = rq.query.ToString();
    }
    for (const auto& rq : r.evaluate()) {
      if (!rq.bind_as.empty()) out[rq.bind_as] = rq.query.ToString();
    }
    return out;
  };
  auto mine = bindings_of(rule);
  for (const auto& existing : rules_) {
    if (existing->function_name() != rule.function_name()) continue;
    if (bindings_of(*existing) != mine) {
      return Status::InvalidArgument(StrFormat(
          "rule '%s': bound tables differ from rule '%s' executing the same "
          "function '%s' (bound tables of rules sharing a function must be "
          "defined identically, §2)",
          rule.name().c_str(), existing->name().c_str(),
          rule.function_name().c_str()));
    }
  }

  // The paper creates the unique hash table when the first rule executing
  // the transaction is defined (§6.3).
  if (rule.unique()) unique_.EnsureFunction(rule.function_name());

  rules_.push_back(std::make_unique<RuleDef>(std::move(rule)));
  return Status::OK();
}

Status RuleEngine::DropRule(const std::string& name) {
  std::string key = ToLower(name);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->name() == key) {
      rules_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no rule '%s'", key.c_str()));
}

Status RuleEngine::SetRuleEnabled(const std::string& name, bool enabled) {
  std::string key = ToLower(name);
  for (auto& r : rules_) {
    if (r->name() == key) {
      r->set_enabled(enabled);
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no rule '%s'", key.c_str()));
}

const RuleDef* RuleEngine::FindRule(const std::string& name) const {
  std::string key = ToLower(name);
  for (const auto& r : rules_) {
    if (r->name() == key) return r.get();
  }
  return nullptr;
}

std::vector<std::string> RuleEngine::ListRules() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& r : rules_) out.push_back(r->name());
  return out;
}

TaskPtr RuleEngine::NewActionTask(const RuleDef& rule, Timestamp commit_time,
                                  Timestamp change_time,
                                  const TraceContext& parent_trace,
                                  BoundTableSet&& tables) {
  auto task = std::make_shared<TaskControlBlock>(
      deps_.task_ids->fetch_add(1, std::memory_order_relaxed));
  task->release_time = commit_time + rule.delay_micros();
  task->function_name = rule.function_name();
  task->bound_tables = std::move(tables);
  task->oldest_change_time = change_time;
  task->newest_change_time = change_time;
  // The firing continues the triggering transaction's causal trace; an
  // untraced trigger (ad-hoc SQL) starts a root here so the action and any
  // rules it cascades into still share one trace.
  task->trace = ChildOf(parent_trace);
  task->work = deps_.action_runner;
  stats_.tasks_created.fetch_add(1, std::memory_order_relaxed);
  return task;
}

Status RuleEngine::FireRule(const RuleDef& rule, Transaction* txn,
                            Timestamp commit_time,
                            const BoundTableSet& transition,
                            std::vector<TaskPtr>& out) {
  stats_.rules_triggered.fetch_add(1, std::memory_order_relaxed);

  std::map<std::string, Value> pseudo;
  pseudo.emplace("commit_time", Value::Int(commit_time));

  ExecContext ctx;
  ctx.catalog = deps_.catalog;
  ctx.locks = deps_.locks;
  ctx.txn = txn;
  ctx.transition = &transition;
  ctx.funcs = deps_.scalar_funcs;
  ctx.pseudo = &pseudo;
  ctx.disable_compiled_exprs = deps_.disable_compiled_exprs;
  SqlExecutor executor(ctx);

  BoundTableSet bound;

  // Condition: every query must return at least one row (§2).
  for (const RuleQuery& rq : rule.condition()) {
    std::string name = rq.bind_as.empty() ? "_cond" : rq.bind_as;
    STRIP_ASSIGN_OR_RETURN(TempTable result,
                           executor.ExecuteSelect(rq.query, name));
    if (result.size() == 0) return Status::OK();  // condition false
    if (!rq.bind_as.empty()) {
      STRIP_RETURN_IF_ERROR(bound.Add(std::move(result)));
    }
  }
  stats_.conditions_true.fetch_add(1, std::memory_order_relaxed);

  // Evaluate clause: computed only when the condition holds; purely for
  // passing data to the action (§2).
  for (const RuleQuery& rq : rule.evaluate()) {
    std::string name = rq.bind_as.empty() ? "_eval" : rq.bind_as;
    STRIP_ASSIGN_OR_RETURN(TempTable result,
                           executor.ExecuteSelect(rq.query, name));
    if (!rq.bind_as.empty()) {
      STRIP_RETURN_IF_ERROR(bound.Add(std::move(result)));
    }
  }

  const Timestamp change_time = txn->arrival_time();
  if (!rule.unique()) {
    out.push_back(NewActionTask(rule, commit_time, change_time, txn->trace(),
                                std::move(bound)));
    return Status::OK();
  }

  // Unique transaction path: partition by the unique columns (Appendix A),
  // then merge into queued tasks or create new ones (§6.3).
  STRIP_ASSIGN_OR_RETURN(
      auto partitions,
      PartitionByUniqueColumns(std::move(bound), rule.unique_columns()));
  for (auto& [key, tables] : partitions) {
    STRIP_ASSIGN_OR_RETURN(
        TaskPtr created,
        unique_.MergeOrCreate(
            rule.function_name(), key, std::move(tables), change_time,
            txn->trace().trace_id,
            [&](const std::vector<Value>&, BoundTableSet&& t) {
              return NewActionTask(rule, commit_time, change_time,
                                   txn->trace(), std::move(t));
            }));
    if (created != nullptr) {
      out.push_back(std::move(created));
    } else if (deps_.trace != nullptr) {
      deps_.trace->Record(TraceEventKind::kMerge, txn->id(), commit_time,
                          rule.function_name().c_str(),
                          txn->trace().trace_id);
    }
  }
  stats_.firings_merged.store(unique_.merge_count(), std::memory_order_relaxed);
  return Status::OK();
}

Result<std::vector<TaskPtr>> RuleEngine::ProcessCommit(
    Transaction* txn, Timestamp commit_time) {
  std::vector<TaskPtr> out;
  const TxnLog& log = txn->log();
  if (log.empty() || rules_.empty()) return out;
  stats_.commits_checked.fetch_add(1, std::memory_order_relaxed);

  // Transition tables are built per touched table, shared by its rules.
  std::map<const Table*, BoundTableSet> transitions;

  for (const auto& rule : rules_) {
    if (!rule->enabled()) continue;
    Table* table = deps_.catalog->FindTable(rule->table());
    if (table == nullptr) continue;  // table dropped after rule creation

    bool triggered = false;
    for (const LogEntry& e : log.entries()) {
      if (e.table != table) continue;
      for (const RuleEvent& ev : rule->events()) {
        if (EventMatches(ev, e.op, table->schema(), e.old_rec, e.new_rec)) {
          triggered = true;
          break;
        }
      }
      if (triggered) break;
    }
    if (!triggered) continue;

    auto it = transitions.find(table);
    if (it == transitions.end()) {
      it = transitions
               .emplace(table, BuildTransitionTables(*table, log))
               .first;
    }
    STRIP_RETURN_IF_ERROR(
        FireRule(*rule, txn, commit_time, it->second, out));
  }
  return out;
}

}  // namespace strip
