#ifndef STRIP_STORAGE_BOUND_TABLE_SET_H_
#define STRIP_STORAGE_BOUND_TABLE_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/temp_table.h"

namespace strip {

/// The named temporary tables a triggered task can read (§6.3): transition
/// tables and/or `bind as` query results. Resolved BEFORE the catalog when
/// the task's queries name a table. Read-only from the task's perspective.
class BoundTableSet {
 public:
  BoundTableSet() = default;
  BoundTableSet(BoundTableSet&&) = default;
  BoundTableSet& operator=(BoundTableSet&&) = default;
  BoundTableSet(const BoundTableSet&) = delete;
  BoundTableSet& operator=(const BoundTableSet&) = delete;

  /// Adds a table under its own name. Fails on duplicate names.
  Status Add(TempTable table);

  /// The table named `name` (case-insensitive), or nullptr.
  const TempTable* Find(const std::string& name) const;
  TempTable* FindMutable(const std::string& name);

  /// Appends every table of `other` into the same-named table here — the
  /// unique-transaction batching merge. Requires both sets to have the same
  /// table names with identical schemas/layouts.
  Status MergeFrom(BoundTableSet&& other);

  size_t size() const { return tables_.size(); }
  const std::vector<TempTable>& tables() const { return tables_; }
  std::vector<TempTable>& tables() { return tables_; }

  /// Total number of tuples across all tables (batch size metric).
  size_t TotalTuples() const;

  /// Refcount audit API (chaos invariant a): every RecordRef pin across
  /// every bound table, one call per pin.
  template <typename Fn>
  void ForEachPinnedRecord(Fn&& fn) const {
    for (const TempTable& t : tables_) t.ForEachPinnedRecord(fn);
  }

 private:
  std::vector<TempTable> tables_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_BOUND_TABLE_SET_H_
