#include "strip/storage/table.h"

#include "strip/common/string_util.h"

namespace strip {

Table::Table(std::string name, Schema schema)
    : name_(ToLower(name)), schema_(std::move(schema)) {}

Result<RecordRef> Table::ValidateRecord(RecordRef rec) const {
  if (rec == nullptr) {
    return Status::InvalidArgument("null record");
  }
  if (static_cast<int>(rec->values.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "record arity %zu does not match schema of table '%s' (%d columns)",
        rec->values.size(), name_.c_str(), schema_.num_columns()));
  }
  bool needs_coercion = false;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    const Value& v = rec->values[static_cast<size_t>(i)];
    if (v.is_null()) continue;
    ValueType want = schema_.column(i).type;
    if (v.type() == want) continue;
    if (want == ValueType::kDouble && v.type() == ValueType::kInt) {
      needs_coercion = true;
      continue;
    }
    return Status::InvalidArgument(StrFormat(
        "type mismatch in table '%s' column '%s': expected %s, got %s",
        name_.c_str(), schema_.column(i).name.c_str(), ValueTypeName(want),
        ValueTypeName(v.type())));
  }
  if (!needs_coercion) return rec;
  // Store ints destined for double columns as doubles so that stored data
  // is uniformly typed (fixed-length fields in STRIP v2.0).
  std::vector<Value> coerced = rec->values;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    Value& v = coerced[static_cast<size_t>(i)];
    if (!v.is_null() && schema_.column(i).type == ValueType::kDouble &&
        v.type() == ValueType::kInt) {
      v = Value::Double(v.as_double());
    }
  }
  return MakeRecord(std::move(coerced));
}

RowHandle Table::Install(uint64_t id, RecordRef rec) {
  RowHandle h = rows_.Allocate();
  h->id = id;
  h->rec = std::move(rec);
  row_by_id_.emplace(id, h);
  for (auto& idx : indexes_) {
    idx->Insert(h->rec->values[static_cast<size_t>(idx->column())], h);
  }
  return h;
}

Result<RowHandle> Table::Insert(RecordRef rec) {
  STRIP_ASSIGN_OR_RETURN(rec, ValidateRecord(std::move(rec)));
  return Install(next_row_id_++, std::move(rec));
}

void Table::Erase(RowHandle row) {
  for (auto& idx : indexes_) {
    idx->Erase(row->rec->values[static_cast<size_t>(idx->column())], row);
  }
  row_by_id_.erase(row->id);
  rows_.Release(row);
}

RowHandle Table::FindRow(uint64_t id) {
  auto it = row_by_id_.find(id);
  return it == row_by_id_.end() ? RowHandle() : it->second;
}

Result<RowHandle> Table::ResurrectRow(uint64_t id, RecordRef rec) {
  if (row_by_id_.count(id) > 0) {
    return Status::FailedPrecondition(
        StrFormat("row %llu of table '%s' is still live",
                  static_cast<unsigned long long>(id), name_.c_str()));
  }
  STRIP_ASSIGN_OR_RETURN(rec, ValidateRecord(std::move(rec)));
  return Install(id, std::move(rec));
}

Status Table::Update(RowHandle row, RecordRef rec) {
  STRIP_ASSIGN_OR_RETURN(rec, ValidateRecord(std::move(rec)));
  for (auto& idx : indexes_) {
    size_t col = static_cast<size_t>(idx->column());
    const Value& old_key = row->rec->values[col];
    const Value& new_key = rec->values[col];
    if (old_key != new_key) {
      idx->Erase(old_key, row);
      idx->Insert(new_key, row);
    }
  }
  row->rec = std::move(rec);
  return Status::OK();
}

void Table::Reserve(size_t expected_rows) {
  rows_.Reserve(expected_rows);
  if (expected_rows > row_by_id_.size()) {
    row_by_id_.reserve(expected_rows);
  }
}

Status Table::CreateTableIndex(const std::string& column, IndexKind kind) {
  int pos = schema_.FindColumn(column);
  if (pos < 0) {
    return Status::NotFound(StrFormat("no column '%s' in table '%s'",
                                      column.c_str(), name_.c_str()));
  }
  if (FindIndexByPosition(pos) != nullptr) {
    return Status::AlreadyExists(StrFormat(
        "column '%s' of table '%s' is already indexed", column.c_str(),
        name_.c_str()));
  }
  auto idx = CreateIndex(kind, name_ + "_" + ToLower(column) + "_idx", pos);
  rows_.ForEachRow([&](const Row& row) {
    // Backfill through the directory so the index stores a real handle,
    // not a reference into the const iteration.
    idx->Insert(row.rec->values[static_cast<size_t>(pos)],
                row_by_id_.at(row.id));
  });
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

Index* Table::FindIndex(const std::string& column) const {
  int pos = schema_.FindColumn(column);
  if (pos < 0) return nullptr;
  return FindIndexByPosition(pos);
}

Index* Table::FindIndexByPosition(int column) const {
  for (const auto& idx : indexes_) {
    if (idx->column() == column) return idx.get();
  }
  return nullptr;
}

std::vector<RowHandle> Table::IndexLookup(int column, const Value& key) const {
  std::vector<RowHandle> out;
  IndexLookup(column, key, out);
  return out;
}

void Table::IndexLookup(int column, const Value& key,
                        std::vector<RowHandle>& out) const {
  Index* idx = FindIndexByPosition(column);
  if (idx != nullptr) idx->Lookup(key, out);
}

Status Table::AuditPageConsistency() const {
  STRIP_RETURN_IF_ERROR(rows_.CheckConsistency());
  if (row_by_id_.size() != rows_.live()) {
    return Status::Internal(StrFormat(
        "table '%s': row directory holds %zu entries but %zu rows are live",
        name_.c_str(), row_by_id_.size(), rows_.live()));
  }
  for (const auto& [id, h] : row_by_id_) {
    if (!h || !h.page()->IsLive(h.slot())) {
      return Status::Internal(StrFormat(
          "table '%s': directory entry for row %llu points at a dead slot",
          name_.c_str(), static_cast<unsigned long long>(id)));
    }
    if (h->id != id) {
      return Status::Internal(StrFormat(
          "table '%s': directory entry for row %llu resolves to a slot "
          "carrying id %llu",
          name_.c_str(), static_cast<unsigned long long>(id),
          static_cast<unsigned long long>(h->id)));
    }
  }
  return Status::OK();
}

}  // namespace strip
