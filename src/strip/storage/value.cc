#include "strip/storage/value.h"

#include <cmath>
#include <functional>
#include <vector>

namespace strip {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

bool Value::IsTruthy() const {
  switch (type()) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return as_int() != 0;
    case ValueType::kDouble: return as_double() != 0.0;
    case ValueType::kString: return !as_string().empty();
  }
  return false;
}

int Value::Compare(const Value& a, const Value& b) {
  ValueType ta = a.type(), tb = b.type();
  if (ta == ValueType::kNull || tb == ValueType::kNull) {
    if (ta == tb) return 0;
    return ta == ValueType::kNull ? -1 : 1;
  }
  if (a.is_numeric() && b.is_numeric()) {
    // Exact compare when both are ints; otherwise via double.
    if (ta == ValueType::kInt && tb == ValueType::kInt) {
      int64_t x = a.as_int(), y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.as_double(), y = b.as_double();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (ta == ValueType::kString && tb == ValueType::kString) {
    int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Incomparable types: order by type tag for a stable total order.
  return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kInt: {
      // Hash ints through double when they are exactly representable so
      // that Int(3) and Double(3.0) — which compare equal — hash equal.
      double d = static_cast<double>(as_int());
      if (static_cast<int64_t>(d) == as_int()) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(as_int());
    }
    case ValueType::kDouble:
      return std::hash<double>()(as_double());
    case ValueType::kString:
      return std::hash<std::string>()(as_string());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

size_t ValueVectorHash::operator()(const std::vector<Value>& vs) const {
  size_t h = 0x517cc1b727220a95ull;
  for (const Value& v : vs) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool ValueVectorEq::operator()(const std::vector<Value>& a,
                               const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace strip
