#ifndef STRIP_STORAGE_TEMP_TABLE_H_
#define STRIP_STORAGE_TEMP_TABLE_H_

#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/record.h"
#include "strip/storage/schema.h"

namespace strip {

/// Where a temporary-table column's value lives (§6.1, [Rou82] scheme):
/// either inside one of the standard-tuple records the temp tuple points to
/// (slot >= 0, offset = attribute position in that record), or in the temp
/// tuple's own materialized-value array (slot == kMaterializedSlot) for
/// aggregate / computed / timestamp attributes that exist nowhere else.
struct TempColumnMap {
  static constexpr int kMaterializedSlot = -1;

  int slot = kMaterializedSlot;
  int offset = 0;

  bool materialized() const { return slot == kMaterializedSlot; }

  friend bool operator==(const TempColumnMap& a,
                         const TempColumnMap& b) = default;
};

/// One temporary tuple: one RecordRef per contributing standard tuple plus
/// the materialized values. Holding RecordRefs is what keeps superseded
/// record versions alive until the last bound table referencing them is
/// retired (§6.1).
struct TempTuple {
  std::vector<RecordRef> slots;
  std::vector<Value> extra;
};

/// Fully materialized query result for user consumption.
struct ResultSet {
  Schema schema;
  std::vector<std::vector<Value>> rows;

  size_t num_rows() const { return rows.size(); }
  /// Tab-separated display with a header line (for examples / debugging).
  std::string ToString() const;
};

/// A temporary table: intermediate query results, transition tables, and
/// bound tables (§6.1). Stores a static column map shared by all tuples plus
/// the tuples themselves.
class TempTable {
 public:
  /// `num_slots` / `num_extra` fix the per-tuple array sizes; every column
  /// map entry must reference a valid slot/offset position.
  TempTable(std::string name, Schema schema, std::vector<TempColumnMap> map,
            int num_slots, int num_extra);

  /// Convenience: a layout in which every column is materialized (used when
  /// pointer sharing is impossible, e.g. pure aggregate outputs).
  static TempTable Materialized(std::string name, Schema schema);

  TempTable(TempTable&&) = default;
  TempTable& operator=(TempTable&&) = default;
  TempTable(const TempTable&) = delete;
  TempTable& operator=(const TempTable&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  const std::vector<TempColumnMap>& column_map() const { return map_; }
  int num_slots() const { return num_slots_; }
  int num_extra() const { return num_extra_; }

  size_t size() const { return tuples_.size(); }
  const std::vector<TempTuple>& tuples() const { return tuples_; }
  std::vector<TempTuple>& tuples() { return tuples_; }

  /// Reads column `col` of tuple `t` through the static map — one
  /// indirection for pointer-backed columns.
  const Value& Get(const TempTuple& t, int col) const {
    const TempColumnMap& m = map_[static_cast<size_t>(col)];
    if (m.materialized()) return t.extra[static_cast<size_t>(m.offset)];
    return t.slots[static_cast<size_t>(m.slot)]
        ->values[static_cast<size_t>(m.offset)];
  }
  const Value& Get(size_t row, int col) const {
    return Get(tuples_[row], col);
  }

  void Append(TempTuple t);

  /// Pre-sizes the tuple vector (builders that know their row count, e.g.
  /// transition tables over a batched transaction's log).
  void Reserve(size_t n) { tuples_.reserve(n); }

  /// Appends (moves) all tuples of `other` — the unique-transaction
  /// bound-table merge (§2, §6.3). Requires identical schema AND identical
  /// layout; bound tables merged this way come from identically defined
  /// rule queries, which the rule engine enforces at rule-creation time.
  Status AppendFrom(TempTable&& other);

  /// Copies out row `i` as plain values.
  std::vector<Value> MaterializeRow(size_t i) const;

  /// Copies the whole table into a user-facing ResultSet.
  ResultSet Materialize() const;

  /// Deep-copies this table (tuples share RecordRefs; cheap for
  /// pointer-backed columns).
  TempTable Clone() const;

  /// Refcount audit API (chaos invariant a): visits every RecordRef pin
  /// this table holds — one call per non-null tuple slot. A record pinned
  /// by k tuples is visited k times, matching its use_count contribution.
  template <typename Fn>
  void ForEachPinnedRecord(Fn&& fn) const {
    for (const TempTuple& t : tuples_) {
      for (const RecordRef& r : t.slots) {
        if (r != nullptr) fn(r);
      }
    }
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<TempColumnMap> map_;
  int num_slots_;
  int num_extra_;
  std::vector<TempTuple> tuples_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_TEMP_TABLE_H_
