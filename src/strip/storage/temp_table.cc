#include "strip/storage/temp_table.h"

#include "strip/common/logging.h"
#include "strip/common/string_util.h"

namespace strip {

std::string ResultSet::ToString() const {
  std::string out;
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += "\t";
    out += schema.column(i).name;
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "\t";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

TempTable::TempTable(std::string name, Schema schema,
                     std::vector<TempColumnMap> map, int num_slots,
                     int num_extra)
    : name_(ToLower(name)),
      schema_(std::move(schema)),
      map_(std::move(map)),
      num_slots_(num_slots),
      num_extra_(num_extra) {
  STRIP_CHECK(static_cast<int>(map_.size()) == schema_.num_columns());
  for (const auto& m : map_) {
    if (m.materialized()) {
      STRIP_CHECK(m.offset >= 0 && m.offset < num_extra_);
    } else {
      STRIP_CHECK(m.slot >= 0 && m.slot < num_slots_);
      STRIP_CHECK(m.offset >= 0);
    }
  }
}

TempTable TempTable::Materialized(std::string name, Schema schema) {
  std::vector<TempColumnMap> map;
  map.reserve(static_cast<size_t>(schema.num_columns()));
  for (int i = 0; i < schema.num_columns(); ++i) {
    map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, i});
  }
  int n = schema.num_columns();
  return TempTable(std::move(name), std::move(schema), std::move(map),
                   /*num_slots=*/0, /*num_extra=*/n);
}

void TempTable::Append(TempTuple t) {
  STRIP_CHECK(static_cast<int>(t.slots.size()) == num_slots_);
  STRIP_CHECK(static_cast<int>(t.extra.size()) == num_extra_);
  tuples_.push_back(std::move(t));
}

Status TempTable::AppendFrom(TempTable&& other) {
  if (!schema_.Equals(other.schema_)) {
    return Status::Internal(StrFormat(
        "bound-table merge schema mismatch for '%s'", name_.c_str()));
  }
  if (num_slots_ != other.num_slots_ || num_extra_ != other.num_extra_ ||
      map_ != other.map_) {
    return Status::Internal(StrFormat(
        "bound-table merge layout mismatch for '%s'", name_.c_str()));
  }
  // No exact-size reserve here: bound tables receive many small merges
  // (one per batched firing), and reserving to the exact size would force
  // a reallocation per merge — quadratic over a burst. Geometric vector
  // growth keeps the merge amortized O(rows appended).
  for (auto& t : other.tuples_) tuples_.push_back(std::move(t));
  other.tuples_.clear();
  return Status::OK();
}

std::vector<Value> TempTable::MaterializeRow(size_t i) const {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(schema_.num_columns()));
  for (int c = 0; c < schema_.num_columns(); ++c) {
    out.push_back(Get(i, c));
  }
  return out;
}

ResultSet TempTable::Materialize() const {
  ResultSet rs;
  rs.schema = schema_;
  rs.rows.reserve(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rs.rows.push_back(MaterializeRow(i));
  }
  return rs;
}

TempTable TempTable::Clone() const {
  TempTable out(name_, schema_, map_, num_slots_, num_extra_);
  out.tuples_ = tuples_;
  return out;
}

}  // namespace strip
