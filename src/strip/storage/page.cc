#include "strip/storage/page.h"

#include "strip/common/string_util.h"

namespace strip {

RowHandle PageManager::Allocate() {
  while (!free_pages_.empty()) {
    RowPage* page = pages_[free_pages_.back()].get();
    if (page->live_count == RowPage::kSlots) {
      // Stale entry (shouldn't happen — pages leave the list when they
      // fill — but cheap to tolerate).
      page->in_free_list = false;
      free_pages_.pop_back();
      continue;
    }
    uint32_t w = page->free_hint_word;
    while (w < RowPage::kWords && page->live[w] == ~0ull) ++w;
    if (w == RowPage::kWords) {
      // Hint was behind a fully-packed tail; rescan from the top.
      w = 0;
      while (page->live[w] == ~0ull) ++w;
    }
    page->free_hint_word = w;
    uint32_t slot =
        (w << 6) + static_cast<uint32_t>(std::countr_zero(~page->live[w]));
    page->live[w] |= 1ull << (slot & 63);
    ++page->live_count;
    ++live_;
    if (page->live_count == RowPage::kSlots) {
      page->in_free_list = false;
      free_pages_.pop_back();
    }
    return RowHandle(page, slot);
  }

  auto page = std::make_unique<RowPage>();
  page->index = static_cast<uint32_t>(pages_.size());
  page->live[0] = 1;
  page->live_count = 1;
  page->in_free_list = true;
  free_pages_.push_back(page->index);
  RowHandle h(page.get(), 0);
  pages_.push_back(std::move(page));
  ++live_;
  return h;
}

void PageManager::Release(RowHandle h) {
  RowPage* page = h.page();
  uint32_t slot = h.slot();
  page->live[slot >> 6] &= ~(1ull << (slot & 63));
  if ((slot >> 6) < page->free_hint_word) page->free_hint_word = slot >> 6;
  page->slots[slot].id = 0;
  page->slots[slot].rec.reset();  // tombstone: drop the record pin now
  --page->live_count;
  --live_;
  if (!page->in_free_list) {
    page->in_free_list = true;
    free_pages_.push_back(page->index);
  }
}

void PageManager::Reserve(size_t expected_rows) {
  size_t pages_needed =
      (expected_rows + RowPage::kSlots - 1) / RowPage::kSlots;
  if (pages_needed > pages_.capacity()) pages_.reserve(pages_needed);
}

bool PageManager::NextBatch(ScanPos& pos, ScanBatch& batch) const {
  batch.count = 0;
  while (pos.page < pages_.size() && batch.count < ScanBatch::kMaxRows) {
    RowPage* page = pages_[pos.page].get();
    uint32_t slot = pos.slot;
    if (page->live_count == 0) slot = RowPage::kSlots;  // skip empty page
    while (slot < RowPage::kSlots && batch.count < ScanBatch::kMaxRows) {
      uint32_t w = slot >> 6;
      uint64_t word = page->live[w] >> (slot & 63);
      if (word == 0) {
        slot = (w + 1) << 6;
        continue;
      }
      slot += static_cast<uint32_t>(std::countr_zero(word));
      batch.rows[batch.count++] = RowHandle(page, slot);
      ++slot;
    }
    if (slot >= RowPage::kSlots) {
      ++pos.page;
      pos.slot = 0;
    } else {
      pos.slot = slot;
    }
  }
  return batch.count > 0;
}

void PageManager::const_iterator::SkipDead() {
  while (page_ < pm_->pages_.size()) {
    const RowPage& p = *pm_->pages_[page_];
    while (slot_ < RowPage::kSlots) {
      uint64_t word = p.live[slot_ >> 6] >> (slot_ & 63);
      if (word != 0) {
        slot_ += static_cast<uint32_t>(std::countr_zero(word));
        return;
      }
      slot_ = ((slot_ >> 6) + 1) << 6;
    }
    ++page_;
    slot_ = 0;
  }
}

RowHandle PageManager::FirstLive() {
  const_iterator it = begin();
  if (it == end()) return RowHandle();
  return RowHandle(pages_[it.page_].get(), it.slot_);
}

Status PageManager::CheckConsistency() const {
  size_t live_total = 0;
  std::vector<bool> free_listed(pages_.size(), false);
  for (uint32_t idx : free_pages_) {
    if (idx >= pages_.size()) {
      return Status::Internal(StrFormat(
          "page audit: free list names page %u of %zu", idx, pages_.size()));
    }
    if (free_listed[idx]) {
      return Status::Internal(
          StrFormat("page audit: page %u is in the free list twice", idx));
    }
    free_listed[idx] = true;
    if (!pages_[idx]->in_free_list) {
      return Status::Internal(StrFormat(
          "page audit: page %u is free-listed but not flagged", idx));
    }
  }
  for (size_t i = 0; i < pages_.size(); ++i) {
    const RowPage& p = *pages_[i];
    if (p.index != i) {
      return Status::Internal(StrFormat(
          "page audit: page %zu records index %u", i, p.index));
    }
    uint32_t popcount = 0;
    for (uint32_t w = 0; w < RowPage::kWords; ++w) {
      popcount += static_cast<uint32_t>(std::popcount(p.live[w]));
    }
    if (popcount != p.live_count) {
      return Status::Internal(StrFormat(
          "page audit: page %zu bitmap holds %u live bits but live_count "
          "says %u",
          i, popcount, p.live_count));
    }
    for (uint32_t slot = 0; slot < RowPage::kSlots; ++slot) {
      bool is_live = p.IsLive(slot);
      bool has_rec = p.slots[slot].rec != nullptr;
      if (is_live && !has_rec) {
        return Status::Internal(StrFormat(
            "page audit: page %zu slot %u is live but holds no record",
            i, slot));
      }
      if (!is_live && has_rec) {
        return Status::Internal(StrFormat(
            "page audit: page %zu slot %u is a tombstone still pinning a "
            "record",
            i, slot));
      }
    }
    if (p.live_count < RowPage::kSlots && !p.in_free_list) {
      return Status::Internal(StrFormat(
          "page audit: page %zu has %u free slot(s) but is unreachable "
          "from the free list",
          i, RowPage::kSlots - p.live_count));
    }
    if (p.in_free_list && !free_listed[i]) {
      return Status::Internal(StrFormat(
          "page audit: page %zu is flagged in_free_list but absent from "
          "the free list",
          i));
    }
    live_total += p.live_count;
  }
  if (live_total != live_) {
    return Status::Internal(StrFormat(
        "page audit: pages hold %zu live rows but the manager counts %zu",
        live_total, live_));
  }
  return Status::OK();
}

}  // namespace strip
