#ifndef STRIP_STORAGE_VALUE_H_
#define STRIP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace strip {

/// Column / value types supported by the engine. STRIP v2.0 stores
/// fixed-length fields; we additionally allow strings (stock symbols etc.
/// are short fixed-size strings in the paper's workload).
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value. Small, copyable, hashable; used for stored
/// attributes, expression evaluation results, and index / group-by keys.
class Value {
 public:
  /// Null value.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }
  static Value Str(std::string s) { return Value(std::move(s)); }
  static Value Bool(bool b) { return Value(static_cast<int64_t>(b ? 1 : 0)); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Integer payload; caller must ensure type() == kInt.
  int64_t as_int() const { return std::get<int64_t>(v_); }

  /// Numeric payload as double; accepts kInt (coerced) and kDouble.
  double as_double() const {
    if (type() == ValueType::kInt) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }

  /// String payload; caller must ensure type() == kString.
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// SQL truthiness: non-null and non-zero numeric.
  bool IsTruthy() const;

  /// Three-way ordering with numeric coercion between kInt and kDouble.
  /// Null orders before everything; values of incomparable types order by
  /// type tag (stable but arbitrary, used only for sorting mixed columns).
  static int Compare(const Value& a, const Value& b);

  /// Equality consistent with Compare(a, b) == 0.
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  /// Hash consistent with operator== (ints that equal doubles hash alike).
  size_t Hash() const;

  /// Display form: "null", "42", "3.5", "abc".
  std::string ToString() const;

 private:
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// Hash functor for containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash / equality for composite keys (e.g. multi-column unique clauses,
/// group-by keys).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const;
};
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

}  // namespace strip

#endif  // STRIP_STORAGE_VALUE_H_
