#ifndef STRIP_STORAGE_TABLE_H_
#define STRIP_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/index.h"
#include "strip/storage/record.h"
#include "strip/storage/schema.h"

namespace strip {

/// A standard (user-created) table: a linked list of immutable records with
/// optional hash / red-black-tree indexes (§6.1). Row order is unimportant.
///
/// Mutations never change a record in place; UPDATE installs a new record
/// version in the row slot. Old record versions survive as long as any
/// transition/bound table holds a RecordRef to them.
///
/// Thread-compatibility: Table is not internally synchronized; transactions
/// serialize access through the lock manager, and executors guarantee that
/// structural changes (insert/erase) hold the table's exclusive lock.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Validates `rec` against the schema and appends it.
  /// Returns the inserted row (stable iterator).
  Result<RowIter> Insert(RecordRef rec);

  /// Unlinks the row; the record stays alive while referenced elsewhere.
  void Erase(RowIter row);

  /// Replaces the row's record with a new version (copy-on-write update).
  Status Update(RowIter row, RecordRef rec);

  /// Row storage, for scans. Iteration order is insertion order but callers
  /// must not rely on it (the paper's tables are unordered).
  RowList& rows() { return rows_; }
  const RowList& rows() const { return rows_; }

  /// Creates an index on `column` (by name). One index per column.
  Status CreateTableIndex(const std::string& column, IndexKind kind);

  /// The index on `column`, or nullptr.
  Index* FindIndex(const std::string& column) const;
  Index* FindIndexByPosition(int column) const;

  /// Equality lookup through the column's index; the column must be indexed.
  std::vector<RowIter> IndexLookup(int column, const Value& key) const;

  /// Allocation-free variant: appends matches to `out` (which the caller
  /// clears and reuses across probes — the executor's inner join loops call
  /// this once per outer row).
  void IndexLookup(int column, const Value& key,
                   std::vector<RowIter>& out) const;

  /// Checks the record against the schema (arity + types; kNull allowed in
  /// any column; ints accepted into double columns and stored coerced).
  Result<RecordRef> ValidateRecord(RecordRef rec) const;

  /// Finds a live row by its stable id; rows().end() if absent. O(1).
  RowIter FindRow(uint64_t id);

  /// Re-inserts a previously erased row under its original id (transaction
  /// undo of a DELETE). Fails if the id is still live.
  Result<RowIter> ResurrectRow(uint64_t id, RecordRef rec);

  /// Refcount audit API (chaos invariant a): visits the live record version
  /// of every row. Together with the bound-table walk this enumerates every
  /// legitimate pin; a RecordRef whose use_count disagrees with the audit's
  /// tally is a leak or a double-release. Call only while no transaction is
  /// mutating the table.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    for (const Row& row : rows_) fn(row.rec);
  }

 private:
  std::string name_;
  Schema schema_;
  RowList rows_;
  uint64_t next_row_id_ = 1;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::unordered_map<uint64_t, RowIter> row_by_id_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_TABLE_H_
