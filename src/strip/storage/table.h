#ifndef STRIP_STORAGE_TABLE_H_
#define STRIP_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/index.h"
#include "strip/storage/page.h"
#include "strip/storage/record.h"
#include "strip/storage/schema.h"

namespace strip {

/// A standard (user-created) table: slotted arena pages of immutable
/// records with optional hash / red-black-tree indexes (§6.1). Row order
/// is unimportant.
///
/// Mutations never change a record in place; UPDATE installs a new record
/// version in the row slot. Old record versions survive as long as any
/// transition/bound table holds a RecordRef to them. Erase tombstones the
/// slot (the table's own record pin drops immediately); a later insert may
/// reuse the slot.
///
/// Row ids are assigned sequentially from 1, so neither id 0 nor the
/// whole-table lock sentinel (LockKey::kWholeTableRowId) can ever name a
/// real row.
///
/// Thread-compatibility: Table is not internally synchronized; transactions
/// serialize access through the lock manager, and executors guarantee that
/// structural changes (insert/erase) hold the table's exclusive lock.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.live(); }

  /// Validates `rec` against the schema and stores it in a fresh slot.
  /// Returns a stable handle to the inserted row.
  Result<RowHandle> Insert(RecordRef rec);

  /// Tombstones the row's slot; the record stays alive while referenced
  /// elsewhere (bound/transition tables), but the table's own pin drops now.
  void Erase(RowHandle row);

  /// Replaces the row's record with a new version (copy-on-write update).
  Status Update(RowHandle row, RecordRef rec);

  /// Row storage, for scans: range-for over live rows. Iteration order is
  /// page/slot order but callers must not rely on it (the paper's tables
  /// are unordered).
  PageManager& rows() { return rows_; }
  const PageManager& rows() const { return rows_; }

  /// Batched scan step (the executor's hot path): fills `batch` with up to
  /// ScanBatch::kMaxRows live rows and advances `pos`. Returns false at
  /// end of scan.
  bool NextBatch(PageManager::ScanPos& pos, ScanBatch& batch) const {
    return rows_.NextBatch(pos, batch);
  }

  /// Pre-sizes the arena's page directory and the row-id directory for
  /// `expected_rows` total rows — bulk loaders and feed bursts call this to
  /// avoid rehash storms mid-burst. Never shrinks.
  void Reserve(size_t expected_rows);

  /// Creates an index on `column` (by name). One index per column.
  Status CreateTableIndex(const std::string& column, IndexKind kind);

  /// The index on `column`, or nullptr.
  Index* FindIndex(const std::string& column) const;
  Index* FindIndexByPosition(int column) const;

  /// Equality lookup through the column's index; the column must be indexed.
  std::vector<RowHandle> IndexLookup(int column, const Value& key) const;

  /// Allocation-free variant: appends matches to `out` (which the caller
  /// clears and reuses across probes — the executor's inner join loops call
  /// this once per outer row).
  void IndexLookup(int column, const Value& key,
                   std::vector<RowHandle>& out) const;

  /// Checks the record against the schema (arity + types; kNull allowed in
  /// any column; ints accepted into double columns and stored coerced).
  Result<RecordRef> ValidateRecord(RecordRef rec) const;

  /// Finds a live row by its stable id; a null handle if absent. O(1).
  RowHandle FindRow(uint64_t id);

  /// Re-inserts a previously erased row under its original id (transaction
  /// undo of a DELETE). Fails if the id is still live.
  Result<RowHandle> ResurrectRow(uint64_t id, RecordRef rec);

  /// Refcount audit API (chaos invariant a): visits the live record version
  /// of every row. Together with the bound-table walk this enumerates every
  /// legitimate pin; a RecordRef whose use_count disagrees with the audit's
  /// tally is a leak or a double-release. Call only while no transaction is
  /// mutating the table.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    rows_.ForEachRow([&](const Row& row) { fn(row.rec); });
  }

  /// Page-level audit (chaos invariant e): the arena's own consistency
  /// (bitmaps vs live counts vs free list) plus agreement between the
  /// row-id directory and the pages — every directory entry resolves to a
  /// live slot carrying its id, and the directory covers every live row.
  Status AuditPageConsistency() const;

 private:
  /// Fills a freshly allocated slot and wires it into the directory and
  /// the indexes (shared tail of Insert and ResurrectRow).
  RowHandle Install(uint64_t id, RecordRef rec);

  std::string name_;
  Schema schema_;
  PageManager rows_;
  uint64_t next_row_id_ = 1;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::unordered_map<uint64_t, RowHandle> row_by_id_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_TABLE_H_
