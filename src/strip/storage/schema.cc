#include "strip/storage/schema.h"

#include "strip/common/string_util.h"

namespace strip {

Schema::Schema(std::vector<Column> columns) {
  for (auto& c : columns) {
    AddColumn(std::move(c.name), c.type);
  }
}

void Schema::AddColumn(std::string name, ValueType type) {
  columns_.push_back(Column{ToLower(name), type});
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace strip
