#ifndef STRIP_STORAGE_RECORD_H_
#define STRIP_STORAGE_RECORD_H_

#include <memory>
#include <vector>

#include "strip/storage/value.h"

namespace strip {

/// An immutable stored tuple. Standard-table records are never changed in
/// place (§6.1): an UPDATE creates a new Record and unlinks the old one from
/// the relation. The old Record stays alive for as long as any transition or
/// bound table references it; shared_ptr reference counting implements the
/// paper's explicit refcounting scheme.
struct Record {
  std::vector<Value> values;
};

/// Shared handle to an immutable record.
using RecordRef = std::shared_ptr<const Record>;

/// Builds a record from values.
inline RecordRef MakeRecord(std::vector<Value> values) {
  return std::make_shared<const Record>(Record{std::move(values)});
}

/// A slot in a standard table: a stable logical row identity plus the
/// current record version. The lock manager locks RowIds; UPDATE swaps
/// `rec` for a new version while `id` is stable for the row's lifetime.
///
/// Rows live in slotted arena pages (storage/page.h); RowHandle is the
/// stable reference type that replaced the legacy std::list iterator.
struct Row {
  uint64_t id = 0;
  RecordRef rec;
};

}  // namespace strip

#endif  // STRIP_STORAGE_RECORD_H_
