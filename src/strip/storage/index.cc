#include "strip/storage/index.h"

namespace strip {

void HashIndex::Insert(const Value& key, RowHandle row) {
  map_.emplace(key, row);
}

void HashIndex::Erase(const Value& key, RowHandle row) {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == row) {
      map_.erase(it);
      return;
    }
  }
}

void HashIndex::Lookup(const Value& key, std::vector<RowHandle>& out) const {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
}

void RbTreeIndex::Insert(const Value& key, RowHandle row) {
  map_.Insert(key, row);
}

void RbTreeIndex::Erase(const Value& key, RowHandle row) {
  map_.Erase(key, row);
}

void RbTreeIndex::Lookup(const Value& key, std::vector<RowHandle>& out) const {
  map_.LookupEqual(key, out);
}

void RbTreeIndex::LookupRange(const Value& lo, const Value& hi,
                              std::vector<RowHandle>& out) const {
  map_.LookupRange(lo, hi, out);
}

std::unique_ptr<Index> CreateIndex(IndexKind kind, std::string name,
                                   int column) {
  if (kind == IndexKind::kHash) {
    return std::make_unique<HashIndex>(std::move(name), column);
  }
  return std::make_unique<RbTreeIndex>(std::move(name), column);
}

}  // namespace strip
