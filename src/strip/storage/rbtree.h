#ifndef STRIP_STORAGE_RBTREE_H_
#define STRIP_STORAGE_RBTREE_H_

#include <functional>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/page.h"
#include "strip/storage/value.h"

namespace strip {

/// A from-scratch red-black tree multimap from Value keys to table rows —
/// the "red-black tree structure" STRIP offers for table indexes (§6.1).
/// Classic CLRS formulation with a nil sentinel; duplicate keys are
/// permitted (inserted to the right of equals, so equal runs are
/// contiguous in key order).
///
/// Not thread-safe; serialized by the owning table's callers like the rest
/// of the storage layer.
class RbTreeMap {
 public:
  RbTreeMap();
  ~RbTreeMap();

  RbTreeMap(const RbTreeMap&) = delete;
  RbTreeMap& operator=(const RbTreeMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a (key, row) pair; duplicates allowed.
  void Insert(const Value& key, RowHandle row);

  /// Removes one pair matching both key and row. Returns false if absent.
  bool Erase(const Value& key, RowHandle row);

  /// Appends every row with key == `key`, in insertion order among equals.
  void LookupEqual(const Value& key, std::vector<RowHandle>& out) const;

  /// Appends every row with lo <= key <= hi, in ascending key order.
  void LookupRange(const Value& lo, const Value& hi,
                   std::vector<RowHandle>& out) const;

  /// Visits every (key, row) in ascending key order.
  void ForEach(const std::function<void(const Value&, RowHandle)>& fn) const;

  /// Verifies the red-black invariants: the root is black, no red node has
  /// a red child, every root-to-leaf path has the same black height, and
  /// in-order keys are non-decreasing. For tests.
  Status CheckInvariants() const;

 private:
  struct Node {
    Value key;
    RowHandle row;
    Node* left;
    Node* right;
    Node* parent;
    bool red;
  };

  Node* NewNode(const Value& key, RowHandle row);
  void FreeSubtree(Node* n);

  void RotateLeft(Node* x);
  void RotateRight(Node* x);
  void InsertFixup(Node* z);
  void Transplant(Node* u, Node* v);
  Node* Minimum(Node* n) const;
  void EraseNode(Node* z);
  void EraseFixup(Node* x);

  /// Leftmost node with key >= `key`, or nil.
  Node* LowerBound(const Value& key) const;
  /// In-order successor.
  Node* Next(Node* n) const;

  Node* root_;
  Node* nil_;  // sentinel: black, self-parented
  size_t size_ = 0;
};

}  // namespace strip

#endif  // STRIP_STORAGE_RBTREE_H_
