#ifndef STRIP_STORAGE_PAGE_H_
#define STRIP_STORAGE_PAGE_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/record.h"

namespace strip {

/// Fixed-size slotted page of row slots. Pages never move or shrink once
/// allocated, so a (page, slot) pair is a stable reference for the row's
/// lifetime — the property the legacy std::list layout bought with
/// per-node heap allocations, provided here by arena pages instead.
///
/// `live` is the occupancy bitmap (bit set = slot holds a live row);
/// erased slots are tombstoned (record released, bit cleared) and reused
/// by later inserts. Members are public: RowHandle, PageManager, and the
/// page-consistency audit all address slots directly, and tests corrupt
/// pages on purpose to prove the audit catches it.
struct RowPage {
  static constexpr uint32_t kSlots = 1024;
  static constexpr uint32_t kWords = kSlots / 64;

  Row slots[kSlots];
  uint64_t live[kWords] = {};
  uint32_t live_count = 0;
  uint32_t index = 0;           // position in the owning PageManager
  uint32_t free_hint_word = 0;  // lowest word that may contain a free bit
  bool in_free_list = false;

  bool IsLive(uint32_t slot) const {
    return (live[slot >> 6] >> (slot & 63)) & 1;
  }
};

/// Stable reference to one row slot: the unit the indexes, the row-id
/// directory, and the executors hold. Same contract as the legacy list
/// iterator — valid until the row is erased; using a handle to an erased
/// row is undefined (the slot may have been reused by a later insert).
class RowHandle {
 public:
  RowHandle() = default;
  RowHandle(RowPage* page, uint32_t slot) : page_(page), slot_(slot) {}

  Row* get() const { return &page_->slots[slot_]; }
  Row& operator*() const { return *get(); }
  Row* operator->() const { return get(); }

  /// Null test: a default-constructed handle references no row (what
  /// Table::FindRow returns on a miss).
  explicit operator bool() const { return page_ != nullptr; }

  RowPage* page() const { return page_; }
  uint32_t slot() const { return slot_; }

  friend bool operator==(const RowHandle& a, const RowHandle& b) {
    return a.page_ == b.page_ && a.slot_ == b.slot_;
  }
  friend bool operator!=(const RowHandle& a, const RowHandle& b) {
    return !(a == b);
  }

 private:
  RowPage* page_ = nullptr;
  uint32_t slot_ = 0;
};

/// One step of a batched scan: up to kMaxRows live-row handles gathered
/// from contiguous slots. Consumers (the SQL executor's filter loop, the
/// cursor, DML row collection) drain the array in a tight loop free of
/// per-row liveness branches — the bitmap walk happens once per batch in
/// PageManager::NextBatch.
struct ScanBatch {
  static constexpr size_t kMaxRows = 64;
  RowHandle rows[kMaxRows];
  size_t count = 0;
};

/// Owns a table's pages: allocation with free-slot reuse, tombstoned
/// release, batched and iterator-style scans over live slots, and the
/// page-consistency audit the chaos harness runs between steps.
///
/// Not thread-safe; serialized by the owning table's callers exactly like
/// the rest of the storage layer. Pages are never deallocated before the
/// manager itself is destroyed, so handles to live rows stay valid across
/// unrelated inserts and erases.
class PageManager {
 public:
  PageManager() = default;
  PageManager(const PageManager&) = delete;
  PageManager& operator=(const PageManager&) = delete;

  size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }
  size_t num_pages() const { return pages_.size(); }

  /// Claims a free slot (reusing tombstones first); the caller fills in
  /// the returned row's id and record.
  RowHandle Allocate();

  /// Tombstones the slot: releases its record reference, clears the live
  /// bit, and makes the slot available for reuse.
  void Release(RowHandle h);

  /// Pre-sizes the page directory for `expected_rows` total live rows.
  /// Pages themselves stay lazily allocated — this only reserves the
  /// page-pointer vector, so over-reserving (e.g. for an upsert-heavy
  /// feed burst) costs pointers, not pages.
  void Reserve(size_t expected_rows);

  // --- batched scan --------------------------------------------------------

  /// Scan position: (page, slot), advanced by NextBatch. Value-semantic
  /// and stable across erases of already-visited rows (slots never shift).
  struct ScanPos {
    uint32_t page = 0;
    uint32_t slot = 0;
  };

  /// Fills `batch` with up to ScanBatch::kMaxRows live rows starting at
  /// `pos`, advancing `pos` past them. Returns false (empty batch) at end
  /// of scan.
  bool NextBatch(ScanPos& pos, ScanBatch& batch) const;

  // --- iterator scan (range-for compatibility) -----------------------------

  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(const PageManager* pm, uint32_t page, uint32_t slot)
        : pm_(pm), page_(page), slot_(slot) {}

    const Row& operator*() const { return pm_->pages_[page_]->slots[slot_]; }
    const Row* operator->() const {
      return &pm_->pages_[page_]->slots[slot_];
    }
    const_iterator& operator++() {
      ++slot_;
      SkipDead();
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.page_ == b.page_ && a.slot_ == b.slot_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class PageManager;
    void SkipDead();

    const PageManager* pm_ = nullptr;
    uint32_t page_ = 0;
    uint32_t slot_ = 0;
  };

  const_iterator begin() const {
    const_iterator it(this, 0, 0);
    it.SkipDead();
    return it;
  }
  const_iterator end() const {
    return const_iterator(this, static_cast<uint32_t>(pages_.size()), 0);
  }

  /// Handle of the first live row; null when empty. (The mutating
  /// equivalent of begin() — e.g. the view-refresh clear loop erases
  /// through it.)
  RowHandle FirstLive();

  /// Visits every live row.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (const auto& page : pages_) {
      if (page->live_count == 0) continue;
      for (uint32_t w = 0; w < RowPage::kWords; ++w) {
        uint64_t word = page->live[w];
        while (word != 0) {
          uint32_t slot = (w << 6) +
                          static_cast<uint32_t>(std::countr_zero(word));
          fn(page->slots[slot]);
          word &= word - 1;  // clear lowest set bit
        }
      }
    }
  }

  // --- audit ---------------------------------------------------------------

  /// Page-level consistency: per-page bitmap popcount == live_count,
  /// live slots hold records and tombstones don't, the live total adds
  /// up, and every page with free capacity is reachable from the free
  /// list (no stranded slots). The chaos InvariantChecker runs this
  /// between simulated steps.
  Status CheckConsistency() const;

  /// Direct page access for the audit's callers and for tests that
  /// corrupt a page on purpose to prove CheckConsistency notices.
  RowPage* page(size_t i) { return pages_[i].get(); }
  const RowPage* page(size_t i) const { return pages_[i].get(); }

 private:
  std::vector<std::unique_ptr<RowPage>> pages_;
  /// Indexes of pages with at least one free slot (deduplicated via
  /// RowPage::in_free_list). Allocation pops from the back.
  std::vector<uint32_t> free_pages_;
  size_t live_ = 0;
};

}  // namespace strip

#endif  // STRIP_STORAGE_PAGE_H_
