#ifndef STRIP_STORAGE_INDEX_H_
#define STRIP_STORAGE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "strip/storage/rbtree.h"
#include "strip/storage/page.h"
#include "strip/storage/value.h"

namespace strip {

/// STRIP tables can be indexed with either a hash or a red-black tree
/// structure (§6.1). Hash supports equality lookup; the tree additionally
/// supports ordered range scans.
enum class IndexKind {
  kHash,
  kRbTree,
};

/// Single-column secondary index over a table's rows. Not thread-safe;
/// serialized by the owning table's callers (the lock manager / executors).
class Index {
 public:
  virtual ~Index() = default;

  Index(std::string name, int column, IndexKind kind)
      : name_(std::move(name)), column_(column), kind_(kind) {}

  const std::string& name() const { return name_; }
  int column() const { return column_; }
  IndexKind kind() const { return kind_; }

  virtual void Insert(const Value& key, RowHandle row) = 0;
  virtual void Erase(const Value& key, RowHandle row) = 0;
  /// Appends all rows with key == `key` to `out`.
  virtual void Lookup(const Value& key, std::vector<RowHandle>& out) const = 0;
  virtual size_t size() const = 0;

 private:
  std::string name_;
  int column_;  // indexed column position in the table schema
  IndexKind kind_;
};

/// Hash index: O(1) expected equality lookup.
class HashIndex final : public Index {
 public:
  HashIndex(std::string name, int column)
      : Index(std::move(name), column, IndexKind::kHash) {}

  void Insert(const Value& key, RowHandle row) override;
  void Erase(const Value& key, RowHandle row) override;
  void Lookup(const Value& key, std::vector<RowHandle>& out) const override;
  size_t size() const override { return map_.size(); }

 private:
  std::unordered_multimap<Value, RowHandle, ValueHash> map_;
};

/// Red-black-tree index (§6.1): ordered, supports range scans. Backed by
/// the from-scratch RbTreeMap.
class RbTreeIndex final : public Index {
 public:
  RbTreeIndex(std::string name, int column)
      : Index(std::move(name), column, IndexKind::kRbTree) {}

  void Insert(const Value& key, RowHandle row) override;
  void Erase(const Value& key, RowHandle row) override;
  void Lookup(const Value& key, std::vector<RowHandle>& out) const override;
  size_t size() const override { return map_.size(); }

  /// Appends rows with lo <= key <= hi, in key order.
  void LookupRange(const Value& lo, const Value& hi,
                   std::vector<RowHandle>& out) const;

  /// The underlying tree (invariant checks in tests).
  const RbTreeMap& tree() const { return map_; }

 private:
  RbTreeMap map_;
};

/// Factory for the requested index kind.
std::unique_ptr<Index> CreateIndex(IndexKind kind, std::string name,
                                   int column);

}  // namespace strip

#endif  // STRIP_STORAGE_INDEX_H_
