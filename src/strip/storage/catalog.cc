#include "strip/storage/catalog.h"

#include "strip/common/string_util.h"

namespace strip {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already exists", key.c_str()));
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(std::move(key), std::move(table));
  BumpGeneration();
  return ptr;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no table '%s'", key.c_str()));
  }
  tables_.erase(it);
  BumpGeneration();
  return Status::OK();
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  Table* t = FindTable(name);
  if (t == nullptr) {
    return Status::NotFound(
        StrFormat("no table '%s'", ToLower(name).c_str()));
  }
  return t;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace strip
