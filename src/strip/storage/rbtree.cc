#include "strip/storage/rbtree.h"

#include "strip/common/string_util.h"

namespace strip {

RbTreeMap::RbTreeMap() {
  nil_ = new Node{Value::Null(), RowHandle{}, nullptr, nullptr, nullptr,
                  /*red=*/false};
  nil_->left = nil_->right = nil_->parent = nil_;
  root_ = nil_;
}

RbTreeMap::~RbTreeMap() {
  FreeSubtree(root_);
  delete nil_;
}

void RbTreeMap::FreeSubtree(Node* n) {
  if (n == nil_) return;
  FreeSubtree(n->left);
  FreeSubtree(n->right);
  delete n;
}

RbTreeMap::Node* RbTreeMap::NewNode(const Value& key, RowHandle row) {
  return new Node{key, row, nil_, nil_, nil_, /*red=*/true};
}

void RbTreeMap::RotateLeft(Node* x) {
  Node* y = x->right;
  x->right = y->left;
  if (y->left != nil_) y->left->parent = x;
  y->parent = x->parent;
  if (x->parent == nil_) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTreeMap::RotateRight(Node* x) {
  Node* y = x->left;
  x->left = y->right;
  if (y->right != nil_) y->right->parent = x;
  y->parent = x->parent;
  if (x->parent == nil_) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void RbTreeMap::Insert(const Value& key, RowHandle row) {
  Node* z = NewNode(key, row);
  Node* y = nil_;
  Node* x = root_;
  while (x != nil_) {
    y = x;
    // Equal keys go right so equal runs stay in insertion order.
    x = Value::Compare(key, x->key) < 0 ? x->left : x->right;
  }
  z->parent = y;
  if (y == nil_) {
    root_ = z;
  } else if (Value::Compare(key, y->key) < 0) {
    y->left = z;
  } else {
    y->right = z;
  }
  ++size_;
  InsertFixup(z);
}

void RbTreeMap::InsertFixup(Node* z) {
  while (z->parent->red) {
    Node* gp = z->parent->parent;
    if (z->parent == gp->left) {
      Node* uncle = gp->right;
      if (uncle->red) {
        z->parent->red = false;
        uncle->red = false;
        gp->red = true;
        z = gp;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          RotateLeft(z);
        }
        z->parent->red = false;
        z->parent->parent->red = true;
        RotateRight(z->parent->parent);
      }
    } else {
      Node* uncle = gp->left;
      if (uncle->red) {
        z->parent->red = false;
        uncle->red = false;
        gp->red = true;
        z = gp;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          RotateRight(z);
        }
        z->parent->red = false;
        z->parent->parent->red = true;
        RotateLeft(z->parent->parent);
      }
    }
  }
  root_->red = false;
}

void RbTreeMap::Transplant(Node* u, Node* v) {
  if (u->parent == nil_) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  v->parent = u->parent;
}

RbTreeMap::Node* RbTreeMap::Minimum(Node* n) const {
  while (n->left != nil_) n = n->left;
  return n;
}

RbTreeMap::Node* RbTreeMap::Next(Node* n) const {
  if (n->right != nil_) return Minimum(n->right);
  Node* p = n->parent;
  while (p != nil_ && n == p->right) {
    n = p;
    p = p->parent;
  }
  return p;
}

RbTreeMap::Node* RbTreeMap::LowerBound(const Value& key) const {
  Node* n = root_;
  Node* best = nil_;
  while (n != nil_) {
    if (Value::Compare(n->key, key) >= 0) {
      best = n;
      n = n->left;
    } else {
      n = n->right;
    }
  }
  return best;
}

bool RbTreeMap::Erase(const Value& key, RowHandle row) {
  for (Node* n = LowerBound(key);
       n != nil_ && Value::Compare(n->key, key) == 0; n = Next(n)) {
    if (n->row == row) {
      EraseNode(n);
      --size_;
      return true;
    }
  }
  return false;
}

void RbTreeMap::EraseNode(Node* z) {
  Node* y = z;
  bool y_was_red = y->red;
  Node* x;
  if (z->left == nil_) {
    x = z->right;
    Transplant(z, z->right);
  } else if (z->right == nil_) {
    x = z->left;
    Transplant(z, z->left);
  } else {
    y = Minimum(z->right);
    y_was_red = y->red;
    x = y->right;
    if (y->parent == z) {
      x->parent = y;  // x may be nil_; its parent matters to the fixup
    } else {
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->red = z->red;
  }
  delete z;
  if (!y_was_red) EraseFixup(x);
  nil_->parent = nil_;  // restore the sentinel
}

void RbTreeMap::EraseFixup(Node* x) {
  while (x != root_ && !x->red) {
    if (x == x->parent->left) {
      Node* w = x->parent->right;
      if (w->red) {
        w->red = false;
        x->parent->red = true;
        RotateLeft(x->parent);
        w = x->parent->right;
      }
      if (!w->left->red && !w->right->red) {
        w->red = true;
        x = x->parent;
      } else {
        if (!w->right->red) {
          w->left->red = false;
          w->red = true;
          RotateRight(w);
          w = x->parent->right;
        }
        w->red = x->parent->red;
        x->parent->red = false;
        w->right->red = false;
        RotateLeft(x->parent);
        x = root_;
      }
    } else {
      Node* w = x->parent->left;
      if (w->red) {
        w->red = false;
        x->parent->red = true;
        RotateRight(x->parent);
        w = x->parent->left;
      }
      if (!w->left->red && !w->right->red) {
        w->red = true;
        x = x->parent;
      } else {
        if (!w->left->red) {
          w->right->red = false;
          w->red = true;
          RotateLeft(w);
          w = x->parent->left;
        }
        w->red = x->parent->red;
        x->parent->red = false;
        w->left->red = false;
        RotateRight(x->parent);
        x = root_;
      }
    }
  }
  x->red = false;
}

void RbTreeMap::LookupEqual(const Value& key,
                            std::vector<RowHandle>& out) const {
  for (Node* n = LowerBound(key);
       n != nil_ && Value::Compare(n->key, key) == 0; n = Next(n)) {
    out.push_back(n->row);
  }
}

void RbTreeMap::LookupRange(const Value& lo, const Value& hi,
                            std::vector<RowHandle>& out) const {
  for (Node* n = LowerBound(lo);
       n != nil_ && Value::Compare(n->key, hi) <= 0; n = Next(n)) {
    out.push_back(n->row);
  }
}

void RbTreeMap::ForEach(
    const std::function<void(const Value&, RowHandle)>& fn) const {
  if (root_ == nil_) return;
  for (Node* n = Minimum(root_); n != nil_; n = Next(n)) {
    fn(n->key, n->row);
  }
}

Status RbTreeMap::CheckInvariants() const {
  if (root_->red) return Status::Internal("red root");
  if (nil_->red) return Status::Internal("red sentinel");

  // Recursive check: returns black height or -1 on violation.
  std::function<int(const Node*)> check = [&](const Node* n) -> int {
    if (n == nil_) return 1;
    if (n->red && (n->left->red || n->right->red)) return -1;  // red-red
    if (n->left != nil_ && Value::Compare(n->left->key, n->key) > 0) {
      return -2;  // order violation
    }
    if (n->right != nil_ && Value::Compare(n->key, n->right->key) > 0) {
      return -2;
    }
    int lh = check(n->left);
    int rh = check(n->right);
    if (lh < 0) return lh;
    if (rh < 0) return rh;
    if (lh != rh) return -3;  // black-height mismatch
    return lh + (n->red ? 0 : 1);
  };
  int h = check(root_);
  if (h == -1) return Status::Internal("red node with red child");
  if (h == -2) return Status::Internal("BST order violated");
  if (h == -3) return Status::Internal("black heights differ");

  size_t counted = 0;
  ForEach([&](const Value&, RowHandle) { ++counted; });
  if (counted != size_) {
    return Status::Internal(StrFormat("size %zu but %zu nodes reachable",
                                      size_, counted));
  }
  return Status::OK();
}

}  // namespace strip
