#ifndef STRIP_STORAGE_CATALOG_H_
#define STRIP_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/table.h"

namespace strip {

/// Name -> Table registry for standard tables. Names are case-insensitive.
/// Temporary tables (transition / bound tables) are NOT in the catalog; a
/// triggered task's bound-table list is checked before the catalog when
/// resolving a table name (§6.3), which the SQL executor implements.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Removes the table and its indexes.
  Status DropTable(const std::string& name);

  /// Looks up a table; nullptr if absent.
  Table* FindTable(const std::string& name) const;

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  /// Table names in sorted order.
  std::vector<std::string> ListTables() const;

  size_t num_tables() const { return tables_.size(); }

  /// Monotonic DDL generation counter. Bumped by CreateTable / DropTable
  /// here and by the engine for every other schema change (create index /
  /// view / rule). Cached plans are stamped with the generation they were
  /// built under and re-resolved when it moves.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace strip

#endif  // STRIP_STORAGE_CATALOG_H_
