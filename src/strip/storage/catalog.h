#ifndef STRIP_STORAGE_CATALOG_H_
#define STRIP_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "strip/common/status.h"
#include "strip/storage/table.h"

namespace strip {

/// Name -> Table registry for standard tables. Names are case-insensitive.
/// Temporary tables (transition / bound tables) are NOT in the catalog; a
/// triggered task's bound-table list is checked before the catalog when
/// resolving a table name (§6.3), which the SQL executor implements.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Removes the table and its indexes.
  Status DropTable(const std::string& name);

  /// Looks up a table; nullptr if absent.
  Table* FindTable(const std::string& name) const;

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  /// Table names in sorted order.
  std::vector<std::string> ListTables() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_CATALOG_H_
