#ifndef STRIP_STORAGE_SCHEMA_H_
#define STRIP_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "strip/storage/value.h"

namespace strip {

/// One column of a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of named, typed columns. Column names are case-insensitive
/// (SQL identifier semantics) and stored lower-cased.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Appends a column; name is lower-cased.
  void AddColumn(std::string name, ValueType type);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive), or -1.
  int FindColumn(const std::string& name) const;

  /// True iff both schemas have the same column names and types in order.
  /// Used to enforce that rules sharing a user function define their bound
  /// tables identically (§2).
  bool Equals(const Schema& other) const;

  /// "(a int, b double)" display form.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace strip

#endif  // STRIP_STORAGE_SCHEMA_H_
