#include "strip/storage/bound_table_set.h"

#include "strip/common/string_util.h"

namespace strip {

Status BoundTableSet::Add(TempTable table) {
  if (Find(table.name()) != nullptr) {
    return Status::AlreadyExists(StrFormat(
        "bound table '%s' already present", table.name().c_str()));
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

const TempTable* BoundTableSet::Find(const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

TempTable* BoundTableSet::FindMutable(const std::string& name) {
  for (auto& t : tables_) {
    if (EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

Status BoundTableSet::MergeFrom(BoundTableSet&& other) {
  if (other.tables_.size() != tables_.size()) {
    return Status::Internal("bound table set cardinality mismatch in merge");
  }
  for (auto& t : other.tables_) {
    TempTable* mine = FindMutable(t.name());
    if (mine == nullptr) {
      return Status::Internal(StrFormat(
          "bound table '%s' missing in merge target", t.name().c_str()));
    }
    STRIP_RETURN_IF_ERROR(mine->AppendFrom(std::move(t)));
  }
  return Status::OK();
}

size_t BoundTableSet::TotalTuples() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

}  // namespace strip
