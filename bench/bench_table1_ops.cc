// Table 1 reproduction: timing measurements of STRIP's basic operations —
// begin/end task, begin/commit transaction, get/release lock, and the four
// cursor operations — plus the composed single-tuple cursor update whose
// cost the paper derives as ~172 us (~5814 TPS on an HP-735).
//
// Absolute numbers on modern hardware are far smaller; the shape to check
// is that task/transaction overhead stays small relative to query work
// (§4.4), which is what makes fine-grained unique batching viable.

#include <benchmark/benchmark.h>

#include "strip/engine/cursor.h"
#include "strip/engine/database.h"

namespace strip {
namespace {

/// A database with one table of `n` rows: t(k string, v double), k indexed.
std::unique_ptr<Database> MakeDb(int n) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  auto db = std::make_unique<Database>(opts);
  Status st = db->ExecuteScript(
      "create table t (k string, v double); create index on t (k)");
  if (!st.ok()) std::abort();
  Table* t = db->catalog().FindTable("t");
  for (int i = 0; i < n; ++i) {
    auto r = t->Insert(MakeRecord(
        {Value::Str("k" + std::to_string(i)), Value::Double(i)}));
    if (!r.ok()) std::abort();
  }
  return db;
}

void BM_BeginEndTask(benchmark::State& state) {
  auto db = MakeDb(1);
  for (auto _ : state) {
    TaskPtr task = db->NewTask();
    task->work = [](TaskControlBlock&) { return Status::OK(); };
    db->Submit(task);
    db->simulated()->RunUntilQuiescent();
  }
}
BENCHMARK(BM_BeginEndTask);

void BM_BeginCommitTransaction(benchmark::State& state) {
  auto db = MakeDb(1);
  for (auto _ : state) {
    auto txn = db->Begin();
    Status st = db->Commit(*txn);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_BeginCommitTransaction);

void BM_GetReleaseLock(benchmark::State& state) {
  auto db = MakeDb(1);
  Table* t = db->catalog().FindTable("t");
  auto txn = db->Begin();
  for (auto _ : state) {
    Status st = db->locks().Acquire(*txn, LockKey::ForRow(t, 1),
                                    LockMode::kExclusive);
    benchmark::DoNotOptimize(st);
    db->locks().ReleaseAll(*txn);
  }
  Status st = db->Commit(*txn);
  (void)st;
}
BENCHMARK(BM_GetReleaseLock);

void BM_OpenCloseCursor(benchmark::State& state) {
  auto db = MakeDb(1024);
  Table* t = db->catalog().FindTable("t");
  auto txn = db->Begin();
  for (auto _ : state) {
    auto cur = Cursor::OpenIndexed(t, *txn, "k", Value::Str("k100"));
    benchmark::DoNotOptimize(cur);
    cur->Close();
  }
  Status st = db->Commit(*txn);
  (void)st;
}
BENCHMARK(BM_OpenCloseCursor);

void BM_FetchCursor(benchmark::State& state) {
  auto db = MakeDb(1024);
  Table* t = db->catalog().FindTable("t");
  auto txn = db->Begin();
  for (auto _ : state) {
    state.PauseTiming();
    Cursor c = Cursor::OpenIndexed(t, *txn, "k", Value::Str("k100")).take();
    state.ResumeTiming();
    bool got = c.Fetch();
    benchmark::DoNotOptimize(got);
  }
  Status st = db->Commit(*txn);
  (void)st;
}
BENCHMARK(BM_FetchCursor);

void BM_UpdateCursor(benchmark::State& state) {
  auto db = MakeDb(1024);
  Table* t = db->catalog().FindTable("t");
  auto txn = db->Begin();
  double v = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Cursor c = Cursor::OpenIndexed(t, *txn, "k", Value::Str("k100")).take();
    c.Fetch();
    state.ResumeTiming();
    Status st = c.UpdateCurrent({Value::Str("k100"), Value::Double(v)});
    benchmark::DoNotOptimize(st);
    v += 1.0;
  }
  Status st = db->Abort(*txn);  // discard the pile of log entries
  (void)st;
}
BENCHMARK(BM_UpdateCursor);

/// The paper's composed sequence (§4.4): begin task + begin transaction +
/// get lock + open cursor + fetch + update + close + release lock (at
/// commit) + commit + end task, all for one tuple. Reports TPS, the
/// paper's 5814-TPS derived figure.
void BM_SimpleUpdateTransactionCursor(benchmark::State& state) {
  auto db = MakeDb(1024);
  Table* t = db->catalog().FindTable("t");
  double v = 0;
  for (auto _ : state) {
    TaskPtr task = db->NewTask();
    task->work = [&](TaskControlBlock&) -> Status {
      STRIP_ASSIGN_OR_RETURN(Transaction * txn, db->Begin());
      STRIP_RETURN_IF_ERROR(db->locks().Acquire(
          txn, LockKey::WholeTable(t), LockMode::kExclusive));
      STRIP_ASSIGN_OR_RETURN(
          Cursor cur, Cursor::OpenIndexed(t, txn, "k", Value::Str("k512")));
      if (!cur.Fetch()) return Status::Internal("row not found");
      STRIP_RETURN_IF_ERROR(
          cur.UpdateCurrent({Value::Str("k512"), Value::Double(v)}));
      cur.Close();
      v += 1.0;
      return db->Commit(txn);
    };
    db->Submit(task);
    db->simulated()->RunUntilQuiescent();
  }
  state.counters["TPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimpleUpdateTransactionCursor);

/// The same single-tuple update through the SQL front end (parse + plan +
/// execute), for comparison with the prepared cursor path.
void BM_SimpleUpdateTransactionSql(benchmark::State& state) {
  auto db = MakeDb(1024);
  double v = 0;
  for (auto _ : state) {
    auto rs = db->Execute(
        "update t set v = " + std::to_string(v) + " where k = 'k512'");
    benchmark::DoNotOptimize(rs);
    v += 1.0;
  }
  state.counters["TPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimpleUpdateTransactionSql);

}  // namespace
}  // namespace strip

BENCHMARK_MAIN();
