// Ablation for the §6.1 index choice: hash vs red-black tree for the
// equality lookups that dominate the rule workload (condition joins and
// per-key view updates), plus the tree's exclusive capability (ranges).

#include <benchmark/benchmark.h>

#include "strip/storage/table.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  return s;
}

std::unique_ptr<Table> MakeIndexed(int n, IndexKind kind) {
  auto t = std::make_unique<Table>("t", KV());
  Status st = t->CreateTableIndex("k", kind);
  if (!st.ok()) std::abort();
  for (int i = 0; i < n; ++i) {
    auto r = t->Insert(MakeRecord(
        {Value::Str("key" + std::to_string(i)), Value::Double(i)}));
    if (!r.ok()) std::abort();
  }
  return t;
}

void EqualityLookup(benchmark::State& state, IndexKind kind) {
  int n = static_cast<int>(state.range(0));
  auto t = MakeIndexed(n, kind);
  int i = 0;
  for (auto _ : state) {
    Value key = Value::Str("key" + std::to_string(i % n));
    auto rows = t->IndexLookup(0, key);
    benchmark::DoNotOptimize(rows);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EqualityLookup_Hash(benchmark::State& state) {
  EqualityLookup(state, IndexKind::kHash);
}
void BM_EqualityLookup_RbTree(benchmark::State& state) {
  EqualityLookup(state, IndexKind::kRbTree);
}
BENCHMARK(BM_EqualityLookup_Hash)->Arg(1000)->Arg(100000);
BENCHMARK(BM_EqualityLookup_RbTree)->Arg(1000)->Arg(100000);

void InsertWithIndex(benchmark::State& state, IndexKind kind) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Table t("t", KV());
    Status st = t.CreateTableIndex("k", kind);
    if (!st.ok()) std::abort();
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      auto r = t.Insert(MakeRecord(
          {Value::Str("key" + std::to_string(i)), Value::Double(i)}));
      benchmark::DoNotOptimize(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_IndexedInsert_Hash(benchmark::State& state) {
  InsertWithIndex(state, IndexKind::kHash);
}
void BM_IndexedInsert_RbTree(benchmark::State& state) {
  InsertWithIndex(state, IndexKind::kRbTree);
}
BENCHMARK(BM_IndexedInsert_Hash)->Arg(10000);
BENCHMARK(BM_IndexedInsert_RbTree)->Arg(10000);

/// Copy-on-write update through the index (the maintenance hot path).
void UpdateThroughIndex(benchmark::State& state, IndexKind kind) {
  int n = static_cast<int>(state.range(0));
  auto t = MakeIndexed(n, kind);
  int i = 0;
  for (auto _ : state) {
    Value key = Value::Str("key" + std::to_string(i % n));
    auto rows = t->IndexLookup(0, key);
    Status st = t->Update(
        rows[0], MakeRecord({key, Value::Double(i)}));
    benchmark::DoNotOptimize(st);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_IndexedUpdate_Hash(benchmark::State& state) {
  UpdateThroughIndex(state, IndexKind::kHash);
}
void BM_IndexedUpdate_RbTree(benchmark::State& state) {
  UpdateThroughIndex(state, IndexKind::kRbTree);
}
BENCHMARK(BM_IndexedUpdate_Hash)->Arg(100000);
BENCHMARK(BM_IndexedUpdate_RbTree)->Arg(100000);

/// What only the tree can do: ordered range scans.
void BM_RangeScan_RbTree(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Table t("t", KV());
  Status st = t.CreateTableIndex("v", IndexKind::kRbTree);
  if (!st.ok()) std::abort();
  for (int i = 0; i < n; ++i) {
    auto r = t.Insert(MakeRecord(
        {Value::Str("key" + std::to_string(i)), Value::Double(i)}));
    if (!r.ok()) std::abort();
  }
  auto* idx = static_cast<RbTreeIndex*>(t.FindIndex("v"));
  for (auto _ : state) {
    std::vector<RowHandle> out;
    idx->LookupRange(Value::Double(n / 4), Value::Double(n / 4 + 100), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RangeScan_RbTree)->Arg(100000);

}  // namespace
}  // namespace strip

BENCHMARK_MAIN();
