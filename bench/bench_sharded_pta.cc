// Shared-nothing scale-up of the PTA workload on the in-process cluster
// (DESIGN.md §2.5): the same partitioned quote burst run at several shard
// counts, each shard a full threaded engine maintaining its partial
// composite view with tier-1 rules and shipping folded group deltas to the
// merge engine. Firing throughput comes from the per-shard order rule,
// whose action blocks on the exchange round-trip — shards overlap those
// stalls exactly as extra pool workers do in bench_threaded_pta, one
// architectural level up.
//
// Every configuration's final merged view is checked for EXACT equality
// against a single simulated engine replaying the identical record stream
// through a plain tier-1 maintained view (all prices and weights are small
// dyadic rationals, so SUMs are exact in doubles). A mismatch fails the
// bench: speedup that loses deltas is not speedup.
//
// Usage: bench_sharded_pta [--shards 1,2,4] [--workers N] [--updates N]
//                          [--syms N] [--comps N] [--stall US] [--delay S]
//                          [--seed N] [--out FILE] [--no-metrics]
//
// Emits BENCH_sharded_pta.json (canonical BenchReport schema) with one
// entry per shard count and the 4-vs-1 shard speedup (the ISSUE's >= 3x
// acceptance number).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pta_bench_common.h"
#include "strip/market/sharded_pta.h"

namespace strip {
namespace {

std::vector<int> ParseIntList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

void PrintResult(const ShardedPtaResult& r) {
  std::printf(
      "%7d %8d %9llu %9llu %12.1f %8llu %8llu %8llu %10.3f\n",
      r.num_shards, r.num_workers,
      static_cast<unsigned long long>(r.num_records),
      static_cast<unsigned long long>(r.num_firings), r.firings_per_second,
      static_cast<unsigned long long>(r.deltas_shipped),
      static_cast<unsigned long long>(r.staging_failed),
      static_cast<unsigned long long>(r.wait_die_aborts), r.wall_seconds);
}

}  // namespace
}  // namespace strip

int main(int argc, char** argv) {
  using namespace strip;

  std::vector<int> shards = {1, 2, 4};
  ShardedPtaOptions base;
  std::string out_path = "BENCH_sharded_pta.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = ParseIntList(next());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      base.num_workers = std::atoi(next());
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      base.num_updates = std::atoi(next());
    } else if (std::strcmp(argv[i], "--syms") == 0) {
      base.num_syms = std::atoi(next());
    } else if (std::strcmp(argv[i], "--comps") == 0) {
      base.num_comps = std::atoi(next());
    } else if (std::strcmp(argv[i], "--stall") == 0) {
      base.order_latency_micros = std::atoll(next());
    } else if (std::strcmp(argv[i], "--delay") == 0) {
      double d = std::atof(next());
      base.tier1_delay_seconds = d;
      base.export_delay_seconds = d;
      base.merge_delay_seconds = d;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      base.enable_metrics = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // The reference view depends only on the record stream, not the shard
  // count: one simulated replay guards every configuration.
  auto reference = RunSingleEnginePta(base);
  if (!reference.ok()) {
    std::fprintf(stderr, "single-engine reference: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  std::printf("single-engine reference: %zu groups\n", reference->size());

  std::printf(
      "%7s %8s %9s %9s %12s %8s %8s %8s %10s\n", "shards", "workers",
      "records", "firings", "firing/s", "deltas", "dropped", "wd_kill",
      "wall_s");
  std::vector<ShardedPtaResult> results;
  for (int k : shards) {
    ShardedPtaOptions opts = base;
    opts.num_shards = k;
    auto r = RunShardedPta(opts);
    if (!r.ok()) {
      std::fprintf(stderr, "shards=%d: %s\n", k,
                   r.status().ToString().c_str());
      return 1;
    }
    PrintResult(*r);
    Status eq = CompareMergedViews(r->merged_view, *reference);
    if (!eq.ok()) {
      std::fprintf(stderr,
                   "shards=%d: merged view != single-engine reference: %s\n",
                   k, eq.ToString().c_str());
      return 1;
    }
    if (r->staging_failed != 0) {
      std::fprintf(stderr, "shards=%d: %llu delta shipments dropped\n", k,
                   static_cast<unsigned long long>(r->staging_failed));
      return 1;
    }
    results.push_back(std::move(*r));
  }
  std::printf("merged views match the single-engine reference exactly\n");

  double speedup_4v1 = 0;
  {
    const ShardedPtaResult* s1 = nullptr;
    const ShardedPtaResult* s4 = nullptr;
    for (const auto& r : results) {
      if (r.num_shards == 1) s1 = &r;
      if (r.num_shards == 4) s4 = &r;
    }
    if (s1 != nullptr && s4 != nullptr && s1->firings_per_second > 0) {
      speedup_4v1 = s4->firings_per_second / s1->firings_per_second;
      std::printf("\n4-shard vs 1-shard firing throughput: %.2fx\n",
                  speedup_4v1);
    }
  }

  bench::BenchReport report("sharded_pta");
  report.Config([&](JsonWriter& w) {
    w.Key("workers_per_engine").Int(base.num_workers);
    w.Key("num_syms").Int(base.num_syms);
    w.Key("num_comps").Int(base.num_comps);
    w.Key("num_updates").Int(base.num_updates);
    w.Key("order_latency_micros").Int(base.order_latency_micros);
    w.Key("tier1_delay_seconds").Double(base.tier1_delay_seconds);
    w.Key("export_delay_seconds").Double(base.export_delay_seconds);
    w.Key("merge_delay_seconds").Double(base.merge_delay_seconds);
    w.Key("seed").Uint(base.seed);
    w.Key("metrics_enabled").Bool(base.enable_metrics);
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("runs").BeginArray();
    for (const ShardedPtaResult& r : results) {
      w.BeginObject();
      w.Key("shards").Int(r.num_shards);
      w.Key("workers").Int(r.num_workers);
      w.Key("records").Uint(r.num_records);
      w.Key("firings").Uint(r.num_firings);
      w.Key("firings_per_second").Double(r.firings_per_second);
      w.Key("firing_window_seconds").Double(r.firing_window_seconds);
      w.Key("deltas_shipped").Uint(r.deltas_shipped);
      w.Key("staging_failed").Uint(r.staging_failed);
      w.Key("wait_die_aborts").Uint(r.wait_die_aborts);
      w.Key("wall_seconds").Double(r.wall_seconds);
      w.Key("merged_groups").Uint(r.merged_view.size());
      w.Key("matches_single_engine").Bool(true);
      w.Key("registry").Raw(r.metrics_json);
      w.EndObject();
    }
    w.EndArray();
    w.Key("speedup_4_shards_vs_1").Double(speedup_4v1);
    w.Key("meets_3x_target").Bool(speedup_4v1 >= 3.0);
  });
  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
