// Incremental view maintenance: delta rules vs. per-group recompute, and
// what batching adds on top (§8 / ROADMAP item 2). A weighted-sum join
// view (the paper's comp_prices shape) is maintained three ways under the
// same synthetic price feed:
//
//   recompute      hand-written `unique on grp` rule re-aggregating the
//                  whole group per firing — O(|group|) per change, the
//                  paper-era strategy;
//   delta          generated maintenance rule (rule_gen.h) applying
//                  (new - old) x weight per changed row, delay 0 so every
//                  update pays its own firing — O(|delta|);
//   delta_batched  the same generated rule with a delay window, so
//                  same-group deltas inside the window fold to one net
//                  update per group (net_effect) — O(|net delta|).
//
// recompute and delta_batched sweep the paper's 0.5 - 3 s windows; delta
// is the window-free reference point. Every run ends with an exact
// view-vs-recompute equality check (weights are 0.5 against integral
// prices, so delta arithmetic is exact in double); a benchmark that
// produced a wrong view aborts instead of reporting a time.
//
// Usage: bench_ivm [--full | --scale=F] [--seed=N]
//
// Emits BENCH_ivm.json (canonical BenchReport schema): one entry per
// (group size, strategy, delay) with the feed-only baseline subtracted,
// plus a summary with the delta-vs-recompute speedup at the largest
// group size.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "pta_bench_common.h"
#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/engine/prepared_statement.h"
#include "strip/viewmaint/rule_gen.h"
#include "strip/viewmaint/view_def.h"

namespace strip::bench {
namespace {

struct IvmConfig {
  int num_groups = 8;
  int group_size = 128;    // symbols per group (the sweep axis)
  int num_updates = 2000;  // price updates in the feed
  Timestamp mean_gap_micros = 50'000;  // virtual time between updates
  /// Market feeds are skewed: most prints hit a few hot symbols. The hot
  /// set is spread across all groups, so every group keeps changing —
  /// recompute cannot sit idle — while the per-window delta stays a
  /// handful of symbols (the "small delta, large group" regime).
  double hot_fraction = 0.85;
  int hot_syms = 16;
  uint64_t seed = 42;
};

enum class Strategy { kNone, kRecompute, kDelta };

const char* StrategyName(Strategy s, double delay) {
  switch (s) {
    case Strategy::kNone: return "baseline";
    case Strategy::kRecompute: return "recompute";
    case Strategy::kDelta: return delay > 0 ? "delta_batched" : "delta";
  }
  return "?";
}

/// Sequential splitmix64 for the feed (generated once, up front).
class SplitMix {
 public:
  explicit SplitMix(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  double Unit() { return (Next() >> 11) * 0x1.0p-53; }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

std::string SymName(int i) { return StrFormat("S%d", i); }
std::string GrpName(int i) { return StrFormat("G%d", i); }

/// px (fact, integral prices) x members (dim, weight 0.5) -> vidx, the
/// weighted-sum view every strategy maintains.
Status SetUpWorkload(Database& db, const IvmConfig& c) {
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    create index on members (grp);
  )"));
  int num_syms = c.num_groups * c.group_size;
  // Batched inserts: one statement per 256 rows keeps setup off the
  // measured path's scale.
  for (int base = 0; base < num_syms; base += 256) {
    std::string px_vals, mem_vals;
    for (int i = base; i < std::min(base + 256, num_syms); ++i) {
      const char* sep = px_vals.empty() ? "" : ", ";
      px_vals += StrFormat("%s('%s', 100.0)", sep, SymName(i).c_str());
      mem_vals += StrFormat("%s('%s', '%s', 0.5)", sep,
                            GrpName(i / c.group_size).c_str(),
                            SymName(i).c_str());
    }
    STRIP_RETURN_IF_ERROR(
        db.Execute("insert into px values " + px_vals).status());
    STRIP_RETURN_IF_ERROR(
        db.Execute("insert into members values " + mem_vals).status());
  }
  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
    create materialized view vidx as
      select grp, sum(px.price * w) as total
      from px, members
      where px.sym = members.sym
      group by grp;
    create index on vidx (grp);
  )"));
  return Status::OK();
}

/// The paper-era baseline: on any price change, re-aggregate the whole
/// group from scratch. Prepared statements, so the gap to the delta rule
/// is algorithmic (O(|group|) vs O(|delta|)), not parse overhead.
Status InstallRecomputeRule(Database& db, double delay) {
  STRIP_ASSIGN_OR_RETURN(
      PreparedStatementPtr group_sum,
      db.Prepare("select grp, sum(px.price * w) as s from px, members "
                 "where px.sym = members.sym and grp = ? group by grp"));
  STRIP_ASSIGN_OR_RETURN(
      PreparedStatementPtr write_back,
      db.Prepare("update vidx set total = ? where grp = ?"));
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "ivm_recompute",
      [group_sum, write_back](FunctionContext& ctx) -> Status {
        const TempTable* changed = ctx.BoundTable("changed");
        if (changed == nullptr || changed->size() == 0) {
          return Status::Internal("ivm_recompute: empty bound table");
        }
        // `unique on grp`: every row in this firing carries the same grp.
        Value grp = changed->Get(0, 0);
        STRIP_ASSIGN_OR_RETURN(TempTable s, ctx.Query(*group_sum, {grp}));
        if (s.size() != 1) {
          return Status::Internal("ivm_recompute: group vanished");
        }
        return ctx.Exec(*write_back, {s.Get(0, 1), grp}).status();
      }));
  return db
      .Execute(StrFormat(R"(
        create rule ivm_recompute on px when updated price
        if select members.grp as grp from new, members
           where new.sym = members.sym bind as changed
        then execute ivm_recompute unique on grp after %f seconds
      )",
                         delay))
      .status();
}

struct RunResult {
  double total_seconds = 0;   // wall clock of the drain (feed + rules)
  uint64_t tasks_created = 0;
  uint64_t firings_merged = 0;
};

/// Exact equality between the maintained view and a from-scratch
/// aggregation (column 0/1 only: delta strategies append hidden _count).
Status CheckViewExact(Database& db) {
  auto view = db.Execute("select grp, total from vidx order by grp");
  STRIP_RETURN_IF_ERROR(view.status());
  auto want = db.Execute(
      "select grp, sum(px.price * w) as total from px, members "
      "where px.sym = members.sym group by grp order by grp");
  STRIP_RETURN_IF_ERROR(want.status());
  if (view->num_rows() != want->num_rows()) {
    return Status::Internal(StrFormat("view has %zu rows, recompute %zu",
                                      view->num_rows(), want->num_rows()));
  }
  for (size_t i = 0; i < view->num_rows(); ++i) {
    if (view->rows[i][0] != want->rows[i][0] ||
        view->rows[i][1].as_double() != want->rows[i][1].as_double()) {
      return Status::Internal(StrFormat(
          "view row %zu = (%s, %s) but recompute says (%s, %s)", i,
          view->rows[i][0].ToString().c_str(),
          view->rows[i][1].ToString().c_str(),
          want->rows[i][0].ToString().c_str(),
          want->rows[i][1].ToString().c_str()));
    }
  }
  return Status::OK();
}

Result<RunResult> RunOnce(const IvmConfig& c, Strategy strat, double delay) {
  Database db;
  STRIP_RETURN_IF_ERROR(SetUpWorkload(db, c));
  switch (strat) {
    case Strategy::kNone:
      break;
    case Strategy::kRecompute:
      STRIP_RETURN_IF_ERROR(InstallRecomputeRule(db, delay));
      break;
    case Strategy::kDelta: {
      RuleGenOptions gen;
      gen.delay_seconds = delay;
      STRIP_RETURN_IF_ERROR(
          GenerateMaintenanceRule(db, "vidx", "px", gen).status());
      break;
    }
  }

  // The feed: one prepared UPDATE per event, each its own transaction
  // (rules fire at commit), released on a virtual-time grid so the delay
  // windows batch exactly as they would against a live feed.
  STRIP_ASSIGN_OR_RETURN(PreparedStatementPtr feed,
                         db.Prepare("update px set price = ? where sym = ?"));
  SplitMix rng(c.seed ^ 0x1f2e3d4c5b6a7988ull);
  int num_syms = c.num_groups * c.group_size;
  // Hot symbols at a fixed stride, one every num_syms/hot_syms — each
  // group contains hot symbols, so merging never lets a group go cold.
  int hot_stride = std::max(1, num_syms / c.hot_syms);
  Timestamp t = 10'000;
  for (int i = 0; i < c.num_updates; ++i) {
    int sym = rng.Unit() < c.hot_fraction
                  ? static_cast<int>(rng.Below(
                        static_cast<uint64_t>(c.hot_syms))) *
                        hot_stride
                  : static_cast<int>(
                        rng.Below(static_cast<uint64_t>(num_syms)));
    std::vector<Value> params = {
        Value::Double(1.0 + static_cast<double>(rng.Below(1000))),
        Value::Str(SymName(sym))};
    t += 1 + static_cast<Timestamp>(rng.Below(2 * c.mean_gap_micros));
    TaskPtr task = db.NewTask();
    task->release_time = t;
    task->function_name = "feed";
    PreparedStatementPtr stmt = feed;
    task->work = [stmt, params = std::move(params)](
                     TaskControlBlock&) -> Status {
      return stmt->Execute(params).status();
    };
    db.Submit(std::move(task));
  }

  auto start = std::chrono::steady_clock::now();
  db.simulated()->RunUntilQuiescent();
  auto stop = std::chrono::steady_clock::now();

  if (strat != Strategy::kNone) {
    STRIP_RETURN_IF_ERROR(CheckViewExact(db));
  }
  RunResult r;
  r.total_seconds = std::chrono::duration<double>(stop - start).count();
  r.tasks_created = db.rules().stats().tasks_created;
  r.firings_merged = db.rules().stats().firings_merged;
  return r;
}

/// Min-of-reps wall time: the repeatable cost, robust to scheduler noise.
Result<RunResult> RunBest(const IvmConfig& c, Strategy strat, double delay,
                          int reps) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    STRIP_ASSIGN_OR_RETURN(RunResult r, RunOnce(c, strat, delay));
    if (i == 0 || r.total_seconds < best.total_seconds) best = r;
  }
  return best;
}

struct Row {
  int group_size;
  std::string strategy;
  double delay_seconds;
  RunResult run;
  double maintenance_seconds;  // run minus the feed-only baseline
};

int Run(const SweepOptions& opts) {
  constexpr int kReps = 5;
  const std::vector<int> group_sizes = {16, 128, 1024};
  IvmConfig base;
  base.seed = opts.seed;
  // scale 0.05 (the default) keeps the checked-in artifact's feed at 2000
  // updates; --full sweeps the paper-scale 40k.
  base.num_updates = std::max(500, static_cast<int>(40'000 * opts.scale));

  std::vector<Row> rows;
  for (int gs : group_sizes) {
    IvmConfig c = base;
    c.group_size = gs;
    std::printf("group size %d: baseline ...\n", gs);
    auto baseline = RunBest(c, Strategy::kNone, 0, kReps);
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    rows.push_back({gs, "baseline", 0.0, *baseline, 0.0});

    auto measure = [&](Strategy s, double delay) -> bool {
      auto r = RunBest(c, s, delay, kReps);
      if (!r.ok()) {
        std::fprintf(stderr, "%s (delay %.2f) failed: %s\n",
                     StrategyName(s, delay), delay,
                     r.status().ToString().c_str());
        return false;
      }
      double maint =
          std::max(0.0, r->total_seconds - baseline->total_seconds);
      rows.push_back({gs, StrategyName(s, delay), delay, *r, maint});
      std::printf("  %-14s delay %-5.2f total %8.3f ms  maint %8.3f ms  "
                  "tasks %6llu  merged %6llu\n",
                  StrategyName(s, delay), delay, r->total_seconds * 1e3,
                  maint * 1e3,
                  static_cast<unsigned long long>(r->tasks_created),
                  static_cast<unsigned long long>(r->firings_merged));
      return true;
    };

    if (!measure(Strategy::kDelta, 0.0)) return 1;
    for (double delay : opts.delays) {
      if (!measure(Strategy::kRecompute, delay)) return 1;
      if (!measure(Strategy::kDelta, delay)) return 1;
    }
  }

  // Summary: the headline comparisons in the small-delta/large-group
  // regime (the largest group size). The delta-vs-recompute speedup pits
  // delta against recompute's BEST window — its most favorable batching,
  // not a strawman — and the batching claim requires delta_batched to
  // beat BOTH alternatives at every window, recompute compared at the
  // matching window (same staleness budget).
  int big = group_sizes.back();
  double recompute_best = 0, delta_alone = 0, batched_best = 0;
  double matched_speedup_min = 0;  // min over windows of recompute/batched
  bool batched_fastest = true;
  auto find = [&](const char* strategy, double delay) -> const Row* {
    for (const Row& r : rows) {
      if (r.group_size == big && r.strategy == strategy &&
          r.delay_seconds == delay) {
        return &r;
      }
    }
    return nullptr;
  };
  delta_alone = find("delta", 0.0)->maintenance_seconds;
  for (double delay : opts.delays) {
    double rec = find("recompute", delay)->maintenance_seconds;
    double bat = find("delta_batched", delay)->maintenance_seconds;
    if (recompute_best == 0 || rec < recompute_best) recompute_best = rec;
    if (batched_best == 0 || bat < batched_best) batched_best = bat;
    if (bat >= rec || bat >= delta_alone) batched_fastest = false;
    double ratio = bat > 0 ? rec / bat : 0;
    if (matched_speedup_min == 0 || ratio < matched_speedup_min) {
      matched_speedup_min = ratio;
    }
  }
  double speedup = delta_alone > 0 ? recompute_best / delta_alone : 0;
  std::printf("\nlargest group (%d syms): recompute best %.3f ms, delta "
              "%.3f ms (%.1fx), batched best %.3f ms (matched-window "
              "speedup >= %.1fx); batched fastest at every window: %s\n",
              big, recompute_best * 1e3, delta_alone * 1e3, speedup,
              batched_best * 1e3, matched_speedup_min,
              batched_fastest ? "yes" : "no");

  BenchReport report("ivm");
  report.Config([&](JsonWriter& w) {
    w.Key("seed").Uint(opts.seed);
    w.Key("num_groups").Int(base.num_groups);
    w.Key("num_updates").Int(base.num_updates);
    w.Key("mean_gap_micros").Int(static_cast<int>(base.mean_gap_micros));
    w.Key("hot_fraction").Double(base.hot_fraction);
    w.Key("hot_syms").Int(base.hot_syms);
    w.Key("reps").Int(kReps);
    w.Key("group_sizes").BeginArray();
    for (int gs : group_sizes) w.Int(gs);
    w.EndArray();
    w.Key("delays_seconds").BeginArray();
    for (double d : opts.delays) w.Double(d);
    w.EndArray();
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("runs").BeginArray();
    for (const Row& r : rows) {
      w.BeginObject();
      w.Key("group_size").Int(r.group_size);
      w.Key("strategy").String(r.strategy);
      w.Key("delay_seconds").Double(r.delay_seconds);
      w.Key("total_seconds").Double(r.run.total_seconds);
      w.Key("maintenance_seconds").Double(r.maintenance_seconds);
      w.Key("rule_tasks_created").Uint(r.run.tasks_created);
      w.Key("firings_merged").Uint(r.run.firings_merged);
      w.EndObject();
    }
    w.EndArray();
    w.Key("summary").BeginObject();
    w.Key("largest_group_size").Int(big);
    w.Key("recompute_best_seconds").Double(recompute_best);
    w.Key("delta_seconds").Double(delta_alone);
    w.Key("delta_batched_best_seconds").Double(batched_best);
    w.Key("speedup_delta_vs_recompute").Double(speedup);
    w.Key("matched_window_speedup_min").Double(matched_speedup_min);
    w.Key("batched_fastest_every_window").Bool(batched_fastest);
    w.EndObject();
  });
  if (!report.WriteFile("BENCH_ivm.json")) {
    std::fprintf(stderr, "cannot write BENCH_ivm.json\n");
    return 1;
  }
  std::printf("wrote BENCH_ivm.json\n");
  return 0;
}

}  // namespace
}  // namespace strip::bench

int main(int argc, char** argv) {
  return strip::bench::Run(strip::bench::ParseArgs(argc, argv));
}
