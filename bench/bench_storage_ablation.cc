// Ablation for the §6.1 temporary-table design: STRIP stores temp tuples
// as pointers into standard records plus a static column map, instead of
// copying attribute values. This bench quantifies that choice for the
// rule system's hottest paths: building transition tables at commit and
// reading bound-table columns in the action function.

#include <benchmark/benchmark.h>

#include "strip/rules/transition_tables.h"
#include "strip/storage/table.h"
#include "strip/storage/temp_table.h"

namespace strip {
namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("symbol", ValueType::kString);
  s.AddColumn("price", ValueType::kDouble);
  s.AddColumn("bid", ValueType::kDouble);
  s.AddColumn("ask", ValueType::kDouble);
  s.AddColumn("volume", ValueType::kInt);
  s.AddColumn("exchange", ValueType::kString);
  return s;
}

std::unique_ptr<Table> FillTable(int n) {
  auto t = std::make_unique<Table>("t", WideSchema());
  for (int i = 0; i < n; ++i) {
    auto r = t->Insert(MakeRecord(
        {Value::Str("sym" + std::to_string(i)), Value::Double(i * 1.5),
         Value::Double(i * 1.49), Value::Double(i * 1.51),
         Value::Int(i * 100), Value::Str("nyse")}));
    if (!r.ok()) std::abort();
  }
  return t;
}

/// Pointer scheme (§6.1): one RecordRef per tuple, values read through the
/// static map.
void BM_BuildTempTable_PointerScheme(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  std::vector<TempColumnMap> map;
  for (int c = 0; c < 6; ++c) map.push_back(TempColumnMap{0, c});
  map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, 0});
  for (auto _ : state) {
    TempTable t("x", schema, map, 1, 1);
    int seq = 0;
    for (const Row& row : table->rows()) {
      t.Append(TempTuple{{row.rec}, {Value::Int(++seq)}});
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildTempTable_PointerScheme)->Arg(64)->Arg(1024)->Arg(16384);

/// The alternative STRIP rejects: copy every attribute value into the
/// temporary tuple.
void BM_BuildTempTable_ValueCopy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  for (auto _ : state) {
    TempTable t = TempTable::Materialized("x", schema);
    int seq = 0;
    for (const Row& row : table->rows()) {
      std::vector<Value> copy = row.rec->values;
      copy.push_back(Value::Int(++seq));
      t.Append(TempTuple{{}, std::move(copy)});
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildTempTable_ValueCopy)->Arg(64)->Arg(1024)->Arg(16384);

/// Read path: scanning two columns of every tuple (what a maintenance
/// function does to its bound table).
template <bool kPointer>
void ReadBench(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  TempTable t = TempTable::Materialized("x", schema);
  if (kPointer) {
    std::vector<TempColumnMap> map;
    for (int c = 0; c < 6; ++c) map.push_back(TempColumnMap{0, c});
    map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, 0});
    t = TempTable("x", schema, map, 1, 1);
    int seq = 0;
    for (const Row& row : table->rows()) {
      t.Append(TempTuple{{row.rec}, {Value::Int(++seq)}});
    }
  } else {
    int seq = 0;
    for (const Row& row : table->rows()) {
      std::vector<Value> copy = row.rec->values;
      copy.push_back(Value::Int(++seq));
      t.Append(TempTuple{{}, std::move(copy)});
    }
  }
  for (auto _ : state) {
    double acc = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      acc += t.Get(i, 1).as_double() + t.Get(i, 3).as_double();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ReadTempTable_PointerScheme(benchmark::State& state) {
  ReadBench<true>(state);
}
void BM_ReadTempTable_ValueCopy(benchmark::State& state) {
  ReadBench<false>(state);
}
BENCHMARK(BM_ReadTempTable_PointerScheme)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ReadTempTable_ValueCopy)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace strip

BENCHMARK_MAIN();
