// Ablation for the §6.1 temporary-table design: STRIP stores temp tuples
// as pointers into standard records plus a static column map, instead of
// copying attribute values. This bench quantifies that choice for the
// rule system's hottest paths: building transition tables at commit and
// reading bound-table columns in the action function.
//
// It also carries the storage-layout ablation (`--json=` mode): the
// legacy std::list row container vs. the slotted-page arena that replaced
// it, across seq-scan / point-update / insert-erase churn — the numbers
// behind BENCH_storage_layout.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <list>
#include <unordered_map>

#include "pta_bench_common.h"
#include "strip/rules/transition_tables.h"
#include "strip/storage/page.h"
#include "strip/storage/table.h"
#include "strip/storage/temp_table.h"

namespace strip {
namespace {

Schema WideSchema() {
  Schema s;
  s.AddColumn("symbol", ValueType::kString);
  s.AddColumn("price", ValueType::kDouble);
  s.AddColumn("bid", ValueType::kDouble);
  s.AddColumn("ask", ValueType::kDouble);
  s.AddColumn("volume", ValueType::kInt);
  s.AddColumn("exchange", ValueType::kString);
  return s;
}

std::unique_ptr<Table> FillTable(int n) {
  auto t = std::make_unique<Table>("t", WideSchema());
  for (int i = 0; i < n; ++i) {
    auto r = t->Insert(MakeRecord(
        {Value::Str("sym" + std::to_string(i)), Value::Double(i * 1.5),
         Value::Double(i * 1.49), Value::Double(i * 1.51),
         Value::Int(i * 100), Value::Str("nyse")}));
    if (!r.ok()) std::abort();
  }
  return t;
}

/// Pointer scheme (§6.1): one RecordRef per tuple, values read through the
/// static map.
void BM_BuildTempTable_PointerScheme(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  std::vector<TempColumnMap> map;
  for (int c = 0; c < 6; ++c) map.push_back(TempColumnMap{0, c});
  map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, 0});
  for (auto _ : state) {
    TempTable t("x", schema, map, 1, 1);
    int seq = 0;
    for (const Row& row : table->rows()) {
      t.Append(TempTuple{{row.rec}, {Value::Int(++seq)}});
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildTempTable_PointerScheme)->Arg(64)->Arg(1024)->Arg(16384);

/// The alternative STRIP rejects: copy every attribute value into the
/// temporary tuple.
void BM_BuildTempTable_ValueCopy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  for (auto _ : state) {
    TempTable t = TempTable::Materialized("x", schema);
    int seq = 0;
    for (const Row& row : table->rows()) {
      std::vector<Value> copy = row.rec->values;
      copy.push_back(Value::Int(++seq));
      t.Append(TempTuple{{}, std::move(copy)});
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildTempTable_ValueCopy)->Arg(64)->Arg(1024)->Arg(16384);

/// Read path: scanning two columns of every tuple (what a maintenance
/// function does to its bound table).
template <bool kPointer>
void ReadBench(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto table = FillTable(n);
  Schema schema = TransitionSchema(*table);
  TempTable t = TempTable::Materialized("x", schema);
  if (kPointer) {
    std::vector<TempColumnMap> map;
    for (int c = 0; c < 6; ++c) map.push_back(TempColumnMap{0, c});
    map.push_back(TempColumnMap{TempColumnMap::kMaterializedSlot, 0});
    t = TempTable("x", schema, map, 1, 1);
    int seq = 0;
    for (const Row& row : table->rows()) {
      t.Append(TempTuple{{row.rec}, {Value::Int(++seq)}});
    }
  } else {
    int seq = 0;
    for (const Row& row : table->rows()) {
      std::vector<Value> copy = row.rec->values;
      copy.push_back(Value::Int(++seq));
      t.Append(TempTuple{{}, std::move(copy)});
    }
  }
  for (auto _ : state) {
    double acc = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      acc += t.Get(i, 1).as_double() + t.Get(i, 3).as_double();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ReadTempTable_PointerScheme(benchmark::State& state) {
  ReadBench<true>(state);
}
void BM_ReadTempTable_ValueCopy(benchmark::State& state) {
  ReadBench<false>(state);
}
BENCHMARK(BM_ReadTempTable_PointerScheme)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ReadTempTable_ValueCopy)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------------
// Storage-layout ablation: legacy std::list rows vs. the slotted-page
// arena. Both sides carry the same payload (a Row with id + RecordRef and
// an id -> handle directory); only the container differs, so the deltas
// are the layout's. Before measuring, both sides run the same seeded
// erase/insert churn so the list reflects its steady state after a
// trading session (nodes scattered across the heap) rather than the
// unrealistically tidy freshly-loaded form — the arena reuses slots in
// place either way.
// ---------------------------------------------------------------------------

/// The container this PR deleted, rebuilt locally as the baseline.
class LegacyListTable {
 public:
  using Iter = std::list<Row>::iterator;

  Iter Insert(RecordRef rec) {
    rows_.push_back(Row{next_id_++, std::move(rec)});
    Iter it = std::prev(rows_.end());
    by_id_.emplace(it->id, it);
    return it;
  }
  void Erase(Iter it) {
    by_id_.erase(it->id);
    rows_.erase(it);
  }
  Iter Find(uint64_t id) { return by_id_.at(id); }
  std::list<Row>& rows() { return rows_; }
  size_t size() const { return rows_.size(); }

 private:
  std::list<Row> rows_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Iter> by_id_;
};

/// The arena side, same shape: PageManager plus an id directory.
class ArenaTable {
 public:
  RowHandle Insert(RecordRef rec) {
    RowHandle h = pm_.Allocate();
    h->id = next_id_++;
    h->rec = std::move(rec);
    by_id_.emplace(h->id, h);
    return h;
  }
  void Erase(RowHandle h) {
    by_id_.erase(h->id);
    pm_.Release(h);
  }
  RowHandle Find(uint64_t id) { return by_id_.at(id); }
  PageManager& pm() { return pm_; }
  size_t size() const { return pm_.live(); }

 private:
  PageManager pm_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, RowHandle> by_id_;
};

RecordRef LayoutRecord(uint64_t i) {
  return MakeRecord({Value::Str("sym" + std::to_string(i % 512)),
                     Value::Double(static_cast<double>(i) * 1.5),
                     Value::Int(static_cast<int64_t>(i))});
}

/// splitmix64, matching the engine's deterministic harnesses.
uint64_t Mix(uint64_t& s) {
  uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct LayoutResult {
  double seq_scan_rows_per_sec = 0;
  double point_update_ops_per_sec = 0;
  double churn_ops_per_sec = 0;
};

/// Live ids tracked alongside either table so churn picks victims in O(1).
template <typename TableT>
LayoutResult RunLayoutBench(int num_rows, uint64_t seed) {
  TableT t;
  std::vector<uint64_t> ids;
  ids.reserve(static_cast<size_t>(num_rows));
  for (int i = 0; i < num_rows; ++i) {
    ids.push_back(t.Insert(LayoutRecord(static_cast<uint64_t>(i)))->id);
  }

  uint64_t rng = seed;
  auto churn_step = [&] {
    size_t victim = static_cast<size_t>(Mix(rng)) % ids.size();
    t.Erase(t.Find(ids[victim]));
    ids[victim] = t.Insert(LayoutRecord(Mix(rng)))->id;
  };
  // Steady-state warm-up: one full turnover of the table.
  for (int i = 0; i < num_rows; ++i) churn_step();

  LayoutResult res;

  // Seq scan: sum one double column over every live row; repeat until the
  // run is long enough to time stably.
  {
    int reps = std::max(1, 2'000'000 / num_rows);
    auto t0 = std::chrono::steady_clock::now();
    double acc = 0;
    for (int r = 0; r < reps; ++r) {
      if constexpr (std::is_same_v<TableT, ArenaTable>) {
        PageManager::ScanPos pos;
        ScanBatch batch;
        while (t.pm().NextBatch(pos, batch)) {
          for (size_t i = 0; i < batch.count; ++i) {
            acc += batch.rows[i]->rec->values[1].as_double();
          }
        }
      } else {
        for (const Row& row : t.rows()) {
          acc += row.rec->values[1].as_double();
        }
      }
    }
    benchmark::DoNotOptimize(acc);
    res.seq_scan_rows_per_sec =
        static_cast<double>(reps) * num_rows / SecondsSince(t0);
  }

  // Point update: directory lookup + COW record swap on random rows.
  {
    int ops = num_rows * 4;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) {
      uint64_t id = ids[static_cast<size_t>(Mix(rng)) % ids.size()];
      auto h = t.Find(id);
      h->rec = LayoutRecord(Mix(rng));
    }
    res.point_update_ops_per_sec = ops / SecondsSince(t0);
  }

  // Insert-erase churn: the allocator path itself.
  {
    int ops = num_rows * 2;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) churn_step();
    res.churn_ops_per_sec = ops / SecondsSince(t0);
  }
  return res;
}

int RunLayoutAblation(const std::string& json_path, int num_rows) {
  constexpr uint64_t kSeed = 0x5707a6e;
  // Interleave and keep the best of 3 per side: the comparison should be
  // layout vs layout, not which run ate a scheduler hiccup.
  LayoutResult legacy, arena;
  auto better = [](const LayoutResult& a, const LayoutResult& b) {
    LayoutResult r;
    r.seq_scan_rows_per_sec =
        std::max(a.seq_scan_rows_per_sec, b.seq_scan_rows_per_sec);
    r.point_update_ops_per_sec =
        std::max(a.point_update_ops_per_sec, b.point_update_ops_per_sec);
    r.churn_ops_per_sec = std::max(a.churn_ops_per_sec, b.churn_ops_per_sec);
    return r;
  };
  for (int round = 0; round < 3; ++round) {
    legacy = better(legacy, RunLayoutBench<LegacyListTable>(num_rows, kSeed));
    arena = better(arena, RunLayoutBench<ArenaTable>(num_rows, kSeed));
  }

  double scan_speedup = arena.seq_scan_rows_per_sec /
                        legacy.seq_scan_rows_per_sec;
  std::printf("storage layout ablation (%d rows, churn-warmed):\n", num_rows);
  std::printf("  %-14s %15s %15s %9s\n", "workload", "legacy_list",
              "arena", "speedup");
  auto line = [](const char* name, double l, double a) {
    std::printf("  %-14s %15.0f %15.0f %8.2fx\n", name, l, a, a / l);
  };
  line("seq_scan", legacy.seq_scan_rows_per_sec, arena.seq_scan_rows_per_sec);
  line("point_update", legacy.point_update_ops_per_sec,
       arena.point_update_ops_per_sec);
  line("churn", legacy.churn_ops_per_sec, arena.churn_ops_per_sec);

  bench::BenchReport report("storage_layout");
  report.Config([&](JsonWriter& w) {
    w.Key("num_rows").Int(num_rows);
    w.Key("record_columns").Int(3);
    w.Key("churn_warmup_ops").Int(num_rows);
    w.Key("rounds").Int(3);
    w.Key("seed").Int(static_cast<int64_t>(kSeed));
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("legacy_list").BeginObject();
    w.Key("seq_scan_rows_per_sec").Double(legacy.seq_scan_rows_per_sec);
    w.Key("point_update_ops_per_sec").Double(legacy.point_update_ops_per_sec);
    w.Key("insert_erase_ops_per_sec").Double(legacy.churn_ops_per_sec);
    w.EndObject();
    w.Key("arena").BeginObject();
    w.Key("seq_scan_rows_per_sec").Double(arena.seq_scan_rows_per_sec);
    w.Key("point_update_ops_per_sec").Double(arena.point_update_ops_per_sec);
    w.Key("insert_erase_ops_per_sec").Double(arena.churn_ops_per_sec);
    w.EndObject();
    w.Key("seq_scan_speedup").Double(scan_speedup);
    w.Key("point_update_speedup")
        .Double(arena.point_update_ops_per_sec /
                legacy.point_update_ops_per_sec);
    w.Key("insert_erase_speedup")
        .Double(arena.churn_ops_per_sec / legacy.churn_ops_per_sec);
  });
  if (!report.WriteFile(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace strip

// `--json=PATH [--rows=N]` runs the storage-layout ablation and writes the
// canonical BenchReport; anything else goes to google-benchmark.
int main(int argc, char** argv) {
  std::string json_path;
  int num_rows = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      num_rows = std::atoi(argv[i] + 7);
    }
  }
  if (!json_path.empty()) {
    return strip::RunLayoutAblation(json_path, num_rows);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
