// Ablation for the §6.3 unique-transaction machinery: the cost of the
// per-function hash table (merge vs create) and of the Appendix A
// partitioning step, as a function of the number of distinct unique keys —
// the knob behind the paper's "critical region" discussion (§5.1).

#include <benchmark/benchmark.h>

#include "strip/rules/unique_manager.h"

namespace strip {
namespace {

TempTable MakeBoundTable(int rows, int distinct_keys) {
  Schema s;
  s.AddColumn("comp", ValueType::kString);
  s.AddColumn("delta", ValueType::kDouble);
  TempTable t = TempTable::Materialized("m", std::move(s));
  for (int i = 0; i < rows; ++i) {
    t.Append(TempTuple{
        {},
        {Value::Str("c" + std::to_string(i % distinct_keys)),
         Value::Double(i)}});
  }
  return t;
}

/// Partitioning cost per firing: rows spread over K distinct keys.
void BM_PartitionByUniqueColumns(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int keys = static_cast<int>(state.range(1));
  for (auto _ : state) {
    BoundTableSet set;
    Status st = set.Add(MakeBoundTable(rows, keys));
    if (!st.ok()) std::abort();
    auto parts = PartitionByUniqueColumns(std::move(set), {"comp"});
    benchmark::DoNotOptimize(parts->size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PartitionByUniqueColumns)
    ->Args({12, 1})
    ->Args({12, 12})
    ->Args({400, 400})
    ->Args({4096, 64});

/// Steady-state merge into an already-queued task (the common case during
/// a burst).
void BM_MergeIntoQueuedTask(benchmark::State& state) {
  UniqueTxnManager mgr;
  uint64_t ids = 1;
  auto factory = [&](const std::vector<Value>&, BoundTableSet&& tables) {
    auto task = std::make_shared<TaskControlBlock>(ids++);
    task->function_name = "fn";
    task->bound_tables = std::move(tables);
    return task;
  };
  std::vector<Value> key = {Value::Str("c1")};
  // Seed the queued task.
  BoundTableSet first;
  Status st = first.Add(MakeBoundTable(1, 1));
  if (!st.ok()) std::abort();
  auto seeded = mgr.MergeOrCreate("fn", key, std::move(first), 0, factory);
  if (!seeded.ok()) std::abort();
  for (auto _ : state) {
    BoundTableSet set;
    st = set.Add(MakeBoundTable(1, 1));
    auto r = mgr.MergeOrCreate("fn", key, std::move(set), 0, factory);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeIntoQueuedTask);

/// Create-new-task path: every firing hits a different key (the
/// unmanageable unique-on-option_symbol regime of §5.2).
void BM_CreatePerDistinctKey(benchmark::State& state) {
  UniqueTxnManager mgr;
  uint64_t ids = 1;
  auto factory = [&](const std::vector<Value>&, BoundTableSet&& tables) {
    auto task = std::make_shared<TaskControlBlock>(ids++);
    task->function_name = "fn";
    task->bound_tables = std::move(tables);
    return task;
  };
  int64_t i = 0;
  for (auto _ : state) {
    BoundTableSet set;
    Status st = set.Add(MakeBoundTable(1, 1));
    if (!st.ok()) std::abort();
    auto r = mgr.MergeOrCreate(
        "fn", {Value::Str("k" + std::to_string(i++))}, std::move(set), 0,
        factory);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreatePerDistinctKey);

}  // namespace
}  // namespace strip

BENCHMARK_MAIN();
