// Scheduler-policy bench (§6.2): under an overloaded burst of deadline-
// carrying tasks, earliest-deadline-first meets far more deadlines than
// FIFO, and value-density-first accrues more value — the reason a
// real-time database offers these policies. Custom harness main: prints a
// paper-style table rather than google-benchmark timings.

#include <cstdio>

#include "strip/common/rng.h"
#include "strip/txn/simulated_executor.h"

namespace strip {
namespace {

struct PolicyResult {
  uint64_t tasks = 0;
  uint64_t deadline_met = 0;
  double value_accrued = 0;
  Timestamp makespan = 0;
};

PolicyResult RunPolicy(SchedulingPolicy policy, double load, uint64_t seed) {
  SimulatedExecutor ex(policy, /*advance_clock_by_cost=*/true);
  Rng rng(seed);
  PolicyResult result;

  // 400 tasks costing 100-900 us (mean 500) with deadlines 1-10 ms after
  // release, spread over a window sized for the requested utilization.
  Timestamp window =
      static_cast<Timestamp>(400 * 500 / load);  // total work / load
  for (int i = 0; i < 400; ++i) {
    auto task = std::make_shared<TaskControlBlock>(
        static_cast<uint64_t>(i + 1));
    task->release_time = rng.UniformInt(0, window);
    task->fixed_cost_micros = rng.UniformInt(100, 900);
    task->deadline = task->release_time + rng.UniformInt(1'000, 10'000);
    task->value = static_cast<double>(rng.UniformInt(1, 100));
    task->work = [](TaskControlBlock&) { return Status::OK(); };
    ex.Submit(task);
  }
  ex.set_task_observer([&](const TaskControlBlock& t) {
    ++result.tasks;
    if (t.finish_time <= t.deadline) {
      ++result.deadline_met;
      result.value_accrued += t.value;
    }
    if (t.finish_time > result.makespan) result.makespan = t.finish_time;
  });
  ex.RunUntilQuiescent();
  return result;
}

int Run() {
  // Two regimes: near-capacity (EDF's home turf — it is optimal whenever a
  // feasible schedule exists) and 4x overload (where EDF famously suffers
  // the domino effect and value-density triage wins).
  const struct {
    const char* name;
    double load;
  } kScenarios[] = {{"load 0.8 (feasible)", 0.8}, {"load 4.0 (overload)", 4.0}};
  const SchedulingPolicy kPolicies[] = {
      SchedulingPolicy::kFifo, SchedulingPolicy::kEarliestDeadlineFirst,
      SchedulingPolicy::kValueDensityFirst};
  for (const auto& scenario : kScenarios) {
    std::printf("\n# Scheduler ablation: 400 deadline tasks, %s, "
                "mean over 5 seeds\n",
                scenario.name);
    std::printf("%-16s  %-14s  %-14s\n", "policy", "deadlines_met",
                "value_accrued");
    for (SchedulingPolicy p : kPolicies) {
      double met = 0, value = 0, tasks = 0;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        PolicyResult r = RunPolicy(p, scenario.load, seed);
        met += static_cast<double>(r.deadline_met);
        value += r.value_accrued;
        tasks += static_cast<double>(r.tasks);
      }
      std::printf("%-16s  %6.1f/%.0f  %14.1f\n", SchedulingPolicyName(p),
                  met / 5, tasks / 5, value / 5);
    }
  }
  return 0;
}

}  // namespace
}  // namespace strip

int main() { return strip::Run(); }
